"""Legacy shim so `pip install -e . --no-use-pep517` works in offline
environments without the `wheel` package.

The package itself is dependency-free.  The ``[numpy]`` extra opts in
to the vectorised kernel backend (see ``src/repro/kernels``): when
numpy is importable it becomes the default backend, and without it the
stdlib backends give bit-identical results.
"""

from setuptools import setup

setup(
    extras_require={
        "numpy": ["numpy>=1.24"],
    },
)
