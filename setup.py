"""Legacy shim so `pip install -e . --no-use-pep517` works in offline
environments without the `wheel` package.  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
