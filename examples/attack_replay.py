#!/usr/bin/env python
"""The 2016 DoS attack and the METIS balance anomaly (paper Fig. 3b).

This example zooms into the paper's most interesting finding: after the
autumn-2016 attack flooded the chain with dummy accounts, METIS — which
balances *vertex counts* — parks the dummies on one shard and the live
economy on the other.  Static balance looks perfect; dynamic balance
(actual load) approaches 2 with two shards.

The script replays the same history through METIS and R-METIS and
prints per-quarter dynamic balance, showing R-METIS's fix: partitioning
only the recently-active window graph ignores dead vertices.

Run:  python examples/attack_replay.py
"""

from repro import WorkloadConfig, generate_history, make_method, replay_method
from repro.ethereum.history import ATTACK_END, ATTACK_START, month_label
from repro.graph.snapshot import DAY, HOUR


def quarter_means(series, start, end, metric):
    pts = [p for p in series.points if start <= p.ts < end and p.interactions > 0]
    if not pts:
        return float("nan")
    return sum(getattr(p, metric) for p in pts) / len(pts)


def main() -> None:
    print("generating history with the attack window "
          f"({month_label(ATTACK_START)} - {month_label(ATTACK_END)})...")
    history = generate_history(WorkloadConfig.small(seed=11))
    log = history.builder.log

    # count the throwaway accounts the attack minted
    graph = history.graph
    attack_vertices = sum(
        1 for v in graph.vertices()
        if ATTACK_START <= graph.first_seen(v) < ATTACK_END
    )
    print(f"  vertices born in the attack window: {attack_vertices} "
          f"of {graph.num_vertices} total")

    results = {}
    for name in ("metis", "r-metis"):
        method = make_method(name, k=2, seed=1)
        results[name] = replay_method(log, method, metric_window=24 * HOUR)

    span_start = log[0].timestamp
    span_end = log[-1].timestamp
    quarter = 91 * DAY
    print(f"\n{'quarter':>10s}  {'METIS dyn-bal':>14s}  {'R-METIS dyn-bal':>16s}")
    t = span_start
    while t < span_end:
        m = quarter_means(results["metis"].series, t, t + quarter, "dynamic_balance")
        r = quarter_means(results["r-metis"].series, t, t + quarter, "dynamic_balance")
        marker = "  <- attack" if t <= ATTACK_START < t + quarter else ""
        print(f"{month_label(t):>10s}  {m:14.3f}  {r:16.3f}{marker}")
        t += quarter

    print(
        "\nExpected shape: METIS dynamic balance degrades after the attack\n"
        "(dummy vertices create an artificial static balance) while\n"
        "R-METIS, partitioning only the active window, stays balanced."
    )


if __name__ == "__main__":
    main()
