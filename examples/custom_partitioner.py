#!/usr/bin/env python
"""Extending the library: plug in your own partitioning method.

The replay engine accepts any :class:`repro.core.PartitionMethod`.
This example implements a simple label-propagation method — each period,
every vertex adopts the shard where most of its period-graph neighbors
live, subject to a per-shard capacity — and compares it against the
paper's five methods on edge-cut / balance / moves.

Run:  python examples/custom_partitioner.py
"""

from typing import Dict, Mapping, Optional

from repro import WorkloadConfig, generate_history, make_method, replay_method
from repro.core.base import PartitionMethod, ReplayContext
from repro.core.registry import PAPER_ORDER
from repro.graph.snapshot import HOUR, REPARTITION_PERIOD
from repro.graph.undirected import collapse_to_undirected


class LabelPropagation(PartitionMethod):
    """Capacity-bounded label propagation on the period graph."""

    name = "label-prop"

    def __init__(self, k: int, seed: int = 0,
                 period: float = REPARTITION_PERIOD,
                 sweeps: int = 3, headroom: float = 1.10):
        super().__init__(k, seed)
        self.period = period
        self.sweeps = sweeps
        self.headroom = headroom  # max shard size vs average

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        if ctx.elapsed_since_repartition < self.period:
            return None
        und = collapse_to_undirected(ctx.period_graph)
        if und.num_vertices < self.k:
            return None

        labels: Dict[int, int] = {}
        sizes = [0] * self.k
        for v in und.vertices():
            s = ctx.assignment.shard_of(v)
            if s is not None:
                labels[v] = s
                sizes[s] += 1
        capacity = self.headroom * sum(sizes) / self.k

        order = sorted(labels)
        moved: Dict[int, int] = {}
        for _ in range(self.sweeps):
            self.rng.shuffle(order)
            changes = 0
            for v in order:
                votes: Dict[int, int] = {}
                for nbr, w in und.adjacency(v).items():
                    t = labels.get(nbr)
                    if t is not None:
                        votes[t] = votes.get(t, 0) + w
                if not votes:
                    continue
                best = max(votes, key=lambda t: (votes[t], -sizes[t]))
                cur = labels[v]
                if best != cur and votes[best] > votes.get(cur, 0) and sizes[best] < capacity:
                    sizes[cur] -= 1
                    sizes[best] += 1
                    labels[v] = best
                    moved[v] = best
                    changes += 1
            if changes == 0:
                break
        return moved or None


def main() -> None:
    print("generating history...")
    history = generate_history(WorkloadConfig.small(seed=5))
    log = history.builder.log

    print(f"\n{'method':11s} {'dyn edge-cut':>12s} {'dyn balance':>12s} {'moves':>8s}")
    methods = [make_method(n, k=2, seed=1) for n in PAPER_ORDER]
    methods.append(LabelPropagation(k=2, seed=1))
    for method in methods:
        result = replay_method(log, method, metric_window=24 * HOUR)
        pts = [p for p in result.series.points if p.interactions > 0]
        cut = sum(p.dynamic_edge_cut for p in pts) / len(pts)
        bal = sum(p.dynamic_balance for p in pts) / len(pts)
        print(f"{method.name:11s} {cut:12.3f} {bal:12.3f} {result.total_moves:8d}")

    print("\nAnything implementing PartitionMethod slots into the same "
          "replay,\nmetrics and benchmarks as the paper's five methods.")


if __name__ == "__main__":
    main()
