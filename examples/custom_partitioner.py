#!/usr/bin/env python
"""Extending the library: plug in your own partitioning method.

The replay engine accepts any :class:`repro.core.PartitionMethod`.
This example implements a simple label-propagation method — each period,
every vertex adopts the shard where most of its period-graph neighbors
live, subject to a per-shard capacity — registers it with the method
registry, and compares it (including a parameterised
``"label-prop?sweeps=1"`` variant) against the paper's five methods on
edge-cut / balance / moves via one declarative experiment spec.

Run:  python examples/custom_partitioner.py
"""

from typing import Dict, Mapping, Optional

from repro import ExperimentSpec, register_method, run_experiment
from repro.core.base import PartitionMethod, ReplayContext
from repro.core.registry import PAPER_ORDER
from repro.graph.snapshot import REPARTITION_PERIOD
from repro.graph.undirected import collapse_to_undirected


class LabelPropagation(PartitionMethod):
    """Capacity-bounded label propagation on the period graph."""

    name = "label-prop"

    def __init__(self, k: int, seed: int = 0,
                 period: float = REPARTITION_PERIOD,
                 sweeps: int = 3, headroom: float = 1.10):
        super().__init__(k, seed)
        self.period = period
        self.sweeps = sweeps
        self.headroom = headroom  # max shard size vs average

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        if ctx.elapsed_since_repartition < self.period:
            return None
        und = collapse_to_undirected(ctx.period_graph)
        if und.num_vertices < self.k:
            return None

        labels: Dict[int, int] = {}
        sizes = [0] * self.k
        for v in und.vertices():
            s = ctx.assignment.shard_of(v)
            if s is not None:
                labels[v] = s
                sizes[s] += 1
        capacity = self.headroom * sum(sizes) / self.k

        order = sorted(labels)
        moved: Dict[int, int] = {}
        for _ in range(self.sweeps):
            self.rng.shuffle(order)
            changes = 0
            for v in order:
                votes: Dict[int, int] = {}
                for nbr, w in und.adjacency(v).items():
                    t = labels.get(nbr)
                    if t is not None:
                        votes[t] = votes.get(t, 0) + w
                if not votes:
                    continue
                best = max(votes, key=lambda t: (votes[t], -sizes[t]))
                cur = labels[v]
                if best != cur and votes[best] > votes.get(cur, 0) and sizes[best] < capacity:
                    sizes[cur] -= 1
                    sizes[best] += 1
                    labels[v] = best
                    moved[v] = best
                    changes += 1
            if changes == 0:
                break
        return moved or None


def main() -> None:
    # registering the method makes it reachable from declarative specs
    # ("label-prop?sweeps=5"), the runner and the CLI, alongside the
    # paper's five methods
    register_method("label-prop", LabelPropagation)

    spec = ExperimentSpec(
        scale="small",
        workload_seed=5,
        methods=tuple(PAPER_ORDER) + ("label-prop", "label-prop?sweeps=1"),
        ks=(2,),
        window_hours=24.0,
    )
    print(f"replaying {len(spec.cells())} methods in one shared pass...")
    results = run_experiment(spec)

    print(f"\n{'method':20s} {'dyn edge-cut':>12s} {'dyn balance':>12s} {'moves':>8s}")
    for cell in results:
        print(
            f"{cell.method:20s} {cell.mean('dynamic_edge_cut'):12.3f} "
            f"{cell.mean('dynamic_balance'):12.3f} {cell.total_moves:8d}"
        )

    print("\nAnything implementing PartitionMethod slots into the same "
          "replay,\nmetrics and benchmarks as the paper's five methods.")


if __name__ == "__main__":
    main()
