#!/usr/bin/env python
"""Would sharding actually help?  Throughput under each partitioning.

The paper's central warning (§I): "if the application state is poorly
partitioned, overall system performance will most likely decrease,
instead of increase, due to the overhead of multi-shard requests."

This example measures it with the sharded-execution simulator: the same
transaction stream runs on k = 4 shards under the assignment each
method produced, with multi-shard transactions paying a two-phase
commit across their shards.  A single-shard run is the baseline.

Run:  python examples/sharding_study.py
"""

from repro import WorkloadConfig, generate_history, make_method, replay_method
from repro.graph.snapshot import HOUR
from repro.sharding import ShardedExecution, ShardedExecutionConfig

K = 4


def main() -> None:
    print("generating history...")
    history = generate_history(WorkloadConfig.small(seed=3))
    log = history.builder.log[-15_000:]  # the busy tail of the history
    cfg = ShardedExecutionConfig()

    # baseline: one shard executes everything locally
    everything_local = {v: 0 for v in history.graph.vertices()}
    base = ShardedExecution(1, everything_local, cfg).replay(
        log, arrival_rate=3.0 / cfg.service_time
    )
    print(f"\n{'method':10s} {'tx/s':>8s} {'speedup':>8s} {'multi-shard':>12s} "
          f"{'p99 (ms)':>9s} {'util-imbal':>10s}")
    print(f"{'1-shard':10s} {base.throughput:8.0f} {'1.00x':>8s} {0.0:12.2f} "
          f"{base.latency.p99 * 1000:9.1f} {base.utilization_imbalance:10.2f}")

    rate = 3.0 * K / cfg.service_time
    for name in ("hash", "kl", "metis", "p-metis", "tr-metis"):
        method = make_method(name, k=K, seed=1)
        replay = replay_method(history.builder.log, method, metric_window=24 * HOUR)
        ex = ShardedExecution(K, replay.assignment.as_dict(), cfg)
        rep = ex.replay(log, arrival_rate=rate)
        speedup = rep.throughput / base.throughput
        print(f"{name:10s} {rep.throughput:8.0f} {speedup:7.2f}x "
              f"{rep.multi_shard_ratio:12.2f} {rep.latency.p99 * 1000:9.1f} "
              f"{rep.utilization_imbalance:10.2f}")

    print(
        f"\nExpected shape: with {K} shards the ideal speedup is {K}.00x; the\n"
        "measured speedups fall far short of it, tracking each method's\n"
        "multi-shard ratio and load imbalance — the paper's pitfall."
    )


if __name__ == "__main__":
    main()
