#!/usr/bin/env python
"""Working with traces as data: export, statistics, re-import, repartition.

The paper publishes its extracted Ethereum trace "in easily
understandable format ... for further analysis and benchmarking".  This
example exercises that workflow end to end with our format:

1. generate a history and export it as a trace file;
2. re-import the file and verify it rebuilds the identical graph;
3. print the descriptive statistics the calibration relies on
   (heavy-tailed degrees, activity concentration, calls per tx);
4. run a partitioning method directly on the re-imported trace —
   exactly what you would do with a real Ethereum trace dropped
   into the same format;
5. convert to the binary rctrace-v2 format and replay from the
   zero-copy mmap load — the fast path for repeated sweeps.

Run:  python examples/trace_analysis.py
"""

import tempfile
import time
from pathlib import Path

from repro import WorkloadConfig, generate_history, make_method, replay_method
from repro.graph.analytics import (
    compute_trace_stats,
    degree_distribution,
    powerlaw_tail_exponent,
    render_trace_stats,
)
from repro.graph.builder import build_graph
from repro.graph.columnar import ColumnarLog
from repro.graph.io import load_columnar, read_trace, write_columnar, write_trace
from repro.graph.snapshot import HOUR


def main() -> None:
    print("generating history and exporting the trace...")
    history = generate_history(WorkloadConfig.small(seed=21))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ethereum_trace.txt.gz"
        n = write_trace(history.builder.log, str(path))
        print(f"  wrote {n} interactions to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB gzipped)")

        log = list(read_trace(str(path)))
        graph = build_graph(log)
        assert graph.num_vertices == history.graph.num_vertices
        assert graph.num_edges == history.graph.num_edges
        print(f"  re-imported: {graph.num_vertices} vertices, "
              f"{graph.num_edges} edges — identical to the original\n")

        print(render_trace_stats(compute_trace_stats(graph, log)))
        alpha = powerlaw_tail_exponent(degree_distribution(graph))
        print(f"\n  degree power-law tail exponent (Hill): {alpha:.2f}")

        print("\npartitioning the imported trace (TR-METIS, k=4)...")
        result = replay_method(log, make_method("tr-metis", 4, seed=1),
                               metric_window=24 * HOUR)
        pts = [p for p in result.series.points if p.interactions > 0]
        cut = sum(p.dynamic_edge_cut for p in pts) / len(pts)
        print(f"  dynamic edge-cut={cut:.3f}  moves={result.total_moves}  "
              f"repartitions={len(result.events)}")

        print("\nconverting to binary rctrace v2 and replaying zero-copy...")
        rct = Path(tmp) / "ethereum_trace.rct"
        write_columnar(ColumnarLog(log), rct)
        t0 = time.perf_counter()
        mmapped = load_columnar(rct)          # O(1) mmap + verification
        t_load = time.perf_counter() - t0
        print(f"  {rct.name}: {rct.stat().st_size / 1024:.0f} KiB, "
              f"loaded {len(mmapped)} rows in {t_load * 1e3:.1f}ms "
              "(no parse, no boxing)")
        again = replay_method(mmapped, make_method("tr-metis", 4, seed=1),
                              metric_window=24 * HOUR)
        assert again.series == result.series   # bit-identical replay
        print("  replay off the mmap is bit-identical to the boxed one")

    print("\nAny trace in either format — including one extracted from the\n"
          "real chain — runs through the identical pipeline.")


if __name__ == "__main__":
    main()
