#!/usr/bin/env python
"""Quickstart: generate a history, partition it, read the metrics.

This walks the public API end to end in under a minute:

1. generate a synthetic Ethereum-like history (full substrate: EVM-lite
   executes every transaction);
2. replay it through two partitioning methods (HASH and METIS) with two
   shards;
3. compare edge-cut, balance and moves — the paper's three metrics.

Run:  python examples/quickstart.py
"""

from repro import WorkloadConfig, generate_history, make_method, replay_method
from repro.graph.snapshot import HOUR


def main() -> None:
    # 1. a small but full-timeline history (≈6k transactions, 886 days)
    print("generating synthetic history (scale: small)...")
    history = generate_history(WorkloadConfig.small(seed=7))
    graph = history.graph
    print(
        f"  {history.num_transactions} transactions -> "
        f"{graph.num_vertices} vertices, {graph.num_edges} edges, "
        f"{history.builder.num_interactions} interactions"
    )

    # 2. replay through two methods
    for name in ("hash", "metis"):
        method = make_method(name, k=2, seed=1)
        result = replay_method(history.builder.log, method, metric_window=24 * HOUR)

        # 3. read the metrics
        active = [p for p in result.series.points if p.interactions > 0]
        mean_cut = sum(p.dynamic_edge_cut for p in active) / len(active)
        mean_bal = sum(p.dynamic_balance for p in active) / len(active)
        print(
            f"  {name:6s}  dynamic edge-cut={mean_cut:.3f}  "
            f"dynamic balance={mean_bal:.3f}  "
            f"moves={result.total_moves}  repartitions={len(result.events)}"
        )

    print(
        "\nExpected shape (paper Fig. 3): METIS cuts far fewer edges than\n"
        "hashing, but hashing never moves a vertex and stays balanced."
    )


if __name__ == "__main__":
    main()
