#!/usr/bin/env python
"""Quickstart: declare an experiment, run it, read the metrics.

This walks the public API end to end in under a minute:

1. declare the experiment as data: an :class:`ExperimentSpec` naming
   the workload (scale + seed), the methods (HASH and METIS) and the
   shard count;
2. run it — ``run_experiment`` generates the synthetic Ethereum-like
   history (full substrate: EVM-lite executes every transaction) and
   replays all methods in one shared pass over the log;
3. read edge-cut, balance and moves — the paper's three metrics —
   from the returned :class:`ResultSet`.

Run:  python examples/quickstart.py
"""

import os

from repro import ExperimentSpec, run_experiment

#: Workload scale; override with REPRO_QUICKSTART_SCALE=tiny for smoke runs.
SCALE = os.environ.get("REPRO_QUICKSTART_SCALE", "small")


def main() -> None:
    # 1. the whole experiment, as a value (small scale: ≈6k
    #    transactions over the full 886-day timeline)
    spec = ExperimentSpec(
        scale=SCALE,
        workload_seed=7,
        methods=("hash", "metis"),
        ks=(2,),
        window_hours=24.0,
    )
    print(f"running {len(spec.cells())} cells on workload {spec.workload_id()}...")

    # 2. one shared pass over the generated history for both methods
    results = run_experiment(spec)

    # 3. read the metrics
    for cell in results:
        print(
            f"  {cell.method:6s}  "
            f"dynamic edge-cut={cell.mean('dynamic_edge_cut'):.3f}  "
            f"dynamic balance={cell.mean('dynamic_balance'):.3f}  "
            f"moves={cell.total_moves}  repartitions={len(cell.events)}"
        )

    print(
        "\nExpected shape (paper Fig. 3): METIS cuts far fewer edges than\n"
        "hashing, but hashing never moves a vertex and stays balanced."
    )


if __name__ == "__main__":
    main()
