#!/usr/bin/env python
"""Declarative sweeps: parameterised methods, parallel fan-out, resume.

The experiment API treats a whole comparison grid as data:

1. methods are strings with first-class parameters — the grid below
   compares cold METIS against its warm-started variant and two Fennel
   configurations, no hand-wiring;
2. ``run_experiment(spec, jobs=2)`` fans independent grid cells over a
   process pool (each worker shares one log stream for its cells);
3. a :class:`ResultStore` makes the sweep resumable: interrupt the
   run, run the script again, and completed cells load from disk
   instead of recomputing;
4. the returned :class:`ResultSet` serializes to JSON and round-trips
   (``ResultSet.loads(rs.dumps()) == rs``), so results travel to
   notebooks/plots without the library.

Run:  python examples/experiment_sweep.py
"""

import pathlib
import tempfile

from repro import ExperimentSpec, ResultSet, ResultStore, run_experiment


def main() -> None:
    spec = ExperimentSpec(
        scale="tiny",
        workload_seed=42,
        methods=(
            "metis",
            "metis?warm=true",          # PR 2's warm-started repartitioning
            "fennel",
            "fennel?gamma=3.0",         # heavier load penalty
        ),
        ks=(2, 4),
        window_hours=24.0,
    )
    print(f"grid: {len(spec.cells())} cells on workload {spec.workload_id()}")

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(pathlib.Path(tmp) / "results")

        # first run computes every cell (two worker processes)
        rs = run_experiment(spec, jobs=2, store=store)
        for cell in rs:
            print(
                f"  {cell.method:18s} k={cell.k}  "
                f"cut={cell.mean('dynamic_edge_cut'):.3f}  "
                f"moves={cell.total_moves}"
            )

        # a second run resumes: every cell loads from the store
        outcomes = []
        resumed = run_experiment(
            spec, store=store,
            progress=lambda key, outcome: outcomes.append(outcome),
        )
        assert resumed == rs
        print(f"resume: {outcomes.count('loaded')}/{len(outcomes)} cells loaded")

        # results survive JSON (ship them anywhere)
        assert ResultSet.loads(rs.dumps()) == rs
        print(f"serialized resultset: {len(rs.dumps())} bytes of JSON")


if __name__ == "__main__":
    main()
