"""Property-based tests for the multilevel partitioner."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metis.graph import CSRGraph
from repro.metis.kway import kway_partition


@st.composite
def weighted_graphs(draw, max_n=20):
    n = draw(st.integers(min_value=4, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=n - 1,
                 max_size=min(len(possible), 3 * n), unique=True)
    )
    weights = draw(st.lists(st.integers(min_value=1, max_value=20),
                            min_size=len(edges), max_size=len(edges)))
    vwgt = draw(st.lists(st.integers(min_value=1, max_value=4),
                         min_size=n, max_size=n))
    return CSRGraph.from_edges(
        n, [(u, v, w) for (u, v), w in zip(edges, weights)], vwgt=vwgt
    )


@given(weighted_graphs(), st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=50, deadline=None)
def test_partition_is_total_and_valid(g, k, seed):
    part = kway_partition(g, k, random.Random(seed))
    assert len(part) == g.num_vertices
    assert all(0 <= p < k for p in part)


@given(weighted_graphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=50, deadline=None)
def test_cut_never_exceeds_total_weight(g, seed):
    part = kway_partition(g, 2, random.Random(seed))
    assert 0 <= g.cut_of(part) <= g.total_edge_weight


@given(weighted_graphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_bisection_weight_within_tolerance(g, seed):
    """On tiny graphs with lumpy vertex weights perfect balance can be
    unattainable, but the heavy side can never exceed target by more
    than the heaviest single vertex plus the ub slack."""
    part = kway_partition(g, 2, random.Random(seed), ubfactor=1.05)
    target = g.total_vertex_weight / 2.0
    heaviest = max(g.vwgt)
    w = g.part_weights(part, 2)
    assert max(w) <= 1.05 * target + heaviest


@given(weighted_graphs())
@settings(max_examples=30, deadline=None)
def test_deterministic_under_same_seed(g):
    a = kway_partition(g, 3, random.Random(7))
    b = kway_partition(g, 3, random.Random(7))
    assert a == b


@given(weighted_graphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_no_part_empty_when_k_le_n(g, seed):
    k = min(3, g.num_vertices)
    part = kway_partition(g, k, random.Random(seed))
    assert len(set(part)) == k
