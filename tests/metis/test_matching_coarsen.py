"""Unit + property tests for matching and coarsening."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metis.coarsen import coarsen, contract, project_partition
from repro.metis.graph import CSRGraph
from repro.metis.matching import (
    heavy_edge_matching,
    matching_size,
    random_matching,
    validate_matching,
)

# random undirected graph strategy in CSR form
@st.composite
def csr_graphs(draw, max_n=14):
    n = draw(st.integers(min_value=2, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=len(possible), unique=True)
    )
    weights = draw(
        st.lists(st.integers(min_value=1, max_value=9),
                 min_size=len(edges), max_size=len(edges))
    )
    vwgt = draw(
        st.lists(st.integers(min_value=1, max_value=5), min_size=n, max_size=n)
    )
    return CSRGraph.from_edges(
        n, [(u, v, w) for (u, v), w in zip(edges, weights)], vwgt=vwgt
    )


def path4():
    return CSRGraph.from_edges(4, [(0, 1, 1), (1, 2, 10), (2, 3, 1)])


class TestMatching:
    def test_hem_prefers_heavy_edge(self):
        # two disjoint pairs: (0,1) light, (2,3) heavy — both always
        # matched, and each vertex's best (only) partner is its pair
        g = CSRGraph.from_edges(4, [(0, 1, 1), (2, 3, 10)])
        for seed in range(5):
            match = heavy_edge_matching(g, random.Random(seed))
            assert validate_matching(g, match)
            assert match[2] == 3 and match[3] == 2

    def test_hem_picks_heaviest_neighbor(self):
        # star with one heavy spoke: if the hub is visited first it must
        # take the heavy neighbor; run all seeds and check the invariant
        g = CSRGraph.from_edges(4, [(0, 1, 1), (0, 2, 9), (0, 3, 1)])
        seen_heavy = False
        for seed in range(10):
            match = heavy_edge_matching(g, random.Random(seed))
            assert validate_matching(g, match)
            if match[0] != 0:
                # whenever the hub matched, a free heaviest neighbor
                # was available at that moment; if 2 was free it wins
                if match[0] == 2:
                    seen_heavy = True
        assert seen_heavy

    def test_rm_valid(self):
        g = path4()
        match = random_matching(g, random.Random(3))
        assert validate_matching(g, match)

    def test_matching_size(self):
        assert matching_size([1, 0, 2]) == 1
        assert matching_size([0, 1, 2]) == 0

    def test_isolated_vertex_self_matched(self):
        g = CSRGraph.from_edges(3, [(0, 1, 1)])
        match = heavy_edge_matching(g, random.Random(0))
        assert match[2] == 2

    @given(csr_graphs(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=40)
    def test_hem_always_valid(self, g, seed):
        match = heavy_edge_matching(g, random.Random(seed))
        assert validate_matching(g, match)

    @given(csr_graphs(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=40)
    def test_rm_always_valid(self, g, seed):
        match = random_matching(g, random.Random(seed))
        assert validate_matching(g, match)


class TestContract:
    def test_pair_merges_weights(self):
        g = path4()
        match = [0, 2, 1, 3]  # match (1,2); 0 and 3 alone
        coarse, f2c = contract(g, match)
        assert coarse.num_vertices == 3
        assert f2c[1] == f2c[2]
        # vertex weights summed
        merged = f2c[1]
        assert coarse.vwgt[merged] == 2

    def test_intra_pair_edge_vanishes(self):
        g = path4()
        coarse, _ = contract(g, [0, 2, 1, 3])
        # the weight-10 edge is inside the contracted pair
        assert coarse.total_edge_weight == 2

    def test_parallel_coarse_edges_merge(self):
        # square 0-1-2-3-0; match (0,1) and (2,3): two coarse vertices
        # connected by the two cross edges -> one edge of weight 2
        g = CSRGraph.from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)])
        coarse, _ = contract(g, [1, 0, 3, 2])
        assert coarse.num_vertices == 2
        assert coarse.num_edges == 1
        assert coarse.total_edge_weight == 2

    @given(csr_graphs(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40)
    def test_contract_conserves_vertex_weight(self, g, seed):
        match = heavy_edge_matching(g, random.Random(seed))
        coarse, _ = contract(g, match)
        assert coarse.total_vertex_weight == g.total_vertex_weight

    @given(csr_graphs(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40)
    def test_contract_never_increases_edge_weight(self, g, seed):
        match = heavy_edge_matching(g, random.Random(seed))
        coarse, _ = contract(g, match)
        assert coarse.total_edge_weight <= g.total_edge_weight


class TestCoarsenLadder:
    def test_ladder_shrinks(self):
        rng = random.Random(0)
        from repro.graph import generators as gen
        from repro.graph.undirected import collapse_to_undirected

        big = CSRGraph.from_undirected(
            collapse_to_undirected(gen.grid_graph(12, 12))
        )
        levels = coarsen(big, rng, coarsen_to=20)
        sizes = [l.graph.num_vertices for l in levels]
        assert sizes[0] == 144
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_ladder_respects_target(self):
        rng = random.Random(1)
        from repro.graph import generators as gen
        from repro.graph.undirected import collapse_to_undirected

        big = CSRGraph.from_undirected(
            collapse_to_undirected(gen.grid_graph(10, 10))
        )
        levels = coarsen(big, rng, coarsen_to=30)
        # every level except the last must be above the target
        for level in levels[:-1]:
            assert level.graph.num_vertices > 30

    def test_star_graph_stagnates_gracefully(self):
        # a star can only halve once per level around the hub; min
        # reduction cutoff must terminate the ladder, not loop forever
        edges = [(0, i, 1) for i in range(1, 60)]
        star = CSRGraph.from_edges(60, edges)
        levels = coarsen(star, random.Random(0), coarsen_to=4, max_levels=50)
        assert len(levels) < 50

    def test_project_partition_round_trip(self):
        g = path4()
        match = [1, 0, 3, 2]
        coarse, f2c = contract(g, match)
        from repro.metis.coarsen import CoarseLevel

        level = CoarseLevel(graph=coarse, fine_to_coarse=f2c)
        fine_part = project_partition(level, [0, 1])
        assert fine_part[0] == fine_part[1]
        assert fine_part[2] == fine_part[3]
        assert fine_part[0] != fine_part[2]
