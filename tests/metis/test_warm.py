"""Warm-started repartitioning: equivalence, properties, columnar CSR.

Covers the PR-2 contracts:

* ``part_graph(warm_start=None)`` is bit-identical to the plain call;
* warm-started results satisfy the same coverage / label-range /
  balance properties as cold ones;
* the ColumnarLog → CSR bridges agree with the legacy
  digraph → collapse → CSR pipeline;
* the coarsening ladder cache preserves the hierarchy prefix.
"""

import random

import pytest

from repro.graph import generators as gen
from repro.graph.builder import Interaction, build_graph
from repro.graph.columnar import ColumnarLog
from repro.graph.undirected import collapse_to_undirected
from repro.metis import ColumnarCSRBuilder, CSRGraph, LadderCache, part_graph
from repro.metis.coarsen import coarsen_warm


def make_log(n_vertices=120, n_rows=1500, seed=0, communities=2):
    """Random time-ordered interaction log with planted communities."""
    rng = random.Random(seed)
    its = []
    per = n_vertices // communities
    for i in range(n_rows):
        c = rng.randrange(communities)
        if rng.random() < 0.9:  # intra-community
            u = c * per + rng.randrange(per)
            v = c * per + rng.randrange(per)
        else:
            u = rng.randrange(n_vertices)
            v = rng.randrange(n_vertices)
        its.append(Interaction(float(i), u, v, tx_id=i))
    return ColumnarLog(its)


def csr_as_dicts(csr):
    """(edge-weight map, vertex-weight map) keyed by original ids."""
    ids = csr.orig_ids if csr.orig_ids is not None else list(range(csr.num_vertices))
    edges = {}
    for v in range(csr.num_vertices):
        for i in range(csr.xadj[v], csr.xadj[v + 1]):
            u = csr.adjncy[i]
            key = (min(ids[v], ids[u]), max(ids[v], ids[u]))
            edges[key] = csr.adjwgt[i]
    return edges, {ids[v]: csr.vwgt[v] for v in range(csr.num_vertices)}


class TestColumnarCSR:
    @pytest.mark.parametrize("weights", ["unit", "activity"])
    def test_matches_digraph_pipeline(self, weights):
        log = make_log()
        g = build_graph(log.to_interactions())
        und = collapse_to_undirected(g, unit_vertex_weights=(weights == "unit"))
        legacy = CSRGraph.from_undirected(und)
        direct = CSRGraph.from_columnar(log, vertex_weights=weights)
        assert csr_as_dicts(legacy) == csr_as_dicts(direct)

    def test_window_range_matches_build_graph(self):
        log = make_log()
        lo, hi = 400, 900
        window_graph = build_graph(log[lo:hi])
        und = collapse_to_undirected(window_graph, unit_vertex_weights=True)
        legacy = CSRGraph.from_undirected(und)
        direct = CSRGraph.from_columnar(log, start=lo, stop=hi)
        assert csr_as_dicts(legacy) == csr_as_dicts(direct)

    def test_self_loops_weight_but_no_edge(self):
        log = ColumnarLog([
            Interaction(0.0, 1, 1, tx_id=0),
            Interaction(1.0, 1, 2, tx_id=1),
        ])
        csr = CSRGraph.from_columnar(log, vertex_weights="activity")
        edges, vw = csr_as_dicts(csr)
        assert edges == {(1, 2): 1}
        assert vw == {1: 2, 2: 1}  # self-interaction counts its endpoint once

    def test_builder_incremental_equals_one_shot(self):
        log = make_log()
        builder = ColumnarCSRBuilder(log)
        builder.advance(300)
        builder.advance(1000)
        builder.advance()
        inc = builder.snapshot()
        full = CSRGraph.from_columnar(log)
        assert inc.xadj == full.xadj
        assert inc.adjncy == full.adjncy
        assert inc.adjwgt == full.adjwgt
        assert inc.vwgt == full.vwgt
        assert inc.orig_ids == full.orig_ids

    def test_builder_snapshots_are_prefix_stable(self):
        log = make_log()
        builder = ColumnarCSRBuilder(log)
        builder.advance(500)
        early = builder.snapshot()
        builder.advance()
        late = builder.snapshot()
        assert late.orig_ids[: early.num_vertices] == early.orig_ids

    def test_builder_rejects_rewind(self):
        log = make_log()
        builder = ColumnarCSRBuilder(log)
        builder.advance(500)
        with pytest.raises(ValueError, match="rewind"):
            builder.advance(100)

    def test_builder_rejects_overrun_without_partial_fold(self):
        """Regression: advancing past the log end must fail *before*
        mutating the accumulators, or a caught-and-retried advance
        would double-count the half-folded rows."""
        log = make_log()
        builder = ColumnarCSRBuilder(log)
        builder.advance(500)
        with pytest.raises(ValueError, match="beyond log length"):
            builder.advance(len(log) + 10)
        builder.advance()  # retry to the true end must not double-count
        assert builder.snapshot().adjwgt == CSRGraph.from_columnar(log).adjwgt

    def test_invalid_vertex_weights_names_value(self):
        from repro.errors import PartitionError

        log = make_log(n_rows=10)
        # same error type as part_graph's own vertex_weights validation
        with pytest.raises(PartitionError, match="bogus"):
            CSRGraph.from_columnar(log, vertex_weights="bogus")
        with pytest.raises(PartitionError, match="bogus"):
            ColumnarCSRBuilder(log).snapshot(vertex_weights="bogus")


class TestWarmPartGraph:
    def test_warm_none_bit_identical(self):
        g = gen.powerlaw_graph(300, 2, random.Random(1))
        plain = part_graph(g, 4, seed=9)
        explicit = part_graph(g, 4, seed=9, warm_start=None)
        assert plain.assignment == explicit.assignment
        assert plain.edge_cut == explicit.edge_cut
        assert plain.part_weights == explicit.part_weights
        assert not plain.warm and not explicit.warm

    def test_warm_covers_all_vertices_in_range(self):
        log = make_log()
        prev = part_graph(CSRGraph.from_columnar(log, 0, 1000), 4, seed=3)
        grown = CSRGraph.from_columnar(log)
        res = part_graph(grown, 4, seed=3, warm_start=prev.assignment)
        assert res.warm
        assert set(res.assignment) == set(grown.orig_ids)
        assert all(0 <= p < 4 for p in res.assignment.values())
        assert len(res.part_weights) == 4
        assert sum(res.part_weights) == grown.total_vertex_weight

    def test_warm_respects_balance(self):
        log = make_log(n_vertices=200, n_rows=3000)
        prev = part_graph(CSRGraph.from_columnar(log, 0, 2000), 4, seed=3)
        grown = CSRGraph.from_columnar(log)
        res = part_graph(grown, 4, seed=3, warm_start=prev.assignment)
        assert res.warm
        assert res.balance <= 1.30  # same bound the cold contract tests use

    def test_warm_quality_near_cold(self):
        log = make_log(n_vertices=200, n_rows=3000, communities=4)
        prev = part_graph(CSRGraph.from_columnar(log, 0, 2200), 4, seed=3)
        grown = CSRGraph.from_columnar(log)
        warm = part_graph(grown, 4, seed=3, warm_start=prev.assignment)
        cold = part_graph(grown, 4, seed=3)
        assert warm.warm
        assert warm.edge_cut <= 1.5 * cold.edge_cut

    def test_warm_inherits_labels(self):
        """Mild growth: the overwhelming majority of previously assigned
        vertices keep their shard — the whole point of warm starting
        (and the behaviour cold METIS's free relabeling lacks)."""
        log = make_log(n_vertices=200, n_rows=3000, communities=4)
        prev = part_graph(CSRGraph.from_columnar(log, 0, 2800), 4, seed=3)
        grown = CSRGraph.from_columnar(log)
        warm = part_graph(grown, 4, seed=3, warm_start=prev.assignment)
        assert warm.warm
        moved = sum(
            1 for v, p in prev.assignment.items() if warm.assignment[v] != p
        )
        assert moved <= 0.2 * len(prev.assignment)

    def test_warm_falls_back_cold_on_heavy_growth(self):
        log = make_log()
        grown = CSRGraph.from_columnar(log)
        tiny = {grown.orig_ids[0]: 1}  # covers ~nothing
        res = part_graph(grown, 4, seed=3, warm_start=tiny)
        cold = part_graph(grown, 4, seed=3)
        assert not res.warm
        assert res.assignment == cold.assignment  # fallback is the cold path
        assert res.edge_cut == cold.edge_cut

    def test_warm_ignores_out_of_range_labels(self):
        log = make_log()
        prev = part_graph(CSRGraph.from_columnar(log, 0, 1200), 4, seed=3)
        bad = {v: p + 100 for v, p in prev.assignment.items()}
        grown = CSRGraph.from_columnar(log)
        res = part_graph(grown, 4, seed=3, warm_start=bad)
        assert not res.warm  # nothing usable -> cold
        assert set(res.assignment) == set(grown.orig_ids)

    def test_warm_k1_zero_cut(self):
        log = make_log(n_rows=200)
        csr = CSRGraph.from_columnar(log)
        res = part_graph(csr, 1, seed=0, warm_start={csr.orig_ids[0]: 0})
        assert res.edge_cut == 0
        assert set(res.assignment.values()) == {0}
        assert len(res.part_weights) == 1

    def test_warm_deterministic(self):
        log = make_log()
        prev = part_graph(CSRGraph.from_columnar(log, 0, 1000), 4, seed=3)
        grown = CSRGraph.from_columnar(log)
        a = part_graph(grown, 4, seed=3, warm_start=prev.assignment)
        b = part_graph(grown, 4, seed=3, warm_start=prev.assignment)
        assert a.assignment == b.assignment
        assert a.edge_cut == b.edge_cut


class TestLadderCache:
    def test_cold_build_populates_cache(self):
        g = gen.powerlaw_graph(400, 3, random.Random(7))
        und = collapse_to_undirected(g)
        csr = CSRGraph.from_undirected(und)
        cache = LadderCache()
        levels = coarsen_warm(csr, random.Random(0), cache, coarsen_to=48)
        assert cache.num_vertices == csr.num_vertices
        assert len(cache.matchings) == len(levels) - 1
        assert len(cache.matchings[0]) == csr.num_vertices

    def test_extension_preserves_hierarchy_prefix(self):
        log = make_log(n_vertices=200, n_rows=3000)
        small = CSRGraph.from_columnar(log, 0, 2000)
        grown = CSRGraph.from_columnar(log)
        assert grown.num_vertices >= small.num_vertices

        cache = LadderCache()
        old_levels = coarsen_warm(small, random.Random(0), cache, coarsen_to=32)
        old_maps = [list(lv.fine_to_coarse) for lv in old_levels[1:]]
        old_depth = len(old_maps)

        levels = coarsen_warm(grown, random.Random(0), cache, coarsen_to=32)
        # the old fine-vertex prefix projects to the same coarse ids
        for rung in range(min(old_depth, len(levels) - 1)):
            new_map = levels[rung + 1].fine_to_coarse
            old_map = old_maps[rung]
            assert new_map[: len(old_map)] == old_map

    def test_part_graph_with_cache_valid_across_growth(self):
        log = make_log(n_vertices=200, n_rows=3000)
        cache = LadderCache()
        for stop in (1500, 2200, 3000):
            csr = CSRGraph.from_columnar(log, 0, stop)
            res = part_graph(csr, 4, seed=5, warm_cache=cache)
            assert set(res.assignment) == set(csr.orig_ids)
            assert all(0 <= p < 4 for p in res.assignment.values())
            assert res.balance <= 1.30
