"""Tests for the part_graph entry point: quality, determinism, contracts."""

import random

import pytest

from repro.errors import PartitionError
from repro.graph import generators as gen
from repro.graph.undirected import collapse_to_undirected
from repro.metis import CSRGraph, part_graph


class TestQuality:
    """part_graph must recover known-good partitions — the property the
    paper's METIS usage depends on."""

    def test_ring_optimal(self):
        res = part_graph(gen.ring_graph(100), 2, seed=1)
        assert res.edge_cut == 2

    def test_grid_near_optimal(self):
        res = part_graph(gen.grid_graph(16, 16), 2, seed=1)
        assert res.edge_cut <= 1.5 * 16

    def test_planted_communities_recovered(self):
        rng = random.Random(4)
        g = gen.weighted_communities(4, 25, intra_weight=10, inter_weight=1, rng=rng)
        res = part_graph(g, 4, seed=2)
        planted = gen.planted_assignment(4, 25)
        # each community must land (almost) wholly in one shard
        from collections import Counter

        for c in range(4):
            shards = Counter(
                res.assignment[v] for v, comm in planted.items() if comm == c
            )
            majority = shards.most_common(1)[0][1]
            assert majority >= 23

    def test_disjoint_cliques_zero_cut(self):
        g = gen.disjoint_cliques(4, 10, bridge_weight=0)
        res = part_graph(g, 4, seed=0)
        assert res.edge_cut == 0

    def test_beats_random_on_powerlaw(self):
        rng = random.Random(7)
        g = gen.powerlaw_graph(400, 3, rng)
        res = part_graph(g, 4, seed=1)
        und = collapse_to_undirected(g)
        rng2 = random.Random(8)
        rand_assign = {v: rng2.randrange(4) for v in und.vertices()}
        rand_cut = sum(
            w for u, v, w in und.edges() if rand_assign[u] != rand_assign[v]
        )
        assert res.edge_cut < 0.8 * rand_cut

    def test_spectral_initial_works(self):
        g = gen.grid_graph(10, 10)
        res = part_graph(g, 2, seed=1, initial="spectral")
        assert res.edge_cut <= 2 * 10


class TestContracts:
    def test_partition_is_total_and_in_range(self):
        g = gen.powerlaw_graph(200, 2, random.Random(0))
        res = part_graph(g, 8, seed=3)
        assert set(res.assignment) == set(g.vertices())
        assert all(0 <= s < 8 for s in res.assignment.values())

    def test_balance_close_to_one(self):
        g = gen.grid_graph(12, 12)
        res = part_graph(g, 4, seed=1)
        assert res.balance <= 1.30

    def test_part_weights_sum(self):
        g = gen.ring_graph(50)
        res = part_graph(g, 2, seed=1)
        und = collapse_to_undirected(g)
        assert sum(res.part_weights) == und.total_vertex_weight

    def test_reported_cut_matches_assignment(self):
        g = gen.powerlaw_graph(150, 2, random.Random(2))
        res = part_graph(g, 4, seed=5)
        und = collapse_to_undirected(g)
        cut = sum(
            w for u, v, w in und.edges()
            if res.assignment[u] != res.assignment[v]
        )
        assert cut == res.edge_cut

    def test_determinism(self):
        g = gen.powerlaw_graph(300, 2, random.Random(1))
        a = part_graph(g, 4, seed=9)
        b = part_graph(g, 4, seed=9)
        assert a.assignment == b.assignment
        assert a.edge_cut == b.edge_cut

    def test_seed_matters(self):
        g = gen.powerlaw_graph(300, 2, random.Random(1))
        a = part_graph(g, 4, seed=1)
        b = part_graph(g, 4, seed=2)
        assert a.assignment != b.assignment

    def test_k1(self):
        g = gen.ring_graph(10)
        res = part_graph(g, 1, seed=0)
        assert res.edge_cut == 0
        assert set(res.assignment.values()) == {0}

    def test_k1_well_formed_result(self):
        """Regression: k=1 must return a complete zero-cut result with
        part_weights of length exactly 1."""
        g = gen.ring_graph(10)
        res = part_graph(g, 1, seed=0)
        assert len(res.part_weights) == 1
        und = collapse_to_undirected(g)
        assert res.part_weights == [und.total_vertex_weight]
        assert res.balance == 1.0

    def test_k_greater_than_n(self):
        g = gen.path_graph(3)
        res = part_graph(g, 8, seed=0)
        assert len(res.assignment) == 3

    def test_empty_parts_keep_part_weights_length_k(self):
        """Regression: with k > n some parts are necessarily empty —
        part_weights must still have length k, sum to the total vertex
        weight, and balance must reflect the overweight parts."""
        g = gen.path_graph(3)
        res = part_graph(g, 8, seed=0)
        assert len(res.part_weights) == 8
        und = collapse_to_undirected(g)
        assert sum(res.part_weights) == und.total_vertex_weight
        assert res.part_weights.count(0) >= 5  # at least 5 empty parts
        # true imbalance: max * k / total — must not be understated
        expected = max(res.part_weights) * 8 / sum(res.part_weights)
        assert res.balance == expected
        assert res.balance >= 8 / 3  # a nonempty part holds >= 1/3 of weight

    def test_empty_graph_part_weights_length_k(self):
        from repro.graph.digraph import WeightedDiGraph

        res = part_graph(WeightedDiGraph(), 4, seed=0)
        assert res.part_weights == [0, 0, 0, 0]
        assert res.balance == 1.0

    def test_part_weights_length_mismatch_rejected(self):
        from repro.metis import PartGraphResult

        with pytest.raises(PartitionError, match="length k=3"):
            PartGraphResult(assignment={}, k=3, edge_cut=0, part_weights=[0, 0])

    def test_empty_graph(self):
        from repro.graph.digraph import WeightedDiGraph

        res = part_graph(WeightedDiGraph(), 4, seed=0)
        assert res.assignment == {}
        assert res.edge_cut == 0

    def test_invalid_k(self):
        with pytest.raises(PartitionError):
            part_graph(gen.ring_graph(5), 0)

    def test_invalid_graph_type(self):
        with pytest.raises(PartitionError):
            part_graph("not a graph", 2)  # type: ignore[arg-type]

    def test_invalid_vertex_weights_mode(self):
        with pytest.raises(PartitionError):
            part_graph(gen.ring_graph(5), 2, vertex_weights="bogus")

    def test_invalid_vertex_weights_message_names_value(self):
        """Regression: the error must echo the rejected value (the
        original f-string had no placeholder)."""
        with pytest.raises(PartitionError, match="'bogus'"):
            part_graph(gen.ring_graph(5), 2, vertex_weights="bogus")

    def test_invalid_scheme_message_names_value(self):
        with pytest.raises(PartitionError, match="'zigzag'"):
            part_graph(gen.ring_graph(5), 2, scheme="zigzag")

    def test_csr_input_accepted(self):
        csr = CSRGraph.from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)])
        res = part_graph(csr, 2, seed=0)
        assert set(res.assignment) == {0, 1, 2, 3}

    def test_unit_vs_activity_vertex_weights(self):
        """The paper's pitfall in miniature: with unit weights a hot
        community can land wholly in one shard; with activity weights
        the partitioner must split the load."""
        from repro.graph.builder import Interaction, build_graph

        stream = []
        ts = 0.0
        # 10 hot vertices interacting heavily + 10 cold hanging off them
        for i in range(200):
            stream.append(Interaction(ts + i, i % 10, (i + 1) % 10, tx_id=i))
        for i in range(10):
            stream.append(Interaction(300.0 + i, i, 10 + i, tx_id=900 + i))
        g = build_graph(stream)

        unit = part_graph(g, 2, seed=1, vertex_weights="unit")
        act = part_graph(g, 2, seed=1, vertex_weights="activity")

        def hot_split(assignment):
            shards = {assignment[v] for v in range(10)}
            return len(shards)

        # activity weighting must split the hot core; unit weighting is
        # free to cluster it (cut-minimal)
        assert hot_split(act.assignment) == 2
