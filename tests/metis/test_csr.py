"""Unit tests for the CSR work-graph."""

import pytest

from repro.graph import generators as gen
from repro.graph.undirected import collapse_to_undirected
from repro.metis.graph import CSRGraph


def triangle():
    return CSRGraph.from_edges(3, [(0, 1, 2), (1, 2, 3), (0, 2, 4)])


class TestFromEdges:
    def test_basic_shape(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.total_edge_weight == 9

    def test_adjacency_symmetric(self):
        g = triangle()
        assert dict(g.neighbors(0)) == {1: 2, 2: 4}
        assert dict(g.neighbors(1)) == {0: 2, 2: 3}

    def test_parallel_edges_merge(self):
        g = CSRGraph.from_edges(2, [(0, 1, 1), (1, 0, 2)])
        assert g.num_edges == 1
        assert dict(g.neighbors(0)) == {1: 3}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            CSRGraph.from_edges(2, [(0, 0, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph.from_edges(2, [(0, 5, 1)])

    def test_default_unit_vertex_weights(self):
        g = triangle()
        assert g.vwgt == [1, 1, 1]
        assert g.total_vertex_weight == 3

    def test_vwgt_length_checked(self):
        with pytest.raises(ValueError, match="vwgt length"):
            CSRGraph.from_edges(3, [(0, 1, 1)], vwgt=[1, 2])

    def test_degrees(self):
        g = triangle()
        assert g.degree(0) == 2
        assert g.weighted_degree(0) == 6


class TestFromUndirected:
    def test_round_trip_weights(self):
        dg = gen.weighted_communities(2, 3, 5, 1, __import__("random").Random(0))
        und = collapse_to_undirected(dg)
        csr = CSRGraph.from_undirected(und)
        assert csr.num_vertices == und.num_vertices
        assert csr.num_edges == und.num_edges
        assert csr.total_edge_weight == und.total_edge_weight

    def test_orig_ids_map_back(self):
        dg = gen.ring_graph(5)
        und = collapse_to_undirected(dg)
        csr = CSRGraph.from_undirected(und)
        assert sorted(csr.orig_ids) == [0, 1, 2, 3, 4]


class TestCutAndWeights:
    def test_cut_of_known_partition(self):
        g = triangle()
        assert g.cut_of([0, 0, 1]) == 3 + 4   # edges (1,2) and (0,2)
        assert g.cut_of([0, 0, 0]) == 0
        assert g.cut_of([0, 1, 2]) == 9

    def test_part_weights(self):
        g = CSRGraph.from_edges(3, [(0, 1, 1)], vwgt=[5, 7, 9])
        assert g.part_weights([0, 1, 0], 2) == [14, 7]
