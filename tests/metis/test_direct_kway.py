"""Tests for the direct (kmetis-style) k-way scheme."""

import random
import time

import pytest

from repro.errors import PartitionError
from repro.graph import generators as gen
from repro.graph.undirected import collapse_to_undirected
from repro.metis import part_graph
from repro.metis.graph import CSRGraph
from repro.metis.kway import direct_kway_partition


def csr_of(digraph):
    return CSRGraph.from_undirected(collapse_to_undirected(digraph))


class TestDirectKway:
    def test_valid_partition(self):
        g = csr_of(gen.grid_graph(12, 12))
        part = direct_kway_partition(g, 4, random.Random(0))
        assert len(part) == 144
        assert set(part) == {0, 1, 2, 3}

    def test_k1_and_empty(self):
        g = csr_of(gen.ring_graph(10))
        assert direct_kway_partition(g, 1, random.Random(0)) == [0] * 10
        empty = CSRGraph(xadj=[0], adjncy=[], adjwgt=[], vwgt=[])
        assert direct_kway_partition(empty, 4, random.Random(0)) == []

    def test_invalid_k(self):
        g = csr_of(gen.ring_graph(10))
        with pytest.raises(ValueError):
            direct_kway_partition(g, 0, random.Random(0))

    def test_balance_honoured(self):
        g = csr_of(gen.powerlaw_graph(600, 3, random.Random(1)))
        part = direct_kway_partition(g, 8, random.Random(2))
        weights = g.part_weights(part, 8)
        target = g.total_vertex_weight / 8.0
        heaviest = max(g.vwgt)
        assert max(weights) <= 1.06 * target + heaviest

    def test_recovers_communities(self):
        dg = gen.weighted_communities(4, 25, 10, 1, random.Random(3))
        g = csr_of(dg)
        part = direct_kway_partition(g, 4, random.Random(1))
        cut = g.cut_of(part)
        assert cut <= 25  # community bridges only (few inter edges of w=1)


class TestSchemeParameter:
    def test_direct_scheme_via_api(self):
        g = gen.grid_graph(10, 10)
        res = part_graph(g, 4, seed=1, scheme="direct")
        assert set(res.assignment.values()) == {0, 1, 2, 3}
        assert res.balance <= 1.35

    def test_bad_scheme_rejected(self):
        with pytest.raises(PartitionError, match="scheme"):
            part_graph(gen.ring_graph(5), 2, scheme="quantum")

    def test_quality_comparable_to_recursive(self):
        g = gen.powerlaw_graph(800, 3, random.Random(4))
        rec = part_graph(g, 8, seed=1, scheme="recursive")
        direct = part_graph(g, 8, seed=1, scheme="direct")
        # direct k-way may lose a little cut quality, but not a lot
        assert direct.edge_cut <= 1.35 * rec.edge_cut

    def test_direct_faster_for_large_k(self):
        g = gen.powerlaw_graph(1200, 3, random.Random(5))
        t0 = time.perf_counter()
        part_graph(g, 16, seed=1, scheme="recursive")
        recursive_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        part_graph(g, 16, seed=1, scheme="direct")
        direct_time = time.perf_counter() - t0
        # one coarsening ladder vs a tree of them: expect a clear win,
        # asserted loosely to stay robust on slow CI machines
        assert direct_time < recursive_time

    def test_deterministic(self):
        g = gen.powerlaw_graph(300, 2, random.Random(6))
        a = part_graph(g, 4, seed=9, scheme="direct")
        b = part_graph(g, 4, seed=9, scheme="direct")
        assert a.assignment == b.assignment
