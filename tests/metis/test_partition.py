"""Tests for initial bisection, FM refinement and the k-way pipeline."""

import random

import pytest

from repro.graph import generators as gen
from repro.graph.undirected import collapse_to_undirected
from repro.metis.graph import CSRGraph
from repro.metis.initial import greedy_graph_growing, spectral_bisection
from repro.metis.kway import kway_partition, recursive_bisection
from repro.metis.refine import fm_refine, kway_refine


def csr_of(digraph):
    return CSRGraph.from_undirected(collapse_to_undirected(digraph))


class TestInitial:
    def test_ggg_covers_and_balances(self):
        g = csr_of(gen.grid_graph(8, 8))
        part = greedy_graph_growing(g, g.total_vertex_weight / 2, random.Random(0))
        w0 = sum(g.vwgt[v] for v in range(g.num_vertices) if part[v] == 0)
        assert 0.35 * g.total_vertex_weight <= w0 <= 0.65 * g.total_vertex_weight

    def test_ggg_handles_disconnected(self):
        g = csr_of(gen.disjoint_cliques(2, 6, bridge_weight=0))
        part = greedy_graph_growing(g, g.total_vertex_weight / 2, random.Random(0))
        assert set(part) == {0, 1}

    def test_spectral_separates_communities(self):
        dg = gen.weighted_communities(2, 10, 10, 1, random.Random(2))
        g = csr_of(dg)
        part = spectral_bisection(g, g.total_vertex_weight / 2)
        cut = g.cut_of(part)
        assert cut <= 4  # only the few inter-community bridges

    def test_spectral_tiny_graph(self):
        g = CSRGraph.from_edges(2, [(0, 1, 1)])
        assert spectral_bisection(g, 1.0) == [0, 0]


class TestFMRefine:
    def test_fm_improves_bad_partition(self):
        g = csr_of(gen.grid_graph(6, 6))
        rng = random.Random(0)
        # alternating partition: terrible cut
        part = [v % 2 for v in range(g.num_vertices)]
        before = g.cut_of(part)
        total = float(g.total_vertex_weight)
        after = fm_refine(g, part, (total / 2, total / 2), rng=rng)
        assert after < before
        assert after == g.cut_of(part)

    def test_fm_respects_balance(self):
        g = csr_of(gen.grid_graph(6, 6))
        part = [v % 2 for v in range(g.num_vertices)]
        total = float(g.total_vertex_weight)
        fm_refine(g, part, (total / 2, total / 2), ubfactor=1.05,
                  rng=random.Random(0))
        w = g.part_weights(part, 2)
        assert max(w) <= 1.06 * total / 2

    def test_fm_leaves_optimal_alone(self):
        # bridged cliques: the ring of bridges gives 2 directed bridge
        # edges that collapse to one undirected edge of weight 2
        g = csr_of(gen.disjoint_cliques(2, 5, bridge_weight=1))
        part = [0] * 5 + [1] * 5
        before = g.cut_of(part)
        total = float(g.total_vertex_weight)
        after = fm_refine(g, part, (total / 2, total / 2), rng=random.Random(0))
        assert after == before == 2


class TestKway:
    def test_recursive_bisection_labels(self):
        g = csr_of(gen.grid_graph(6, 6))
        total = float(g.total_vertex_weight)
        part = recursive_bisection(g, 4, [total / 4] * 4, random.Random(0))
        assert set(part) == {0, 1, 2, 3}

    def test_odd_k(self):
        g = csr_of(gen.grid_graph(9, 9))
        total = float(g.total_vertex_weight)
        part = recursive_bisection(g, 3, [total / 3] * 3, random.Random(0))
        counts = [part.count(p) for p in range(3)]
        assert min(counts) > 0.2 * (81 / 3)

    def test_k1(self):
        g = csr_of(gen.ring_graph(10))
        assert recursive_bisection(g, 1, [10.0], random.Random(0)) == [0] * 10

    def test_bad_targets_rejected(self):
        g = csr_of(gen.ring_graph(10))
        with pytest.raises(ValueError, match="targets"):
            recursive_bisection(g, 3, [1.0, 2.0], random.Random(0))

    def test_kway_partition_defaults(self):
        g = csr_of(gen.grid_graph(8, 8))
        part = kway_partition(g, 4, random.Random(0))
        w = g.part_weights(part, 4)
        assert max(w) <= 1.25 * 64 / 4  # refine may add a little slack

    def test_kway_refine_no_empty_parts(self):
        g = csr_of(gen.grid_graph(6, 6))
        part = kway_partition(g, 4, random.Random(1))
        targets = [g.total_vertex_weight / 4.0] * 4
        kway_refine(g, part, 4, targets)
        assert set(part) == {0, 1, 2, 3}

    def test_kway_refine_improves_or_keeps_cut(self):
        g = csr_of(gen.grid_graph(8, 8))
        rng = random.Random(2)
        part = [rng.randrange(4) for _ in range(g.num_vertices)]
        before = g.cut_of(part)
        targets = [g.total_vertex_weight / 4.0] * 4
        after = kway_refine(g, part, 4, targets, ubfactor=1.3)
        assert after <= before
        assert after == g.cut_of(part)
