"""Pinned golden digests of the refinement path.

The digests below were captured from the *pre-batching* implementations
(per-vertex dict/heap loops) immediately before the kernel rewrite;
the rewritten path must keep reproducing them bit-for-bit under every
backend.  They are deliberately brittle: any change to refinement
results — cold recursive/direct METIS, warm-started repartitioning, or
the raw refine functions — flips a digest and must be a conscious,
documented decision (re-capture with this file's helpers).
"""

import hashlib
import json
import random

import pytest

from repro import kernels
from repro.graph import generators as gen
from repro.graph.undirected import collapse_to_undirected
from repro.metis.api import part_graph
from repro.metis.graph import CSRGraph
from repro.metis.refine import (
    boundary_kway_refine,
    fm_refine,
    kway_refine,
    rebalance_kway,
)

#: sha256 prefixes captured from the pre-rewrite implementations
REFINE_DIGEST = "cc431a0ab81341c2"
PART_GRAPH_DIGEST = "e19a1e424d96b43e"


def _h(obj):
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode()).hexdigest()[:16]


def _rand_graph(seed, n=40, m=90):
    rng = random.Random(seed)
    edges = {}
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        edges[key] = edges.get(key, 0) + rng.randint(1, 5)
    vwgt = [rng.randint(1, 9) for _ in range(n)]
    return CSRGraph.from_edges(n, [(u, v, w) for (u, v), w in edges.items()],
                               vwgt=vwgt)


@pytest.mark.parametrize("backend", kernels.available_backends())
def test_refine_functions_match_pre_rewrite_digest(backend):
    ref = {}
    with kernels.using_backend(backend):
        for seed in range(12):
            g = _rand_graph(seed)
            n = g.num_vertices
            rng = random.Random(seed)
            total = float(g.total_vertex_weight)

            part = [rng.randrange(2) for _ in range(n)]
            cut = fm_refine(g, part, (total / 2, total / 2),
                            rng=random.Random(seed))
            ref[f"fm_{seed}"] = (cut, list(part))

            for k in (3, 4):
                targets = [total / k] * k
                part = [rng.randrange(k) for _ in range(n)]
                cut = kway_refine(g, list(part), k, targets)
                p2 = list(part)
                kway_refine(g, p2, k, targets)
                ref[f"kway_{seed}_{k}"] = (cut, p2)

                p3 = list(part)
                moves = boundary_kway_refine(g, p3, k, targets)
                ref[f"bkway_{seed}_{k}"] = (moves, p3)

                p4 = [min(rng.randrange(k), rng.randrange(k))
                      for _ in range(n)]
                moves = rebalance_kway(g, p4, k, targets)
                ref[f"rebal_{seed}_{k}"] = (moves, p4)
    assert _h(ref) == REFINE_DIGEST


@pytest.mark.parametrize("backend", kernels.available_backends())
def test_part_graph_cold_and_warm_match_pre_rewrite_digest(backend):
    pg = {}
    with kernels.using_backend(backend):
        for seed in range(4):
            dg = gen.weighted_communities(4, 12, 10, 2, random.Random(seed))
            und = collapse_to_undirected(dg)
            for k in (2, 4):
                for scheme in ("recursive", "direct"):
                    res = part_graph(und, k, seed=seed, scheme=scheme)
                    pg[f"cold_{seed}_{k}_{scheme}"] = (
                        res.edge_cut, sorted(res.assignment.items()))
                cold = part_graph(und, k, seed=seed)
                dg2 = gen.weighted_communities(
                    4, 14, 10, 2, random.Random(seed + 100))
                und2 = collapse_to_undirected(dg2)
                warm = part_graph(und2, k, seed=seed,
                                  warm_start=cold.assignment)
                pg[f"warm_{seed}_{k}"] = (
                    warm.warm, warm.edge_cut, sorted(warm.assignment.items()))
    assert _h(pg) == PART_GRAPH_DIGEST
