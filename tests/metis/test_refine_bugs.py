"""Regression tests for the two determinism bugs in ``metis/refine.py``.

Bug 1 — shared-RNG default: ``fm_refine`` used to declare
``rng: random.Random = random.Random(0)``, evaluated once at import, so
every no-arg call shared a single generator whose state persisted
across calls — results depended on call order within the process.

Bug 2 — rebalance fallback: ``rebalance_kway``'s fallback destination
scored parts by ``weight/target`` without excluding zero-target parts
(ratio 0 → they attracted every forced move) and without the capacity
check the preferred path enforces (it could overfill the part it
picked).
"""

import inspect
import random

from repro.metis.graph import CSRGraph
from repro.metis.refine import fm_refine, rebalance_kway


def _random_graph(seed, n=30, m=70):
    rng = random.Random(seed)
    edges = {}
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        edges[key] = edges.get(key, 0) + rng.randint(1, 5)
    vwgt = [rng.randint(1, 9) for _ in range(n)]
    return CSRGraph.from_edges(n, [(u, v, w) for (u, v), w in edges.items()],
                               vwgt=vwgt)


def test_fm_refine_default_rng_is_not_shared():
    # the signature must use a None sentinel, not a module-level instance
    default = inspect.signature(fm_refine).parameters["rng"].default
    assert default is None


def test_fm_refine_back_to_back_calls_are_identical():
    # with the old shared default, the second call saw the first call's
    # advanced RNG state; now every no-arg call is self-contained
    for seed in range(5):
        graph = _random_graph(seed)
        rng = random.Random(seed)
        part = [rng.randrange(2) for _ in range(graph.num_vertices)]
        total = float(graph.total_vertex_weight)
        targets = (total / 2, total / 2)

        first_part = list(part)
        first_cut = fm_refine(graph, first_part, targets)
        second_part = list(part)
        second_cut = fm_refine(graph, second_part, targets)
        assert (second_cut, second_part) == (first_cut, first_part)


def test_rebalance_never_moves_into_zero_target_part():
    # part 2 has target 0 (it should hold nothing); the old fallback
    # scored it ratio 0 == lightest and dumped every forced move there
    n = 12
    graph = CSRGraph.from_edges(
        n, [(i, (i + 1) % n, 1) for i in range(n)], vwgt=[5] * n)
    # everything in part 0: massively over its target
    part = [0] * n
    targets = [20.0, 40.0, 0.0]
    moves = rebalance_kway(graph, part, 3, targets)
    assert moves > 0  # rebalancing did fire
    assert all(p != 2 for p in part), "zero-target part received vertices"


def test_rebalance_fallback_respects_capacity():
    # isolated vertices (no external neighbors) in an overweight part
    # force the fallback path.  Part 1 is the lightest by ratio but has
    # no room; the old fallback would overfill it anyway.
    #
    #   part 0: 6 isolated vertices of weight 10 (target 20 -> over)
    #   part 1: one vertex of weight 19  (target 20 -> 0.95 ratio)
    #   part 2: one vertex of weight 30  (target 40 -> 0.75 ratio)
    n = 8
    vwgt = [10] * 6 + [19, 30]
    graph = CSRGraph.from_edges(n, [(6, 7, 1)], vwgt=vwgt)
    part = [0] * 6 + [1, 2]
    targets = [20.0, 20.0, 40.0]
    rebalance_kway(graph, part, 3, targets)
    maxw = max(vwgt)
    for q, t in enumerate(targets):
        w = sum(vw for vw, p in zip(vwgt, part) if p == q)
        if q == 0:
            continue  # the source part may stay over if nobody has room
        assert w <= max(1.05 * t, t + maxw), f"part {q} overfilled to {w}"


def test_rebalance_skips_vertex_when_no_part_has_room():
    # nobody can absorb a weight-50 vertex: the old code would still
    # force it somewhere; the fix leaves it (documented: the part may
    # stay overweight rather than overfill another)
    n = 3
    vwgt = [50, 50, 18]
    graph = CSRGraph.from_edges(n, [], vwgt=vwgt)
    part = [0, 0, 1]
    targets = [50.0, 20.0]
    before = list(part)
    moves = rebalance_kway(graph, part, 2, targets)
    assert moves == 0
    assert part == before
