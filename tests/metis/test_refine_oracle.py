"""The batched refinement path vs the pre-kernel implementations.

The functions in ``repro.metis.refine`` were rewritten from per-vertex
python dict/heap loops onto batched kernels (``conn_matrix`` /
``gain_vector`` / ``GainBuckets``) with a bit-identity contract: same
cuts, same parts, same move counts, under every backend.  This module
keeps the *legacy* implementations alive as self-contained test
oracles (no kernel calls — straight transliterations of the original
loops, with the two determinism bugfixes applied so the comparison
isolates the batching rewrite) and property-checks the rewritten
functions against them.
"""

import heapq
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.metis.graph import CSRGraph
from repro.metis.refine import (
    _imbalance,
    boundary_kway_refine,
    fm_refine,
    kway_refine,
    rebalance_kway,
)

BACKENDS = kernels.available_backends()


# ----------------------------------------------------------------------
# legacy implementations (pre-batching), kept verbatim as oracles


def _legacy_fm_refine(graph, part, targets, ubfactor=1.05, max_passes=8):
    weights = [0.0, 0.0]
    for v in range(graph.num_vertices):
        weights[part[v]] += graph.vwgt[v]
    cut = _legacy_cut(graph, part)
    for _ in range(max_passes):
        improved = _legacy_fm_pass(graph, part, weights, targets, ubfactor, cut)
        if improved is None:
            break
        cut = improved
    return cut


def _legacy_cut(graph, part):
    cut = 0
    for v in range(graph.num_vertices):
        pv = part[v]
        for i in range(graph.xadj[v], graph.xadj[v + 1]):
            if part[graph.adjncy[i]] != pv:
                cut += graph.adjwgt[i]
    return cut // 2


def _legacy_fm_pass(graph, part, weights, targets, ubfactor, start_cut):
    n = graph.num_vertices
    xadj, adjncy, adjwgt, vwgt = (
        graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt)

    gain = [0] * n
    locked = [False] * n
    heap = []
    counter = 0

    def compute_gain(v):
        g = 0
        pv = part[v]
        for i in range(xadj[v], xadj[v + 1]):
            if part[adjncy[i]] == pv:
                g -= adjwgt[i]
            else:
                g += adjwgt[i]
        return g

    def push(v):
        nonlocal counter
        gain[v] = compute_gain(v)
        counter += 1
        heapq.heappush(heap, (-gain[v], counter, v))

    for v in range(n):
        pv = part[v]
        for i in range(xadj[v], xadj[v + 1]):
            if part[adjncy[i]] != pv:
                push(v)
                break

    moves = []
    cur_cut = start_cut
    best_cut = start_cut
    best_imb = _imbalance(weights, targets)
    best_prefix = 0

    while heap:
        neg_g, _, v = heapq.heappop(heap)
        if locked[v] or -neg_g != gain[v]:
            continue
        src = part[v]
        dst = 1 - src
        new_weights = (
            weights[0] - vwgt[v] if src == 0 else weights[0] + vwgt[v],
            weights[1] - vwgt[v] if src == 1 else weights[1] + vwgt[v],
        )
        imb_before = _imbalance(weights, targets)
        imb_after = _imbalance(new_weights, targets)
        limit = max(ubfactor * targets[dst], targets[dst] + vwgt[v])
        if new_weights[dst] > limit and imb_after >= imb_before:
            continue
        part[v] = dst
        weights[0], weights[1] = new_weights
        cur_cut -= gain[v]
        locked[v] = True
        moves.append(v)
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            if not locked[u]:
                push(u)
        if cur_cut < best_cut or (cur_cut == best_cut and imb_after < best_imb):
            best_cut = cur_cut
            best_imb = imb_after
            best_prefix = len(moves)

    for v in moves[best_prefix:]:
        src = part[v]
        part[v] = 1 - src
        weights[src] -= vwgt[v]
        weights[1 - src] += vwgt[v]

    if best_cut < start_cut:
        return best_cut
    return None


def _legacy_rebalance_kway(graph, part, k, targets, ubfactor=1.05):
    # includes the two bugfixes (zero-target parts excluded, capacity
    # check on the fallback) so the comparison isolates the batching
    n = graph.num_vertices
    xadj, adjncy, adjwgt, vwgt = (
        graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt)
    weights = [0.0] * k
    for v in range(n):
        weights[part[v]] += vwgt[v]
    maxw = max(vwgt, default=1)

    moves = 0
    for p in range(k):
        limit = max(ubfactor * targets[p], targets[p] + maxw)
        if weights[p] <= limit:
            continue
        candidates = []
        for v in range(n):
            if part[v] != p:
                continue
            external_best = 0
            best_dst = -1
            conn = {}
            for i in range(xadj[v], xadj[v + 1]):
                conn[part[adjncy[i]]] = conn.get(part[adjncy[i]], 0) + adjwgt[i]
            internal = conn.get(p, 0)
            for q, w in conn.items():
                if q != p and w > external_best:
                    external_best = w
                    best_dst = q
            candidates.append((internal - external_best, v, best_dst))
        candidates.sort()
        for _loss, v, preferred in candidates:
            if weights[p] <= limit:
                break
            dst = preferred
            if dst < 0 or weights[dst] + vwgt[v] > ubfactor * targets[dst]:
                dst = -1
                best_ratio = 0.0
                for q in range(k):
                    if q == p or targets[q] <= 0:
                        continue
                    if weights[q] + vwgt[v] > max(
                        ubfactor * targets[q], targets[q] + maxw
                    ):
                        continue
                    ratio = weights[q] / targets[q]
                    if dst < 0 or ratio < best_ratio:
                        best_ratio = ratio
                        dst = q
                if dst < 0:
                    continue
            if dst == p:
                continue
            weights[p] -= vwgt[v]
            weights[dst] += vwgt[v]
            part[v] = dst
            moves += 1
    return moves


def _legacy_best_kway_move(pv, vw, conn, weights, targets, ubfactor):
    internal = conn.get(pv, 0)
    best_part = pv
    best_gain = 0
    for p, w in conn.items():
        if p == pv:
            continue
        gain = w - internal
        if gain <= best_gain:
            continue
        if weights[p] + vw > max(ubfactor * targets[p], targets[p] + vw):
            continue
        if weights[pv] - vw <= 0:
            continue
        best_gain = gain
        best_part = p
    return best_part, best_gain


def _legacy_boundary_list(graph, part):
    out = []
    for v in range(graph.num_vertices):
        pv = part[v]
        for i in range(graph.xadj[v], graph.xadj[v + 1]):
            if part[graph.adjncy[i]] != pv:
                out.append(v)
                break
    return out


def _legacy_boundary_kway_refine(graph, part, k, targets, ubfactor=1.05,
                                 max_moves_factor=2.0):
    from collections import deque

    n = graph.num_vertices
    xadj, adjncy, adjwgt, vwgt = (
        graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt)
    _legacy_rebalance_kway(graph, part, k, targets, ubfactor=ubfactor)
    weights = [0.0] * k
    for v in range(n):
        weights[part[v]] += vwgt[v]

    queued = [False] * n
    queue = deque()
    for v in _legacy_boundary_list(graph, part):
        queue.append(v)
        queued[v] = True

    moves = 0
    max_moves = int(max_moves_factor * n) + 1
    while queue and moves < max_moves:
        v = queue.popleft()
        queued[v] = False
        pv = part[v]
        conn = {}
        for i in range(xadj[v], xadj[v + 1]):
            p = part[adjncy[i]]
            conn[p] = conn.get(p, 0) + adjwgt[i]
        best_part, _gain = _legacy_best_kway_move(
            pv, vwgt[v], conn, weights, targets, ubfactor)
        if best_part == pv:
            continue
        weights[pv] -= vwgt[v]
        weights[best_part] += vwgt[v]
        part[v] = best_part
        moves += 1
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            if not queued[u]:
                queue.append(u)
                queued[u] = True
    return moves


def _legacy_kway_refine(graph, part, k, targets, ubfactor=1.05, max_passes=4):
    n = graph.num_vertices
    xadj, adjncy, adjwgt, vwgt = (
        graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt)
    _legacy_rebalance_kway(graph, part, k, targets, ubfactor=ubfactor)
    weights = [0.0] * k
    for v in range(n):
        weights[part[v]] += vwgt[v]
    cut = _legacy_cut(graph, part)

    for _ in range(max_passes):
        moved = 0
        candidate = bytearray(n)
        for v in _legacy_boundary_list(graph, part):
            candidate[v] = 1
        for v in range(n):
            if not candidate[v]:
                continue
            pv = part[v]
            conn = {}
            for i in range(xadj[v], xadj[v + 1]):
                conn[part[adjncy[i]]] = conn.get(part[adjncy[i]], 0) + adjwgt[i]
            best_part, best_gain = _legacy_best_kway_move(
                pv, vwgt[v], conn, weights, targets, ubfactor)
            if best_part != pv:
                weights[pv] -= vwgt[v]
                weights[best_part] += vwgt[v]
                part[v] = best_part
                cut -= best_gain
                moved += 1
                for i in range(xadj[v], xadj[v + 1]):
                    candidate[adjncy[i]] = 1
        if moved == 0:
            break
    return cut


def _legacy_kl_proposals(graph, shard, k, min_gain):
    # the original KLPartitioner._gather_proposals dict loop, expressed
    # over the CSR bridge (adjacency order == the und dict order the
    # CSR was built from)
    out = []
    shard_items = [(v, shard[v]) for v in range(graph.num_vertices)
                   if shard[v] >= 0]
    for v, s in shard_items:
        conn = {}
        for i in range(graph.xadj[v], graph.xadj[v + 1]):
            t = shard[graph.adjncy[i]]
            if t >= 0:
                conn[t] = conn.get(t, 0) + graph.adjwgt[i]
        internal = conn.get(s, 0)
        best_t = -1
        best_gain = min_gain - 1
        for t, w in conn.items():
            if t == s:
                continue
            gain = w - internal
            if gain > best_gain:
                best_gain = gain
                best_t = t
        if best_t >= 0 and best_gain >= min_gain:
            out.append((v, s, best_t, best_gain))
    return out


# ----------------------------------------------------------------------
# property comparisons


@st.composite
def graphs_and_parts(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    m = draw(st.integers(min_value=0, max_value=100))
    edges = {}
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        edges[key] = edges.get(key, 0) + draw(st.integers(1, 5))
    vwgt = draw(st.lists(st.integers(1, 9), min_size=n, max_size=n))
    graph = CSRGraph.from_edges(n, [(u, v, w) for (u, v), w in edges.items()],
                                vwgt=vwgt)
    k = draw(st.integers(2, 4))
    part = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    return graph, part, k


@pytest.mark.parametrize("backend", BACKENDS)
@given(case=graphs_and_parts())
@settings(max_examples=40, deadline=None)
def test_fm_refine_matches_legacy(backend, case):
    graph, part, _k = case
    bisect = [p % 2 for p in part]
    total = float(graph.total_vertex_weight)
    targets = (total / 2, total / 2)
    ref_part = list(bisect)
    ref_cut = _legacy_fm_refine(graph, ref_part, targets)
    with kernels.using_backend(backend):
        got_part = list(bisect)
        got_cut = fm_refine(graph, got_part, targets)
    assert (got_cut, got_part) == (ref_cut, ref_part)


@pytest.mark.parametrize("backend", BACKENDS)
@given(case=graphs_and_parts())
@settings(max_examples=40, deadline=None)
def test_kway_refine_matches_legacy(backend, case):
    graph, part, k = case
    total = float(graph.total_vertex_weight)
    targets = [total / k] * k
    ref_part = list(part)
    ref_cut = _legacy_kway_refine(graph, ref_part, k, targets)
    with kernels.using_backend(backend):
        got_part = list(part)
        got_cut = kway_refine(graph, got_part, k, targets)
    assert (got_cut, got_part) == (ref_cut, ref_part)


@pytest.mark.parametrize("backend", BACKENDS)
@given(case=graphs_and_parts())
@settings(max_examples=40, deadline=None)
def test_boundary_kway_refine_matches_legacy(backend, case):
    graph, part, k = case
    total = float(graph.total_vertex_weight)
    targets = [total / k] * k
    ref_part = list(part)
    ref_moves = _legacy_boundary_kway_refine(graph, ref_part, k, targets)
    with kernels.using_backend(backend):
        got_part = list(part)
        got_moves = boundary_kway_refine(graph, got_part, k, targets)
    assert (got_moves, got_part) == (ref_moves, ref_part)


@pytest.mark.parametrize("backend", BACKENDS)
@given(case=graphs_and_parts(), lumpy=st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_rebalance_kway_matches_legacy(backend, case, lumpy):
    graph, part, k = case
    # skew the partition toward part 0 so rebalancing actually fires
    rng = random.Random(lumpy)
    skewed = [p if rng.random() < 0.4 else 0 for p in part]
    total = float(graph.total_vertex_weight)
    targets = [total / k] * k
    ref_part = list(skewed)
    ref_moves = _legacy_rebalance_kway(graph, ref_part, k, targets)
    with kernels.using_backend(backend):
        got_part = list(skewed)
        got_moves = rebalance_kway(graph, got_part, k, targets)
    assert (got_moves, got_part) == (ref_moves, ref_part)


@pytest.mark.parametrize("backend", BACKENDS)
@given(case=graphs_and_parts(), holes=st.integers(0, 99),
       min_gain=st.integers(0, 2))
@settings(max_examples=40, deadline=None)
def test_kl_proposals_match_legacy_gather(backend, case, holes, min_gain):
    graph, part, k = case
    rng = random.Random(holes)
    shard = [p if rng.random() < 0.85 else -1 for p in part]
    ref = _legacy_kl_proposals(graph, shard, k, min_gain)
    with kernels.using_backend(backend):
        got = kernels.active().kl_proposals(graph, shard, k, min_gain)
    assert got == ref
