"""Property tests: every kernel backend is bit-identical to ``pure``.

The pure-python backend is the oracle — a straight transliteration of
the per-row loops the kernels replaced.  The array and numpy backends
must reproduce its outputs *exactly*, including dict key order where
the contract guarantees one (edge first-occurrence order feeds the
cumulative graph's adjacency insertion order, which cold METIS results
depend on).  Logs are arbitrary: self-loops, repeated edges, contract
upgrades, empty windows and single-vertex (pure self-loop) streams all
appear in the strategy.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import VertexKind
from repro.kernels import StreamState
from repro.metis.graph import CSRGraph

BACKENDS = [b for b in kernels.available_backends() if b != "pure"]


def _pure():
    with kernels.using_backend("pure"):
        return kernels.active()


@st.composite
def columnar_logs(draw):
    """A ColumnarLog with self-loops, kind upgrades and tx buckets."""
    n = draw(st.integers(min_value=0, max_value=120))
    nv = draw(st.integers(min_value=1, max_value=12))
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, nv - 1),
                st.integers(0, nv - 1),
                st.sampled_from([VertexKind.ACCOUNT, VertexKind.CONTRACT]),
                st.sampled_from([VertexKind.ACCOUNT, VertexKind.CONTRACT]),
            ),
            min_size=n, max_size=n,
        )
    )
    per_tx = draw(st.integers(min_value=1, max_value=4))
    gap = draw(st.floats(min_value=0.0, max_value=3.0))
    return ColumnarLog(
        Interaction(
            timestamp=(i // per_tx) * gap,
            src=100 + s, dst=100 + d,
            src_kind=sk, dst_kind=dk,
            tx_id=i // per_tx,
        )
        for i, (s, d, sk, dk) in enumerate(rows)
    )


def _splits(log, cuts):
    """Window boundaries [0, ..., len(log)] from fractional cut points."""
    n = len(log)
    bounds = sorted({0, n, *(int(c * n) for c in cuts)})
    return list(zip(bounds, bounds[1:]))


def _batch_tuple(batch):
    # vertex_weights order is NOT part of the contract (numpy emits it
    # ascending); everything else is compared order-sensitively
    return (
        batch.first_seen,
        batch.upgrades,
        list(batch.edge_weights.items()),
        dict(batch.vertex_weights),
        batch.new_edges,
        batch.placement_groups,
    )


@pytest.mark.parametrize("backend", BACKENDS)
@given(log=columnar_logs(), cuts=st.lists(st.floats(0, 1), max_size=4))
@settings(max_examples=60, deadline=None)
def test_window_pass_parity(backend, log, cuts):
    cols = (log.timestamps(), log.src_indices(), log.dst_indices(),
            log.tx_ids(), log.src_kind_codes(), log.dst_kind_codes())
    ref_state, got_state = StreamState(), StreamState()
    for lo, hi in _splits(log, cuts):
        ref = _pure().window_pass(*cols, lo, hi, ref_state)
        with kernels.using_backend(backend):
            got = kernels.active().window_pass(*cols, lo, hi, got_state)
        assert _batch_tuple(got) == _batch_tuple(ref)
        assert got_state.max_vertex == ref_state.max_vertex
        assert got_state.edge_seen == ref_state.edge_seen
        assert got_state.contract_known == ref_state.contract_known
        ref_state.record_new_edges(ref.new_edges)
        got_state.record_new_edges(got.new_edges)
    assert list(got_state.esrc) == list(ref_state.esrc)
    assert list(got_state.edst) == list(ref_state.edst)


@pytest.mark.parametrize("backend", BACKENDS)
@given(log=columnar_logs(), cuts=st.lists(st.floats(0, 1), max_size=3),
       k=st.integers(2, 5), seed=st.integers(0, 99))
@settings(max_examples=60, deadline=None)
def test_account_window_and_static_cut_parity(backend, log, cuts, k, seed):
    src, dst = log.src_indices(), log.dst_indices()
    cols = (log.timestamps(), src, dst, log.tx_ids(),
            log.src_kind_codes(), log.dst_kind_codes())
    rng = random.Random(seed)
    shard = [rng.randrange(k) for _ in range(log.num_vertices)]
    state = StreamState()
    for lo, hi in _splits(log, cuts):
        batch = _pure().window_pass(*cols, lo, hi, state)
        state.record_new_edges(batch.new_edges)
        ref = _pure().account_window(src, dst, lo, hi, batch.new_edges, shard, k)
        ref_cut = _pure().static_cut_count(state.esrc, state.edst, shard)
        with kernels.using_backend(backend):
            kr = kernels.active()
            got = kr.account_window(src, dst, lo, hi, batch.new_edges, shard, k)
            got_cut = kr.static_cut_count(state.esrc, state.edst, shard)
        assert got == ref
        assert got_cut == ref_cut


@pytest.mark.parametrize("backend", BACKENDS)
@given(log=columnar_logs(), cuts=st.lists(st.floats(0, 1), max_size=4))
@settings(max_examples=60, deadline=None)
def test_max_index_parity(backend, log, cuts):
    src, dst = log.src_indices(), log.dst_indices()
    for lo, hi in _splits(log, cuts):
        ref = _pure().max_index(src, dst, lo, hi)
        with kernels.using_backend(backend):
            got = kernels.active().max_index(src, dst, lo, hi)
        assert got == ref


@pytest.mark.parametrize("backend", BACKENDS)
@given(log=columnar_logs(), cuts=st.lists(st.floats(0, 1), max_size=3),
       weights=st.sampled_from(["unit", "activity"]))
@settings(max_examples=60, deadline=None)
def test_csr_accumulator_and_window_parity(backend, log, cuts, weights):
    src, dst = log.src_indices(), log.dst_indices()
    ref_acc = _pure().CSRAccumulator()
    with kernels.using_backend(backend):
        got_acc = kernels.active().CSRAccumulator()
    for lo, hi in _splits(log, cuts):
        ref_acc.advance(src, dst, lo, hi)
        got_acc.advance(src, dst, lo, hi)
        assert got_acc.num_vertices == ref_acc.num_vertices
        assert got_acc.snapshot(weights) == ref_acc.snapshot(weights)
        # windowed one-shot build over the same prefix
        ref_win = _pure().csr_from_window(src, dst, lo, hi, weights)
        with kernels.using_backend(backend):
            got_win = kernels.active().csr_from_window(src, dst, lo, hi, weights)
        assert got_win == ref_win


@pytest.mark.parametrize("backend", BACKENDS)
@given(log=columnar_logs(), cuts=st.lists(st.floats(0, 1), max_size=3))
@settings(max_examples=60, deadline=None)
def test_graph_batch_parity(backend, log, cuts):
    cols = (log.timestamps(), log.src_indices(), log.dst_indices(),
            log.src_kind_codes(), log.dst_kind_codes())
    for lo, hi in _splits(log, cuts):
        fs_r, up_r, ew_r, vw_r = _pure().graph_batch(*cols, lo, hi)
        with kernels.using_backend(backend):
            fs_g, up_g, ew_g, vw_g = kernels.active().graph_batch(*cols, lo, hi)
        assert fs_g == fs_r
        assert up_g == up_r
        assert list(ew_g.items()) == list(ew_r.items())
        assert dict(vw_g) == dict(vw_r)


# ----------------------------------------------------------------------
# refinement primitives on CSR graphs


@st.composite
def csr_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    m = draw(st.integers(min_value=0, max_value=40))
    edges = {}
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        edges[key] = edges.get(key, 0) + draw(st.integers(1, 5))
    vwgt = draw(st.lists(st.integers(1, 9), min_size=n, max_size=n))
    graph = CSRGraph.from_edges(n, [(u, v, w) for (u, v), w in edges.items()],
                                vwgt=vwgt)
    k = draw(st.integers(2, 4))
    part = draw(st.lists(st.integers(-1, k - 1), min_size=n, max_size=n))
    return graph, part, k


@pytest.mark.parametrize("backend", BACKENDS)
@given(gpk=csr_graphs(), seed=st.integers(0, 99))
@settings(max_examples=60, deadline=None)
def test_refinement_primitives_parity(backend, gpk, seed):
    graph, part, k = gpk
    assigned = [p if p >= 0 else 0 for p in part]  # fully-assigned variant
    order = list(range(graph.num_vertices))
    random.Random(seed).shuffle(order)
    pure = _pure()
    with kernels.using_backend(backend):
        kr = kernels.active()
        assert kr.part_weights(graph, assigned, k) == \
            pure.part_weights(graph, assigned, k)
        assert kr.part_weights(graph, part, k, skip_unassigned=True) == \
            pure.part_weights(graph, part, k, skip_unassigned=True)
        assert kr.boundary_list(graph, assigned) == \
            pure.boundary_list(graph, assigned)
        assert kr.cut_value(graph, assigned) == pure.cut_value(graph, assigned)
        assert kr.unassigned_list(part) == pure.unassigned_list(part)
        assert kr.hem_matching(graph, order) == pure.hem_matching(graph, order)


@st.composite
def refinement_cases(draw):
    """Larger CSR graphs + partitions for the batched refinement kernels.

    Sized past the numpy backend's small-input pure fallback so the
    vectorised paths are actually exercised; edge weights include 0 so
    the ``first_pos`` presence sentinel (not ``conn > 0``) is what
    distinguishes adjacent-with-zero-weight from not-adjacent.
    """
    n = draw(st.integers(min_value=1, max_value=48))
    m = draw(st.integers(min_value=0, max_value=140))
    edges = {}
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        edges[key] = edges.get(key, 0) + draw(st.integers(0, 5))
    vwgt = draw(st.lists(st.integers(1, 9), min_size=n, max_size=n))
    graph = CSRGraph.from_edges(n, [(u, v, w) for (u, v), w in edges.items()],
                                vwgt=vwgt)
    k = draw(st.integers(2, 5))
    part = draw(st.lists(st.integers(-1, k - 1), min_size=n, max_size=n))
    return graph, part, k


@pytest.mark.parametrize("backend", BACKENDS)
@given(case=refinement_cases(), seed=st.integers(0, 99),
       min_gain=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_batched_refinement_kernel_parity(backend, case, seed, min_gain):
    graph, part, k = case
    assigned = [p if p >= 0 else 0 for p in part]
    rng = random.Random(seed)
    subset = [v for v in range(graph.num_vertices) if rng.random() < 0.7]
    pure = _pure()
    with kernels.using_backend(backend):
        kr = kernels.active()
        assert kr.max_weighted_degree(graph) == \
            pure.max_weighted_degree(graph)
        for p in (part, assigned):
            assert kr.conn_matrix(graph, p, k, subset) == \
                pure.conn_matrix(graph, p, k, subset)
            assert kr.gain_vector(graph, p, subset) == \
                pure.gain_vector(graph, p, subset)
            assert kr.kl_proposals(graph, p, k, min_gain) == \
                pure.kl_proposals(graph, p, k, min_gain)


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(-8, 8),
                          st.booleans()),
                max_size=60))
@settings(max_examples=100, deadline=None)
def test_gain_buckets_match_lazy_deletion_heap(ops):
    """GainBuckets pop order == heap ordered by (-gain, push counter).

    Simulates the FM usage pattern: interleaved pushes (re-pushing a
    vertex changes its current gain, making older entries stale) and
    pops with the caller-side stale/done skipping both structures
    contract to.  The sequences of *valid* pops must be identical.
    """
    import heapq

    from repro.kernels import GainBuckets

    buckets = GainBuckets(8)
    heap = []
    counter = 0
    cur = {}
    done = set()

    def pop_buckets():
        while True:
            entry = buckets.pop()
            if entry is None:
                return None
            v, g = entry
            if v in done or cur.get(v) != g:
                continue
            return v, g

    def pop_heap():
        while heap:
            neg_g, _, v = heapq.heappop(heap)
            if v in done or cur.get(v) != -neg_g:
                continue
            return v, -neg_g
        return None

    def check_one_pop():
        got = pop_buckets()
        ref = pop_heap()
        assert got == ref
        if got is not None:
            done.add(got[0])
        return got

    for v, g, do_pop in ops:
        if do_pop:
            check_one_pop()
        else:
            cur[v] = g
            buckets.push(v, g)
            counter += 1
            heapq.heappush(heap, (-g, counter, v))
    while check_one_pop() is not None:
        pass


# ----------------------------------------------------------------------
# explicit edge cases


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_window_is_empty_everywhere(backend):
    log = ColumnarLog([Interaction(timestamp=0.0, src=7, dst=9, tx_id=0)])
    cols = (log.timestamps(), log.src_indices(), log.dst_indices(),
            log.tx_ids(), log.src_kind_codes(), log.dst_kind_codes())
    with kernels.using_backend(backend):
        kr = kernels.active()
        batch = kr.window_pass(*cols, 1, 1, StreamState())
        assert _batch_tuple(batch) == ([], [], [], {}, [], [])
        assert kr.max_index(log.src_indices(), log.dst_indices(), 1, 1) == -1
        assert kr.account_window(log.src_indices(), log.dst_indices(),
                                 1, 1, (), [0, 0], 2) == \
            _pure().account_window(log.src_indices(), log.dst_indices(),
                                   1, 1, (), [0, 0], 2)
        assert kr.csr_from_window(log.src_indices(), log.dst_indices(),
                                  1, 1, "unit") == ([0], [], [], [], [])


@pytest.mark.parametrize("backend", BACKENDS)
def test_single_vertex_self_loop_stream(backend):
    # one vertex interacting with itself: no edges, one first-seen
    log = ColumnarLog(
        Interaction(timestamp=float(i), src=5, dst=5, tx_id=i)
        for i in range(4)
    )
    cols = (log.timestamps(), log.src_indices(), log.dst_indices(),
            log.tx_ids(), log.src_kind_codes(), log.dst_kind_codes())
    ref = _pure().window_pass(*cols, 0, 4, StreamState())
    with kernels.using_backend(backend):
        kr = kernels.active()
        got = kr.window_pass(*cols, 0, 4, StreamState())
        assert _batch_tuple(got) == _batch_tuple(ref)
        assert got.new_edges == []
        assert got.first_seen == [(0, 0, 0.0)]
        assert kr.csr_from_window(log.src_indices(), log.dst_indices(),
                                  0, 4, "activity") == \
            _pure().csr_from_window(log.src_indices(), log.dst_indices(),
                                    0, 4, "activity")


# ----------------------------------------------------------------------
# end-to-end: the paper sweep's serialized output is backend-invariant


def test_resultset_dumps_byte_equal_across_backends():
    from repro.experiments.run import run_experiment
    from repro.experiments.spec import ExperimentSpec

    spec = ExperimentSpec(
        scale="tiny",
        methods=("hash", "fennel", "metis", "r-metis"),
        ks=(2, 4),
        window_hours=24.0,
    )
    dumps = {}
    for backend in kernels.available_backends():
        with kernels.using_backend(backend):
            dumps[backend] = run_experiment(spec).dumps()
    reference = dumps.pop("pure")
    for backend, text in dumps.items():
        assert text == reference, f"{backend} sweep output diverged"
