"""MethodSpec / ExperimentSpec: parsing, identity, validation, JSON."""

import pytest

from repro.experiments.spec import CellKey, ExperimentSpec, MethodSpec


class TestMethodSpec:
    def test_parse_plain_name(self):
        m = MethodSpec.parse("metis")
        assert m.name == "metis"
        assert m.params == ()
        assert m.label == "metis"

    def test_parse_params_coerce_types(self):
        m = MethodSpec.parse("tr-metis?warm=true&cut_threshold=0.3&ntrials=2")
        params = dict(m.params)
        assert params["warm"] is True
        assert params["cut_threshold"] == 0.3
        assert params["ntrials"] == 2

    def test_params_sorted_canonically(self):
        a = MethodSpec.parse("kl?slack=0.2&rounds=3")
        b = MethodSpec.parse("kl?rounds=3&slack=0.2")
        assert a == b
        assert a.label == b.label == "kl?rounds=3&slack=0.2"
        assert hash(a) == hash(b)

    def test_label_round_trips(self):
        for text in (
            "hash",
            "hash?salt=7",
            "fennel?gamma=1.5&power=2.0",
            "tr-metis?balance_threshold=0.45&warm=false",
        ):
            m = MethodSpec.parse(text)
            assert MethodSpec.parse(m.label) == m

    def test_dict_round_trips(self):
        m = MethodSpec.parse("metis?ubfactor=1.1&warm=true")
        assert MethodSpec.from_dict(m.to_dict()) == m

    def test_of_keyword_constructor(self):
        assert MethodSpec.of("kl", rounds=3) == MethodSpec.parse("kl?rounds=3")

    def test_name_case_insensitive(self):
        assert MethodSpec.parse("METIS") == MethodSpec.parse("metis")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            MethodSpec.parse("quantum")

    def test_unknown_param_rejected_naming_method(self):
        with pytest.raises(ValueError, match="tr-metis.*bogus.*accepted"):
            MethodSpec.parse("tr-metis?bogus=1")

    def test_reserved_params_rejected(self):
        with pytest.raises(ValueError, match="experiment-level"):
            MethodSpec.parse("metis?seed=3")
        with pytest.raises(ValueError, match="experiment-level"):
            MethodSpec.parse("metis?k=4")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            MethodSpec.parse("metis?warm")

    def test_duplicate_params_rejected(self):
        # identical duplicates would fork the cache/store identity...
        with pytest.raises(ValueError, match="duplicate parameter"):
            MethodSpec.parse("tr-metis?cut_threshold=0.3&cut_threshold=0.3")
        # ...and heterogeneous ones must not crash sorted() with TypeError
        with pytest.raises(ValueError, match="duplicate parameter"):
            MethodSpec.parse("hash?salt=1&salt=x")

    def test_make_instantiates_with_params(self):
        from repro.core.trmetis import TRMetisPartitioner

        m = MethodSpec.parse("tr-metis?cut_threshold=0.3")
        method = m.make(4, seed=9)
        assert isinstance(method, TRMetisPartitioner)
        assert method.k == 4 and method.seed == 9
        assert method.cut_threshold == 0.3

    def test_aliases_are_distinct_specs_same_factory(self):
        p = MethodSpec.parse("p-metis")
        r = MethodSpec.parse("r-metis")
        assert p != r
        assert type(p.make(2)) is type(r.make(2))


class TestExperimentSpec:
    def test_strings_parse_and_grid_enumerates(self):
        spec = ExperimentSpec(
            scale="tiny", methods=("hash", "metis?warm=true"), ks=(2, 4),
            replay_seeds=(1, 2),
        )
        assert all(isinstance(m, MethodSpec) for m in spec.methods)
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 2
        assert cells[0] == CellKey(MethodSpec.parse("hash"), 2, 1)

    def test_cells_deduplicate(self):
        spec = ExperimentSpec(scale="tiny", methods=("hash", "HASH"), ks=(2, 2))
        assert len(spec.cells()) == 1

    def test_dict_round_trips(self):
        spec = ExperimentSpec(
            scale="small", workload_seed=7,
            methods=("hash", "tr-metis?warm=true"), ks=(2, 8),
            window_hours=4.0, replay_seeds=(3,),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown scale"):
            ExperimentSpec(scale="galactic")
        with pytest.raises(ValueError, match="at least one method"):
            ExperimentSpec(scale="tiny", methods=())
        with pytest.raises(ValueError, match=">= 1"):
            ExperimentSpec(scale="tiny", ks=(0,))
        with pytest.raises(ValueError, match="window_hours"):
            ExperimentSpec(scale="tiny", window_hours=0)
        with pytest.raises(ValueError, match="replay seed"):
            ExperimentSpec(scale="tiny", replay_seeds=())

    def test_workload_id_distinguishes_windows(self):
        a = ExperimentSpec(scale="tiny", window_hours=4.0)
        b = ExperimentSpec(scale="tiny", window_hours=24.0)
        assert a.workload_id() != b.workload_id()

    def test_scalar_convenience(self):
        spec = ExperimentSpec(scale="tiny", methods="hash", ks=2, replay_seeds=5)
        assert spec.methods == (MethodSpec.parse("hash"),)
        assert spec.ks == (2,)
        assert spec.replay_seeds == (5,)
