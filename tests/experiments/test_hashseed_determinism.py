"""Dynamic determinism smoke: results must not depend on PYTHONHASHSEED.

reprolint's RL002 bans hash-ordered set iteration statically; this is
the dynamic counterpart.  A tiny two-method sweep is executed in fresh
interpreters under *different* hash seeds and the fully serialized
ResultSet dumps must be byte-identical — any hash-order dependence in
replay, metrics, or serialization shows up as a diff.  CI runs the
same check as a dedicated job.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

_SWEEP = """\
from repro.experiments.run import run_experiment
from repro.experiments.spec import ExperimentSpec

spec = ExperimentSpec(
    scale="tiny", workload_seed=42, methods=("hash", "fennel"), ks=(2,),
    window_hours=24.0,
)
print(run_experiment(spec).dumps(indent=2))
"""


def run_sweep(hashseed):
    env = {
        **os.environ,
        "PYTHONPATH": str(REPO / "src"),
        "PYTHONHASHSEED": str(hashseed),
    }
    proc = subprocess.run(
        [sys.executable, "-c", _SWEEP],
        capture_output=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_resultset_identical_across_hash_seeds():
    dump_a = run_sweep(0)
    dump_b = run_sweep(42)
    assert dump_a, "sweep produced no output"
    assert dump_a == dump_b, (
        "ResultSet dump depends on PYTHONHASHSEED — some set/dict "
        "iteration order is leaking into results"
    )
