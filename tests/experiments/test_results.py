"""CellResult / ResultSet: serialization round-trips and accessors."""

import json

import pytest

from repro.experiments import (
    CellKey,
    ExperimentSpec,
    MethodSpec,
    ResultSet,
    run_experiment,
)


@pytest.fixture(scope="module")
def spec():
    return ExperimentSpec(
        scale="tiny", workload_seed=42,
        methods=("hash", "metis", "tr-metis?cut_threshold=0.3"), ks=(2, 4),
    )


@pytest.fixture(scope="module")
def rs(spec, tiny_workload):
    return run_experiment(spec, workload=tiny_workload)


class TestRoundTrip:
    def test_loads_dumps_equality(self, rs):
        assert ResultSet.loads(rs.dumps()) == rs

    def test_round_trip_preserves_floats_exactly(self, rs):
        back = ResultSet.loads(rs.dumps())
        for key in rs.keys():
            assert back.cell(key).series.points == rs.cell(key).series.points

    def test_round_trip_preserves_int_vertex_ids(self, rs):
        back = ResultSet.loads(rs.dumps())
        for cell in back:
            assert all(isinstance(v, int) for v in cell.assignment)
            assert all(isinstance(s, int) for s in cell.assignment.values())

    def test_dumps_is_plain_json(self, rs):
        data = json.loads(rs.dumps())
        assert set(data) == {"spec", "cells"}
        assert len(data["cells"]) == len(rs)

    def test_parameterised_method_survives(self, rs):
        back = ResultSet.loads(rs.dumps())
        cell = back.get("tr-metis?cut_threshold=0.3", 2)
        assert dict(cell.key.method.params)["cut_threshold"] == 0.3


class TestAccessors:
    def test_get_by_string_or_spec(self, rs):
        by_str = rs.get("metis", 4)
        by_spec = rs.get(MethodSpec.parse("metis"), 4)
        assert by_str is by_spec

    def test_get_missing_raises_with_inventory(self, rs):
        with pytest.raises(KeyError, match="no result for"):
            rs.get("metis", 64)

    def test_iteration_follows_grid_order(self, rs, spec):
        assert [c.key for c in rs] == list(spec.cells())

    def test_mean_over_active_windows(self, rs):
        cell = rs.get("hash", 2)
        pts = [p for p in cell.series.points if p.interactions > 0]
        expect = sum(p.dynamic_edge_cut for p in pts) / len(pts)
        assert cell.mean("dynamic_edge_cut") == expect

    def test_to_assignment_rebuilds_counts_and_weights(self, rs):
        cell = rs.get("metis", 2)
        a = cell.to_assignment()
        assert a.as_dict() == cell.assignment
        assert a.weights == cell.shard_weights
        a.validate()

    def test_to_replay_result_bridge(self, rs):
        cell = rs.get("metis", 2)
        replay = cell.to_replay_result()
        assert replay.series is cell.series
        assert replay.total_moves == cell.total_moves
        assert replay.graph is None

    def test_live_replays_not_part_of_equality(self, rs):
        back = ResultSet.loads(rs.dumps())
        assert back == rs
        assert rs.replay(rs.keys()[0]) is not None      # computed in-process
        assert back.replay(back.keys()[0]) is None      # deserialized

    def test_merged_with(self, spec, rs, tiny_workload):
        key = CellKey(MethodSpec.parse("hash"), 2, 1)
        partial = run_experiment(spec, workload=tiny_workload, only=[key])
        merged = partial.merged_with(rs)
        assert len(merged) == len(rs)
        assert merged == rs
