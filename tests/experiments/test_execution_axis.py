"""The execution axis: ExecutionSpec identity, attachment, persistence.

Acceptance gates from the execution-cost redesign: cells from an
execution-enabled spec must match a plain spec cell-for-cell on every
pre-existing field (the executor only *adds* a report), the enriched
``ResultSet`` must survive JSON round-trips, store resume must
re-execute zero cells, and parallel fan-out must be bit-identical to
the sequential path.
"""

import pytest

from repro.experiments import (
    ExecutionSpec,
    ExperimentSpec,
    ResultSet,
    ResultStore,
    run_experiment,
)
from repro.graph.columnar import ColumnarLog
from repro.graph.io import write_columnar
from repro.sharding.throughput import ThroughputReport


class TestExecutionSpecParsing:
    def test_bare_mode(self):
        assert ExecutionSpec.parse("migrate") == ExecutionSpec(mode="migrate")

    def test_field_pairs(self):
        spec = ExecutionSpec.parse("mode=migrate&arrival_rate=2000")
        assert spec.mode == "migrate"
        assert spec.arrival_rate == 2000.0

    def test_parse_passthrough(self):
        spec = ExecutionSpec(mode="migrate")
        assert ExecutionSpec.parse(spec) is spec

    def test_label_round_trips(self):
        spec = ExecutionSpec(
            mode="migrate", arrival_rate=2000, warmup_fraction=0.1,
            max_rows=5000,
        )
        assert ExecutionSpec.parse(spec.label) == spec

    def test_default_label_is_mode_only(self):
        assert ExecutionSpec().label == "mode=2pc"

    def test_parsed_and_literal_specs_share_identity(self):
        """Int-typed parses normalise to the float the literal carries."""
        parsed = ExecutionSpec.parse("mode=2pc&arrival_rate=2000")
        literal = ExecutionSpec(arrival_rate=2000.0)
        assert parsed == literal
        assert parsed.identity == literal.identity
        assert parsed.label == literal.label

    def test_identity_covers_defaulted_fields(self):
        """Unlike the label, the identity pins the *whole* cost model."""
        a = ExecutionSpec()
        b = ExecutionSpec(service_time=0.002)
        assert a.identity != b.identity
        assert a.identity.startswith("exec-2pc-")

    @pytest.mark.parametrize("text, message", [
        ("", "empty execution spec"),
        ("warp", "unknown mode"),
        ("mode=2pc&bogus=1", "unknown execution field"),
        ("mode=2pc&mode=migrate", "duplicate execution field"),
        ("mode=2pc&arrival_rate", "malformed execution parameter"),
        ("mode=2pc&arrival_rate=0", "arrival_rate must be > 0"),
        ("mode=2pc&time_scale=-1", "time_scale must be >= 0"),
        ("mode=2pc&time_scale=10&arrival_rate=5", "mutually exclusive"),
        ("mode=2pc&max_rows=0", "max_rows must be >= 1"),
        ("mode=2pc&service_time=0", "service_time must be > 0"),
    ])
    def test_rejects_bad_specs(self, text, message):
        with pytest.raises(ValueError, match=message):
            ExecutionSpec.parse(text)

    def test_dict_round_trip(self):
        spec = ExecutionSpec(mode="migrate", time_scale=100.0, max_rows=10)
        assert ExecutionSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            ExecutionSpec.from_dict({"mode": "2pc", "bogus": 1})


class TestExperimentSpecIntegration:
    def test_string_and_dict_coercion(self):
        by_str = ExperimentSpec(scale="tiny", execution="mode=migrate")
        by_obj = ExperimentSpec(
            scale="tiny", execution=ExecutionSpec(mode="migrate"))
        by_dict = ExperimentSpec(
            scale="tiny", execution=ExecutionSpec(mode="migrate").to_dict())
        assert by_str == by_obj == by_dict

    def test_spec_json_round_trip_carries_execution(self):
        spec = ExperimentSpec(
            scale="tiny", methods=("hash",), ks=(2,),
            execution="mode=migrate&arrival_rate=500",
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_store_id_separates_execution_from_plain(self):
        plain = ExperimentSpec(scale="tiny")
        execd = ExperimentSpec(scale="tiny", execution="2pc")
        assert plain.store_id() == plain.workload_id()
        assert execd.store_id() != plain.store_id()
        assert execd.store_id().startswith(plain.workload_id())
        assert execd.execution.identity in execd.store_id()


@pytest.fixture(scope="module")
def exec_spec():
    return ExperimentSpec(
        scale="tiny", methods=("hash", "fennel"), ks=(2, 4),
        execution="mode=migrate",
    )


@pytest.fixture(scope="module")
def exec_rs(exec_spec, tiny_workload):
    return run_experiment(exec_spec, workload=tiny_workload)


class TestExecutionEnabledRuns:
    def test_every_cell_carries_a_report(self, exec_spec, exec_rs):
        for key in exec_spec.cells():
            rep = exec_rs.cell(key).execution
            assert isinstance(rep, ThroughputReport)
            assert rep.throughput > 0
            assert rep.completed > 0

    def test_preexisting_fields_match_plain_spec(self, exec_spec, exec_rs,
                                                 tiny_workload):
        """The executor only *adds* — the partition replay is untouched."""
        plain = run_experiment(
            ExperimentSpec(scale="tiny", methods=exec_spec.methods,
                           ks=exec_spec.ks),
            workload=tiny_workload,
        )
        for key in exec_spec.cells():
            a, b = plain.cell(key), exec_rs.cell(key)
            assert a.series == b.series
            assert a.events == b.events
            assert a.assignment == b.assignment
            assert a.shard_weights == b.shard_weights
            assert a.total_moves == b.total_moves
            assert a.execution is None and b.execution is not None

    def test_resultset_json_round_trip(self, exec_rs):
        assert ResultSet.loads(exec_rs.dumps()) == exec_rs

    def test_parallel_identical_to_sequential(self, exec_spec, exec_rs,
                                              tiny_workload):
        par = run_experiment(exec_spec, jobs=2, workload=tiny_workload)
        assert par == exec_rs

    def test_resume_executes_zero_cells(self, exec_spec, exec_rs,
                                        tiny_workload, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "results")
        first = run_experiment(exec_spec, workload=tiny_workload, store=store)
        assert first == exec_rs

        import repro.core.multireplay as multireplay
        import repro.experiments.execution as execution
        import repro.experiments.parallel as parallel

        def boom(*args, **kwargs):
            raise AssertionError("resumed run re-executed a cell")

        monkeypatch.setattr(multireplay, "MultiReplayEngine", boom)
        monkeypatch.setattr(parallel, "run_chunks_parallel", boom)
        monkeypatch.setattr(execution, "execute_assignment", boom)

        outcomes = []
        second = run_experiment(
            exec_spec, workload=tiny_workload, store=store,
            progress=lambda key, outcome: outcomes.append(outcome),
        )
        assert second == first
        assert outcomes == ["loaded"] * len(exec_spec.cells())

    def test_store_keeps_plain_and_execution_cells_apart(
            self, exec_spec, tiny_workload, tmp_path):
        store = ResultStore(tmp_path / "results")
        plain_spec = ExperimentSpec(
            scale="tiny", methods=exec_spec.methods, ks=exec_spec.ks)
        run_experiment(plain_spec, workload=tiny_workload, store=store)
        # the plain run must not satisfy the execution-enabled resume
        for key in exec_spec.cells():
            assert store.load(exec_spec, key) is None

    def test_trace_backed_sweep_matches_synthetic(self, exec_spec, exec_rs,
                                                  tiny_workload, tmp_path):
        """A v3 trace export of the same log yields the same reports
        (and the same pre-existing metrics) through the columnar path."""
        trace = tmp_path / "tiny.rct"
        write_columnar(
            ColumnarLog.from_interactions(tiny_workload.builder.log),
            trace, version=3,
        )
        tr_spec = ExperimentSpec(
            methods=exec_spec.methods, ks=exec_spec.ks, source=str(trace),
            execution=exec_spec.execution,
        )
        rt = run_experiment(tr_spec, jobs=2)
        assert ResultSet.loads(rt.dumps()) == rt
        for key in tr_spec.cells():
            assert rt.cell(key).execution == exec_rs.cell(key).execution
