"""run_experiment: legacy bit-identity, parallel fan-out, resume.

The acceptance gate of the experiment-API redesign: spec-driven runs
must be bit-identical to independent legacy
:class:`~repro.core.replay.ReplayEngine` replays (the semantics every
figure was validated against), for any ``jobs``, and resumed runs must
re-execute zero completed cells.
"""

import pytest

from repro.core.registry import PAPER_ORDER, make_method
from repro.core.replay import ReplayEngine
from repro.experiments import (
    CellKey,
    ExperimentSpec,
    MethodSpec,
    ResultStore,
    run_experiment,
)
from repro.graph.snapshot import HOUR


@pytest.fixture(scope="module")
def paper_spec():
    """The paper's five-method set at k=2 on the tiny workload."""
    return ExperimentSpec(
        scale="tiny", workload_seed=42, methods=tuple(PAPER_ORDER), ks=(2,),
        window_hours=24.0,
    )


@pytest.fixture(scope="module")
def paper_rs(paper_spec, tiny_workload):
    return run_experiment(paper_spec, workload=tiny_workload)


class TestBitIdentity:
    def test_matches_legacy_replay_engine(self, paper_spec, paper_rs, tiny_workload):
        """Every cell equals an independent legacy ReplayEngine run."""
        log = tiny_workload.builder.log
        for key in paper_spec.cells():
            legacy = ReplayEngine(
                log,
                make_method(key.method.name, key.k, seed=key.seed),
                metric_window=24 * HOUR,
            ).run()
            cell = paper_rs.cell(key)
            assert cell.series == legacy.series
            assert cell.events == list(legacy.events)
            assert cell.assignment == legacy.assignment.as_dict()
            assert cell.shard_weights == legacy.assignment.weights
            assert cell.total_moves == legacy.total_moves

    def test_matches_legacy_runner_grid(self, paper_spec, paper_rs, tiny_workload):
        """...and the runner facade returns the same data per cell."""
        from repro.analysis.runner import ExperimentRunner

        runner = ExperimentRunner(scale="tiny", seed=42, metric_window_hours=24.0)
        runner._workload = tiny_workload
        grid = runner.replay_grid(PAPER_ORDER, (2,), seed=1)
        for (name, k), replay in grid.items():
            cell = paper_rs.get(name, k)
            assert cell.series == replay.series
            assert cell.assignment == replay.assignment.as_dict()

    def test_parallel_identical_to_sequential(self, paper_spec, paper_rs, tiny_workload):
        par = run_experiment(paper_spec, jobs=2, workload=tiny_workload)
        assert par == paper_rs
        par3 = run_experiment(paper_spec, jobs=3, workload=tiny_workload)
        assert par3 == paper_rs


class TestRunPlanning:
    def test_only_restricts_cells(self, paper_spec, tiny_workload):
        key = CellKey(MethodSpec.parse("hash"), 2, 1)
        rs = run_experiment(paper_spec, workload=tiny_workload, only=[key])
        assert rs.keys() == (key,)

    def test_only_rejects_foreign_cells(self, paper_spec, tiny_workload):
        foreign = CellKey(MethodSpec.parse("hash"), 64, 1)
        with pytest.raises(ValueError, match="not in the spec's grid"):
            run_experiment(paper_spec, workload=tiny_workload, only=[foreign])

    def test_jobs_validated(self, paper_spec):
        with pytest.raises(ValueError, match="jobs"):
            run_experiment(paper_spec, jobs=0)

    def test_mismatched_workload_rejected(self, paper_spec):
        """A workload that does not match the spec must not replay (its
        results would be stored under the wrong identity)."""
        from repro.ethereum.workload import WorkloadConfig, generate_history

        wrong = generate_history(WorkloadConfig.tiny(seed=7))   # spec seed is 42
        with pytest.raises(ValueError, match="does not match the"):
            run_experiment(paper_spec, workload=wrong)

    def test_lazy_workload_not_generated_on_full_resume(self, paper_spec, tiny_workload, tmp_path):
        """With every cell in the store, a callable workload is never
        invoked — resumption costs no workload generation."""
        store = ResultStore(tmp_path / "results")
        first = run_experiment(paper_spec, workload=tiny_workload, store=store)

        def explode():
            raise AssertionError("workload generated on a fully-resumed run")

        second = run_experiment(paper_spec, workload=explode, store=store)
        assert second == first

    def test_callable_workload_used_when_cells_pending(self, paper_spec, tiny_workload):
        calls = []

        def provide():
            calls.append(1)
            return tiny_workload

        rs = run_experiment(paper_spec, workload=provide,
                            only=[paper_spec.cells()[0]])
        assert calls == [1]
        assert len(rs) == 1

    def test_distinct_replay_seeds_are_distinct_cells(self, tiny_workload):
        """Seeds must not collide: each (method, k, seed) is its own
        cell with its own independently-seeded method instance."""
        spec = ExperimentSpec(
            scale="tiny", methods=("metis",), ks=(2,), replay_seeds=(1, 2),
        )
        rs = run_experiment(spec, workload=tiny_workload)
        assert len(rs) == 2
        a = rs.get("metis", 2, seed=1)
        b = rs.get("metis", 2, seed=2)
        assert a.key != b.key
        # seeded METIS ntrials differ → assignments genuinely diverge
        assert a.assignment != b.assignment

    def test_progress_callback(self, paper_spec, tiny_workload):
        seen = []
        run_experiment(
            paper_spec, workload=tiny_workload,
            progress=lambda key, outcome: seen.append((key, outcome)),
        )
        assert [k for k, _ in seen] == list(paper_spec.cells())
        assert {o for _, o in seen} == {"computed"}


class TestResume:
    def test_resume_executes_zero_cells(self, paper_spec, tiny_workload, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "results")
        first = run_experiment(paper_spec, workload=tiny_workload, store=store)

        # poison the engine: any attempt to replay a cell now explodes
        import repro.core.multireplay as multireplay
        import repro.experiments.parallel as parallel

        def boom(*args, **kwargs):
            raise AssertionError("resumed run re-executed a cell")

        monkeypatch.setattr(multireplay, "MultiReplayEngine", boom)
        monkeypatch.setattr(parallel, "run_chunks_parallel", boom)

        outcomes = []
        second = run_experiment(
            paper_spec, workload=tiny_workload, store=store,
            progress=lambda key, outcome: outcomes.append(outcome),
        )
        assert second == first
        assert outcomes == ["loaded"] * len(paper_spec.cells())

    def test_partial_resume_completes_missing_cells(self, paper_spec, tiny_workload, tmp_path):
        store = ResultStore(tmp_path / "results")
        cells = paper_spec.cells()
        head, tail = cells[:2], cells[2:]
        run_experiment(paper_spec, workload=tiny_workload, store=store, only=head)
        outcomes = {}
        full = run_experiment(
            paper_spec, workload=tiny_workload, store=store,
            progress=lambda key, outcome: outcomes.__setitem__(key, outcome),
        )
        assert len(full) == len(cells)
        assert all(outcomes[k] == "loaded" for k in head)
        assert all(outcomes[k] == "computed" for k in tail)

    def test_store_ignores_corrupt_cell(self, paper_spec, tiny_workload, tmp_path):
        store = ResultStore(tmp_path / "results")
        run_experiment(paper_spec, workload=tiny_workload, store=store)
        key = paper_spec.cells()[0]
        store.cell_path(paper_spec, key).write_text("{not json", encoding="utf-8")
        assert store.load(paper_spec, key) is None
        rs = run_experiment(paper_spec, workload=tiny_workload, store=store)
        assert rs.cell(key).series.points  # recomputed cleanly

    def test_store_rejects_mismatched_key(self, paper_spec, tiny_workload, tmp_path):
        store = ResultStore(tmp_path / "results")
        rs = run_experiment(paper_spec, workload=tiny_workload, store=store)
        a, b = paper_spec.cells()[0], paper_spec.cells()[1]
        # masquerade: copy cell b's file over cell a's path
        store.cell_path(paper_spec, a).write_text(
            store.cell_path(paper_spec, b).read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert store.load(paper_spec, a) is None


class TestCustomMethodsInPools:
    def test_runtime_registrations_run_inline_without_fork(self, tiny_workload, monkeypatch):
        """Runtime-registered methods only exist in this interpreter;
        without fork semantics the pool must be skipped, not crashed."""
        import multiprocessing

        import repro.experiments.parallel as parallel
        from repro.core.hashing import HashPartitioner
        from repro.core.registry import _FACTORIES, register_method

        class Custom(HashPartitioner):
            name = "custom-hash"

        register_method("custom-hash", Custom)
        try:
            spec = ExperimentSpec(
                scale="tiny", methods=("hash", "custom-hash"), ks=(2, 4),
            )
            chunks = [[k] for k in spec.cells()]
            monkeypatch.setattr(
                multiprocessing, "get_start_method", lambda allow_none=True: "spawn"
            )
            assert not parallel._pool_can_run(chunks)
            # ...and the full path still produces correct results inline
            rs = run_experiment(spec, jobs=2, workload=tiny_workload)
            assert len(rs) == 4
            # built-in-only grids may still pool under spawn
            builtin = [[k] for k in ExperimentSpec(scale="tiny").cells()]
            assert parallel._pool_can_run(builtin)
        finally:
            _FACTORIES.pop("custom-hash", None)


class TestIncrementalPersistence:
    def test_on_chunk_fires_per_completed_chunk(self, tiny_workload):
        import repro.experiments.parallel as parallel

        spec = ExperimentSpec(scale="tiny", methods=("hash", "fennel"), ks=(2, 4))
        chunks = parallel.partition_cells(list(spec.cells()), 2)
        delivered = []
        out = parallel.run_chunks_parallel(
            tiny_workload.builder.log, 24 * HOUR, chunks, 2,
            on_chunk=delivered.append,
        )
        assert len(delivered) == len(chunks)
        # every chunk's results were delivered exactly once, aligned
        assert sorted(c.key.label for r in delivered for c in r) == sorted(
            c.key.label for r in out for c in r
        )

    def test_parallel_cells_persist_as_chunks_finish(self, tiny_workload, tmp_path):
        """run_experiment saves through on_chunk (not after the whole
        grid), so finished chunks survive an interruption."""
        import repro.experiments.run as runmod

        spec = ExperimentSpec(scale="tiny", methods=("hash", "fennel"), ks=(2, 4))
        store = ResultStore(tmp_path / "results")
        seen_on_disk = []
        orig = runmod.run_chunks_parallel

        def spying(log, window, chunks, jobs, on_chunk=None, **kw):
            def wrapped(cells):
                on_chunk(cells)
                # immediately after each chunk lands, its cells must
                # already be on disk
                for c in cells:
                    seen_on_disk.append(store.load(spec, c.key) is not None)
            return orig(log, window, chunks, jobs, on_chunk=wrapped, **kw)

        runmod.run_chunks_parallel = spying
        try:
            run_experiment(spec, jobs=2, workload=tiny_workload, store=store)
        finally:
            runmod.run_chunks_parallel = orig
        assert seen_on_disk and all(seen_on_disk)
