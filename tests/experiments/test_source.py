"""LogSource threading: trace-backed specs, runners and worker pools.

The acceptance gate of the trace-backed data layer: ``run_experiment``
over a trace-file :class:`TraceSource` must produce cell-for-cell
identical results to the same grid run from the equivalent in-memory
synthetic workload, for ``jobs`` ∈ {1, 2} — the binary format, the
zero-copy loader, the spec plumbing and the mmap-per-worker pool path
all sit between those two runs.
"""

import pytest

from repro.experiments import (
    ExperimentSpec,
    LogSource,
    ResultStore,
    SyntheticSource,
    TraceSource,
    run_experiment,
)
from repro.graph.columnar import ColumnarLog
from repro.graph.io import write_columnar, write_trace

METHODS = ("hash", "fennel", "metis")


@pytest.fixture(scope="module")
def trace_file(tiny_workload, tmp_path_factory):
    """The tiny workload exported as a binary rctrace v2 file."""
    path = tmp_path_factory.mktemp("traces") / "tiny.rct"
    write_columnar(ColumnarLog(tiny_workload.builder.log), path)
    return path


@pytest.fixture(scope="module")
def synthetic_rs(tiny_workload):
    spec = ExperimentSpec(scale="tiny", workload_seed=42,
                          methods=METHODS, ks=(2, 4))
    return run_experiment(spec, workload=tiny_workload)


class TestSourceValues:
    def test_synthetic_identity_matches_legacy_workload_id(self):
        spec = ExperimentSpec(scale="tiny", workload_seed=7)
        assert spec.workload_id() == "tiny-w7-win24h"
        assert spec.log_source == SyntheticSource(scale="tiny", seed=7)
        assert not spec.is_trace_sourced

    def test_trace_path_normalises_to_trace_source(self, trace_file):
        spec = ExperimentSpec(source=str(trace_file))
        assert spec.source == TraceSource(path=str(trace_file))
        assert spec.is_trace_sourced
        assert spec.workload_id().startswith("trace-tiny-")
        with pytest.raises(ValueError, match="no\\s+synthetic workload config"):
            spec.workload_config()

    def test_synthetic_source_normalises_into_scale_seed(self):
        spec = ExperimentSpec(source=SyntheticSource(scale="tiny", seed=9))
        assert spec.source is None
        assert (spec.scale, spec.workload_seed) == ("tiny", 9)
        assert spec == ExperimentSpec(scale="tiny", workload_seed=9)

    def test_spec_json_round_trips_source(self, trace_file):
        spec = ExperimentSpec(source=str(trace_file), methods=("hash",))
        data = spec.to_dict()
        assert data["source"] == {"kind": "trace", "path": str(trace_file)}
        assert ExperimentSpec.from_dict(data) == spec
        # synthetic specs keep their pre-source JSON shape
        plain = ExperimentSpec(scale="tiny")
        assert "source" not in plain.to_dict()
        assert ExperimentSpec.from_dict(plain.to_dict()) == plain

    def test_log_source_from_dict_dispatch(self, trace_file):
        assert LogSource.from_dict(
            {"kind": "synthetic", "scale": "tiny", "seed": 3}
        ) == SyntheticSource(scale="tiny", seed=3)
        assert LogSource.from_dict(
            {"kind": "trace", "path": str(trace_file)}
        ) == TraceSource(path=str(trace_file))
        with pytest.raises(ValueError, match="unknown log-source kind"):
            LogSource.from_dict({"kind": "quantum"})

    def test_trace_identities_distinguish_paths(self, tmp_path):
        a = TraceSource(path=str(tmp_path / "a.rct"))
        b = TraceSource(path=str(tmp_path / "b.rct"))
        assert a.identity != b.identity
        assert a.identity == TraceSource(path=str(tmp_path / "a.rct")).identity


class TestTraceBitIdentity:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_trace_run_equals_synthetic_run(self, trace_file, synthetic_rs, jobs):
        """The acceptance criterion: same grid, trace-file source,
        jobs ∈ {1, 2} — cell-for-cell identical results."""
        spec = ExperimentSpec(source=str(trace_file), methods=METHODS, ks=(2, 4))
        rs = run_experiment(spec, jobs=jobs)
        assert rs.keys() == synthetic_rs.keys()
        for key in rs.keys():
            assert rs.cell(key) == synthetic_rs.cell(key), key.label

    def test_text_trace_source_also_bit_identical(
        self, tiny_workload, synthetic_rs, tmp_path
    ):
        """Text v1 now carries repr-precision timestamps, so even the
        human-readable format round-trips into identical replays."""
        path = tmp_path / "tiny.txt"
        write_trace(tiny_workload.builder.log, path)
        spec = ExperimentSpec(source=str(path), methods=METHODS, ks=(2, 4))
        rs = run_experiment(spec)
        for key in rs.keys():
            assert rs.cell(key) == synthetic_rs.cell(key), key.label

    def test_workload_arg_rejected_for_trace_specs(self, trace_file, tiny_workload):
        spec = ExperimentSpec(source=str(trace_file), methods=("hash",))
        with pytest.raises(ValueError, match="pass log="):
            run_experiment(spec, workload=tiny_workload)

    def test_preloaded_log_short_circuits_source(self, trace_file, tiny_workload):
        """run_experiment(log=...) replays a caller-opened log without
        touching the source (the 'preloaded log' entry point)."""
        from repro.graph.io import load_columnar

        spec = ExperimentSpec(source=str(trace_file), methods=("hash",), ks=(2,))
        preloaded = load_columnar(trace_file)
        opened = []
        orig = TraceSource.load
        try:
            TraceSource.load = lambda self: opened.append(self) or orig(self)
            rs = run_experiment(spec, log=preloaded)
        finally:
            TraceSource.load = orig
        assert not opened
        direct = run_experiment(spec)
        assert rs.cell(spec.cells()[0]) == direct.cell(spec.cells()[0])

    def test_log_and_workload_mutually_exclusive(self, tiny_workload):
        spec = ExperimentSpec(scale="tiny", methods=("hash",))
        with pytest.raises(ValueError, match="not both"):
            run_experiment(spec, workload=tiny_workload,
                           log=tiny_workload.builder.log)


class TestTraceResume:
    def test_trace_sweep_resumes_without_opening_the_trace(
        self, trace_file, tmp_path, monkeypatch
    ):
        """With every cell stored, a resumed trace sweep neither loads
        the trace nor replays a cell — resume is instant."""
        spec = ExperimentSpec(source=str(trace_file), methods=("hash", "fennel"),
                              ks=(2,))
        store = ResultStore(tmp_path / "results")
        first = run_experiment(spec, store=store)

        def boom(self):
            raise AssertionError("resumed trace run re-opened the trace")

        monkeypatch.setattr(TraceSource, "load", boom)
        second = run_experiment(spec, store=store)
        assert second == first

    def test_store_keys_trace_and_synthetic_apart(
        self, trace_file, tiny_workload, tmp_path
    ):
        """The trace identity is part of the store layout, so the same
        grid from different sources never collides."""
        store = ResultStore(tmp_path / "results")
        synth = ExperimentSpec(scale="tiny", methods=("hash",), ks=(2,))
        trace = ExperimentSpec(source=str(trace_file), methods=("hash",), ks=(2,))
        run_experiment(synth, workload=tiny_workload, store=store)
        run_experiment(trace, store=store)
        key = synth.cells()[0]
        assert store.cell_path(synth, key) != store.cell_path(trace, key)
        assert store.cell_path(synth, key).exists()
        assert store.cell_path(trace, key).exists()


class TestRunnerFacadeWithTrace:
    def test_trace_runner_grid_matches_synthetic_runner(
        self, trace_file, tiny_workload
    ):
        from repro.analysis.runner import ExperimentRunner

        synth = ExperimentRunner(scale="tiny", seed=42, metric_window_hours=24.0)
        synth._workload = tiny_workload
        traced = ExperimentRunner(metric_window_hours=24.0, source=str(trace_file))
        g1 = synth.replay_grid(("hash", "fennel"), (2,))
        g2 = traced.replay_grid(("hash", "fennel"), (2,))
        for key in g1:
            assert g1[key].series == g2[key].series
            assert g1[key].assignment.as_dict() == g2[key].assignment.as_dict()

    def test_trace_runner_has_log_but_no_workload(self, trace_file):
        from repro.analysis.runner import ExperimentRunner

        runner = ExperimentRunner(source=str(trace_file))
        assert len(runner.log) > 0
        assert runner.log is runner.log          # memoised
        with pytest.raises(ValueError, match="no\\s+synthetic workload"):
            runner.workload

    def test_runner_rejects_synthetic_source_value(self):
        from repro.analysis.runner import ExperimentRunner

        with pytest.raises(ValueError, match="scale=/seed="):
            ExperimentRunner(source=SyntheticSource(scale="tiny", seed=1))


class TestFigureDriversWithTrace:
    def test_fig5_and_pitfall_run_from_a_trace(self, trace_file):
        """--source is advertised for fig5/pitfall: both drivers must
        work off runner.log instead of the synthetic workload."""
        from repro.analysis.fig5 import compute_fig5
        from repro.analysis.pitfall import compute_pitfall
        from repro.analysis.runner import ExperimentRunner

        runner = ExperimentRunner(metric_window_hours=24.0,
                                  source=str(trace_file))
        rows = compute_fig5(runner, ks=(2,), methods=("hash",))
        assert len(rows) == 1 and rows[0].method == "hash"
        pit = compute_pitfall(runner, k=2, methods=("hash",))
        assert {r.method for r in pit} == {"single-shard", "hash", "random"}
        assert all(r.throughput > 0 for r in pit)


class TestUnpicklableLogFanOut:
    def test_mmap_log_with_spawn_runs_inline(self, trace_file, monkeypatch):
        """A buffer-backed ColumnarLog cannot cross a spawn pool; the
        fan-out must fall back inline instead of raising a pickling
        TypeError."""
        import repro.experiments.parallel as parallel
        from repro.graph.io import load_columnar
        from repro.graph.snapshot import HOUR

        spec = ExperimentSpec(source=str(trace_file),
                              methods=("hash", "fennel"), ks=(2, 4))
        chunks = parallel.partition_cells(list(spec.cells()), 2)
        mmapped = load_columnar(trace_file)
        monkeypatch.setattr(parallel, "_start_method", lambda: "spawn")
        out = parallel.run_chunks_parallel(mmapped, 24 * HOUR, chunks, 2)
        cells = [c for chunk in out for c in chunk]
        assert sorted(c.key.label for c in cells) == sorted(
            k.label for k in spec.cells()
        )
        # ...and the TraceSource handle still fans out under any start
        # method (each worker opens the mmap itself)
        src = TraceSource(path=str(trace_file))
        out2 = parallel.run_chunks_parallel(src, 24 * HOUR, chunks, 2)
        assert [[c.key for c in chunk] for chunk in out2] == [
            [c.key for c in chunk] for chunk in out
        ]


class TestTracePathPinning:
    def test_relative_path_pinned_at_construction(self, trace_file, monkeypatch):
        """A TraceSource built from a relative path keeps its identity
        (and loadability) when the consumer's cwd changes — store
        resume must not silently recompute from another directory."""
        import os

        monkeypatch.chdir(trace_file.parent)
        src = TraceSource(path=trace_file.name)
        assert os.path.isabs(src.path)
        assert src == TraceSource(path=str(trace_file))
        pinned = src.identity
        monkeypatch.chdir(trace_file.parent.parent)
        assert src.identity == pinned
        assert len(src.load()) > 0            # loads from anywhere


class TestV3TraceSource:
    """Version-agnostic sniffing: a compressed v3 trace behaves exactly
    like its v2 twin behind TraceSource / ExperimentSpec."""

    @pytest.fixture(scope="class")
    def v3_trace_file(self, tiny_workload, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "tiny_v3.rct"
        write_columnar(ColumnarLog(tiny_workload.builder.log), path, version=3)
        return path

    def test_v3_loads_identical_to_v2(self, trace_file, v3_trace_file):
        v2_log = TraceSource(path=str(trace_file)).load()
        v3_log = TraceSource(path=str(v3_trace_file)).load()
        assert v3_log.identical(v2_log)

    def test_v3_is_smaller_than_v2(self, trace_file, v3_trace_file):
        assert v3_trace_file.stat().st_size < trace_file.stat().st_size

    def test_v3_sweep_is_cell_identical_to_synthetic(self, v3_trace_file,
                                                     synthetic_rs):
        spec = ExperimentSpec(source=str(v3_trace_file),
                              methods=METHODS, ks=(2, 4))
        rs = run_experiment(spec)
        assert set(rs.keys()) == set(synthetic_rs.keys())
        for key in synthetic_rs.keys():
            assert rs.cell(key) == synthetic_rs.cell(key)
