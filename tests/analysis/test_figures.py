"""Tests for the figure-regeneration pipeline (computations + renderers).

These run on the shared *small* workload, so they both exercise the
analysis code and serve as integration tests of the whole stack.
"""

import math

import pytest

from repro.analysis.fig1 import attack_growth_factor, compute_fig1, render_fig1
from repro.analysis.fig2 import compute_fig2, contracts_without_incoming, render_fig2
from repro.analysis.fig3 import compute_fig3, render_fig3
from repro.analysis.fig4 import compute_fig4, median_table, render_fig4
from repro.analysis.fig5 import compute_fig5, hash_k8_multishard, render_fig5
from repro.analysis.runner import ExperimentRunner, config_for_scale
from repro.ethereum.history import ATTACK_END, ATTACK_START


class TestRunner:
    def test_config_for_scale(self):
        assert config_for_scale("tiny", 1).total_transactions < 1000
        with pytest.raises(ValueError):
            config_for_scale("galactic", 1)

    def test_replay_cached(self, small_runner):
        a = small_runner.replay("hash", 2, seed=1)
        b = small_runner.replay("hash", 2, seed=1)
        assert a is b

    def test_replay_kwargs_key_the_cache(self, small_runner):
        """Parameterised replays are distinct, first-class cache
        entries (MethodSpec keys) — not cache bypasses."""
        a = small_runner.replay("hash", 2, seed=1)
        b = small_runner.replay("hash", 2, seed=1, salt=3)
        assert a is not b
        assert small_runner.replay("hash", 2, seed=1, salt=3) is b


class TestFig1:
    def test_growth_monotone(self, small_workload):
        points = compute_fig1(small_workload)
        verts = [p.vertices for p in points]
        edges = [p.edges for p in points]
        assert verts == sorted(verts)
        assert edges == sorted(edges)

    def test_attack_jump(self, small_workload):
        points = compute_fig1(small_workload)
        factor = attack_growth_factor(points)
        assert factor > 3.0  # paper: order of magnitude at full scale

    def test_superlinear_post_attack(self, small_workload):
        points = compute_fig1(small_workload)
        post = [p for p in points if p.ts > ATTACK_END]
        growth = post[-1].interactions - post[0].interactions
        pre = [p for p in points if p.ts <= ATTACK_START]
        pre_growth = pre[-1].interactions - pre[0].interactions if len(pre) > 1 else 0
        assert growth > pre_growth

    def test_render(self, small_workload):
        out = render_fig1(compute_fig1(small_workload))
        assert "Fig. 1" in out
        assert "vertices (log)" in out

    def test_empty_workload(self):
        from repro.ethereum.workload import WorkloadResult, WorkloadConfig
        from repro.graph.builder import GraphBuilder
        from repro.ethereum.chain import Blockchain

        empty = WorkloadResult(WorkloadConfig(), GraphBuilder(), Blockchain())
        assert compute_fig1(empty) == []


class TestFig2:
    def test_subgraph_extracted(self, small_workload):
        report = compute_fig2(small_workload)
        assert report is not None
        assert report.graph.num_vertices > 2
        assert report.num_contracts >= 1
        assert report.center in report.graph

    def test_no_orphan_contracts_in_full_graph(self, small_workload):
        assert contracts_without_incoming(small_workload.graph) == 0

    def test_render(self, small_workload):
        out = render_fig2(compute_fig2(small_workload))
        assert "Fig. 2" in out
        assert "->" in out


class TestFig3:
    def test_summary_shapes(self, small_runner):
        data = compute_fig3(small_runner)
        s = data.summary()
        # hashing: balanced, ~50% cut, no moves
        assert 0.40 <= s["hash_static_cut"] <= 0.60
        assert s["hash_static_balance"] < 1.25
        assert s["hash_moves"] == 0
        # METIS: much lower cut, repartitions every two weeks, many moves
        assert s["metis_dynamic_cut"] < 0.6 * s["hash_dynamic_cut"]
        assert s["metis_repartitions"] >= 50
        assert s["metis_moves"] > 1000
        # the attack anomaly: post-attack dynamic balance well above 1
        assert s["metis_post_attack_dyn_balance"] > 1.3

    def test_render(self, small_runner):
        out = render_fig3(compute_fig3(small_runner))
        assert "(a) Hashing" in out and "(b) METIS" in out


class TestFig4:
    def test_cells_cover_methods_and_periods(self, small_runner):
        cells = compute_fig4(small_runner, k=2)
        methods = {c.method for c in cells}
        assert methods == {"hash", "kl", "metis", "p-metis", "tr-metis"}
        periods = {c.period for c in cells}
        assert len(periods) == 4

    def test_hash_zero_moves_everywhere(self, small_runner):
        cells = compute_fig4(small_runner, k=2)
        assert all(c.moves == 0 for c in cells if c.method == "hash")

    def test_metis_moves_dominate(self, small_runner):
        table = median_table(compute_fig4(small_runner, k=2))
        for period in {p for (_, p) in table}:
            metis = table[("metis", period)]["moves"]
            trm = table[("tr-metis", period)]["moves"]
            assert metis > trm

    def test_hash_worst_edge_cut(self, small_runner):
        table = median_table(compute_fig4(small_runner, k=2))
        for period in {p for (_, p) in table}:
            hash_cut = table[("hash", period)]["edge_cut"]
            for m in ("kl", "metis"):
                assert table[(m, period)]["edge_cut"] < hash_cut

    def test_render(self, small_runner):
        out = render_fig4(compute_fig4(small_runner, k=2))
        assert "Fig. 4" in out
        assert "moves per period" in out


class TestFig5:
    @pytest.fixture(scope="class")
    def rows(self, small_runner):
        return compute_fig5(small_runner)

    def test_covers_grid(self, rows):
        assert len(rows) == 5 * 3
        assert {r.k for r in rows} == {2, 4, 8}

    def test_edge_cut_worsens_with_k(self, rows):
        """Paper: 'dynamic edge-cut becomes worse as the number of
        shards increases' — for every method."""
        for method in {r.method for r in rows}:
            cuts = {r.k: r.dynamic_edge_cut for r in rows if r.method == method}
            assert cuts[2] < cuts[8]

    def test_hash_has_no_moves(self, rows):
        assert all(r.total_moves == 0 for r in rows if r.method == "hash")

    def test_hash_k8_headline(self, rows):
        """Paper §II-C: hashing at k=8 ⇒ ~88% multi-shard transactions."""
        ratio = hash_k8_multishard(rows)
        assert 0.80 <= ratio <= 0.95

    def test_metis_beats_hash_on_cut(self, rows):
        for k in (2, 4, 8):
            metis = next(r for r in rows if r.method == "metis" and r.k == k)
            hashr = next(r for r in rows if r.method == "hash" and r.k == k)
            assert metis.dynamic_edge_cut < hashr.dynamic_edge_cut

    def test_hash_beats_metis_on_balance(self, rows):
        wins = 0
        for k in (2, 4, 8):
            metis = next(r for r in rows if r.method == "metis" and r.k == k)
            hashr = next(r for r in rows if r.method == "hash" and r.k == k)
            if hashr.normalized_dynamic_balance < metis.normalized_dynamic_balance:
                wins += 1
        assert wins >= 2  # the tradeoff holds across shard counts

    def test_trmetis_moves_below_rmetis(self, rows):
        """Paper: TR-METIS dramatically reduces moves vs R-/P-METIS."""
        for k in (2, 4, 8):
            tr = next(r for r in rows if r.method == "tr-metis" and r.k == k)
            pm = next(r for r in rows if r.method == "p-metis" and r.k == k)
            assert tr.total_moves < pm.total_moves

    def test_render(self, rows):
        out = render_fig5(rows)
        assert "Fig. 5" in out
        assert "x-shard tx" in out
