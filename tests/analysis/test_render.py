"""Unit tests for ASCII rendering helpers."""

from repro.analysis.render import ascii_table, box_plot_row, format_si, sparkline


class TestTable:
    def test_alignment(self):
        out = ascii_table(["a", "bb"], [["x", 1], ["yyy", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = ascii_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = ascii_table(["v"], [[0.123456]])
        assert "0.123" in out

    def test_scientific_for_extremes(self):
        out = ascii_table(["v"], [[1e9]])
        assert "e+" in out.lower()

    def test_ragged_rows_padded(self):
        out = ascii_table(["a", "b"], [["only-a"]])
        assert "only-a" in out


class TestSparkline:
    def test_length_capped(self):
        assert len(sparkline(list(range(500)), width=60)) == 60

    def test_short_series_kept(self):
        assert len(sparkline([1, 2, 3], width=60)) == 3

    def test_constant_series(self):
        s = sparkline([5, 5, 5])
        assert len(set(s)) == 1

    def test_monotone_intensity(self):
        s = sparkline([0.0, 0.5, 1.0])
        assert s[0] == " " and s[-1] == "@"

    def test_log_mode(self):
        s = sparkline([1, 10, 100, 1000], log=True)
        assert len(s) == 4

    def test_empty(self):
        assert sparkline([]) == ""


class TestBoxPlot:
    def test_markers_present(self):
        row = box_plot_row(0.0, 0.25, 0.5, 0.75, 1.0, 0.0, 1.0, width=41)
        assert row.count("|") == 2
        assert "M" in row
        assert "=" in row

    def test_median_position(self):
        row = box_plot_row(0.0, 0.0, 0.5, 1.0, 1.0, 0.0, 1.0, width=41)
        assert row.index("M") == 20

    def test_degenerate_range(self):
        row = box_plot_row(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, width=10)
        assert len(row) == 10


class TestFormatSI:
    def test_plain(self):
        assert format_si(123) == "123"

    def test_kilo_mega_giga(self):
        assert format_si(1_500) == "1.5k"
        assert format_si(2_000_000) == "2.0M"
        assert format_si(3_100_000_000) == "3.1G"
