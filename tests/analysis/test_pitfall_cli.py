"""Tests for the pitfall experiment and the CLI."""

import pytest

from repro.analysis.cli import main
from repro.analysis.pitfall import compute_pitfall, render_pitfall
from repro.analysis.runner import ExperimentRunner


class TestPitfall:
    @pytest.fixture(scope="class")
    def rows(self, small_runner):
        return compute_pitfall(small_runner, k=4, max_interactions=6_000)

    def test_has_baseline_and_methods(self, rows):
        methods = [r.method for r in rows]
        assert methods[0] == "single-shard"
        assert "metis" in methods and "random" in methods

    def test_speedups_below_ideal(self, rows):
        """The pitfall: k shards never deliver k-fold throughput under
        a real multi-shard workload."""
        for r in rows[1:]:
            assert r.speedup_vs_single < r.k

    def test_multi_shard_ratio_bounds(self, rows):
        for r in rows:
            assert 0.0 <= r.multi_shard_ratio <= 1.0

    def test_baseline_normalised(self, rows):
        assert rows[0].speedup_vs_single == 1.0
        assert rows[0].multi_shard_ratio == 0.0

    def test_render(self, rows):
        out = render_pitfall(rows)
        assert "EXT-PITFALL" in out
        assert "speedup" in out


class TestCLI:
    def test_fig1_runs(self, capsys):
        assert main(["fig1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--scale", "tiny"]) == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--scale", "huge"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_list_methods(self, capsys):
        assert main(["--list-methods"]) == 0
        out = capsys.readouterr().out
        assert "tr-metis" in out
        assert "cut_threshold" in out       # parameters are listed
        assert "salt" in out

    def test_sweep_writes_resultset(self, capsys, tmp_path):
        from repro.experiments import ResultSet

        out_file = tmp_path / "rs.json"
        assert main([
            "sweep", "--scale", "tiny",
            "--methods", "hash,fennel?gamma=2.0",
            "--grid", "2,4",
            "--jobs", "2",
            "--out", str(out_file),
        ]) == 0
        printed = capsys.readouterr().out
        assert "sweep: 4 cells" in printed
        assert "fennel?gamma=2.0" in printed
        rs = ResultSet.loads(out_file.read_text(encoding="utf-8"))
        assert len(rs) == 4
        assert rs.get("fennel?gamma=2.0", 4).total_moves == 0

    def test_sweep_resumes_from_store(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        args = ["sweep", "--scale", "tiny", "--methods", "hash",
                "--grid", "2", "--store", store_dir]
        assert main(args) == 0
        capsys.readouterr()
        # second invocation loads from the store (separate process in
        # real use; here: a fresh runner with an empty memo)
        assert main(args) == 0
        assert "sweep: 1 cells" in capsys.readouterr().out
