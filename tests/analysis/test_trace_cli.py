"""Tests for the repro-trace dataset CLI."""

import pytest

from repro.analysis.trace_cli import main


class TestExport:
    def test_export_and_stats_round_trip(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        assert main(["export", "--scale", "tiny", "--seed", "7",
                     "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert out.exists()

        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "trace statistics" in text
        assert "calls/tx" in text

    def test_export_gzip(self, tmp_path, capsys):
        out = tmp_path / "trace.txt.gz"
        assert main(["export", "--scale", "tiny", "--out", str(out)]) == 0
        with open(out, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"


class TestVerify:
    def test_verify_good_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        main(["export", "--scale", "tiny", "--out", str(out)])
        capsys.readouterr()
        assert main(["verify", str(out)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_rejects_out_of_order(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("5.0 0 1 A 2 A\n1.0 1 2 A 3 A\n")
        assert main(["verify", str(path)]) == 1
        assert "out-of-order" in capsys.readouterr().err

    def test_verify_rejects_malformed(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("not a trace line\n")
        assert main(["verify", str(path)]) == 1

    def test_stats_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# only comments\n")
        assert main(["stats", str(path)]) == 1
