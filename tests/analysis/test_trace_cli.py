"""Tests for the repro-trace dataset CLI."""

import pytest

from repro.analysis.trace_cli import main


class TestExport:
    def test_export_and_stats_round_trip(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        assert main(["export", "--scale", "tiny", "--seed", "7",
                     "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert out.exists()

        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "trace statistics" in text
        assert "calls/tx" in text

    def test_export_gzip(self, tmp_path, capsys):
        out = tmp_path / "trace.txt.gz"
        assert main(["export", "--scale", "tiny", "--out", str(out)]) == 0
        with open(out, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"

    def test_export_binary_by_flag_and_extension(self, tmp_path, capsys):
        from repro.graph.io import TRACE_MAGIC, trace_format

        by_ext = tmp_path / "trace.rct"
        assert main(["export", "--scale", "tiny", "--out", str(by_ext)]) == 0
        assert "binary v2" in capsys.readouterr().out
        assert by_ext.read_bytes()[:8] == TRACE_MAGIC

        by_flag = tmp_path / "trace.dat"
        assert main(["export", "--scale", "tiny", "--format", "binary",
                     "--out", str(by_flag)]) == 0
        assert trace_format(by_flag) == "binary"


class TestConvert:
    def test_convert_round_trip(self, tmp_path, capsys):
        from repro.graph.io import load_trace_log

        text = tmp_path / "t.txt"
        main(["export", "--scale", "tiny", "--seed", "3", "--out", str(text)])
        binary = tmp_path / "t.rct"
        assert main(["convert", str(text), str(binary)]) == 0
        assert "[text v1] -> " in capsys.readouterr().out
        back = tmp_path / "back.txt"
        assert main(["convert", str(binary), str(back)]) == 0
        assert load_trace_log(back).identical(load_trace_log(text))

    def test_convert_reports_bad_input(self, tmp_path, capsys):
        bad = tmp_path / "junk.rct"
        bad.write_text("not a trace\n")
        out = tmp_path / "out.txt"
        # text junk sniffs as text and fails to parse cleanly
        assert main(["convert", str(bad), str(out)]) == 1
        assert "FAIL" in capsys.readouterr().err


class TestStatsWindows:
    def test_stats_reports_per_window_activity(self, tmp_path, capsys):
        out = tmp_path / "trace.rct"
        main(["export", "--scale", "tiny", "--seed", "7", "--out", str(out)])
        capsys.readouterr()
        assert main(["stats", str(out), "--window-hours", "168"]) == 0
        text = capsys.readouterr().out
        assert "binary format" in text
        assert "per-window activity (window = 168h)" in text
        assert "interactions" in text and "new" in text

    def test_stats_window_table_disabled_with_zero(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        main(["export", "--scale", "tiny", "--out", str(out)])
        capsys.readouterr()
        assert main(["stats", str(out), "--window-hours", "0"]) == 0
        assert "per-window activity" not in capsys.readouterr().out


class TestVerify:
    def test_verify_good_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        main(["export", "--scale", "tiny", "--out", str(out)])
        capsys.readouterr()
        assert main(["verify", str(out)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_good_binary_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.rct"
        main(["export", "--scale", "tiny", "--out", str(out)])
        capsys.readouterr()
        assert main(["verify", str(out)]) == 0
        assert "checksum + ordering verified" in capsys.readouterr().out

    def test_verify_corrupt_binary_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.rct"
        main(["export", "--scale", "tiny", "--out", str(out)])
        capsys.readouterr()
        data = bytearray(out.read_bytes())
        data[80] ^= 0xFF
        out.write_bytes(bytes(data))
        assert main(["verify", str(out)]) == 1
        assert "checksum" in capsys.readouterr().err

    def test_verify_rejects_out_of_order(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("5.0 0 1 A 2 A\n1.0 1 2 A 3 A\n")
        assert main(["verify", str(path)]) == 1
        assert "out-of-order" in capsys.readouterr().err

    def test_verify_rejects_malformed(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("not a trace line\n")
        assert main(["verify", str(path)]) == 1

    def test_stats_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# only comments\n")
        assert main(["stats", str(path)]) == 1


class TestStatsMalformedInput:
    def test_stats_out_of_order_text_reports_fail(self, tmp_path, capsys):
        """stats must degrade to a FAIL message on unordered traces,
        like verify does — never a raw ValueError traceback."""
        path = tmp_path / "bad.txt"
        path.write_text("5.0 0 1 A 2 A\n1.0 1 2 A 3 A\n")
        assert main(["stats", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err
