"""ExperimentRunner facade: caching semantics over the experiment API.

Covers the redesign's back-compat contract: parameterised replays now
participate in the memo (the old kwargs path silently bypassed it),
replay seeds key the cache, and registry aliases share a factory but
not cache entries.
"""

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.core.replay import ReplayEngine
from repro.experiments import ResultStore
from repro.graph.snapshot import HOUR


@pytest.fixture()
def tiny_runner(tiny_workload):
    runner = ExperimentRunner(scale="tiny", seed=42, metric_window_hours=24.0)
    runner._workload = tiny_workload
    return runner


class TestParameterisedCaching:
    def test_kwargs_replays_are_cached(self, tiny_runner):
        a = tiny_runner.replay("hash", 2, seed=1, salt=3)
        b = tiny_runner.replay("hash", 2, seed=1, salt=3)
        assert a is b

    def test_kwargs_distinguish_cache_entries(self, tiny_runner):
        a = tiny_runner.replay("hash", 2, seed=1)
        b = tiny_runner.replay("hash", 2, seed=1, salt=3)
        assert a is not b

    def test_cached_parameterised_run_bit_identical_to_fresh(self, tiny_runner, tiny_workload):
        """Regression for the old kwargs wart: the memoised result of a
        parameterised replay must equal a fresh engine run exactly."""
        kwargs = dict(cut_threshold=0.3, balance_threshold=0.3)
        cached = tiny_runner.replay("tr-metis", 2, seed=1, **kwargs)
        assert tiny_runner.replay("tr-metis", 2, seed=1, **kwargs) is cached

        from repro.core.registry import make_method

        fresh = ReplayEngine(
            tiny_workload.builder.log,
            make_method("tr-metis", 2, seed=1, **kwargs),
            metric_window=24 * HOUR,
        ).run()
        assert cached.series == fresh.series
        assert list(cached.events) == list(fresh.events)
        assert cached.assignment.as_dict() == fresh.assignment.as_dict()

    def test_method_string_equivalent_to_kwargs(self, tiny_runner):
        a = tiny_runner.replay("tr-metis?cut_threshold=0.3", 2, seed=1,
                               balance_threshold=0.3)
        b = tiny_runner.replay("tr-metis", 2, seed=1,
                               cut_threshold=0.3, balance_threshold=0.3)
        assert a is b


class TestSeedHandling:
    def test_grid_seeds_do_not_collide(self, tiny_runner):
        g1 = tiny_runner.replay_grid(("metis",), (2,), seed=1)
        g2 = tiny_runner.replay_grid(("metis",), (2,), seed=2)
        assert g1[("metis", 2)] is not g2[("metis", 2)]
        # both survive in the memo (the second run must not evict or
        # overwrite the first)
        assert tiny_runner.replay("metis", 2, seed=1) is g1[("metis", 2)]
        assert tiny_runner.replay("metis", 2, seed=2) is g2[("metis", 2)]
        # seeded multilevel trials genuinely diverge
        assert (g1[("metis", 2)].assignment.as_dict()
                != g2[("metis", 2)].assignment.as_dict())

    def test_aliases_share_factory_but_not_cache_entries(self, tiny_runner):
        grid = tiny_runner.replay_grid(("p-metis", "r-metis"), (2,), seed=1)
        p, r = grid[("p-metis", 2)], grid[("r-metis", 2)]
        assert p is not r
        # same factory → same decisions, entry-for-entry
        assert p.series == r.series
        assert p.assignment.as_dict() == r.assignment.as_dict()


class TestFacadeOverSpecs:
    def test_results_for_shares_cells_with_replay(self, tiny_runner):
        rs = tiny_runner.results_for(("hash", "metis"), (2,), seed=1)
        replay = tiny_runner.replay("metis", 2, seed=1)
        assert rs.get("metis", 2).series is replay.series

    def test_run_rejects_foreign_spec(self, tiny_runner):
        from repro.experiments import ExperimentSpec

        foreign = ExperimentSpec(scale="tiny", workload_seed=7, methods=("hash",))
        with pytest.raises(ValueError, match="does not match this runner"):
            tiny_runner.run(foreign)

    def test_runner_with_store_resumes(self, tiny_workload, tmp_path):
        store = ResultStore(tmp_path / "results")
        r1 = ExperimentRunner(scale="tiny", seed=42, store=store)
        r1._workload = tiny_workload
        first = r1.replay("fennel", 2, seed=1)

        # a brand-new runner (fresh memo) loads from the store instead
        # of recomputing; the loaded replay has no shared graph
        r2 = ExperimentRunner(scale="tiny", seed=42, store=store)
        r2._workload = tiny_workload
        second = r2.replay("fennel", 2, seed=1)
        assert second.graph is None
        assert second.series == first.series
        assert second.assignment.as_dict() == first.assignment.as_dict()

    def test_runner_parallel_jobs_match_sequential(self, tiny_workload):
        seq = ExperimentRunner(scale="tiny", seed=42)
        seq._workload = tiny_workload
        par = ExperimentRunner(scale="tiny", seed=42, jobs=2)
        par._workload = tiny_workload
        a = seq.results_for(("hash", "kl", "fennel"), (2, 4), seed=1)
        b = par.results_for(("hash", "kl", "fennel"), (2, 4), seed=1)
        assert a == b
