"""Unit tests for blocks and the chain."""

import pytest

from repro.errors import InvalidBlockError
from repro.ethereum.block import BlockHeader, make_genesis
from repro.ethereum.chain import BLOCK_REWARD, Blockchain
from repro.ethereum.state import WorldState
from repro.ethereum.transaction import Transaction


@pytest.fixture()
def chain_and_actors():
    state = WorldState()
    chain = Blockchain(state)
    sender = state.create_eoa(balance=10**12)
    recipient = state.create_eoa()
    miner = state.create_eoa()
    state.discard_journal()
    return chain, sender, recipient, miner


def transfer(sender, recipient, nonce, tx_id=0, value=10):
    return Transaction(tx_id=tx_id, sender=sender.address, to=recipient.address,
                       value=value, gas_limit=50_000, nonce=nonce)


class TestGenesis:
    def test_genesis_block_zero(self):
        g = make_genesis()
        assert g.number == 0
        assert g.header.parent_hash == 0
        assert g.num_transactions == 0

    def test_chain_starts_at_genesis(self, chain_and_actors):
        chain, *_ = chain_and_actors
        assert chain.height == 0

    def test_header_hash_changes_with_fields(self):
        h1 = BlockHeader(1, 0, 1.0, 0, 100)
        h2 = BlockHeader(1, 0, 1.0, 0, 101)
        assert h1.hash() != h2.hash()
        assert h1.hash() == BlockHeader(1, 0, 1.0, 0, 100).hash()


class TestAddBlock:
    def test_block_executes_and_links(self, chain_and_actors):
        chain, sender, recipient, miner = chain_and_actors
        block, receipts = chain.add_block(
            [transfer(sender, recipient, 0)], timestamp=10.0, miner=miner.address
        )
        assert block.number == 1
        assert block.header.parent_hash == chain.blocks[0].hash()
        assert receipts[0].success
        assert recipient.balance == 10

    def test_miner_gets_reward_and_fees(self, chain_and_actors):
        chain, sender, recipient, miner = chain_and_actors
        _, receipts = chain.add_block(
            [transfer(sender, recipient, 0)], timestamp=10.0, miner=miner.address
        )
        assert miner.balance == BLOCK_REWARD + receipts[0].gas_used

    def test_multiple_txs_same_sender(self, chain_and_actors):
        chain, sender, recipient, miner = chain_and_actors
        txs = [transfer(sender, recipient, 0, tx_id=0),
               transfer(sender, recipient, 1, tx_id=1)]
        _, receipts = chain.add_block(txs, 10.0, miner.address)
        assert all(r.success for r in receipts)
        assert recipient.balance == 20

    def test_timestamp_must_not_regress(self, chain_and_actors):
        chain, sender, recipient, miner = chain_and_actors
        chain.add_block([], 10.0, miner.address)
        with pytest.raises(InvalidBlockError, match="timestamp"):
            chain.add_block([], 5.0, miner.address)

    def test_block_gas_limit_enforced(self, chain_and_actors):
        chain, sender, recipient, miner = chain_and_actors
        txs = [transfer(sender, recipient, 0)]
        with pytest.raises(InvalidBlockError, match="gas limit"):
            chain.add_block(txs, 10.0, miner.address, gas_limit=10_000)

    def test_header_records_gas_used(self, chain_and_actors):
        chain, sender, recipient, miner = chain_and_actors
        block, receipts = chain.add_block(
            [transfer(sender, recipient, 0)], 10.0, miner.address
        )
        assert block.header.gas_used == receipts[0].gas_used

    def test_total_transactions(self, chain_and_actors):
        chain, sender, recipient, miner = chain_and_actors
        chain.add_block([transfer(sender, recipient, 0)], 10.0, miner.address)
        chain.add_block([transfer(sender, recipient, 1)], 11.0, miner.address)
        assert chain.total_transactions == 2

    def test_verify_chain(self, chain_and_actors):
        chain, sender, recipient, miner = chain_and_actors
        for i in range(3):
            chain.add_block([transfer(sender, recipient, i, tx_id=i)],
                            10.0 + i, miner.address)
        assert chain.verify_chain()

    def test_validate_header_rejects_wrong_parent(self, chain_and_actors):
        chain, *_ = chain_and_actors
        bad = BlockHeader(number=1, parent_hash=12345, timestamp=1.0,
                          miner=0, gas_limit=1000)
        with pytest.raises(InvalidBlockError, match="parent hash"):
            chain.validate_header(bad)

    def test_validate_header_rejects_wrong_number(self, chain_and_actors):
        chain, *_ = chain_and_actors
        bad = BlockHeader(number=5, parent_hash=chain.head.hash(),
                          timestamp=1.0, miner=0, gas_limit=1000)
        with pytest.raises(InvalidBlockError, match="block number"):
            chain.validate_header(bad)


class TestTraceSink:
    def test_sink_receives_every_trace(self):
        state = WorldState()
        traces = []
        chain = Blockchain(state, trace_sink=traces.append, keep_traces=False)
        sender = state.create_eoa(balance=10**12)
        recipient = state.create_eoa()
        state.discard_journal()
        chain.add_block(
            [transfer(sender, recipient, 0, tx_id=7)], 1.0, sender.address
        )
        assert len(traces) == 1
        assert traces[0].tx_id == 7
        assert chain.traces == []  # keep_traces=False

    def test_keep_traces_default(self, chain_and_actors):
        chain, sender, recipient, miner = chain_and_actors
        chain.add_block([transfer(sender, recipient, 0)], 1.0, miner.address)
        assert len(chain.traces) == 1
