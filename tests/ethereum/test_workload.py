"""Tests for the synthetic workload generator and its calibration."""

import pytest

from repro.ethereum.history import (
    ATTACK_END,
    ATTACK_START,
    FIG4_PERIODS,
    date_to_ts,
    month_label,
    ts_to_date,
)
from repro.ethereum.workload import WorkloadConfig, WorkloadGenerator, generate_history
from repro.graph.digraph import VertexKind
from repro.graph.snapshot import DAY


class TestHistoryTimeline:
    def test_date_round_trip(self):
        import datetime
        d = datetime.date(2016, 10, 18)
        assert ts_to_date(date_to_ts(d)) == d

    def test_month_label_format(self):
        import datetime
        assert month_label(date_to_ts(datetime.date(2016, 9, 1))) == "09.16"

    def test_attack_window_ordering(self):
        assert 0 < ATTACK_START < ATTACK_END

    def test_fig4_periods_contiguous(self):
        for (_, _, end), (_, start, _) in zip(FIG4_PERIODS, FIG4_PERIODS[1:]):
            assert end == start


class TestConfig:
    def test_mixture_normalised(self):
        mix = WorkloadConfig().mixture()
        assert abs(sum(mix.values()) - 1.0) < 1e-12

    def test_mixture_zero_rejected(self):
        cfg = WorkloadConfig(mix_transfer=0, mix_token=0, mix_exchange=0,
                             mix_mixer=0, mix_wallet=0, mix_deploy=0)
        with pytest.raises(ValueError):
            cfg.mixture()

    def test_scales_ordered(self):
        assert (WorkloadConfig.tiny().total_transactions
                < WorkloadConfig.small().total_transactions
                < WorkloadConfig.medium().total_transactions
                < WorkloadConfig().total_transactions)


class TestGeneration:
    def test_transaction_budget_met(self, tiny_workload):
        cfg = tiny_workload.config
        got = tiny_workload.num_transactions
        assert abs(got - cfg.total_transactions) <= cfg.total_transactions * 0.02

    def test_all_transactions_succeed(self, tiny_workload):
        failed = [r for r in tiny_workload.chain.receipts if not r.success]
        assert failed == []

    def test_chain_is_valid(self, tiny_workload):
        assert tiny_workload.chain.verify_chain()

    def test_log_is_time_ordered(self, tiny_workload):
        log = tiny_workload.builder.log
        assert all(a.timestamp <= b.timestamp for a, b in zip(log, log[1:]))

    def test_graph_has_contracts_and_accounts(self, tiny_workload):
        g = tiny_workload.graph
        assert g.count_kind(VertexKind.CONTRACT) > 0
        assert g.count_kind(VertexKind.ACCOUNT) > 0

    def test_no_contract_without_incoming_edge(self, small_workload):
        """The paper: 'in the complete graph, there is no contract
        without at least one incoming edge'."""
        g = small_workload.graph
        orphans = [
            v for v in g.vertices()
            if g.vertex_kind(v) is VertexKind.CONTRACT and g.in_degree(v) == 0
        ]
        assert orphans == []

    def test_determinism(self):
        a = generate_history(WorkloadConfig.tiny(seed=9))
        b = generate_history(WorkloadConfig.tiny(seed=9))
        assert len(a.builder.log) == len(b.builder.log)
        assert all(
            (x.src, x.dst, x.tx_id) == (y.src, y.dst, y.tx_id)
            for x, y in zip(a.builder.log, b.builder.log)
        )

    def test_seed_changes_history(self):
        a = generate_history(WorkloadConfig.tiny(seed=1))
        b = generate_history(WorkloadConfig.tiny(seed=2))
        sig_a = [(x.src, x.dst) for x in a.builder.log[:200]]
        sig_b = [(x.src, x.dst) for x in b.builder.log[:200]]
        assert sig_a != sig_b


class TestCalibration:
    """Shape assertions against the paper's Fig. 1 description."""

    def test_growth_is_superlinear_overall(self, small_workload):
        log = small_workload.builder.log
        span = log[-1].timestamp - log[0].timestamp
        first_half = sum(1 for it in log if it.timestamp < log[0].timestamp + span / 2)
        second_half = len(log) - first_half
        # the attack burst lands in the first half of the timeline, so the
        # contrast is softer than the pure boom ratio — but still strong
        assert second_half > 2 * first_half

    def test_attack_mints_throwaway_vertices(self, small_workload):
        g = small_workload.graph
        in_attack = [
            v for v in g.vertices() if ATTACK_START <= g.first_seen(v) < ATTACK_END
        ]
        # order-of-magnitude style jump: the attack month mints a large
        # share of all vertices despite being ~3% of the timeline
        assert len(in_attack) > 0.25 * g.num_vertices

    def test_attack_vertices_are_dormant(self, small_workload):
        g = small_workload.graph
        attack_vs = [
            v for v in g.vertices() if ATTACK_START <= g.first_seen(v) < ATTACK_END
        ]
        dormant = sum(1 for v in attack_vs if g.vertex_weight(v) <= 1)
        assert dormant > 0.6 * len(attack_vs)

    def test_degree_distribution_heavy_tailed(self, small_workload):
        g = small_workload.graph
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        top_share = sum(degrees[: max(1, len(degrees) // 100)]) / sum(degrees)
        assert top_share > 0.10  # top 1% of vertices carry >10% of degree

    def test_multi_interaction_transactions_exist(self, tiny_workload):
        from repro.graph.builder import group_by_transaction

        sizes = [len(b) for _, b in group_by_transaction(tiny_workload.builder.log)]
        assert max(sizes) >= 3  # mixers/spammers fan out

    def test_community_structure_is_present(self, small_workload):
        """Intra-community edges must dominate (what partitioners exploit)."""
        gen = WorkloadGenerator(WorkloadConfig.tiny(seed=3))
        result = gen.run()
        intra = inter = 0
        for it in result.builder.log:
            c1 = gen.community_of.get(it.src)
            c2 = gen.community_of.get(it.dst)
            if c1 is None or c2 is None:
                continue
            if c1 == c2:
                intra += 1
            else:
                inter += 1
        assert intra > 2 * inter


class TestLargeTierAndStreamingExport:
    def test_large_scale_config(self):
        cfg = WorkloadConfig.large(seed=9)
        assert cfg.seed == 9
        assert cfg.total_transactions >= 1_000_000   # multi-million-row tier
        assert cfg.step_hours <= 2.0

    def test_config_for_scale_knows_large(self):
        from repro.experiments.source import SCALES, config_for_scale

        assert "large" in SCALES
        assert config_for_scale("large", 5) == WorkloadConfig.large(5)

    def test_interaction_sink_sees_the_exact_builder_stream(self):
        """The sink hook must only redirect storage: same interactions,
        same order, no boxed log left behind."""
        cfg = WorkloadConfig.tiny(seed=11)
        baseline = WorkloadGenerator(cfg).run()

        streamed = []
        gen = WorkloadGenerator(cfg, interaction_sink=streamed.append)
        gen.run()
        assert streamed == list(baseline.builder.log)
        assert len(gen.builder.log) == 0          # nothing accumulated
        assert gen.builder.graph.num_vertices == 0

    def test_export_workload_trace_matches_in_memory_write(self, tmp_path):
        from repro.ethereum.export import export_workload_trace
        from repro.graph.columnar import ColumnarLog
        from repro.graph.io import load_columnar, write_columnar

        cfg = WorkloadConfig.tiny(seed=11)
        streamed = tmp_path / "stream.rct"
        result = export_workload_trace(cfg, streamed, version=3,
                                       chunk_rows=64)
        boxed = tmp_path / "boxed.rct"
        log = ColumnarLog(WorkloadGenerator(cfg).run().builder.log)
        write_columnar(log, boxed, version=3)
        assert streamed.read_bytes() == boxed.read_bytes()
        assert result.rows == len(log)
        assert result.vertices == log.num_vertices
        assert result.transactions == 600
        assert result.file_bytes == streamed.stat().st_size
        assert load_columnar(streamed).identical(log)
