"""Tests for protocol eras and fork-dependent gas repricing."""

import datetime

import pytest

from repro.ethereum.evm import EVM, assemble
from repro.ethereum.forks import ERAS, era_at, era_names
from repro.ethereum.history import date_to_ts
from repro.ethereum.state import WorldState
from repro.ethereum.transaction import Transaction


class TestEraLookup:
    def test_genesis_is_frontier(self):
        assert era_at(0.0).name == "frontier"

    def test_homestead_boundary(self):
        ts = date_to_ts(datetime.date(2016, 3, 14))
        assert era_at(ts - 1).name == "frontier"
        assert era_at(ts).name == "homestead"

    def test_eip150_boundary(self):
        ts = date_to_ts(datetime.date(2016, 10, 18))
        assert era_at(ts - 1).name == "homestead"
        assert era_at(ts).name == "eip150"
        assert era_at(ts + 1e9).name == "eip150"

    def test_eras_sorted(self):
        starts = [e.start_ts for e in ERAS]
        assert starts == sorted(starts)

    def test_eip150_repriced_io(self):
        pre = era_at(0.0)
        post = era_at(date_to_ts(datetime.date(2017, 1, 1)))
        assert post.sload_cost > pre.sload_cost
        assert post.call_cost > pre.call_cost
        assert post.balance_cost > pre.balance_cost

    def test_era_names(self):
        assert era_names() == ["frontier", "homestead", "eip150"]


class TestEraAwareEVM:
    def run_sload_tx(self, use_eras, timestamp):
        world = WorldState()
        evm = EVM(world, use_eras=use_eras)
        sender = world.create_eoa(balance=10**12)
        program = [("PUSH", 0), "SLOAD", "POP", "STOP"]
        contract = world.create_contract(assemble(program))
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=sender.address, to=contract.address,
                         gas_limit=100_000, nonce=0)
        receipt, _ = evm.execute_transaction(tx, timestamp)
        assert receipt.success
        return receipt.gas_used

    def test_sload_cheaper_before_eip150(self):
        pre_attack = date_to_ts(datetime.date(2016, 1, 1))
        post_fork = date_to_ts(datetime.date(2017, 1, 1))
        pre = self.run_sload_tx(True, pre_attack)
        post = self.run_sload_tx(True, post_fork)
        assert post - pre == 200 - 50

    def test_eras_off_by_default(self):
        post_fork = date_to_ts(datetime.date(2017, 1, 1))
        default = self.run_sload_tx(False, 0.0)
        assert default == self.run_sload_tx(False, post_fork)

    def test_call_repriced(self):
        world = WorldState()
        evm = EVM(world, use_eras=True)
        sender = world.create_eoa(balance=10**12)
        target = world.create_eoa()
        program = [("PUSH", 0), ("PUSH", target.address), ("PUSH", 1000),
                   "CALL", "POP", "STOP"]
        contract = world.create_contract(assemble(program))
        world.discard_journal()

        def run(ts, nonce):
            tx = Transaction(tx_id=nonce, sender=sender.address,
                             to=contract.address, gas_limit=100_000, nonce=nonce)
            receipt, _ = evm.execute_transaction(tx, ts)
            assert receipt.success
            return receipt.gas_used

        pre = run(date_to_ts(datetime.date(2016, 1, 1)), 0)
        post = run(date_to_ts(datetime.date(2017, 1, 1)), 1)
        assert post - pre == 700 - 40
