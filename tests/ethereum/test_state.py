"""Unit tests for accounts and the journaled world state."""

import pytest

from repro.errors import InsufficientBalanceError, UnknownAccountError
from repro.ethereum.account import Account, AccountKind
from repro.ethereum.state import WorldState


class TestAccount:
    def test_storage_absent_reads_zero(self):
        acct = Account(0, AccountKind.CONTRACT)
        assert acct.storage_read(123) == 0

    def test_storage_write_read(self):
        acct = Account(0, AccountKind.CONTRACT)
        acct.storage_write(1, 99)
        assert acct.storage_read(1) == 99

    def test_storage_write_zero_deletes(self):
        acct = Account(0, AccountKind.CONTRACT)
        acct.storage_write(1, 99)
        acct.storage_write(1, 0)
        assert acct.storage_size == 0

    def test_storage_keys_wrap_to_words(self):
        acct = Account(0, AccountKind.CONTRACT)
        acct.storage_write(1 << 256, 7)
        assert acct.storage_read(0) == 7

    def test_state_bytes_grows_with_storage(self):
        acct = Account(0, AccountKind.CONTRACT)
        empty = acct.state_bytes()
        acct.storage_write(1, 1)
        assert acct.state_bytes() == empty + 64

    def test_is_contract(self):
        assert Account(0, AccountKind.CONTRACT).is_contract
        assert not Account(0, AccountKind.EOA).is_contract

    def test_copy_is_deep_for_storage(self):
        acct = Account(0, AccountKind.CONTRACT)
        acct.storage_write(1, 5)
        clone = acct.copy()
        clone.storage_write(1, 9)
        assert acct.storage_read(1) == 5


class TestWorldStateBasics:
    def test_create_eoa_sequential_addresses(self):
        st = WorldState()
        a = st.create_eoa()
        b = st.create_eoa()
        assert b.address == a.address + 1

    def test_create_contract_with_storage(self):
        st = WorldState()
        acct = st.create_contract((0,), initial_storage={5: 6})
        assert acct.is_contract
        assert acct.storage_read(5) == 6

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownAccountError):
            WorldState().get(0)

    def test_get_optional(self):
        st = WorldState()
        assert st.get_optional(0) is None
        acct = st.create_eoa()
        assert st.get_optional(acct.address) is acct

    def test_transfer_moves_balance(self):
        st = WorldState()
        a = st.create_eoa(balance=100)
        b = st.create_eoa()
        st.transfer(a.address, b.address, 30)
        assert a.balance == 70
        assert b.balance == 30

    def test_transfer_insufficient_raises(self):
        st = WorldState()
        a = st.create_eoa(balance=10)
        b = st.create_eoa()
        with pytest.raises(InsufficientBalanceError):
            st.transfer(a.address, b.address, 11)

    def test_transfer_negative_raises(self):
        st = WorldState()
        a = st.create_eoa(balance=10)
        b = st.create_eoa()
        with pytest.raises(ValueError):
            st.transfer(a.address, b.address, -1)

    def test_total_balance_conserved_by_transfer(self):
        st = WorldState()
        a = st.create_eoa(balance=100)
        b = st.create_eoa(balance=50)
        st.transfer(a.address, b.address, 25)
        assert st.total_balance() == 150


class TestJournal:
    def test_revert_balance(self):
        st = WorldState()
        a = st.create_eoa(balance=100)
        snap = st.snapshot()
        st.add_balance(a.address, 50)
        st.revert_to(snap)
        assert a.balance == 100

    def test_revert_transfer(self):
        st = WorldState()
        a = st.create_eoa(balance=100)
        b = st.create_eoa()
        snap = st.snapshot()
        st.transfer(a.address, b.address, 60)
        st.revert_to(snap)
        assert (a.balance, b.balance) == (100, 0)

    def test_revert_nonce(self):
        st = WorldState()
        a = st.create_eoa()
        snap = st.snapshot()
        st.increment_nonce(a.address)
        st.revert_to(snap)
        assert a.nonce == 0

    def test_revert_storage(self):
        st = WorldState()
        c = st.create_contract((0,), initial_storage={1: 10})
        snap = st.snapshot()
        st.storage_write(c.address, 1, 20)
        st.storage_write(c.address, 2, 30)
        st.revert_to(snap)
        assert c.storage_read(1) == 10
        assert c.storage_read(2) == 0

    def test_revert_account_creation(self):
        st = WorldState()
        snap = st.snapshot()
        acct = st.create_eoa()
        st.revert_to(snap)
        assert acct.address not in st

    def test_nested_snapshots_revert_inner_only(self):
        st = WorldState()
        a = st.create_eoa(balance=100)
        outer = st.snapshot()
        st.add_balance(a.address, 10)
        inner = st.snapshot()
        st.add_balance(a.address, 5)
        st.revert_to(inner)
        assert a.balance == 110
        st.revert_to(outer)
        assert a.balance == 100

    def test_discard_journal_makes_changes_permanent(self):
        st = WorldState()
        a = st.create_eoa(balance=100)
        snap = st.snapshot()
        st.add_balance(a.address, 10)
        st.discard_journal()
        st.revert_to(0)  # no-op: journal is empty
        assert a.balance == 110

    def test_revert_is_lifo(self):
        st = WorldState()
        c = st.create_contract((0,))
        snap = st.snapshot()
        st.storage_write(c.address, 1, 1)
        st.storage_write(c.address, 1, 2)
        st.storage_write(c.address, 1, 3)
        st.revert_to(snap)
        assert c.storage_read(1) == 0
