"""Transaction-level economics: validation, nonces, gas, fees, refunds."""

import pytest

from repro.errors import InvalidTransactionError
from repro.ethereum import gas as G
from repro.ethereum.evm import EVM, assemble
from repro.ethereum.state import WorldState
from repro.ethereum.transaction import Transaction


@pytest.fixture()
def world():
    return WorldState()


@pytest.fixture()
def evm(world):
    return EVM(world)


@pytest.fixture()
def actors(world):
    sender = world.create_eoa(balance=10**12)
    recipient = world.create_eoa()
    miner = world.create_eoa()
    world.discard_journal()
    return sender, recipient, miner


class TestValidation:
    def test_unknown_sender_rejected(self, evm, world):
        world.create_eoa()
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=99, to=0, gas_limit=50_000, nonce=0)
        with pytest.raises(InvalidTransactionError, match="unknown sender"):
            evm.execute_transaction(tx, 1.0)

    def test_wrong_nonce_rejected(self, evm, world, actors):
        sender, recipient, _ = actors
        tx = Transaction(tx_id=0, sender=sender.address, to=recipient.address,
                         gas_limit=50_000, nonce=5)
        with pytest.raises(InvalidTransactionError, match="bad nonce"):
            evm.execute_transaction(tx, 1.0)

    def test_unaffordable_rejected(self, evm, world):
        poor = world.create_eoa(balance=100)
        rich = world.create_eoa()
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=poor.address, to=rich.address,
                         value=1, gas_limit=50_000, nonce=0)
        with pytest.raises(InvalidTransactionError, match="cannot afford"):
            evm.execute_transaction(tx, 1.0)

    def test_gas_below_intrinsic_rejected(self, evm, world, actors):
        sender, recipient, _ = actors
        tx = Transaction(tx_id=0, sender=sender.address, to=recipient.address,
                         gas_limit=1_000, nonce=0)
        with pytest.raises(InvalidTransactionError, match="intrinsic"):
            evm.execute_transaction(tx, 1.0)

    def test_rejected_tx_leaves_state_untouched(self, evm, world, actors):
        sender, recipient, _ = actors
        before = sender.balance
        tx = Transaction(tx_id=0, sender=sender.address, to=recipient.address,
                         gas_limit=50_000, nonce=9)
        with pytest.raises(InvalidTransactionError):
            evm.execute_transaction(tx, 1.0)
        assert sender.balance == before
        assert sender.nonce == 0


class TestAccounting:
    def test_nonce_increments_on_success(self, evm, actors):
        sender, recipient, _ = actors
        tx = Transaction(tx_id=0, sender=sender.address, to=recipient.address,
                         value=1, gas_limit=50_000, nonce=0)
        evm.execute_transaction(tx, 1.0)
        assert sender.nonce == 1

    def test_nonce_increments_even_on_evm_failure(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        bad = world.create_contract(assemble(["REVERT"]))
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=sender.address, to=bad.address,
                         gas_limit=50_000, nonce=0)
        receipt, _ = evm.execute_transaction(tx, 1.0)
        assert not receipt.success
        assert sender.nonce == 1

    def test_plain_transfer_gas_is_intrinsic(self, evm, actors):
        sender, recipient, _ = actors
        tx = Transaction(tx_id=0, sender=sender.address, to=recipient.address,
                         value=1, gas_limit=50_000, nonce=0)
        receipt, _ = evm.execute_transaction(tx, 1.0)
        assert receipt.gas_used == G.G_TRANSACTION

    def test_data_increases_intrinsic(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        c = world.create_contract(assemble(["STOP"]))
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=sender.address, to=c.address,
                         gas_limit=60_000, nonce=0, data=(1, 2, 3))
        receipt, _ = evm.execute_transaction(tx, 1.0)
        assert receipt.gas_used == G.G_TRANSACTION + 3 * G.G_TXDATA

    def test_sender_pays_exactly_value_plus_gas(self, evm, actors):
        sender, recipient, _ = actors
        before = sender.balance
        tx = Transaction(tx_id=0, sender=sender.address, to=recipient.address,
                         value=100, gas_limit=50_000, gas_price=2, nonce=0)
        receipt, _ = evm.execute_transaction(tx, 1.0)
        assert sender.balance == before - 100 - receipt.gas_used * 2

    def test_miner_earns_gas_fees(self, evm, actors):
        sender, recipient, miner = actors
        tx = Transaction(tx_id=0, sender=sender.address, to=recipient.address,
                         value=1, gas_limit=50_000, gas_price=3, nonce=0)
        receipt, _ = evm.execute_transaction(tx, 1.0, miner=miner.address)
        assert miner.balance == receipt.gas_used * 3

    def test_value_conserved_with_miner(self, evm, world, actors):
        sender, recipient, miner = actors
        total_before = world.total_balance()
        tx = Transaction(tx_id=0, sender=sender.address, to=recipient.address,
                         value=123, gas_limit=50_000, nonce=0)
        evm.execute_transaction(tx, 1.0, miner=miner.address)
        assert world.total_balance() == total_before

    def test_failed_tx_consumes_all_gas(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        bad = world.create_contract(assemble(["REVERT"]))
        miner = world.create_eoa()
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=sender.address, to=bad.address,
                         gas_limit=40_000, nonce=0)
        receipt, _ = evm.execute_transaction(tx, 1.0, miner=miner.address)
        assert receipt.gas_used == 40_000
        assert miner.balance == 40_000

    def test_failed_tx_reverts_value_transfer(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        bad = world.create_contract(assemble(["REVERT"]))
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=sender.address, to=bad.address,
                         value=500, gas_limit=40_000, nonce=0)
        evm.execute_transaction(tx, 1.0)
        assert bad.balance == 0

    def test_sstore_clear_earns_refund(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        # contract pre-loaded with a slot, which the code clears
        program = [("PUSH", 0), ("PUSH", 7), "SSTORE", "STOP"]  # storage[7] = 0
        c = world.create_contract(assemble(program), initial_storage={7: 1})
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=sender.address, to=c.address,
                         gas_limit=100_000, nonce=0)
        receipt, _ = evm.execute_transaction(tx, 1.0)
        assert receipt.success
        # with the refund, cost must be below intrinsic + raw sstore cost
        raw = G.G_TRANSACTION + 2 * 3 + G.G_SSTORE_RESET
        assert receipt.gas_used < raw

    def test_max_cost_property(self):
        tx = Transaction(tx_id=0, sender=0, to=1, value=10,
                         gas_limit=100, gas_price=2, nonce=0)
        assert tx.max_cost == 10 + 200


class TestGasSchedule:
    def test_sstore_set_vs_reset(self):
        assert G.sstore_cost(0, 5) == G.G_SSTORE_SET
        assert G.sstore_cost(5, 6) == G.G_SSTORE_RESET
        assert G.sstore_cost(5, 0) == G.G_SSTORE_RESET

    def test_sstore_refund_only_on_clear(self):
        assert G.sstore_refund(5, 0) == G.R_SSTORE_CLEAR
        assert G.sstore_refund(0, 5) == 0
        assert G.sstore_refund(5, 6) == 0

    def test_call_cost_components(self):
        base = G.call_cost(False, True)
        assert G.call_cost(True, True) == base + G.G_CALLVALUE
        assert G.call_cost(False, False) == base + G.G_NEWACCOUNT

    def test_intrinsic_gas(self):
        assert G.intrinsic_gas(0) == G.G_TRANSACTION
        assert G.intrinsic_gas(4) == G.G_TRANSACTION + 4 * G.G_TXDATA
