"""Unit tests for nested message calls, CREATE and trace recording."""

import pytest

from repro.ethereum.evm import EVM, assemble
from repro.ethereum.state import WorldState
from repro.ethereum.trace import CallKind
from repro.ethereum.transaction import Transaction


@pytest.fixture()
def world():
    return WorldState()


@pytest.fixture()
def evm(world):
    return EVM(world)


def exec_tx(evm, world, sender, to, value=0, data=(), gas_limit=500_000):
    tx = Transaction(
        tx_id=1, sender=sender.address, to=to.address, value=value,
        gas_limit=gas_limit, nonce=sender.nonce, data=tuple(data),
    )
    return evm.execute_transaction(tx, timestamp=2.0)


class TestPlainTransfer:
    def test_transfer_moves_value_and_traces(self, evm, world):
        a = world.create_eoa(balance=10**12)
        b = world.create_eoa()
        world.discard_journal()
        receipt, trace = exec_tx(evm, world, a, b, value=1000)
        assert receipt.success
        assert b.balance == 1000
        assert trace.num_calls == 1
        call = trace.calls[0]
        assert call.kind is CallKind.TRANSFER
        assert (call.caller, call.callee) == (a.address, b.address)
        assert not call.callee_is_contract

    def test_transfer_to_unknown_recipient_rejected(self, evm, world):
        from repro.errors import InvalidTransactionError

        a = world.create_eoa(balance=10**12)
        world.discard_journal()
        tx = Transaction(tx_id=1, sender=a.address, to=999, value=5,
                         gas_limit=100_000, nonce=0)
        with pytest.raises(InvalidTransactionError, match="unknown recipient"):
            evm.execute_transaction(tx, 1.0)


class TestNestedCall:
    def forwarder(self, world, target):
        """Contract that CALLs ``target`` with half its call value."""
        program = [
            "CALLVALUE", ("PUSH", 2), ("SWAP", 1), "DIV",  # [v/2]
            ("PUSH", target),                              # [v/2, target]
            ("PUSH", 50_000),                              # [v/2, target, gas]
            "CALL", "POP", "STOP",
        ]
        acct = world.create_contract(assemble(program))
        world.discard_journal()
        return acct

    def test_internal_transfer_recorded(self, evm, world):
        a = world.create_eoa(balance=10**12)
        b = world.create_eoa()
        fwd = self.forwarder(world, b.address)
        receipt, trace = exec_tx(evm, world, a, fwd, value=100)
        assert receipt.success
        assert b.balance == 50
        assert fwd.balance == 50
        kinds = [c.kind for c in trace.calls]
        assert kinds == [CallKind.CALL, CallKind.TRANSFER]
        internal = trace.calls[1]
        assert internal.caller == fwd.address
        assert internal.callee == b.address
        assert internal.caller_is_contract
        assert internal.depth == 1

    def test_two_level_nesting(self, evm, world):
        a = world.create_eoa(balance=10**12)
        b = world.create_eoa()
        inner = self.forwarder(world, b.address)
        outer = self.forwarder(world, inner.address)
        receipt, trace = exec_tx(evm, world, a, outer, value=400)
        assert receipt.success
        assert [c.depth for c in trace.calls] == [0, 1, 2]
        assert b.balance == 100  # 400 -> 200 -> 100

    def test_failed_inner_call_reverts_only_inner(self, evm, world):
        a = world.create_eoa(balance=10**12)
        reverter = world.create_contract(assemble(["REVERT"]))
        world.discard_journal()
        program = [
            # write a marker, then call the reverter, then write success flag
            ("PUSH", 1), ("PUSH", 0), "SSTORE",
            ("PUSH", 0), ("PUSH", reverter.address), ("PUSH", 10_000),
            "CALL",
            ("PUSH", 1), "SSTORE",          # storage[1] = call success flag
            "STOP",
        ]
        outer = world.create_contract(assemble(program))
        world.discard_journal()
        receipt, trace = exec_tx(evm, world, a, outer)
        assert receipt.success            # outer continues after inner failure
        assert outer.storage_read(0) == 1
        assert outer.storage_read(1) == 0  # CALL pushed 0 = failure
        assert trace.calls[1].success is False

    def test_inner_value_reverted_on_failure(self, evm, world):
        a = world.create_eoa(balance=10**12)
        # contract that accepts value then reverts
        reverter = world.create_contract(assemble(["REVERT"]))
        world.discard_journal()
        program = [
            ("PUSH", 30), ("PUSH", reverter.address), ("PUSH", 50_000),
            "CALL", "POP", "STOP",
        ]
        outer = world.create_contract(assemble(program))
        world.discard_journal()
        receipt, _ = exec_tx(evm, world, a, outer, value=100)
        assert receipt.success
        assert reverter.balance == 0      # transfer rolled back
        assert outer.balance == 100

    def test_call_to_eoa_is_pure_transfer(self, evm, world):
        a = world.create_eoa(balance=10**12)
        b = world.create_eoa()
        fwd = self.forwarder(world, b.address)
        _, trace = exec_tx(evm, world, a, fwd, value=10)
        assert trace.calls[1].kind is CallKind.TRANSFER


class TestCreate:
    def test_create_from_template(self, evm, world):
        a = world.create_eoa(balance=10**12)
        tid = evm.register_template(assemble(["STOP"]))
        program = [
            ("PUSH", 0),         # value
            ("PUSH", tid),       # template id
            "CREATE",
            ("PUSH", 0), "SSTORE",   # record the new address
            "STOP",
        ]
        factory = world.create_contract(assemble(program))
        world.discard_journal()
        before = len(world)
        receipt, trace = exec_tx(evm, world, a, factory)
        assert receipt.success
        assert len(world) == before + 1
        new_addr = factory.storage_read(0)
        assert world.get(new_addr).is_contract
        created = [c for c in trace.calls if c.kind is CallKind.CREATE]
        assert len(created) == 1
        assert created[0].callee == new_addr

    def test_create_unknown_template_fails_tx(self, evm, world):
        a = world.create_eoa(balance=10**12)
        program = [("PUSH", 0), ("PUSH", 999), "CREATE", "POP", "STOP"]
        factory = world.create_contract(assemble(program))
        world.discard_journal()
        receipt, _ = exec_tx(evm, world, a, factory)
        assert not receipt.success

    def test_created_contract_callable_in_same_tx(self, evm, world):
        a = world.create_eoa(balance=10**12)
        # template that writes 7 to its storage slot 0
        tid = evm.register_template(
            assemble([("PUSH", 7), ("PUSH", 0), "SSTORE", "STOP"])
        )
        program = [
            ("PUSH", 0), ("PUSH", tid), "CREATE",   # [addr]
            ("PUSH", 0), ("SWAP", 1),               # [0(value), addr]
            ("PUSH", 50_000),                       # [0, addr, gas]
            "CALL", "POP", "STOP",
        ]
        factory = world.create_contract(assemble(program))
        world.discard_journal()
        receipt, trace = exec_tx(evm, world, a, factory)
        assert receipt.success, receipt.error
        created = [c for c in trace.calls if c.kind is CallKind.CREATE][0]
        assert world.get(created.callee).storage_read(0) == 7


class TestTraceShape:
    def test_trace_caller_first_ordering(self, evm, world):
        a = world.create_eoa(balance=10**12)
        b = world.create_eoa()
        program = [
            ("PUSH", 1), ("PUSH", b.address), ("PUSH", 10_000), "CALL", "POP",
            "STOP",
        ]
        c = world.create_contract(assemble(program))
        world.discard_journal()
        _, trace = exec_tx(evm, world, a, c, value=10)
        # top-level activation must come before internal calls
        assert trace.calls[0].depth == 0
        assert trace.calls[0].callee == c.address

    def test_to_interactions_maps_all_calls(self, evm, world):
        a = world.create_eoa(balance=10**12)
        b = world.create_eoa()
        program = [
            ("PUSH", 1), ("PUSH", b.address), ("PUSH", 10_000), "CALL", "POP",
            "STOP",
        ]
        c = world.create_contract(assemble(program))
        world.discard_journal()
        _, trace = exec_tx(evm, world, a, c, value=10)
        interactions = list(trace.to_interactions())
        assert [(i.src, i.dst) for i in interactions] == [
            (a.address, c.address),
            (c.address, b.address),
        ]
        assert all(i.tx_id == 1 for i in interactions)

    def test_touched_addresses_in_first_touch_order(self, evm, world):
        a = world.create_eoa(balance=10**12)
        b = world.create_eoa()
        world.discard_journal()
        _, trace = exec_tx(evm, world, a, b, value=5)
        assert trace.touched_addresses() == (a.address, b.address)
