"""Tests for resource metering and fee attribution."""

import pytest

from repro.ethereum.fees import (
    CALL_WIRE_BYTES,
    FeeSchedule,
    ResourceVector,
    ShardResourceAccounting,
    account_replay,
    meter_transaction,
)
from repro.ethereum.trace import CallKind, MessageCall, TransactionTrace
from repro.ethereum.transaction import Receipt


def trace_with_calls(pairs):
    trace = TransactionTrace(tx_id=0, timestamp=1.0)
    for depth, (src, dst) in enumerate(pairs):
        trace.record(MessageCall(
            kind=CallKind.CALL, caller=src, callee=dst, value=0,
            depth=depth, caller_is_contract=depth > 0, callee_is_contract=True,
        ))
    return trace


class TestResourceVector:
    def test_addition(self):
        total = ResourceVector(1, 2, 3) + ResourceVector(10, 20, 30)
        assert total == ResourceVector(11, 22, 33)

    def test_is_zero(self):
        assert ResourceVector().is_zero
        assert not ResourceVector(computation=1).is_zero


class TestFeeSchedule:
    def test_prices_components(self):
        schedule = FeeSchedule(computation_price=2, storage_price=3,
                               bandwidth_price=5, cross_shard_multiplier=1.0)
        fee = schedule.price(ResourceVector(10, 20, 30))
        assert fee == 10 * 2 + 20 * 3 + 30 * 5

    def test_cross_shard_multiplier(self):
        cheap = FeeSchedule(cross_shard_multiplier=1.0)
        dear = FeeSchedule(cross_shard_multiplier=4.0)
        usage = ResourceVector(bandwidth=100)
        assert dear.price(usage) == 4 * cheap.price(usage)


class TestMetering:
    def test_computation_from_receipt(self):
        receipt = Receipt(tx_id=0, success=True, gas_used=12345)
        usage = meter_transaction(receipt, trace_with_calls([(1, 2)]))
        assert usage.computation == 12345

    def test_bandwidth_counts_cross_shard_calls(self):
        receipt = Receipt(tx_id=0, success=True, gas_used=1)
        trace = trace_with_calls([(1, 2), (2, 3), (3, 4)])
        assignment = {1: 0, 2: 0, 3: 1, 4: 1}
        usage = meter_transaction(receipt, trace, assignment=assignment)
        # (2,3) crosses; (1,2) and (3,4) do not
        assert usage.bandwidth == CALL_WIRE_BYTES

    def test_no_assignment_no_bandwidth(self):
        receipt = Receipt(tx_id=0, success=True, gas_used=1)
        usage = meter_transaction(receipt, trace_with_calls([(1, 2)]))
        assert usage.bandwidth == 0

    def test_storage_bytes(self):
        receipt = Receipt(tx_id=0, success=True, gas_used=1)
        usage = meter_transaction(receipt, trace_with_calls([(1, 2)]),
                                  storage_delta_slots=3)
        assert usage.storage == 3 * 64

    def test_negative_storage_delta_clamped(self):
        receipt = Receipt(tx_id=0, success=True, gas_used=1)
        usage = meter_transaction(receipt, trace_with_calls([(1, 2)]),
                                  storage_delta_slots=-5)
        assert usage.storage == 0


class TestAccounting:
    def test_home_shard_gets_compute(self):
        acct = ShardResourceAccounting(k=2)
        acct.charge(ResourceVector(computation=100), home_shard=1)
        assert acct.per_shard[1].computation == 100
        assert acct.per_shard[0].computation == 0

    def test_bandwidth_split_across_touched(self):
        acct = ShardResourceAccounting(k=4)
        acct.charge(ResourceVector(bandwidth=120), home_shard=0,
                    touched_shards=[0, 2, 3])
        assert acct.per_shard[0].bandwidth == 40
        assert acct.per_shard[2].bandwidth == 40
        assert acct.per_shard[1].bandwidth == 0

    def test_fee_totals(self):
        schedule = FeeSchedule(computation_price=1, bandwidth_price=1,
                               cross_shard_multiplier=2.0)
        acct = ShardResourceAccounting(k=2, schedule=schedule)
        fee = acct.charge(ResourceVector(computation=10, bandwidth=5),
                          home_shard=0, touched_shards=[0, 1])
        assert fee == 10 + 5 * 2
        assert acct.total_fees == fee
        assert acct.cross_shard_fees == 10

    def test_invalid_home_shard(self):
        acct = ShardResourceAccounting(k=2)
        with pytest.raises(ValueError):
            acct.charge(ResourceVector(computation=1), home_shard=5)

    def test_fee_imbalance_eq2_shape(self):
        acct = ShardResourceAccounting(k=2)
        acct.charge(ResourceVector(computation=90), home_shard=0)
        acct.charge(ResourceVector(computation=10), home_shard=1)
        assert acct.fee_imbalance == pytest.approx(90 * 2 / 100)

    def test_cross_shard_fee_share_bounds(self):
        acct = ShardResourceAccounting(k=2)
        assert acct.cross_shard_fee_share == 0.0
        acct.charge(ResourceVector(computation=10, bandwidth=100),
                    home_shard=0, touched_shards=[0, 1])
        assert 0.0 < acct.cross_shard_fee_share < 1.0


class TestAccountReplay:
    def test_end_to_end_on_chain_traces(self, tiny_workload):
        """Fees over real executed traces: better partitioning -> lower
        cross-shard fee share."""
        from repro.core import make_method
        from repro.core.replay import replay_method
        from repro.ethereum.chain import Blockchain
        from repro.ethereum.workload import WorkloadConfig, WorkloadGenerator
        from repro.graph.snapshot import HOUR

        # regenerate with kept traces (the shared fixture drops them)
        gen = WorkloadGenerator(WorkloadConfig.tiny(seed=4))
        gen.chain._keep_traces = True
        result = gen.run()
        pairs = list(zip(result.chain.receipts, result.chain.traces))
        assert pairs

        log = result.builder.log
        shares = {}
        for name in ("hash", "metis"):
            replay = replay_method(log, make_method(name, 4, seed=1),
                                   metric_window=24 * HOUR)
            acct = account_replay(pairs, replay.assignment.as_dict(), k=4)
            assert acct.transactions == len(pairs)
            shares[name] = acct.cross_shard_fee_share
        assert shares["metis"] < shares["hash"]
