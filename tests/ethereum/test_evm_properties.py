"""Property-based tests for EVM-lite invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ethereum import gas as G
from repro.ethereum.evm import EVM, assemble
from repro.ethereum.state import WorldState
from repro.ethereum.transaction import Transaction

# strategy: arbitrary straight-line arithmetic/stack programs
_PUSHABLE = st.integers(min_value=0, max_value=2**64)
_simple_ops = st.sampled_from(
    ["ADD", "SUB", "MUL", "DIV", "MOD", "LT", "GT", "EQ", "AND", "OR",
     "XOR", "POP", "ISZERO", "NOT"]
)
random_programs = st.lists(
    st.one_of(
        _PUSHABLE.map(lambda v: ("PUSH", v)),
        _simple_ops,
    ),
    min_size=0,
    max_size=40,
).map(lambda body: body + ["STOP"])


def fresh_world():
    world = WorldState()
    sender = world.create_eoa(balance=10**15)
    miner = world.create_eoa()
    world.discard_journal()
    return world, sender, miner


@given(random_programs)
@settings(max_examples=60)
def test_arbitrary_programs_never_corrupt_value(program):
    """Whatever a program does (including failing), total balance is
    conserved when the miner collects fees."""
    world, sender, miner = fresh_world()
    evm = EVM(world)
    contract = world.create_contract(assemble(program))
    world.discard_journal()
    total_before = world.total_balance()
    tx = Transaction(tx_id=0, sender=sender.address, to=contract.address,
                     value=123, gas_limit=200_000, nonce=0)
    evm.execute_transaction(tx, 1.0, miner=miner.address)
    assert world.total_balance() == total_before


@given(random_programs)
@settings(max_examples=60)
def test_gas_used_bounded_and_at_least_intrinsic(program):
    world, sender, miner = fresh_world()
    evm = EVM(world)
    contract = world.create_contract(assemble(program))
    world.discard_journal()
    tx = Transaction(tx_id=0, sender=sender.address, to=contract.address,
                     gas_limit=200_000, nonce=0)
    receipt, _ = evm.execute_transaction(tx, 1.0)
    assert G.G_TRANSACTION <= receipt.gas_used <= 200_000


@given(random_programs)
@settings(max_examples=40)
def test_failed_execution_reverts_storage(program):
    """If the receipt says failure, contract storage must be untouched."""
    world, sender, miner = fresh_world()
    evm = EVM(world)
    contract = world.create_contract(assemble(program), initial_storage={1: 42})
    world.discard_journal()
    tx = Transaction(tx_id=0, sender=sender.address, to=contract.address,
                     gas_limit=200_000, nonce=0)
    receipt, _ = evm.execute_transaction(tx, 1.0)
    if not receipt.success:
        assert contract.storage == {1: 42}


@given(random_programs)
@settings(max_examples=40)
def test_execution_is_deterministic(program):
    def run_once():
        world, sender, miner = fresh_world()
        evm = EVM(world)
        contract = world.create_contract(assemble(program))
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=sender.address, to=contract.address,
                         gas_limit=200_000, nonce=0)
        receipt, _ = evm.execute_transaction(tx, 1.0)
        return receipt.success, receipt.gas_used, dict(contract.storage)

    assert run_once() == run_once()


@given(st.integers(min_value=0, max_value=2**256 - 1),
       st.integers(min_value=0, max_value=2**256 - 1))
@settings(max_examples=50)
def test_sstore_cost_refund_consistency(old, new):
    """A set+clear pair can never be profitable: cost >= refund."""
    cost = G.sstore_cost(old, new)
    refund = G.sstore_refund(old, new)
    assert cost > 0
    assert refund in (0, G.R_SSTORE_CLEAR)
    if refund:
        assert old != 0 and new == 0
    assert G.G_SSTORE_SET > G.R_SSTORE_CLEAR
