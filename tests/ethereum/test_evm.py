"""Unit tests for EVM-lite: assembler, interpreter, calls, gas."""

import pytest

from repro.errors import (
    EVMError,
    InvalidTransactionError,
)
from repro.ethereum import gas as G
from repro.ethereum.evm import EVM, Op, assemble, disassemble
from repro.ethereum.state import WorldState
from repro.ethereum.transaction import Transaction
from repro.ethereum.types import WORD_MASK


@pytest.fixture()
def world():
    return WorldState()


@pytest.fixture()
def evm(world):
    return EVM(world)


def run_code(evm, world, program, value=0, data=(), gas_limit=500_000):
    """Deploy ``program`` as a contract and execute one tx against it."""
    sender = world.create_eoa(balance=10**12)
    contract = world.create_contract(assemble(program))
    world.discard_journal()
    tx = Transaction(
        tx_id=0, sender=sender.address, to=contract.address,
        value=value, gas_limit=gas_limit, nonce=0, data=tuple(data),
    )
    receipt, trace = evm.execute_transaction(tx, timestamp=1.0)
    return receipt, trace, contract


class TestAssembler:
    def test_simple_program(self):
        code = assemble([("PUSH", 7), ("PUSH", 35), "ADD", "STOP"])
        assert code == (Op.PUSH, 7, Op.PUSH, 35, Op.ADD, Op.STOP)

    def test_labels_resolve(self):
        code = assemble([
            ("JUMP", "end"),
            ("PUSH", 1),
            ("label", "end"),
            "STOP",
        ])
        # JUMP target must be the offset of STOP (= 4)
        assert code == (Op.JUMP, 4, Op.PUSH, 1, Op.STOP)

    def test_undefined_label_raises(self):
        with pytest.raises(ValueError, match="undefined label"):
            assemble([("JUMP", "nowhere"), "STOP"])

    def test_missing_immediate_raises(self):
        with pytest.raises(ValueError, match="requires an immediate"):
            assemble([("PUSH",), "STOP"])  # type: ignore[list-item]

    def test_unexpected_operand_raises(self):
        with pytest.raises(ValueError, match="takes no operand"):
            assemble([("ADD", 1), "STOP"])

    def test_immediates_wrap_to_words(self):
        code = assemble([("PUSH", -1), "STOP"])
        assert code[1] == WORD_MASK

    def test_disassemble_round_trip(self):
        program = [("PUSH", 9), ("DUP", 1), "ADD", ("JUMPI", 0), "STOP"]
        code = assemble(program)
        dis = disassemble(code)
        assert [d[1] for d in dis] == ["PUSH", "DUP", "ADD", "JUMPI", "STOP"]

    def test_disassemble_invalid_opcode(self):
        dis = disassemble((250,))
        assert dis[0][1].startswith("INVALID")


class TestArithmetic:
    @pytest.mark.parametrize(
        "program,expected",
        [
            ([("PUSH", 2), ("PUSH", 3), "ADD"], 5),
            ([("PUSH", 2), ("PUSH", 7), "SUB"], 5),     # top - next = 7 - 2
            ([("PUSH", 3), ("PUSH", 4), "MUL"], 12),
            ([("PUSH", 2), ("PUSH", 9), "DIV"], 4),     # 9 // 2
            ([("PUSH", 4), ("PUSH", 9), "MOD"], 1),
            ([("PUSH", 0), ("PUSH", 9), "DIV"], 0),     # div by zero -> 0
            ([("PUSH", 0), ("PUSH", 9), "MOD"], 0),
            ([("PUSH", 5), ("PUSH", 3), "LT"], 1),      # 3 < 5
            ([("PUSH", 3), ("PUSH", 5), "GT"], 1),      # 5 > 3
            ([("PUSH", 4), ("PUSH", 4), "EQ"], 1),
            ([("PUSH", 0), "ISZERO"], 1),
            ([("PUSH", 6), ("PUSH", 3), "AND"], 2),
            ([("PUSH", 6), ("PUSH", 3), "OR"], 7),
            ([("PUSH", 6), ("PUSH", 3), "XOR"], 5),
        ],
    )
    def test_binary_ops_via_storage(self, evm, world, program, expected):
        # store the result at key 0 so we can observe it
        full = program + [("PUSH", 0), "SSTORE", "STOP"]
        # SSTORE pops key then value, so push key after the value
        receipt, _, contract = run_code(evm, world, full)
        assert receipt.success, receipt.error
        assert contract.storage_read(0) == expected

    def test_not_wraps_256_bits(self, evm, world):
        program = [("PUSH", 0), "NOT", ("PUSH", 0), "SSTORE", "STOP"]
        _, _, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == WORD_MASK

    def test_add_wraps(self, evm, world):
        program = [("PUSH", WORD_MASK), ("PUSH", 1), "ADD",
                   ("PUSH", 0), "SSTORE", "STOP"]
        _, _, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == 0


class TestStackOps:
    def test_dup(self, evm, world):
        program = [("PUSH", 9), ("DUP", 1), "ADD", ("PUSH", 0), "SSTORE", "STOP"]
        _, _, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == 18

    def test_swap(self, evm, world):
        program = [("PUSH", 2), ("PUSH", 10), ("SWAP", 1), "SUB",
                   ("PUSH", 0), "SSTORE", "STOP"]
        # after swap top is 2: result = 2 - 10 mod 2^256
        _, _, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == (2 - 10) & WORD_MASK

    def test_pop(self, evm, world):
        program = [("PUSH", 1), ("PUSH", 2), "POP",
                   ("PUSH", 0), "SSTORE", "STOP"]
        _, _, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == 1

    def test_stack_underflow_fails_tx(self, evm, world):
        receipt, _, _ = run_code(evm, world, ["ADD", "STOP"])
        assert not receipt.success
        assert "StackUnderflow" in receipt.error


class TestControlFlow:
    def test_jump_skips(self, evm, world):
        program = [
            ("JUMP", "skip"),
            ("PUSH", 1), ("PUSH", 0), "SSTORE",   # skipped
            ("label", "skip"),
            ("PUSH", 2), ("PUSH", 0), "SSTORE",
            "STOP",
        ]
        _, _, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == 2

    def test_jumpi_taken_and_not_taken(self, evm, world):
        program = [
            ("PUSH", 1), ("JUMPI", "set_a"),
            ("PUSH", 9), ("PUSH", 0), "SSTORE", "STOP",
            ("label", "set_a"),
            ("PUSH", 7), ("PUSH", 0), "SSTORE", "STOP",
        ]
        _, _, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == 7

    def test_loop_terminates_by_condition(self, evm, world):
        # sum 1..5 into storage[0] using a counter at storage[1]
        program = [
            ("label", "loop"),
            ("PUSH", 1), "SLOAD", ("PUSH", 1), "ADD",      # counter + 1
            ("DUP", 1), ("PUSH", 1), "SSTORE",             # counter++
            ("DUP", 1), ("PUSH", 0), "SLOAD", "ADD",       # sum += counter
            ("PUSH", 0), "SSTORE",
            ("PUSH", 1), "SLOAD", ("PUSH", 5), ("SWAP", 1), "LT",
            ("JUMPI", "loop"),
            "STOP",
        ]
        _, _, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == 15

    def test_infinite_loop_runs_out_of_gas(self, evm, world):
        program = [("label", "loop"), ("JUMP", "loop")]
        receipt, _, _ = run_code(evm, world, program, gas_limit=50_000)
        assert not receipt.success
        assert "OutOfGas" in receipt.error
        assert receipt.gas_used == 50_000

    def test_revert_fails_and_reverts_storage(self, evm, world):
        program = [("PUSH", 5), ("PUSH", 0), "SSTORE", "REVERT"]
        receipt, _, contract = run_code(evm, world, program)
        assert not receipt.success
        assert contract.storage_read(0) == 0

    def test_invalid_opcode_fails(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        contract = world.create_contract((200,))
        world.discard_journal()
        tx = Transaction(tx_id=0, sender=sender.address, to=contract.address,
                         gas_limit=100_000, nonce=0)
        receipt, _ = evm.execute_transaction(tx, 1.0)
        assert not receipt.success
        assert "InvalidOpcode" in receipt.error


class TestEnvironment:
    def test_caller_and_address(self, evm, world):
        program = ["CALLER", ("PUSH", 0), "SSTORE",
                   "ADDRESS", ("PUSH", 1), "SSTORE", "STOP"]
        receipt, trace, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == trace.calls[0].caller
        assert contract.storage_read(1) == contract.address

    def test_callvalue(self, evm, world):
        program = ["CALLVALUE", ("PUSH", 0), "SSTORE", "STOP"]
        _, _, contract = run_code(evm, world, program, value=77)
        assert contract.storage_read(0) == 77

    def test_calldataload_and_size(self, evm, world):
        program = [
            ("PUSH", 1), "CALLDATALOAD", ("PUSH", 0), "SSTORE",
            ("PUSH", 9), "CALLDATALOAD", ("PUSH", 1), "SSTORE",  # out of range -> 0
            "CALLDATASIZE", ("PUSH", 2), "SSTORE",
            "STOP",
        ]
        _, _, contract = run_code(evm, world, program, data=(11, 22))
        assert contract.storage_read(0) == 22
        assert contract.storage_read(1) == 0
        assert contract.storage_read(2) == 2

    def test_balance_and_selfbalance(self, evm, world):
        program = ["SELFBALANCE", ("PUSH", 0), "SSTORE", "STOP"]
        _, _, contract = run_code(evm, world, program, value=500)
        assert contract.storage_read(0) == 500

    def test_timestamp(self, evm, world):
        program = ["TIMESTAMP", ("PUSH", 0), "SSTORE", "STOP"]
        _, _, contract = run_code(evm, world, program)
        assert contract.storage_read(0) == 1
