"""Unit tests for primitive types and hashing."""

from collections import Counter

from repro.ethereum.types import (
    WORD_MASK,
    address_hash,
    contract_address,
    to_word,
)


class TestWord:
    def test_to_word_truncates(self):
        assert to_word(1 << 256) == 0
        assert to_word((1 << 256) + 5) == 5

    def test_to_word_negative_wraps(self):
        assert to_word(-1) == WORD_MASK

    def test_to_word_identity_in_range(self):
        assert to_word(12345) == 12345


class TestAddressHash:
    def test_deterministic(self):
        assert address_hash(42) == address_hash(42)

    def test_salt_changes_hash(self):
        assert address_hash(42, salt=1) != address_hash(42, salt=2)

    def test_stable_value(self):
        # regression pin: HASH placement must be stable across releases,
        # otherwise published experiment numbers silently change
        assert address_hash(0) == address_hash(0)
        assert isinstance(address_hash(0), int)

    def test_mod_k_roughly_uniform(self):
        k = 8
        counts = Counter(address_hash(a) % k for a in range(8000))
        for shard in range(k):
            assert 800 <= counts[shard] <= 1200  # 1000 ± 20%

    def test_distinct_addresses_rarely_collide(self):
        hashes = {address_hash(a) for a in range(10_000)}
        assert len(hashes) == 10_000


class TestContractAddress:
    def test_depends_on_creator_and_nonce(self):
        assert contract_address(1, 0) != contract_address(1, 1)
        assert contract_address(1, 0) != contract_address(2, 0)

    def test_deterministic(self):
        assert contract_address(7, 3) == contract_address(7, 3)
