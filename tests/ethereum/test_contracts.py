"""Behavioural tests for the standard contract templates."""

import pytest

from repro.ethereum import contracts as programs
from repro.ethereum.evm import EVM
from repro.ethereum.state import WorldState
from repro.ethereum.trace import CallKind
from repro.ethereum.transaction import Transaction


@pytest.fixture()
def world():
    return WorldState()


@pytest.fixture()
def evm(world):
    return EVM(world)


def call(evm, world, sender, contract, value=0, data=(), gas=300_000):
    tx = Transaction(tx_id=0, sender=sender.address, to=contract.address,
                     value=value, gas_limit=gas, nonce=sender.nonce,
                     data=tuple(data))
    return evm.execute_transaction(tx, 1.0)


class TestToken:
    def test_transfer_updates_both_balances(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        recipient = world.create_eoa()
        token = world.create_contract(programs.token_code(),
                                      initial_storage={sender.address: 1000})
        world.discard_journal()
        receipt, trace = call(evm, world, sender, token,
                              data=(recipient.address, 300))
        assert receipt.success, receipt.error
        assert token.storage_read(recipient.address) == 300
        assert token.storage_read(sender.address) == 700
        # token transfers make no internal calls: a single graph edge
        assert trace.num_calls == 1

    def test_transfer_no_value_needed(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        recipient = world.create_eoa()
        token = world.create_contract(programs.token_code())
        world.discard_journal()
        receipt, _ = call(evm, world, sender, token, data=(recipient.address, 5))
        assert receipt.success


class TestExchange:
    def test_pays_out_half_value(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        payee = world.create_eoa()
        exchange = world.create_contract(programs.exchange_code())
        world.discard_journal()
        receipt, trace = call(evm, world, sender, exchange, value=100,
                              data=(payee.address,))
        assert receipt.success, receipt.error
        assert payee.balance == 50
        assert exchange.balance == 50
        assert trace.num_calls == 2
        assert trace.calls[1].kind is CallKind.TRANSFER


class TestMixer:
    def test_fans_out_to_three(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        outs = [world.create_eoa() for _ in range(3)]
        mixer = world.create_contract(programs.mixer_code())
        world.discard_journal()
        receipt, trace = call(evm, world, sender, mixer, value=100,
                              data=tuple(o.address for o in outs))
        assert receipt.success, receipt.error
        assert [o.balance for o in outs] == [25, 25, 25]
        assert mixer.balance == 25
        assert trace.num_calls == 4  # activation + 3 internal


class TestWallet:
    def test_forwards_to_owner(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        owner = world.create_eoa()
        wallet = world.create_contract(programs.wallet_code(),
                                       initial_storage={0: owner.address})
        world.discard_journal()
        receipt, trace = call(evm, world, sender, wallet, value=40)
        assert receipt.success, receipt.error
        assert owner.balance == 40
        assert wallet.balance == 0


class TestFactory:
    def test_creates_from_template(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        tid = evm.register_template(programs.dummy_code())
        factory = world.create_contract(programs.factory_code())
        world.discard_journal()
        before = len(world)
        receipt, trace = call(evm, world, sender, factory, data=(tid,))
        assert receipt.success, receipt.error
        assert len(world) == before + 1
        assert any(c.kind is CallKind.CREATE for c in trace.calls)


class TestSpammer:
    def test_touches_all_targets(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        targets = [world.create_eoa() for _ in range(4)]
        spammer = world.create_contract(programs.spammer_code(4))
        world.discard_journal()
        receipt, trace = call(evm, world, sender, spammer,
                              data=tuple(t.address for t in targets))
        assert receipt.success, receipt.error
        callees = {c.callee for c in trace.calls[1:]}
        assert callees == {t.address for t in targets}

    def test_fanout_configurable(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        targets = [world.create_eoa() for _ in range(2)]
        spammer = world.create_contract(programs.spammer_code(2))
        world.discard_journal()
        _, trace = call(evm, world, sender, spammer,
                        data=tuple(t.address for t in targets))
        assert trace.num_calls == 3


class TestDummy:
    def test_does_nothing(self, evm, world):
        sender = world.create_eoa(balance=10**12)
        dummy = world.create_contract(programs.dummy_code())
        world.discard_journal()
        receipt, trace = call(evm, world, sender, dummy)
        assert receipt.success
        assert trace.num_calls == 1
        assert dummy.storage_size == 0
