"""Guard tests for the example scripts.

Each example must compile and expose a ``main``; the fastest one runs
end to end so the public-API wiring the examples demonstrate stays
exercised by CI.  (Running every example would roughly double suite
time for no additional coverage — they all sit on the same code paths
the integration tests already execute.)
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "attack_replay", "sharding_study",
            "custom_partitioner", "trace_analysis", "experiment_sweep"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles_and_has_main(path):
    module = load_example(path)
    assert callable(getattr(module, "main", None))
    assert module.__doc__, "examples must explain themselves"


def test_quickstart_runs_end_to_end(capsys, monkeypatch):
    """Run the quickstart against a tiny workload (patch the scale)."""
    module = load_example(EXAMPLES_DIR / "quickstart.py")
    monkeypatch.setattr(module, "SCALE", "tiny")
    module.main()
    out = capsys.readouterr().out
    assert "hash" in out and "metis" in out
    assert "moves=0" in out
