"""Incremental lint cache: hits, invalidation, and degradation paths.

Every test drives the public ``lint_paths(..., use_cache=True)`` entry
point against a small on-disk project, then inspects
``LintReport.cache_stats`` — the same numbers the CLI reports under the
``cache`` key of the ``reprolint/2`` JSON.
"""

import json
import textwrap
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.cache import CACHE_SCHEMA, rules_signature

PKG = {
    # entry file: calls into helper.py, carries one RL001 finding
    "pkg/runner.py": """
        import random

        from pkg.helper import prepare

        def run(trace):
            prepare(trace)
            return random.random()
    """,
    # leaf: clean on its own
    "pkg/helper.py": """
        def prepare(trace):
            return sorted(trace)
    """,
    # unrelated file with its own finding (and a suppressed one)
    "pkg/other.py": """
        import random

        def f():
            return random.random()

        def g():
            return random.random()  # reprolint: disable=RL001 -- test: suppressed on purpose
    """,
}


def write_pkg(root, files=PKG):
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))


def run_cached(root, **kwargs):
    return lint_paths(
        [str(root / "pkg")],
        use_cache=True,
        cache_path=str(root / "cache.json"),
        **kwargs,
    )


def as_triples(report):
    return [(f.path, f.line, f.rule) for f in report.findings]


class TestWarmRuns:
    def test_full_hit_replays_findings_without_parsing(self, tmp_path):
        write_pkg(tmp_path)
        cold = run_cached(tmp_path)
        warm = run_cached(tmp_path)
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed == 1
        assert cold.cache_stats["parsed"] == 3
        assert warm.cache_stats == {
            "hit": 3,
            "parsed": 0,
            "impacted": 0,
            "parsed_files": [],
            "impacted_files": [],
        }

    def test_cache_file_is_valid_schema_json(self, tmp_path):
        write_pkg(tmp_path)
        run_cached(tmp_path)
        data = json.loads((tmp_path / "cache.json").read_text())
        assert data["schema"] == CACHE_SCHEMA
        assert data["rules"] == rules_signature()
        assert set(data["files"]) == {
            "pkg/runner.py", "pkg/helper.py", "pkg/other.py",
        }

    def test_no_cache_run_leaves_no_cache_file(self, tmp_path):
        write_pkg(tmp_path)
        report = lint_paths([str(tmp_path / "pkg")], use_cache=False)
        assert report.cache_stats is None
        assert not (tmp_path / "cache.json").exists()

    def test_select_bypasses_the_cache(self, tmp_path):
        write_pkg(tmp_path)
        report = lint_paths(
            [str(tmp_path / "pkg")],
            select=["RL001"],
            use_cache=True,
            cache_path=str(tmp_path / "cache.json"),
        )
        assert report.cache_stats is None
        assert not (tmp_path / "cache.json").exists()


class TestInvalidation:
    def test_leaf_edit_reparses_only_that_file(self, tmp_path):
        write_pkg(tmp_path)
        run_cached(tmp_path)
        leaf = tmp_path / "pkg/helper.py"
        leaf.write_text(leaf.read_text() + "\nEXTRA = 1\n")
        warm = run_cached(tmp_path)
        assert warm.cache_stats["parsed_files"] == ["pkg/helper.py"]
        # runner.py calls into helper.py, so its interprocedural
        # findings are impacted; other.py is not
        assert warm.cache_stats["impacted_files"] == [
            "pkg/helper.py", "pkg/runner.py",
        ]

    def test_partial_run_findings_match_cold(self, tmp_path):
        write_pkg(tmp_path)
        cold = run_cached(tmp_path)
        (tmp_path / "pkg/helper.py").write_text("def prepare(trace):\n    return trace\n")
        warm = run_cached(tmp_path)
        assert as_triples(warm) == as_triples(cold)
        assert warm.suppressed == cold.suppressed

    def test_new_finding_in_edited_file_is_reported_warm(self, tmp_path):
        write_pkg(tmp_path)
        run_cached(tmp_path)
        leaf = tmp_path / "pkg/helper.py"
        leaf.write_text(
            "import random\n\ndef prepare(trace):\n    return random.random()\n"
        )
        warm = run_cached(tmp_path)
        assert ("pkg/helper.py", 4, "RL001") in as_triples(warm)

    def test_deleted_file_invalidates_the_full_hit_path(self, tmp_path):
        write_pkg(tmp_path)
        run_cached(tmp_path)
        (tmp_path / "pkg/other.py").unlink()
        warm = run_cached(tmp_path)
        assert warm.files == 2
        assert all(not f.path.endswith("other.py") for f in warm.findings)

    def test_rules_signature_mismatch_goes_cold(self, tmp_path):
        write_pkg(tmp_path)
        run_cached(tmp_path)
        cache_file = tmp_path / "cache.json"
        data = json.loads(cache_file.read_text())
        data["rules"] = "0" * 64
        cache_file.write_text(json.dumps(data))
        warm = run_cached(tmp_path)
        assert warm.cache_stats["hit"] == 0
        assert warm.cache_stats["parsed"] == 3

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        write_pkg(tmp_path)
        run_cached(tmp_path)
        (tmp_path / "cache.json").write_text("{not json")
        warm = run_cached(tmp_path)
        assert warm.cache_stats["hit"] == 0
        assert as_triples(warm) == as_triples(run_cached(tmp_path))


class TestChangedOnly:
    def test_unchanged_tree_reports_nothing(self, tmp_path):
        write_pkg(tmp_path)
        run_cached(tmp_path)
        warm = run_cached(tmp_path, changed_only=True)
        assert warm.findings == ()
        assert warm.exit_code == 0

    def test_edit_reports_only_impacted_files(self, tmp_path):
        write_pkg(tmp_path)
        run_cached(tmp_path)
        leaf = tmp_path / "pkg/helper.py"
        leaf.write_text(leaf.read_text() + "\nEXTRA = 1\n")
        warm = run_cached(tmp_path, changed_only=True)
        # other.py's standing RL001 finding is filtered out; runner.py
        # is in the impacted closure so its finding stays
        paths = {f.path for f in warm.findings}
        assert paths == {"pkg/runner.py"}
