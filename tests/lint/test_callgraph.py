"""Call-graph construction and resolution edge cases.

Summaries are built straight from parsed sources (no filesystem), so
these tests pin the resolver semantics the interprocedural rules and
the cache invalidation both depend on: aliased imports, ``__init__``
re-exports, ``self.`` dispatch through annotated attributes, base-class
method resolution, and cycle termination.
"""

import ast
import textwrap

from repro.lint.callgraph import CallGraph, ModuleSummary, build_summary, module_name
from repro.lint.dataflow import (
    file_dependencies,
    fork_shared_readers,
    reachable_taints,
    reverse_file_closure,
    shortest_chains,
)


def graph_of(files):
    summaries = []
    for relpath, text in files.items():
        tree = ast.parse(textwrap.dedent(text))
        summaries.append(build_summary(relpath, tree))
    return CallGraph(summaries)


def callees(graph, symbol):
    return sorted(callee for callee, _record in graph.edges.get(symbol, ()))


class TestModuleName:
    def test_src_prefix_is_stripped(self):
        assert module_name("src/repro/graph/io.py") == ("repro.graph.io", False)

    def test_init_names_its_package(self):
        assert module_name("src/repro/graph/__init__.py") == ("repro.graph", True)

    def test_paths_without_src_keep_all_segments(self):
        assert module_name("pkg/core/api.py") == ("pkg.core.api", False)


class TestNameResolution:
    def test_aliased_module_import(self):
        graph = graph_of({
            "pkg/io.py": "def load(path):\n    return path\n",
            "pkg/use.py": """
                import pkg.io as pio

                def f():
                    return pio.load("x")
            """,
        })
        assert callees(graph, "pkg.use.f") == ["pkg.io.load"]

    def test_renamed_from_import(self):
        graph = graph_of({
            "pkg/io.py": "def load(path):\n    return path\n",
            "pkg/use.py": """
                from pkg.io import load as ld

                def f():
                    return ld("x")
            """,
        })
        assert callees(graph, "pkg.use.f") == ["pkg.io.load"]

    def test_reexport_through_init(self):
        graph = graph_of({
            "pkg/__init__.py": "from pkg.impl import load\n",
            "pkg/impl.py": "def load():\n    return 1\n",
            "main.py": """
                import pkg

                def f():
                    return pkg.load()
            """,
        })
        assert callees(graph, "main.f") == ["pkg.impl.load"]

    def test_relative_import(self):
        graph = graph_of({
            "pkg/io.py": "def load(path):\n    return path\n",
            "pkg/use.py": """
                from .io import load

                def f():
                    return load("x")
            """,
        })
        assert callees(graph, "pkg.use.f") == ["pkg.io.load"]

    def test_suffix_match_resolves_fixture_style_roots(self):
        # modules rooted under tests/ resolve imports written against
        # the shorter in-repo name, as long as the suffix is unique
        graph = graph_of({
            "tests/proj/core/io.py": "def load():\n    return 1\n",
            "tests/proj/use.py": """
                from proj.core.io import load

                def f():
                    return load()
            """,
        })
        assert callees(graph, "tests.proj.use.f") == ["tests.proj.core.io.load"]

    def test_unknown_names_produce_no_edges(self):
        graph = graph_of({
            "pkg/use.py": """
                import os

                def f(x):
                    x.whatever()
                    return os.path.join("a", "b")
            """,
        })
        assert callees(graph, "pkg.use.f") == []

    def test_constructor_call_edges_into_init(self):
        graph = graph_of({
            "pkg/mod.py": """
                class Engine:
                    def __init__(self, k):
                        self.k = k

                def make():
                    return Engine(2)
            """,
        })
        assert callees(graph, "pkg.mod.make") == ["pkg.mod.Engine.__init__"]


class TestMethodDispatch:
    def test_self_dispatch(self):
        graph = graph_of({
            "pkg/mod.py": """
                class Engine:
                    def run(self):
                        return self.helper()

                    def helper(self):
                        return 1
            """,
        })
        assert callees(graph, "pkg.mod.Engine.run") == ["pkg.mod.Engine.helper"]

    def test_self_dispatch_walks_local_bases(self):
        graph = graph_of({
            "pkg/base.py": """
                class Base:
                    def helper(self):
                        return 1
            """,
            "pkg/mod.py": """
                from pkg.base import Base

                class Child(Base):
                    def run(self):
                        return self.helper()
            """,
        })
        assert callees(graph, "pkg.mod.Child.run") == ["pkg.base.Base.helper"]

    def test_annotated_attribute_dispatch(self):
        graph = graph_of({
            "pkg/mod.py": """
                class Store:
                    def put(self, key):
                        return key

                class Engine:
                    store: Store

                    def run(self):
                        return self.store.put("k")
            """,
        })
        assert callees(graph, "pkg.mod.Engine.run") == ["pkg.mod.Store.put"]

    def test_init_assigned_attribute_dispatch(self):
        graph = graph_of({
            "pkg/store.py": """
                class Store:
                    def put(self, key):
                        return key
            """,
            "pkg/mod.py": """
                from pkg.store import Store

                class Engine:
                    def __init__(self):
                        self.store = Store()

                    def run(self):
                        return self.store.put("k")
            """,
        })
        assert callees(graph, "pkg.mod.Engine.run") == ["pkg.store.Store.put"]

    def test_annotated_parameter_dispatch(self):
        graph = graph_of({
            "pkg/mod.py": """
                class Log:
                    def window(self, hours):
                        return hours

                def f(log: Log):
                    return log.window(4)
            """,
        })
        assert callees(graph, "pkg.mod.f") == ["pkg.mod.Log.window"]

    def test_base_class_cycle_terminates(self):
        graph = graph_of({
            "pkg/mod.py": """
                class A(B):
                    pass

                class B(A):
                    def run(self):
                        return self.missing()
            """,
        })
        # A <-> B inheritance loop: resolution returns None, no hang
        assert graph.mro_method("pkg.mod", "A", "missing") is None


class TestDataflow:
    def _cyclic_graph(self):
        return graph_of({
            "pkg/a.py": """
                import time
                from pkg.b import pong

                def ping():
                    return pong()

                def tick():
                    return time.time()
            """,
            "pkg/b.py": """
                from pkg.a import ping, tick

                def pong():
                    ping()
                    return tick()
            """,
        })

    def test_call_cycle_terminates_and_taints(self):
        graph = self._cyclic_graph()
        taints = reachable_taints(graph, ("a.ping",))
        assert [t["kind"] for t in taints] == ["wall-clock"]
        assert taints[0]["chain"] == (
            "pkg.a.ping", "pkg.b.pong", "pkg.a.tick",
        )

    def test_shortest_chain_wins(self):
        graph = graph_of({
            "pkg/mod.py": """
                import time

                def entry():
                    middle()
                    return leaf()

                def middle():
                    return leaf()

                def leaf():
                    return time.time()
            """,
        })
        chains = shortest_chains(graph, ["pkg.mod.entry"])
        assert chains["pkg.mod.leaf"] == ("pkg.mod.entry", "pkg.mod.leaf")

    def test_unreachable_taint_is_not_reported(self):
        graph = graph_of({
            "pkg/mod.py": """
                import time

                def entry():
                    return 1

                def orphan():
                    return time.time()
            """,
        })
        assert reachable_taints(graph, ("mod.entry",)) == []

    def test_fork_shared_readers_close_over_callers(self):
        graph = graph_of({
            "pkg/mod.py": """
                _FORK_SHARED = None

                def direct():
                    log, window = _FORK_SHARED
                    return log, window

                def indirect():
                    return direct()

                def unrelated():
                    return 1
            """,
        })
        assert fork_shared_readers(graph) == {
            "pkg.mod.direct", "pkg.mod.indirect",
        }

    def test_reverse_file_closure_follows_dependents(self):
        graph = self._cyclic_graph()
        deps = file_dependencies(graph)
        closure = reverse_file_closure(deps, {"pkg/a.py"})
        assert closure == {"pkg/a.py", "pkg/b.py"}


class TestSummaryRoundTrip:
    def test_summary_survives_dict_round_trip(self):
        tree = ast.parse(textwrap.dedent("""
            import dataclasses
            from pkg.io import load

            LIMIT = 4

            @dataclasses.dataclass(frozen=True)
            class Spec:
                scale: str = "small"

                def identity(self):
                    return self.scale

            def run(path):
                return load(path)
        """))
        summary = build_summary("pkg/mod.py", tree)
        restored = ModuleSummary.from_dict(summary.to_dict())
        assert restored.modname == summary.modname
        assert set(restored.functions) == set(summary.functions)
        assert restored.functions["run"].calls == summary.functions["run"].calls
        assert restored.classes["Spec"].fields == summary.classes["Spec"].fields
        assert restored.exports == summary.exports
