"""Engine-level tests: discovery, suppressions, report/CLI contracts."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import get_rule, lint_paths
from repro.lint.cli import main
from repro.lint.engine import collect_files
from repro.lint.rules import RULES

REPO = Path(__file__).resolve().parents[2]


def write(root, relpath, text):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return path


class TestDiscovery:
    def test_skips_fixture_pycache_and_hidden_dirs(self, tmp_path):
        write(tmp_path, "pkg/ok.py", "X = 1\n")
        write(tmp_path, "pkg/fixtures/bad.py", "X = 1\n")
        write(tmp_path, "pkg/__pycache__/ghost.py", "X = 1\n")
        write(tmp_path, "pkg/.hidden/secret.py", "X = 1\n")
        write(tmp_path, "pkg/notes.txt", "not python\n")
        files = collect_files([str(tmp_path)])
        assert [Path(f).name for f in files] == ["ok.py"]

    def test_explicit_file_always_included(self, tmp_path):
        bad = write(tmp_path, "fixtures/bad.py", "X = 1\n")
        assert collect_files([str(bad)]) == [str(bad)]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([str(tmp_path / "nope")])

    def test_single_dir_arg_keeps_scope_segment(self, tmp_path):
        # linting <root>/core directly must still expose the "core"
        # path segment to scoped rules (root is the argument's parent)
        write(
            tmp_path,
            "core/bad.py",
            """
            def f(edges):
                for v in {d for _, d in edges}:
                    print(v)
            """,
        )
        report = lint_paths([str(tmp_path / "core")])
        assert [f.rule for f in report.findings] == ["RL002"]
        assert report.findings[0].path == "core/bad.py"


class TestSuppressions:
    def test_directive_inside_string_is_ignored(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            import random

            def f():
                return random.random(), "# reprolint: disable=RL001"
            """,
        )
        report = lint_paths([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["RL001"]
        assert report.suppressed == 0

    def test_unrelated_rule_id_does_not_suppress(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            import random

            def f():
                return random.random()  # reprolint: disable=RL007 -- wrong id
            """,
        )
        report = lint_paths([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["RL001"]


class TestParseErrors:
    def test_broken_file_reports_rl000_and_fails(self, tmp_path):
        write(tmp_path, "broken.py", "def broken(:\n    pass\n")
        report = lint_paths([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["RL000"]
        assert report.exit_code == 1


class TestRegistry:
    def test_thirteen_rules_registered(self):
        assert sorted(RULES) == [f"RL{i:03d}" for i in range(1, 14)]

    def test_rules_have_docs_metadata(self):
        for rule_id in RULES:
            rule = get_rule(rule_id)
            assert rule.rationale and rule.example and rule.name

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rule("RL999")


class TestCli:
    def _violating_tree(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            """
            import random

            def f():
                return random.random()
            """,
        )
        return tmp_path / "pkg"

    def test_text_output_and_exit_code(self, tmp_path, capsys):
        pkg = self._violating_tree(tmp_path)
        assert main([str(pkg)]) == 1
        out = capsys.readouterr().out
        assert "pkg/mod.py:5:12: RL001 [error]" in out
        assert "1 error(s)" in out

    def test_json_schema_is_stable(self, tmp_path):
        pkg = self._violating_tree(tmp_path)
        out_file = tmp_path / "report.json"
        assert main([str(pkg), "--format", "json", "--output", str(out_file)]) == 1
        data = json.loads(out_file.read_text())
        assert data["schema"] == "reprolint/2"
        assert data["exit"] == 1
        assert data["files"] == 1
        assert data["counts"] == {"error": 1, "advice": 0, "suppressed": 0}
        # cache-enabled CLI runs report cache statistics
        assert data["cache"] == {"hit": 0, "parsed": 1, "impacted": 1}
        (finding,) = data["findings"]
        assert finding == {
            "file": "pkg/mod.py",
            "line": 5,
            "col": 12,
            "rule": "RL001",
            "severity": "error",
            "message": finding["message"],
        }
        assert "process-global RNG" in finding["message"]

    def test_json_schema_without_cache_omits_cache_key(self, tmp_path):
        pkg = self._violating_tree(tmp_path)
        out_file = tmp_path / "report.json"
        assert (
            main(
                [str(pkg), "--no-cache", "--format", "json", "--output", str(out_file)]
            )
            == 1
        )
        data = json.loads(out_file.read_text())
        assert data["schema"] == "reprolint/2"
        assert "cache" not in data

    def test_findings_sorted_for_stable_diffs(self, tmp_path):
        write(tmp_path, "pkg/b.py", "import random\nX = random.random()\n")
        write(tmp_path, "pkg/a.py", "import random\nY = random.random()\n")
        report = lint_paths([str(tmp_path / "pkg")])
        assert [f.path for f in report.findings] == ["pkg/a.py", "pkg/b.py"]

    def test_select_unknown_rule_is_usage_error(self, tmp_path, capsys):
        pkg = self._violating_tree(tmp_path)
        assert main([str(pkg), "--select", "RL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_no_advice_omits_advice_findings(self, tmp_path, capsys):
        write(
            tmp_path,
            "core/multireplay.py",
            """
            def f(graph, window):
                for it in window:
                    graph.add_edge(it.src, it.dst)
            """,
        )
        assert main([str(tmp_path / "core"), "--no-advice"]) == 0
        out = capsys.readouterr().out
        assert "RL010" not in out
        assert main([str(tmp_path / "core")]) == 0
        assert "RL010" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_module_entry_point(self, tmp_path):
        pkg = self._violating_tree(tmp_path)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(pkg)],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        )
        assert proc.returncode == 1
        assert "RL001" in proc.stdout
