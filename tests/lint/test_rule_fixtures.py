"""Fixture-driven rule tests.

Each subdirectory of ``fixtures/`` is one self-contained lint project.
Expected findings are annotated *in the fixture files* with trailing
``# expect: RLxxx`` comments on the exact line the linter must report;
the test compares the full (file, line, rule) set, so both missing
findings and false positives fail.
"""

import re
from pathlib import Path

import pytest

from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RL\d{3}(?:\s*,\s*RL\d{3})*)")

#: every fixture project; dirs without any ``# expect`` annotation
#: assert the linter stays silent on them
FIXTURE_DIRS = sorted(p.name for p in FIXTURES.iterdir() if p.is_dir())


def expected_findings(fixture):
    """(relpath, line, rule) triples declared by ``# expect`` comments."""
    root = FIXTURES / fixture
    expected = set()
    for path in sorted(root.rglob("*.py")):
        relpath = f"{fixture}/{path.relative_to(root).as_posix()}"
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _EXPECT_RE.search(line)
            if match:
                for rule in match.group(1).split(","):
                    expected.add((relpath, lineno, rule.strip()))
    return expected


def test_fixture_inventory():
    # one project per rule; cross-file rules (RL005/RL008, and the
    # interprocedural RL011-RL013) get bad/good/silent variants
    assert {"rl001", "rl002", "rl003", "rl004", "rl005_bad", "rl005_good",
            "rl006", "rl007", "rl008_bad", "rl008_good", "rl008_silent",
            "rl009", "rl010",
            "rl011_bad", "rl011_good", "rl011_silent",
            "rl012_bad", "rl012_good", "rl012_silent",
            "rl013_bad", "rl013_good", "rl013_silent",
            "suppress"} <= set(FIXTURE_DIRS)


@pytest.mark.parametrize("fixture", FIXTURE_DIRS)
def test_fixture_findings_match_annotations(fixture):
    report = lint_paths([str(FIXTURES / fixture)])
    actual = {(f.path, f.line, f.rule) for f in report.findings}
    assert actual == expected_findings(fixture)


@pytest.mark.parametrize(
    "fixture", [f for f in FIXTURE_DIRS if f.endswith(("_bad",)) or f in
                ("rl001", "rl002", "rl003", "rl004", "rl006", "rl007",
                 "rl009", "suppress")]
)
def test_bad_fixtures_fail_the_run(fixture):
    report = lint_paths([str(FIXTURES / fixture)])
    assert report.exit_code == 1
    assert report.errors


@pytest.mark.parametrize(
    "fixture", [f for f in FIXTURE_DIRS if f.endswith(("_good", "_silent"))]
)
def test_good_fixtures_pass(fixture):
    report = lint_paths([str(FIXTURES / fixture)])
    assert report.findings == ()
    assert report.exit_code == 0


def test_rl010_is_advice_only():
    report = lint_paths([str(FIXTURES / "rl010")])
    assert report.findings  # the loops are reported...
    assert all(f.severity == "advice" for f in report.findings)
    assert report.exit_code == 0  # ...but advice never fails a run


def test_suppressions_are_counted():
    report = lint_paths([str(FIXTURES / "suppress")])
    # RL001 on the disabled line + RL006 via the multi-id directive
    assert report.suppressed == 2
    assert {f.rule for f in report.findings} == {"RL001"}


def test_select_restricts_rules():
    report = lint_paths([str(FIXTURES / "suppress")], select=["RL006"])
    # only RL006 runs; its one finding is suppressed, so the run is clean
    assert report.findings == ()
    assert report.suppressed == 1
    assert report.exit_code == 0
