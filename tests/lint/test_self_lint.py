"""The linter's own acceptance gate: this repository lints clean.

CI runs ``python -m repro.lint src tests benchmarks examples`` before
the test matrix; this test keeps that invariant enforceable locally
(``pytest tests/lint``) and pins down *what* clean means: zero
error-severity findings — advice (RL010 batch-kernel markers) is
allowed to accumulate until the ROADMAP optimisations land.
"""

from pathlib import Path

from repro.lint import lint_paths

REPO = Path(__file__).resolve().parents[2]
LINT_PATHS = [REPO / "src", REPO / "tests", REPO / "benchmarks", REPO / "examples"]


def test_repo_lints_clean():
    report = lint_paths([str(p) for p in LINT_PATHS if p.is_dir()])
    errors = [f"{f.location()}: {f.rule} {f.message}" for f in report.errors]
    assert not errors, "repository has lint errors:\n" + "\n".join(errors)
    assert report.exit_code == 0


def test_self_lint_covers_the_tree():
    report = lint_paths([str(p) for p in LINT_PATHS if p.is_dir()])
    # sanity: the run actually linted the codebase, not an empty set
    assert report.files > 100
