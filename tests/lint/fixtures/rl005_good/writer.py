"""RL005 fixture (good): writer-side constants honouring the contract."""

import struct

MAGIC = b"rctrace\x00"

_HEADER = struct.Struct("<8sIIQQQI20s")
_SECTION_ENTRY = struct.Struct("<BBHQ")

ENC_RAW = 0
ENC_UVARINT = 1
ENC_DELTA = 2
ENC_FLOAT_DELTA = 3

_V3_SECTIONS = (
    ("timestamps", "d", 8, (0, 3), 0),
    ("src", "q", 8, (0, 1, 2), 0),
    ("dst", "q", 8, (0, 1, 2), 0),
    ("vertex_ids", "q", 8, (0, 2), 0),
)
