"""RL005 fixture (good): reader-side tables consistent with writer.py."""

_ENC_NAMES = {0: "raw", 1: "uvarint", 2: "delta", 3: "float-delta"}

_ROW_SECTIONS = (
    ("timestamps", "d", 8),
    ("src", "q", 8),
    ("dst", "q", 8),
)
