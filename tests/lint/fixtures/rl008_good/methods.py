"""RL008 fixture (good): every concrete method is registered."""

from rl008_good.base import PartitionMethod


class HashMethod(PartitionMethod):
    def maybe_repartition(self, ctx):
        return None


class GreedyMethod(PartitionMethod):
    def __init__(self, k, seed=0, gamma=1.5):
        super().__init__(k, seed)
        self.gamma = gamma

    def maybe_repartition(self, ctx):
        return None


_FACTORIES = {
    "hash": HashMethod,
    "greedy": GreedyMethod,
}
