"""RL008 fixture (good): the abstract base."""

import abc
import random


class PartitionMethod(abc.ABC):
    def __init__(self, k, seed=0):
        self.k = k
        self.rng = random.Random(seed)

    @abc.abstractmethod
    def maybe_repartition(self, ctx):
        raise NotImplementedError
