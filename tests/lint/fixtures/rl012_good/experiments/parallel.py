"""RL012 fixture: picklable-by-construction submits (clean).

``_forked_chunk`` reads the ``_FORK_SHARED`` copy-on-write state but
every submit of it sits behind a fork start-method guard; the spawn
branch ships a plain (source, window, keys) payload instead.
"""

import concurrent.futures as futures
import multiprocessing

_FORK_SHARED = None


def _forked_chunk(keys):
    source, window = _FORK_SHARED
    return source, window, keys


def replay_chunk(source, window, keys):
    return source, window, keys


def run(source, window, chunks):
    forked = multiprocessing.get_start_method() == "fork"
    results = []
    with futures.ProcessPoolExecutor() as ex:
        if forked:
            handles = [ex.submit(_forked_chunk, list(c)) for c in chunks]
        else:
            handles = [
                ex.submit(replay_chunk, source, window, list(c)) for c in chunks
            ]
        for h in handles:
            results.append(h.result())
    return results
