"""RL008 fixture (silent): a hierarchy with *no* registry in the lint
set — the rule has nothing to join against and must stay quiet."""

import abc
import random


class PartitionMethod(abc.ABC):
    def __init__(self, k, seed=0):
        self.k = k
        self.rng = random.Random(seed)

    @abc.abstractmethod
    def maybe_repartition(self, ctx):
        raise NotImplementedError


class OrphanMethod(PartitionMethod):
    def maybe_repartition(self, ctx):
        return None
