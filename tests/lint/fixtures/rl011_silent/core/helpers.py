"""Helper with a sanctioned wall-clock read (progress logging only)."""

import time


def prepare(trace):
    started = time.time()  # reprolint: disable=RL003,RL011 -- fixture: progress timestamp never enters replay results
    return trace, started
