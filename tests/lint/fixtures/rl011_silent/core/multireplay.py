"""RL011 fixture: tainted chain silenced by a justified suppression."""

from rl011_silent.core import helpers


class MultiReplayEngine:
    def run(self, trace):
        return helpers.prepare(trace)
