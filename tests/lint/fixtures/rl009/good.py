"""RL009 fixture: specs evolved by replacement, not mutation (clean)."""

import dataclasses

from repro.experiments.spec import MethodSpec


def widen(spec: MethodSpec):
    return dataclasses.replace(spec, params={"gamma": 2.0})


class LocalValue:
    def __post_init__(self):
        # constructors may use object.__setattr__ on frozen dataclasses
        object.__setattr__(self, "label", "x")
