"""RL009 fixture: mutation of frozen spec objects."""

from repro.experiments.spec import MethodSpec


def widen(spec):
    object.__setattr__(spec, "scale", "large")  # expect: RL009
    return spec


def retag(spec: MethodSpec):
    spec.method = "fennel"  # expect: RL009
    return spec


def rebuild():
    spec = MethodSpec.parse("fennel")
    spec.params = {}  # expect: RL009
    return spec
