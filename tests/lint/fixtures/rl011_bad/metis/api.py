"""RL011 fixture: partitioning entry point reaching unseeded RNG."""

from rl011_bad.metis.refine import improve


def part_graph(graph, k):
    return improve(graph, k)
