"""Refinement helper drawing from the process-global RNG."""

import random


def improve(graph, k):
    return random.random() * k  # expect: RL001, RL011
