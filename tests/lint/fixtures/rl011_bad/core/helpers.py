"""Helpers two frames below the entry point."""

import time


def prepare(trace):
    return jitter(trace)


def jitter(trace):
    return len(trace) + time.time()  # expect: RL003, RL011
