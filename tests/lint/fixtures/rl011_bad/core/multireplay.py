"""RL011 fixture: replay entry point reaching wall-clock reads."""

from rl011_bad.core import helpers


class MultiReplayEngine:
    def run(self, trace):
        return helpers.prepare(trace)
