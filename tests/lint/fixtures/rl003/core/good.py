"""RL003 fixture: trace-derived time and perf_counter durations (clean)."""

import time


def window_cutoff(log):
    return log.last_timestamp() - 3600.0


def measure(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
