"""RL003 fixture: wall-clock reads inside replay-scoped code."""

import time
from datetime import datetime


def window_cutoff():
    return time.time() - 3600.0  # expect: RL003


def stamp_result(result):
    result["at"] = datetime.now()  # expect: RL003
    return result
