"""RL005 fixture (bad): writer-side constants that drifted.

The header struct lost a Q (56 bytes instead of the 64-byte
contract), and two encoding tags collide.
"""

import struct

MAGIC = b"rctrace\x00"

_HEADER = struct.Struct("<8sIIQQI20s")  # expect: RL005
_SECTION_ENTRY = struct.Struct("<BBHQ")

ENC_RAW = 0
ENC_UVARINT = 1
ENC_DELTA = 2
ENC_FLOAT_DELTA = 2  # expect: RL005

_V3_SECTIONS = (
    ("timestamps", "d", 8, (0, 2), 0),
    ("src", "q", 8, (0, 1), 0),
    ("dst", "q", 8, (0, 1), 0),
    ("vertex_ids", "q", 8, (0, 1), 0),
)
