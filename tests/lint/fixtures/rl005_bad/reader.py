"""RL005 fixture (bad): reader-side v2 table drifted from the writer.

The ``src`` row declares typecode ``i``/4 bytes where the v3 table
(in writer.py) declares ``q``/8 — a lossy v2<->v3 conversion.
"""

_ENC_NAMES = {0: "raw", 1: "uvarint", 2: "delta"}

_ROW_SECTIONS = (  # expect: RL005
    ("timestamps", "d", 8),
    ("src", "i", 4),
    ("dst", "q", 8),
)
