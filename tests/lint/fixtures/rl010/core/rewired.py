"""RL010 fixture: a converted module that dispatches to batch kernels.

Not on the ROADMAP target list — it enters RL010 scope purely because
it calls ``kernels.active()``.  The batch call is fine; the fresh
per-row loop next to it is a regression and must still be flagged.
"""

from repro import kernels


def account_window(window, src, dst, lo, hi, shard, k):
    kr = kernels.active()
    total, _, _, _, delta = kr.account_window(src, dst, lo, hi, (), shard, k)
    for it in window:  # expect: RL010
        if shard[it.src] != shard[it.dst]:
            total += 1
    return total, delta
