"""RL010 fixture: same pattern in a module the ROADMAP does not name."""


def build_window_graph(graph, window):
    for it in window:
        graph.add_edge(it.src, it.dst, 1)
    return graph
