"""RL010 fixture: per-row Interaction access in a batch-kernel target."""


def build_window_graph(graph, window):
    for it in window:  # expect: RL010
        graph.add_edge(it.src, it.dst, 1)
    return graph


def spans(window):
    return [(it.timestamp, it.tx_id) for it in window]  # expect: RL010
