"""RL010 fixture: the boxed replay path in the sharding coordinator."""


def submit_boxed(shards, window):
    for it in window:  # expect: RL010
        shards[hash(it.src) % len(shards)].submit(it.src, it.dst)


def arrival_times(window):
    return [it.timestamp for it in window]  # expect: RL010


def endpoints(bucket):
    return dict.fromkeys(e for it in bucket for e in (it.src, it.dst))  # expect: RL010
