"""Wall-clock read that is *unreachable* from any replay entry point
(and outside the RL003 scoped directories): neither rule fires."""

import time


def stamp():
    return time.time()
