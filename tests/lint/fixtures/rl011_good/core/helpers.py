"""Deterministic helpers: seeded RNG, monotonic timer only."""

import random
import time


def prepare(trace, seed):
    rng = random.Random(seed)
    started = time.perf_counter()
    order = shuffle_events(list(trace), rng)
    return order, time.perf_counter() - started


def shuffle_events(events, rng):
    rng.shuffle(events)
    return events
