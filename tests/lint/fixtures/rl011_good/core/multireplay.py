"""RL011 fixture: replay entry whose whole call tree is deterministic."""

from rl011_good.core import helpers


class MultiReplayEngine:
    def run(self, trace, seed):
        return helpers.prepare(trace, seed)
