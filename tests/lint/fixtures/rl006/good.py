"""RL006 fixture: None sentinel defaults (clean)."""

import random


def extend(base, extras=None):
    return base + (extras or [])


def refine(graph, part, max_passes=8, rng=None):
    # fresh seeded instance per call: no state shared between calls
    if rng is None:
        rng = random.Random(0)
    del graph, max_passes
    return sorted(part, key=lambda _: rng.random())


def group(rows, acc=None):
    if acc is None:
        acc = {}
    for key, value in rows:
        acc[key] = value
    return acc
