"""RL006 fixture: None sentinel defaults (clean)."""


def extend(base, extras=None):
    return base + (extras or [])


def group(rows, acc=None):
    if acc is None:
        acc = {}
    for key, value in rows:
        acc[key] = value
    return acc
