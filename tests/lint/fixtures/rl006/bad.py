"""RL006 fixture: mutable default arguments."""

import random


def extend(base, extras=[]):  # expect: RL006
    return base + extras


def refine(graph, part, max_passes=8, rng=random.Random(0)):  # expect: RL006
    # the exact shape of the fm_refine bug: one seeded RNG instance is
    # created at import and its state then leaks across calls
    del graph, max_passes
    return sorted(part, key=lambda _: rng.random())


def shuffle_rows(rows, *, rng=random.Random(42)):  # expect: RL006
    rng.shuffle(rows)
    return rows


def group(rows, acc=dict()):  # expect: RL006
    for key, value in rows:
        acc[key] = value
    return acc
