"""RL006 fixture: mutable default arguments."""


def extend(base, extras=[]):  # expect: RL006
    return base + extras


def group(rows, acc=dict()):  # expect: RL006
    for key, value in rows:
        acc[key] = value
    return acc
