"""RL007 fixture: specific excepts, or broad-with-re-raise (clean)."""


def load_or_none(path, loader):
    try:
        return loader(path)
    except (OSError, ValueError):
        return None


def run_wrapped(step):
    try:
        step()
    except Exception as exc:
        raise RuntimeError("step failed") from exc
