"""RL007 fixture: broad excepts with no re-raise."""


def load_or_none(path, loader):
    try:
        return loader(path)
    except Exception:  # expect: RL007
        return None


def run_quietly(step):
    try:
        step()
    except:  # expect: RL007
        pass
