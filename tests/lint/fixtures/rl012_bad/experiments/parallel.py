"""RL012 fixture: unpicklable values crossing the pool boundary."""

import concurrent.futures as futures

from repro.graph.io import load_columnar

_FORK_SHARED = None


def _forked_chunk(keys):
    log, window = _FORK_SHARED
    return log.replay(window, keys)


def run_chunk(payload):
    return payload


def run(path, chunks):
    handle = open(path)
    log = load_columnar(path)
    results = []
    with futures.ProcessPoolExecutor() as ex:
        results.append(ex.submit(lambda: len(chunks)))  # expect: RL012

        def helper(chunk):
            return len(chunk)

        results.append(ex.submit(helper, chunks))  # expect: RL012
        results.append(ex.submit(_forked_chunk, chunks))  # expect: RL012
        results.append(ex.submit(run_chunk, handle))  # expect: RL012
        results.append(ex.submit(run_chunk, log))  # expect: RL012
    return [r.result() for r in results]
