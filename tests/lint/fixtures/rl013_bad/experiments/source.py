"""RL013 fixture: LogSource subclasses with broken identity."""

import dataclasses


class LogSource:
    def open(self):
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class SyntheticSource(LogSource):  # expect: RL013
    scale: str = "small"
    seed: int = 7


@dataclasses.dataclass(frozen=True)
class TraceSource(LogSource):
    path: str = ""
    fmt: str = "v3"  # expect: RL013

    @property
    def identity(self):
        return f"trace:{self.path}"
