"""RL013 fixture: spec fields missing from the identity payload."""

import dataclasses
import hashlib
from typing import Tuple


@dataclasses.dataclass(frozen=True)
class MethodSpec:
    name: str = "hash"
    params: Tuple[int, ...] = ()  # expect: RL013

    @property
    def label(self):
        return self.name


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    scale: str = "small"
    workload_seed: int = 42
    window_hours: float = 24.0  # expect: RL013

    def store_id(self):
        payload = f"{self.scale}-w{self.workload_seed}"
        return hashlib.sha256(payload.encode()).hexdigest()
