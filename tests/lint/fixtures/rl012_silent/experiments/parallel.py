"""RL012 fixture: boundary violation silenced with a justification."""

import concurrent.futures as futures


def run(chunks):
    with futures.ProcessPoolExecutor() as ex:
        handle = ex.submit(lambda: len(chunks))  # reprolint: disable=RL012 -- fixture: demonstrating a justified boundary suppression
    return handle.result()
