"""RL013 fixture: every field flows into the identity payload."""

import dataclasses
import hashlib
from typing import Tuple


@dataclasses.dataclass(frozen=True)
class MethodSpec:
    name: str = "hash"
    params: Tuple[int, ...] = ()

    @property
    def label(self):
        suffix = "-".join(str(p) for p in self.params)
        return f"{self.name}{suffix}"


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    scale: str = "small"
    workload_seed: int = 42
    window_hours: float = 24.0

    def workload_id(self):
        # coverage flows through the self.workload_id() dispatch
        return f"{self.scale}-w{self.workload_seed}-win{self.window_hours:g}h"

    def store_id(self):
        return hashlib.sha256(self.workload_id().encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class ExecutionSpec:
    mode: str = "in_memory"
    shards: int = 1

    @property
    def identity(self):
        # dataclasses.fields(self) introspection covers every field
        parts = [
            f"{f.name}={getattr(self, f.name)}"
            for f in dataclasses.fields(self)
        ]
        return ",".join(parts)
