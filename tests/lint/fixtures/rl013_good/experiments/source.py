"""RL013 fixture: non-dataclass bases are exempt, subclasses covered."""

import dataclasses


class LogSource:
    kind: str = "base"  # not a dataclass field: the base is exempt

    def identity(self):
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class SyntheticSource(LogSource):
    scale: str = "small"
    seed: int = 7

    @property
    def identity(self):
        return f"synthetic:{self.scale}:{self.seed}"
