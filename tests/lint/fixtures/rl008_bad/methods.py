"""RL008 fixture (bad): concrete methods with registration defects."""

from rl008_bad.base import PartitionMethod


class HashMethod(PartitionMethod):
    def maybe_repartition(self, ctx):
        return None


class GreedyMethod(PartitionMethod):  # expect: RL008
    def maybe_repartition(self, ctx):
        return None


class OpaqueMethod(PartitionMethod):  # expect: RL008
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)

    def maybe_repartition(self, ctx):
        return None


class NoSeedMethod(PartitionMethod):  # expect: RL008
    def __init__(self, k, gamma=1.5):
        super().__init__(k)
        self.gamma = gamma

    def maybe_repartition(self, ctx):
        return None


class RuntimeMethod(PartitionMethod):
    def maybe_repartition(self, ctx):
        return None
