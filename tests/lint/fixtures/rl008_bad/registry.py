"""RL008 fixture (bad): the registry methods.py must be joined against."""

from rl008_bad.methods import (
    HashMethod,
    NoSeedMethod,
    OpaqueMethod,
    RuntimeMethod,
)

_FACTORIES = {
    "hash": HashMethod,
    "opaque": OpaqueMethod,
    "noseed": NoSeedMethod,
}


def register_method(name, factory):
    _FACTORIES[name] = factory


register_method("runtime", RuntimeMethod)
