"""RL002 fixture: same pattern outside core/metis/experiments — not scoped."""


def place_all(edges, place):
    targets = {dst for _, dst in edges}
    for v in targets:
        place(v)
