"""RL002 fixture: deterministic iteration over sorted sets (clean)."""


def place_all(edges, place):
    targets = {dst for _, dst in edges}
    for v in sorted(targets):
        place(v)
    # a comprehension consumed directly by sorted() is order-insensitive
    return sorted(place(s) for s in {s for s, _ in edges})
