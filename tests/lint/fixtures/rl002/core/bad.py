"""RL002 fixture: hash-ordered set iteration in a scoped module."""


def place_all(edges, place):
    targets = {dst for _, dst in edges}
    for v in targets:  # expect: RL002
        place(v)
    return [place(src) for src in {s for s, _ in edges}]  # expect: RL002
