"""RL013 fixture: deliberate omission with a written justification."""

import dataclasses
from typing import Tuple


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    scale: str = "small"
    ks: Tuple[int, ...] = (2,)  # reprolint: disable=RL013 -- fixture: cells are keyed per-k inside the store

    def store_id(self):
        return f"grid-{self.scale}"
