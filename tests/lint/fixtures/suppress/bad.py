"""Suppression fixture: disable comments silence listed rules per line."""

import random


def jitter():
    return random.random()  # reprolint: disable=RL001 -- fixture: suppression handling


def jitter_unsuppressed():
    return random.random()  # expect: RL001


def pad(xs=[]):  # reprolint: disable=RL006,RL001 -- fixture: multi-id disable
    return xs
