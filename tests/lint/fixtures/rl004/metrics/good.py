"""RL004 fixture: tolerance-based float comparison (clean)."""

import math


def is_perfectly_balanced(weights):
    balance = max(weights) / (sum(weights) / len(weights))
    return math.isclose(balance, 1.0)


def same_count(a, b):
    return a == b
