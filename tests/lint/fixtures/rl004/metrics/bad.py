"""RL004 fixture: exact float comparison in metrics code."""


def is_perfectly_balanced(weights):
    balance = max(weights) / (sum(weights) / len(weights))
    return balance == 1.0  # expect: RL004


def same_ratio(a, b, total):
    return a / total != b / total  # expect: RL004
