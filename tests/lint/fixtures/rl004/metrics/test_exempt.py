"""RL004 fixture: test_ files assert bit-identity on purpose — exempt."""


def test_bit_identity():
    assert 0.1 + 0.2 != 0.3
