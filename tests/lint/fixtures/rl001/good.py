"""RL001 fixture: seeded, injected randomness (clean)."""

import random


def make_rng(seed):
    return random.Random(seed)


def pick_first(xs, rng):
    rng.shuffle(xs)
    return xs[0]
