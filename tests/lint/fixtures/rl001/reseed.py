"""RL001 fixture: argless reseeding pulls from OS entropy."""

import random


def reseed_paths():
    rng = random.Random(7)
    rng.seed()  # expect: RL001
    rng.seed(11)
    random.Random(3).seed()  # expect: RL001
    return rng
