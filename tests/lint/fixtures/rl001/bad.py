"""RL001 fixture: module-global RNG use (intentional violations)."""

import random
from random import shuffle


def jitter():
    return random.random()  # expect: RL001


def pick_first(xs):
    shuffle(xs)  # expect: RL001
    return xs[0]


def make_rng():
    return random.Random()  # expect: RL001
