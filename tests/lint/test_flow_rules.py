"""Interprocedural rule behaviour beyond the fixture annotations.

The fixture suite pins *where* RL011–RL013 fire; these tests pin the
evidence they attach (call chains, message contents) and run the
store-identity rule against the real ``ExperimentSpec`` to prove it
catches the regression class it was built for: a spec field dropped
from the identity payload.
"""

import textwrap
from pathlib import Path

from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def findings_for(report, rule):
    return [f for f in report.findings if f.rule == rule]


def write(root, relpath, text):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return path


class TestTaintChains:
    def test_rl011_carries_the_full_call_chain(self):
        report = lint_paths([str(FIXTURES / "rl011_bad")])
        (wall_clock,) = [
            f for f in findings_for(report, "RL011") if "wall clock" in f.message
        ]
        assert wall_clock.chain == (
            "rl011_bad.core.multireplay.MultiReplayEngine.run",
            "rl011_bad.core.helpers.prepare",
            "rl011_bad.core.helpers.jitter",
        )
        assert "call chain:" in wall_clock.message
        assert "MultiReplayEngine.run" in wall_clock.message

    def test_rl011_chain_is_serialized_in_json(self):
        report = lint_paths([str(FIXTURES / "rl011_bad")])
        finding = findings_for(report, "RL011")[0]
        assert finding.to_dict()["chain"] == list(finding.chain)

    def test_rl011_flags_unseeded_randomness_under_part_graph(self):
        report = lint_paths([str(FIXTURES / "rl011_bad")])
        (unseeded,) = [
            f for f in findings_for(report, "RL011") if "randomness" in f.message
        ]
        assert unseeded.chain[0].endswith("metis.api.part_graph")
        assert unseeded.path == "rl011_bad/metis/refine.py"


class TestPoolBoundary:
    def test_rl012_names_every_violation_kind(self):
        report = lint_paths([str(FIXTURES / "rl012_bad")])
        messages = " | ".join(f.message for f in findings_for(report, "RL012"))
        assert "lambda" in messages
        assert "helper() is defined inside a function" in messages
        assert "open file handle" in messages
        assert "buffer-backed ColumnarLog" in messages
        assert "_FORK_SHARED" in messages

    def test_rl012_sees_assigned_executors_too(self, tmp_path):
        write(
            tmp_path,
            "pool.py",
            """
            import concurrent.futures as futures

            def run(chunks):
                ex = futures.ProcessPoolExecutor(4)
                handle = ex.submit(lambda: len(chunks))
                return handle.result()
            """,
        )
        report = lint_paths([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["RL012"]

    def test_rl012_fork_guard_must_guard_the_submit(self, tmp_path):
        # the guarded branch is fine; the same submit in the else
        # branch (spawn path) is not
        write(
            tmp_path,
            "pool.py",
            """
            import concurrent.futures as futures
            import multiprocessing

            _FORK_SHARED = None

            def chunk(keys):
                log = _FORK_SHARED
                return log, keys

            def run(chunks):
                forked = multiprocessing.get_start_method() == "fork"
                with futures.ProcessPoolExecutor() as ex:
                    if forked:
                        good = ex.submit(chunk, chunks)
                    else:
                        bad = ex.submit(chunk, chunks)
                return good, bad
            """,
        )
        report = lint_paths([str(tmp_path)])
        (finding,) = report.findings
        assert finding.rule == "RL012"
        assert finding.line == 17  # the else-branch submit only


class TestStoreIdentity:
    def test_rl013_names_the_missing_field(self):
        report = lint_paths([str(FIXTURES / "rl013_bad")])
        messages = [f.message for f in findings_for(report, "RL013")]
        assert any("'params' of MethodSpec" in m for m in messages)
        assert any("'window_hours' of ExperimentSpec" in m for m in messages)
        assert any("'fmt' of TraceSource" in m for m in messages)
        assert any(
            "SyntheticSource keys the result store but defines no" in m
            for m in messages
        )

    def test_real_experiment_spec_is_identity_complete(self, tmp_path):
        source = (REPO / "src/repro/experiments/spec.py").read_text()
        write(tmp_path, "spec.py", source)
        report = lint_paths([str(tmp_path / "spec.py")])
        assert findings_for(report, "RL013") == []

    def test_rl013_catches_a_field_dropped_from_the_real_payload(self, tmp_path):
        # the regression class RL013 exists for: delete window_hours
        # from ExperimentSpec.workload_id and the store would serve
        # cached results across different window widths
        source = (REPO / "src/repro/experiments/spec.py").read_text()
        broken = source.replace("-win{self.window_hours:g}h", "")
        assert broken != source  # the surgery actually happened
        write(tmp_path, "spec.py", broken)
        report = lint_paths([str(tmp_path / "spec.py")])
        (finding,) = findings_for(report, "RL013")
        assert "'window_hours' of ExperimentSpec" in finding.message
        assert "collide in the result store" in finding.message
