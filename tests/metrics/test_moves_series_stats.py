"""Unit tests for move counting, metric series and distribution stats."""

import pytest

from repro.ethereum.state import WorldState
from repro.metrics.moves import count_moves, moved_state_bytes
from repro.metrics.series import MetricPoint, MetricSeries
from repro.metrics.stats import summarize


class TestMoves:
    def test_count_moves_basic(self):
        before = {1: 0, 2: 1, 3: 0}
        after = {1: 1, 2: 1, 3: 0}
        assert count_moves(before, after) == 1

    def test_new_vertices_not_moves(self):
        assert count_moves({1: 0}, {1: 0, 2: 1}) == 0

    def test_disappeared_vertices_ignored(self):
        assert count_moves({1: 0, 2: 0}, {1: 0}) == 0

    def test_moved_state_bytes_counts_storage(self):
        state = WorldState()
        eoa = state.create_eoa()
        contract = state.create_contract((0,), initial_storage={1: 1, 2: 2})
        state.discard_journal()
        before = {eoa.address: 0, contract.address: 0}
        after = {eoa.address: 1, contract.address: 1}
        total = moved_state_bytes(before, after, state)
        assert total == eoa.state_bytes() + contract.state_bytes()
        assert contract.state_bytes() > eoa.state_bytes()

    def test_moved_state_bytes_skips_stationary(self):
        state = WorldState()
        eoa = state.create_eoa()
        state.discard_journal()
        assert moved_state_bytes({eoa.address: 0}, {eoa.address: 0}, state) == 0


def pt(ts, moves=0, cut=0.1, interactions=5):
    return MetricPoint(
        ts=ts, static_edge_cut=cut, dynamic_edge_cut=cut,
        static_balance=1.0, dynamic_balance=1.1,
        cumulative_moves=moves, interactions=interactions,
    )


class TestSeries:
    def test_append_ordered(self):
        s = MetricSeries("m", 2)
        s.append(pt(1.0))
        s.append(pt(2.0))
        with pytest.raises(ValueError, match="out-of-order"):
            s.append(pt(1.5))

    def test_column(self):
        s = MetricSeries("m", 2)
        s.append(pt(1.0, cut=0.2))
        s.append(pt(2.0, cut=0.4))
        assert s.column("dynamic_edge_cut") == [0.2, 0.4]

    def test_between(self):
        s = MetricSeries("m", 2)
        for t in range(10):
            s.append(pt(float(t)))
        sub = s.between(3.0, 6.0)
        assert sub.timestamps() == [3.0, 4.0, 5.0]
        assert sub.method == "m"

    def test_total_moves(self):
        s = MetricSeries("m", 2)
        assert s.total_moves == 0
        s.append(pt(1.0, moves=5))
        s.append(pt(2.0, moves=8))
        assert s.total_moves == 8

    def test_moves_between(self):
        s = MetricSeries("m", 2)
        s.append(pt(0.0, moves=0))
        s.append(pt(1.0, moves=4))
        s.append(pt(2.0, moves=9))
        s.append(pt(3.0, moves=9))
        assert s.moves_between(1.0, 3.0) == 9 - 0  # cumulative at t<3 minus t<1
        assert s.moves_between(2.5, 10.0) == 0

    def test_iter_len(self):
        s = MetricSeries("m", 2)
        s.append(pt(0.0))
        assert len(s) == 1
        assert list(s) == s.points


class TestStats:
    def test_five_number_summary(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.minimum == 1.0
        assert summary.q1 == 2.0
        assert summary.median == 3.0
        assert summary.q3 == 4.0
        assert summary.maximum == 5.0
        assert summary.mean == 3.0
        assert summary.iqr == 2.0

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.as_row() == (7.0, 7.0, 7.0, 7.0, 7.0)
        assert summary.density_bins[0] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_quantile_interpolation(self):
        summary = summarize([0.0, 10.0])
        assert summary.median == 5.0
        assert summary.q1 == 2.5

    def test_density_normalised_to_peak(self):
        summary = summarize([1.0] * 50 + [2.0], density_bins=4)
        assert max(summary.density_bins) == 1.0
        assert summary.density_bins[0] == 1.0
        assert 0 < summary.density_bins[-1] < 0.2

    def test_density_covers_range(self):
        summary = summarize(list(range(100)), density_bins=10)
        assert summary.density_lo == 0
        assert summary.density_hi == 99
        assert all(b > 0 for b in summary.density_bins)

    def test_unordered_input(self):
        assert summarize([5.0, 1.0, 3.0]).median == 3.0
