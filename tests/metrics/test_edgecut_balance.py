"""Unit tests for edge-cut and balance metrics (paper Eqs. 1-2)."""

import pytest

from repro.graph.builder import Interaction, build_graph
from repro.metrics.balance import (
    dynamic_balance,
    normalized_balance,
    static_balance,
    window_balance,
)
from repro.metrics.edgecut import (
    cross_shard_transaction_ratio,
    dynamic_edge_cut,
    static_edge_cut,
    window_edge_cut,
)


def graph_and_assignment():
    """Triangle 1-2-3 plus repeated edge 1->2; shards {1: 0, 2: 1, 3: 0}."""
    stream = [
        Interaction(0.0, 1, 2, tx_id=0),
        Interaction(1.0, 1, 2, tx_id=1),
        Interaction(2.0, 2, 3, tx_id=2),
        Interaction(3.0, 3, 1, tx_id=3),
    ]
    return build_graph(stream), {1: 0, 2: 1, 3: 0}, stream


class TestStaticEdgeCut:
    def test_known_value(self):
        g, asg, _ = graph_and_assignment()
        # distinct edges: (1,2) cut, (2,3) cut, (3,1) not -> 2/3
        assert static_edge_cut(g, asg) == pytest.approx(2 / 3)

    def test_all_same_shard_zero(self):
        g, _, _ = graph_and_assignment()
        assert static_edge_cut(g, {1: 0, 2: 0, 3: 0}) == 0.0

    def test_unassigned_counts_as_cut(self):
        g, _, _ = graph_and_assignment()
        assert static_edge_cut(g, {1: 0, 2: 0}) == pytest.approx(2 / 3)

    def test_empty_graph(self):
        from repro.graph.digraph import WeightedDiGraph

        assert static_edge_cut(WeightedDiGraph(), {}) == 0.0

    def test_self_loop_ignored(self):
        g = build_graph([Interaction(0.0, 1, 1, tx_id=0),
                         Interaction(1.0, 1, 2, tx_id=1)])
        assert static_edge_cut(g, {1: 0, 2: 1}) == 1.0


class TestDynamicEdgeCut:
    def test_weights_matter(self):
        g, asg, _ = graph_and_assignment()
        # weights: (1,2)=2 cut, (2,3)=1 cut, (3,1)=1 not -> 3/4
        assert dynamic_edge_cut(g, asg) == pytest.approx(3 / 4)

    def test_window_equivalent(self):
        g, asg, stream = graph_and_assignment()
        assert window_edge_cut(stream, asg) == dynamic_edge_cut(g, asg)

    def test_window_empty(self):
        assert window_edge_cut([], {}) == 0.0


class TestCrossShardTxRatio:
    def test_multi_call_tx_counted_once(self):
        stream = [
            Interaction(0.0, 1, 2, tx_id=0),  # crossing
            Interaction(0.0, 2, 3, tx_id=0),  # same tx
            Interaction(1.0, 1, 3, tx_id=1),  # within shard 0
        ]
        asg = {1: 0, 2: 1, 3: 0}
        assert cross_shard_transaction_ratio(stream, asg) == pytest.approx(1 / 2)

    def test_tx_with_unassigned_is_multi(self):
        stream = [Interaction(0.0, 1, 9, tx_id=0)]
        assert cross_shard_transaction_ratio(stream, {1: 0}) == 1.0

    def test_all_local(self):
        stream = [Interaction(0.0, 1, 2, tx_id=0)]
        assert cross_shard_transaction_ratio(stream, {1: 0, 2: 0}) == 0.0


class TestBalance:
    def test_static_balance_eq2(self):
        g, asg, _ = graph_and_assignment()
        # counts: shard0 = 2 vertices, shard1 = 1 -> 2 * 2 / 3
        assert static_balance(g, asg, 2) == pytest.approx(4 / 3)

    def test_static_balance_ignores_unassigned(self):
        g, _, _ = graph_and_assignment()
        assert static_balance(g, {1: 0}, 2) == pytest.approx(2.0)

    def test_static_balance_empty(self):
        from repro.graph.digraph import WeightedDiGraph

        assert static_balance(WeightedDiGraph(), {}, 4) == 1.0

    def test_dynamic_balance_weighted(self):
        g, asg, _ = graph_and_assignment()
        # activity: v1=3, v2=3, v3=2; shard0 = 5, shard1 = 3 -> 5*2/8
        assert dynamic_balance(g, asg, 2) == pytest.approx(10 / 8)

    def test_window_balance_counts_endpoint_load(self):
        stream = [Interaction(0.0, 1, 2, tx_id=0)]
        # both endpoints on distinct shards: 1 unit each -> balanced
        assert window_balance(stream, {1: 0, 2: 1}, 2) == pytest.approx(1.0)

    def test_window_balance_skew(self):
        stream = [Interaction(0.0, 1, 3, tx_id=0)]
        # both endpoints on shard 0 -> everything on one of 2 shards
        assert window_balance(stream, {1: 0, 3: 0}, 2) == pytest.approx(2.0)

    def test_window_balance_empty(self):
        assert window_balance([], {}, 4) == 1.0


class TestNormalizedBalance:
    def test_perfect_is_zero(self):
        assert normalized_balance(1.0, 8) == 0.0

    def test_worst_is_one(self):
        assert normalized_balance(8.0, 8) == 1.0

    def test_k1_defined(self):
        assert normalized_balance(1.0, 1) == 0.0

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_midpoint_scales(self, k):
        mid = 1.0 + (k - 1) / 2
        assert normalized_balance(mid, k) == pytest.approx(0.5)
