"""Unit tests for new-vertex placement rules."""

import random

from repro.core.assignment import ShardAssignment
from repro.core.placement import (
    place_by_hash,
    place_by_min_cut,
    place_lightest,
    place_randomly,
)


def assignment_with(mapping, k=3):
    a = ShardAssignment(k)
    for v, s in mapping.items():
        a.assign(v, s)
    return a


class TestMinCut:
    def test_follows_majority_of_endpoints(self):
        a = assignment_with({1: 0, 2: 0, 3: 1})
        shard = place_by_min_cut(99, [1, 2, 3, 99], a)
        assert shard == 0

    def test_single_neighbor(self):
        a = assignment_with({7: 2})
        assert place_by_min_cut(99, [7, 99], a) == 2

    def test_tie_breaks_to_lightest(self):
        # shards 0 and 1 each host one endpoint; shard 1 is lighter overall
        a = assignment_with({1: 0, 2: 1, 3: 0})
        shard = place_by_min_cut(99, [1, 2, 99], a)
        assert shard == 1

    def test_no_assigned_neighbors_goes_lightest(self):
        a = assignment_with({1: 0, 2: 0, 3: 1})
        assert place_by_min_cut(99, [99], a) == 2

    def test_ignores_self_in_endpoints(self):
        a = assignment_with({1: 1})
        assert place_by_min_cut(99, [99, 99, 1], a) == 1

    def test_unassigned_endpoints_ignored(self):
        a = assignment_with({1: 2})
        assert place_by_min_cut(99, [1, 55, 66, 99], a) == 2

    def test_empty_assignment_goes_shard_zero(self):
        a = ShardAssignment(4)
        assert place_by_min_cut(99, [99], a) == 0


class TestMinCutScratch:
    """The reused scratch dict must not change any decision.

    The replay engine's batch placement path threads one dict through
    every placement; tie-breaking depends on shard *insertion order*
    (first assigned co-endpoint wins the iteration slot), so a scratch
    map that leaked state between calls would silently reorder ties.
    """

    def test_scratch_matches_fresh_dict_on_random_streams(self):
        rng = random.Random(7)
        k = 4
        with_scratch = ShardAssignment(k)
        without = ShardAssignment(k)
        scratch: dict = {}
        next_vertex = 0
        for _ in range(300):
            pool = list(range(next_vertex)) or [0]
            endpoints = [rng.choice(pool) for _ in range(rng.randrange(0, 5))]
            v = next_vertex
            next_vertex += 1
            endpoints.append(v)
            rng.shuffle(endpoints)
            a = place_by_min_cut(v, endpoints, with_scratch, scratch=scratch)
            b = place_by_min_cut(v, endpoints, without)
            assert a == b, f"vertex {v}: scratch={a} fresh={b}"
            assert scratch == {}, "scratch must be returned empty"
            with_scratch.assign(v, a)
            without.assign(v, b)

    def test_tie_break_order_follows_endpoint_insertion(self):
        # shards 2 and 1 tie on affinity and on load; the scratch and
        # fresh-dict paths must agree on the (count, shard-id) minimum
        a = assignment_with({10: 2, 11: 1}, k=3)
        scratch: dict = {}
        got = place_by_min_cut(99, [10, 11, 99], a, scratch=scratch)
        assert got == place_by_min_cut(99, [10, 11, 99], a) == 1
        assert scratch == {}
        # reversed endpoint order flips dict insertion order but not
        # the winner (min is over (count, shard id), not iteration)
        got = place_by_min_cut(99, [11, 10, 99], a, scratch=scratch)
        assert got == place_by_min_cut(99, [11, 10, 99], a) == 1


class TestOtherRules:
    def test_hash_deterministic_and_in_range(self):
        for v in range(100):
            s = place_by_hash(v, 8)
            assert 0 <= s < 8
            assert s == place_by_hash(v, 8)

    def test_random_in_range(self):
        rng = random.Random(0)
        assert all(0 <= place_randomly(4, rng) < 4 for _ in range(50))

    def test_lightest(self):
        a = assignment_with({1: 0, 2: 0, 3: 1})
        assert place_lightest(a) == 2
