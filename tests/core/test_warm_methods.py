"""Warm-mode METIS methods through the replay engine.

The PR-2 engine contracts:

* with warm mode *disabled* (the default), a ColumnarLog-backed replay
  produces metric series bit-identical to a plain-list replay — the new
  context fields must not perturb the cold path;
* with warm mode enabled, repartitionings still happen on the paper
  cadence, proposals cover the cumulative (METIS) or window (R-METIS)
  vertex set, and the inherited-labels property shows up as far fewer
  moves than the cold run.
"""

import random

import pytest

from repro.core.metis_method import MetisPartitioner
from repro.core.multireplay import MultiReplayEngine
from repro.core.rmetis import RMetisPartitioner
from repro.core.trmetis import TRMetisPartitioner
from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.snapshot import DAY

K = 2


def community_log(days=120, per_day=12, n_each=20, seed=0):
    """Two drifting communities, enough days for several periods."""
    rng = random.Random(seed)
    its = []
    tx = 0
    for d in range(days):
        for j in range(per_day):
            ts = d * DAY + j * 60.0
            c = rng.randrange(2)
            base = 0 if c == 0 else 100
            u = base + rng.randrange(n_each)
            v = base + rng.randrange(n_each)
            if rng.random() < 0.05:
                v = (100 - base) + rng.randrange(n_each)
            its.append(Interaction(ts, u, v, tx_id=tx))
            tx += 1
    return its


@pytest.fixture(scope="module")
def log():
    return community_log()


class TestColdEquivalence:
    @pytest.mark.parametrize("factory", [
        lambda: MetisPartitioner(K, seed=1),
        lambda: RMetisPartitioner(K, seed=1),
        lambda: TRMetisPartitioner(K, seed=1, consecutive=1, cooldown=7 * DAY),
    ])
    def test_columnar_replay_identical_to_list_replay(self, log, factory):
        """Satellite contract: warm disabled ⇒ the ColumnarLog path is
        bit-identical to the plain-sequence path."""
        mw = 24 * 3600.0
        via_list = MultiReplayEngine(list(log), [factory()], metric_window=mw).run()[0]
        via_clog = MultiReplayEngine(
            ColumnarLog(log), [factory()], metric_window=mw
        ).run()[0]
        assert via_list.series.points == via_clog.series.points
        assert via_list.events == via_clog.events
        assert via_list.assignment.as_dict() == via_clog.assignment.as_dict()

    def test_warm_flag_without_columnar_log_falls_back(self, log):
        """warm=True on a plain list replay must still work (cold path)."""
        mw = 24 * 3600.0
        res = MultiReplayEngine(
            list(log), [MetisPartitioner(K, seed=1, warm=True)], metric_window=mw
        ).run()[0]
        assert res.events  # repartitioned on the paper cadence
        cold = MultiReplayEngine(
            list(log), [MetisPartitioner(K, seed=1)], metric_window=mw
        ).run()[0]
        assert res.series.points == cold.series.points


class TestWarmMetis:
    def test_warm_repartitions_and_covers_graph(self, log):
        mw = 24 * 3600.0
        clog = ColumnarLog(log)
        res = MultiReplayEngine(
            clog, [MetisPartitioner(K, seed=1, warm=True)], metric_window=mw
        ).run()[0]
        assert len(res.events) >= 3
        # the final assignment covers every vertex of the cumulative graph
        assert set(res.assignment.vertices()) == set(res.graph.vertices())
        for p in res.series.points:
            assert p.static_balance >= 1.0

    def test_warm_moves_far_fewer_vertices(self, log):
        """Warm starts inherit labels, cold runs relabel freely — the
        shard-relabeling pitfall the paper documents shows up as a large
        move-count gap."""
        mw = 24 * 3600.0
        cold = MultiReplayEngine(
            ColumnarLog(log), [MetisPartitioner(K, seed=1)], metric_window=mw
        ).run()[0]
        warm = MultiReplayEngine(
            ColumnarLog(log), [MetisPartitioner(K, seed=1, warm=True)], metric_window=mw
        ).run()[0]
        assert len(warm.events) == len(cold.events)
        assert warm.total_moves < cold.total_moves

    @pytest.mark.parametrize("warm", [False, True])
    def test_reused_instance_is_bit_identical_across_replays(self, log, warm):
        """Regression: begin_replay() must drop all per-replay state
        (warm builder/cache/previous assignment *and* the run counter
        feeding part_graph seeds), so replaying the same ColumnarLog
        object through a reused method instance reproduces the first
        run exactly — no 'cannot rewind' crash, no leaked warm start,
        no drifted seed sequence."""
        mw = 24 * 3600.0
        clog = ColumnarLog(log)
        m = MetisPartitioner(K, seed=1, warm=warm)
        first = MultiReplayEngine(clog, [m], metric_window=mw).run()[0]
        second = MultiReplayEngine(clog, [m], metric_window=mw).run()[0]
        assert first.series.points == second.series.points
        assert first.events == second.events
        assert first.assignment.as_dict() == second.assignment.as_dict()

    def test_reused_instance_across_different_windows(self, log):
        """The leak case the row-bound guard alone cannot catch: the
        second replay's first repartition may land *beyond* the rows the
        first replay consumed.  begin_replay() must still reset, making
        the reused instance match a fresh one bit-for-bit."""
        clog = ColumnarLog(log)
        m = MetisPartitioner(K, seed=1, warm=True)
        MultiReplayEngine(clog, [m], metric_window=24 * 3600.0).run()
        reused = MultiReplayEngine(clog, [m], metric_window=30 * 24 * 3600.0).run()[0]
        fresh = MultiReplayEngine(
            clog, [MetisPartitioner(K, seed=1, warm=True)],
            metric_window=30 * 24 * 3600.0,
        ).run()[0]
        assert reused.series.points == fresh.series.points
        assert reused.assignment.as_dict() == fresh.assignment.as_dict()


class TestWarmRMetis:
    def test_warm_covers_only_window_vertices(self):
        # sparse workload: windows touch only a fraction of the vertex
        # set, so a regression to cumulative-graph partitioning (e.g.
        # start=0 instead of the period start) is visible in reassigned
        log = community_log(days=120, per_day=4, n_each=60, seed=3)
        mw = 24 * 3600.0
        clog = ColumnarLog(log)
        cold = MultiReplayEngine(
            clog, [RMetisPartitioner(K, seed=1)], metric_window=mw
        ).run()[0]
        warm = MultiReplayEngine(
            clog, [RMetisPartitioner(K, seed=1, warm=True)], metric_window=mw
        ).run()[0]
        assert warm.events
        # reduced-graph semantics preserved: both paths repartition the
        # same period windows (window contents are method-independent),
        # so each warm event reassigns exactly the vertex set the cold
        # event did — and strictly less than the whole cumulative graph
        assert [e.ts for e in warm.events] == [e.ts for e in cold.events]
        assert [e.reassigned for e in warm.events] == [
            e.reassigned for e in cold.events
        ]
        n_total = len(set(v for it in log for v in (it.src, it.dst)))
        assert all(e.reassigned < n_total for e in warm.events)
        assert warm.total_moves <= cold.total_moves

    def test_warm_trmetis_runs(self, log):
        mw = 24 * 3600.0
        res = MultiReplayEngine(
            ColumnarLog(log),
            [TRMetisPartitioner(K, seed=1, consecutive=1, cooldown=7 * DAY, warm=True)],
            metric_window=mw,
        ).run()[0]
        assert set(res.assignment.vertices()) == set(res.graph.vertices())
        for p in res.series.points:
            assert p.static_balance >= 1.0
