"""Tests for the replay engine on hand-crafted interaction logs."""

import pytest

from repro.core.base import PartitionMethod
from repro.core.hashing import HashPartitioner
from repro.core.replay import ReplayEngine, replay_method
from repro.graph.builder import Interaction
from repro.graph.snapshot import DAY, HOUR


def log_of(pairs, step=1.0, per_tx=1):
    """[(src, dst), ...] -> interaction log, one tx per ``per_tx`` pairs."""
    out = []
    for i, (src, dst) in enumerate(pairs):
        out.append(
            Interaction(timestamp=i * step, src=src, dst=dst, tx_id=i // per_tx)
        )
    return out


class StaticMethod(PartitionMethod):  # reprolint: disable=RL008 -- test-local fixture method, never spec-reachable
    """Places everything on shard (vertex mod k); never repartitions."""

    name = "static-test"

    def place_vertex(self, vertex, tx_endpoints, assignment):
        return vertex % self.k

    def maybe_repartition(self, ctx):
        return None


class OneShotRepartition(PartitionMethod):  # reprolint: disable=RL008 -- test-local fixture method, never spec-reachable
    """Returns a fixed proposal exactly once, at the first opportunity."""

    name = "oneshot-test"

    def __init__(self, k, proposal, seed=0):
        super().__init__(k, seed)
        self.proposal = proposal
        self.fired = False

    def place_vertex(self, vertex, tx_endpoints, assignment):
        return vertex % self.k

    def maybe_repartition(self, ctx):
        if self.fired:
            return None
        self.fired = True
        self.ctx_seen = ctx
        return self.proposal


class TestEngineBasics:
    def test_empty_log(self):
        result = replay_method([], StaticMethod(2))
        assert len(result.series) == 0
        assert result.total_moves == 0

    def test_all_vertices_assigned(self):
        log = log_of([(1, 2), (3, 4), (5, 6)])
        result = replay_method(log, StaticMethod(2), metric_window=10.0)
        for v in (1, 2, 3, 4, 5, 6):
            assert v in result.assignment

    def test_window_count(self):
        log = log_of([(1, 2)] * 10, step=1.0)
        result = replay_method(log, StaticMethod(2), metric_window=2.0)
        assert len(result.series) == 5

    def test_graph_matches_log(self):
        log = log_of([(1, 2), (1, 2), (2, 3)])
        result = replay_method(log, StaticMethod(2), metric_window=10.0)
        assert result.graph.edge_weight(1, 2) == 2
        assert result.graph.num_vertices == 3

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            ReplayEngine([], StaticMethod(2), metric_window=0.0)


class TestMetricValues:
    def test_dynamic_cut_exact(self):
        # shard = v % 2: (1,2) crosses, (2,4) doesn't, (1,3) doesn't
        log = log_of([(1, 2), (2, 4), (1, 3)])
        result = replay_method(log, StaticMethod(2), metric_window=100.0)
        point = result.series.points[0]
        assert point.dynamic_edge_cut == pytest.approx(1 / 3)

    def test_static_cut_counts_distinct_edges(self):
        # edge (1,2) appears twice but is one distinct edge
        log = log_of([(1, 2), (1, 2), (2, 4)])
        result = replay_method(log, StaticMethod(2), metric_window=100.0)
        point = result.series.points[0]
        assert point.static_edge_cut == pytest.approx(1 / 2)

    def test_self_loops_excluded(self):
        log = log_of([(1, 1), (1, 2)])
        result = replay_method(log, StaticMethod(2), metric_window=100.0)
        point = result.series.points[0]
        assert point.dynamic_edge_cut == 1.0  # only (1,2) counts, crossing

    def test_window_balance(self):
        # all load on the two endpoints' shards; v%2 puts 1,3 on shard 1
        # and 2 on shard 0: loads = shard1: (1)+(3)=2, shard0: (2)x2 = 2
        log = log_of([(1, 2), (3, 2)])
        result = replay_method(log, StaticMethod(2), metric_window=100.0)
        assert result.series.points[0].dynamic_balance == pytest.approx(1.0)

    def test_empty_window_defaults(self):
        log = [
            Interaction(0.0, 1, 2, tx_id=0),
            Interaction(50.0, 3, 4, tx_id=1),
        ]
        result = replay_method(log, StaticMethod(2), metric_window=10.0)
        quiet = result.series.points[1]
        assert quiet.interactions == 0
        assert quiet.dynamic_edge_cut == 0.0
        assert quiet.dynamic_balance == 1.0

    def test_interactions_counted_per_window(self):
        log = log_of([(1, 2)] * 7, step=1.0)
        result = replay_method(log, StaticMethod(2), metric_window=3.0)
        assert [p.interactions for p in result.series.points] == [3, 3, 1]


class TestRepartitioning:
    def test_moves_counted(self):
        log = log_of([(1, 2), (3, 4), (5, 6), (7, 8)], step=1.0)
        # move vertices 1 and 3 to shard 0 (both start on shard 1)
        method = OneShotRepartition(2, {1: 0, 3: 0})
        result = replay_method(log, method, metric_window=2.0)
        assert result.total_moves == 2
        assert result.assignment[1] == 0
        assert result.assignment[3] == 0

    def test_proposal_same_shard_not_a_move(self):
        log = log_of([(1, 2), (3, 4)])
        method = OneShotRepartition(2, {2: 0, 4: 0})  # already on 0
        result = replay_method(log, method, metric_window=100.0)
        assert result.total_moves == 0
        assert len(result.events) == 1
        assert result.events[0].moves == 0

    def test_unseen_vertex_in_proposal_is_placement(self):
        log = log_of([(1, 2)])
        method = OneShotRepartition(2, {99: 1})
        result = replay_method(log, method, metric_window=100.0)
        assert result.total_moves == 0
        assert result.assignment[99] == 1

    def test_static_cut_recomputed_after_repartition(self):
        # 1-2 and 1-3: with v%2, edges (1,2) cross, (1,3) not; after
        # moving 1 to shard 0, (1,2) uncut and (1,3) cut
        log = log_of([(1, 2), (1, 3), (4, 6)], step=1.0)
        method = OneShotRepartition(2, {1: 0})
        result = replay_method(log, method, metric_window=10.0)
        final = result.series.points[-1]
        assert final.static_edge_cut == pytest.approx(1 / 3)

    def test_period_buffer_resets(self):
        log = log_of([(1, 2), (3, 4), (5, 6), (7, 8)], step=1.0)

        class Recorder(StaticMethod):
            def __init__(self, k):
                super().__init__(k)
                self.period_sizes = []

            def maybe_repartition(self, ctx):
                self.period_sizes.append(len(ctx.period_interactions))
                return {} if len(self.period_sizes) == 2 else None

        method = Recorder(2)
        replay_method(log, method, metric_window=1.0)
        # windows of 1 interaction each; buffer grows 1,2 then resets
        assert method.period_sizes == [1, 2, 1, 2]

    def test_event_metadata(self):
        log = log_of([(1, 2), (3, 4)], step=1.0)
        method = OneShotRepartition(2, {1: 0})
        result = replay_method(log, method, metric_window=1.0)
        event = result.events[0]
        assert event.moves == 1
        assert event.reassigned == 1
        assert event.reason == "oneshot-test"

    def test_cumulative_moves_in_series(self):
        log = log_of([(1, 2), (3, 4), (5, 6)], step=1.0)
        method = OneShotRepartition(2, {1: 0, 3: 0})
        result = replay_method(log, method, metric_window=2.0)
        moves = [p.cumulative_moves for p in result.series.points]
        # window [0,2) saw vertices 1..4, so both proposed moves count
        assert moves[0] == 2
        assert moves[-1] == 2

    def test_proposal_for_unseen_vertex_then_seen(self):
        # vertex 3 first appears *after* the repartition placed it
        log = log_of([(1, 2), (3, 4), (5, 6)], step=1.0)
        method = OneShotRepartition(2, {1: 0, 3: 0})
        result = replay_method(log, method, metric_window=1.0)
        # only vertex 1 was a real move; 3 was a pre-placement
        assert result.total_moves == 1
        assert result.assignment[3] == 0


class TestWindowEdgeCases:
    def test_final_partial_window_emitted(self):
        # ts 0..25 with 10s windows: [0,10), [10,20) and the partial
        # [20,30) — the end_ts = last + 1.0 contract keeps the tail
        log = log_of([(1, 2)] * 26, step=1.0)
        result = replay_method(log, StaticMethod(2), metric_window=10.0)
        assert len(result.series) == 3
        assert [p.interactions for p in result.series.points] == [10, 10, 6]

    def test_final_window_survives_float_rounding(self):
        # multi-year timestamps, where a naive end_ts = last + epsilon
        # would be absorbed by float rounding and drop the last window
        base = 6.0e7
        log = [Interaction(base + i, 1, 2, tx_id=i) for i in range(5)]
        result = replay_method(log, StaticMethod(2), metric_window=2.0)
        assert sum(p.interactions for p in result.series.points) == 5

    def test_repartition_in_final_partial_window(self):
        log = log_of([(1, 2), (3, 4), (5, 6)], step=1.0)

        class LastWindowOnly(StaticMethod):
            def maybe_repartition(self, ctx):
                return {1: 0} if ctx.now >= 3.0 else None

        # windows [0,2) and the partial [2,4); the proposal only fires
        # at the final window close (now = 4.0)
        result = replay_method(log, LastWindowOnly(2), metric_window=2.0)
        assert len(result.series) == 2
        assert len(result.events) == 1
        assert result.events[0].ts == pytest.approx(4.0)
        assert result.total_moves == 1
        assert result.assignment[1] == 0
        assert result.series.points[-1].cumulative_moves == 1


class TestContext:
    def test_context_contents(self):
        log = log_of([(1, 2), (3, 4)], step=1.0, per_tx=2)
        method = OneShotRepartition(2, {})
        replay_method(log, method, metric_window=10.0)
        ctx = method.ctx_seen
        assert ctx.k == 2
        assert len(ctx.window_interactions) == 2
        assert len(ctx.period_interactions) == 2
        assert ctx.graph.num_vertices == 4
        assert ctx.period_graph.num_vertices == 4
        assert ctx.elapsed_since_repartition > 0

    def test_placement_sees_whole_transaction(self):
        """All endpoints of a transaction are offered to place_vertex."""
        seen = {}

        class Spy(StaticMethod):
            def place_vertex(self, vertex, tx_endpoints, assignment):
                seen[vertex] = list(tx_endpoints)
                return 0

        # one tx with two interactions: 1->2, 2->3
        log = [
            Interaction(0.0, 1, 2, tx_id=5),
            Interaction(0.0, 2, 3, tx_id=5),
        ]
        replay_method(log, Spy(2), metric_window=10.0)
        assert set(seen[1]) == {1, 2, 3}
        assert set(seen[3]) == {1, 2, 3}


class TestHashReplayInvariants:
    def test_hash_never_moves(self, tiny_workload):
        result = replay_method(
            tiny_workload.builder.log, HashPartitioner(4), metric_window=12 * HOUR
        )
        assert result.total_moves == 0
        assert result.events == []

    def test_assignment_validates(self, tiny_workload):
        result = replay_method(
            tiny_workload.builder.log, HashPartitioner(4), metric_window=12 * HOUR
        )
        result.assignment.validate(result.graph)
        assert len(result.assignment) == result.graph.num_vertices
