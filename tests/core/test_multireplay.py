"""Tests for the single-pass multi-method replay engine.

The load-bearing property: fanning N methods out of one shared log
stream must be *bit-identical* to N independent single-method replays,
while building the cumulative graph exactly once.
"""

import pytest

from repro.core.base import PartitionMethod
from repro.core.multireplay import MultiReplayEngine, replay_methods
from repro.core.registry import make_method
from repro.core.replay import ReplayEngine
from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.snapshot import HOUR

ALL_METHODS = ["hash", "kl", "metis", "p-metis", "tr-metis", "fennel"]


def log_of(pairs, step=1.0, per_tx=1):
    out = []
    for i, (src, dst) in enumerate(pairs):
        out.append(
            Interaction(timestamp=i * step, src=src, dst=dst, tx_id=i // per_tx)
        )
    return out


class StaticMethod(PartitionMethod):  # reprolint: disable=RL008 -- test-local fixture method, never spec-reachable
    name = "static-test"

    def place_vertex(self, vertex, tx_endpoints, assignment):
        return vertex % self.k

    def maybe_repartition(self, ctx):
        return None


class RepartitionAfter(PartitionMethod):  # reprolint: disable=RL008 -- test-local fixture method, never spec-reachable
    """Fires a fixed proposal at the first window closing after ``after``."""

    name = "after-test"

    def __init__(self, k, after, proposal, seed=0):
        super().__init__(k, seed)
        self.after = after
        self.proposal = proposal
        self.fired_at = None

    def place_vertex(self, vertex, tx_endpoints, assignment):
        return vertex % self.k

    def maybe_repartition(self, ctx):
        if self.fired_at is None and ctx.now > self.after:
            self.fired_at = ctx.now
            return self.proposal
        return None


def assert_results_identical(single, multi):
    assert single.method == multi.method
    assert single.k == multi.k
    assert single.series.points == multi.series.points
    assert single.events == multi.events
    assert single.assignment.as_dict() == multi.assignment.as_dict()
    assert single.assignment.counts == multi.assignment.counts
    assert single.assignment.weights == multi.assignment.weights


class TestEquivalence:
    def test_all_deterministic_methods_match_single_runs(self, tiny_workload):
        """MultiReplayEngine == N x ReplayEngine for the full method set."""
        log = tiny_workload.builder.log
        mw = 24 * HOUR
        singles = [
            ReplayEngine(log, make_method(n, 4, seed=1), metric_window=mw).run()
            for n in ALL_METHODS
        ]
        multi = MultiReplayEngine(
            log, [make_method(n, 4, seed=1) for n in ALL_METHODS], metric_window=mw
        ).run()
        assert len(multi) == len(ALL_METHODS)
        for s, m in zip(singles, multi):
            assert_results_identical(s, m)

    def test_scripted_repartition_matches_single_run(self):
        """Fan-out stays identical through a late (final-window) repartition."""
        log = log_of([(1, 2), (3, 4), (5, 6), (7, 8)], step=1.0)

        def methods():
            # one method repartitions in the final partial window, one
            # mid-replay, one never — all fanned out of the same pass
            return [
                RepartitionAfter(2, after=3.5, proposal={1: 0, 3: 0}),
                RepartitionAfter(2, after=1.5, proposal={5: 1}),
                StaticMethod(2),
            ]

        singles = [
            ReplayEngine(log, m, metric_window=2.0).run() for m in methods()
        ]
        multi = MultiReplayEngine(log, methods(), metric_window=2.0).run()
        for s, m in zip(singles, multi):
            assert_results_identical(s, m)
        late = multi[0]
        assert len(late.events) == 1
        assert late.events[0].ts == pytest.approx(4.0)  # final window close
        assert late.total_moves == 2

    def test_mixed_shard_counts_in_one_pass(self, tiny_workload):
        log = tiny_workload.builder.log
        mw = 24 * HOUR
        specs = [("hash", 2), ("hash", 8), ("tr-metis", 2), ("tr-metis", 8)]
        singles = [
            ReplayEngine(log, make_method(n, k, seed=1), metric_window=mw).run()
            for n, k in specs
        ]
        multi = MultiReplayEngine(
            log, [make_method(n, k, seed=1) for n, k in specs], metric_window=mw
        ).run()
        for s, m in zip(singles, multi):
            assert_results_identical(s, m)

    def test_columnar_log_input_matches_list_input(self, tiny_workload):
        log = tiny_workload.builder.log
        mw = 24 * HOUR
        from_list = MultiReplayEngine(
            log, [make_method("tr-metis", 4, seed=1)], metric_window=mw
        ).run()
        from_columnar = MultiReplayEngine(
            ColumnarLog(log), [make_method("tr-metis", 4, seed=1)], metric_window=mw
        ).run()
        for s, m in zip(from_list, from_columnar):
            assert_results_identical(s, m)

    def test_graph_is_built_once_and_shared(self, tiny_workload):
        log = tiny_workload.builder.log
        results = MultiReplayEngine(
            log,
            [make_method(n, 4, seed=1) for n in ("hash", "fennel", "kl")],
            metric_window=24 * HOUR,
        ).run()
        first = results[0].graph
        assert all(r.graph is first for r in results)
        assert first.num_vertices == tiny_workload.builder.graph.num_vertices
        assert first.num_edges == tiny_workload.builder.graph.num_edges
        assert first.total_edge_weight == tiny_workload.builder.graph.total_edge_weight

    def test_weight_caches_consistent_with_graph(self, tiny_workload):
        for result in replay_methods(
            tiny_workload.builder.log,
            [make_method(n, 4, seed=1) for n in ("hash", "tr-metis")],
            metric_window=24 * HOUR,
        ):
            result.assignment.validate(result.graph)


class TestEngineContract:
    def test_empty_log(self):
        results = MultiReplayEngine([], [StaticMethod(2)], metric_window=10.0).run()
        assert len(results) == 1
        assert len(results[0].series) == 0
        assert results[0].total_moves == 0

    def test_no_methods(self):
        assert MultiReplayEngine(log_of([(1, 2)]), [], metric_window=10.0).run() == []

    def test_duplicate_method_instances_rejected(self):
        m = StaticMethod(2)
        with pytest.raises(ValueError):
            MultiReplayEngine(log_of([(1, 2)]), [m, m], metric_window=10.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            MultiReplayEngine([], [StaticMethod(2)], metric_window=0.0)

    def test_methods_see_identical_shared_inputs(self):
        """Window/period sequences handed to methods match the log order."""
        seen = {}

        class Recorder(StaticMethod):
            def __init__(self, k, tag):
                super().__init__(k)
                self.tag = tag

            def maybe_repartition(self, ctx):
                seen.setdefault(self.tag, []).append(
                    (list(ctx.window_interactions), list(ctx.period_interactions))
                )
                return None

        log = log_of([(1, 2), (3, 4), (5, 6)], step=1.0)
        MultiReplayEngine(
            log, [Recorder(2, "a"), Recorder(3, "b")], metric_window=2.0
        ).run()
        assert seen["a"] == seen["b"]
        windows, periods = zip(*seen["a"])
        assert [len(w) for w in windows] == [2, 1]
        assert periods[-1] == log  # period buffer accumulates the whole log
