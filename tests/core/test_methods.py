"""Unit tests for the five partitioning methods' decision logic."""

import random

import pytest

from repro.core.assignment import ShardAssignment
from repro.core.base import ReplayContext
from repro.core.hashing import HashPartitioner
from repro.core.kl import KLPartitioner
from repro.core.metis_method import MetisPartitioner
from repro.core.registry import PAPER_ORDER, available_methods, make_method
from repro.core.rmetis import RMetisPartitioner
from repro.core.trmetis import TRMetisPartitioner
from repro.graph.builder import Interaction
from repro.graph.snapshot import DAY, REPARTITION_PERIOD


def make_ctx(
    method,
    interactions=(),
    now=20 * DAY,
    last_repartition=0.0,
    window_cut=0.0,
    window_balance=1.0,
    assignment=None,
):
    """Build a ReplayContext from a raw interaction list."""
    from repro.graph.builder import build_graph

    graph = build_graph(interactions)
    if assignment is None:
        assignment = ShardAssignment(method.k)
        for i, v in enumerate(sorted(graph.vertices())):
            assignment.assign(v, i % method.k)
    return ReplayContext(
        now=now,
        k=method.k,
        assignment=assignment,
        graph=graph,
        window_interactions=list(interactions),
        period_interactions=list(interactions),
        last_repartition_ts=last_repartition,
        window_dynamic_edge_cut=window_cut,
        window_dynamic_balance=window_balance,
        rng=method.rng,
    )


def two_communities(n_each=8, cross=1):
    """Interactions forming two tight groups plus ``cross`` bridges."""
    out = []
    ts = 0.0
    tx = 0
    for rep in range(4):
        for i in range(n_each):
            a, b = i, (i + 1) % n_each
            out.append(Interaction(ts, a, b, tx_id=tx)); tx += 1
            out.append(Interaction(ts, 100 + a, 100 + b, tx_id=tx)); tx += 1
            ts += 1.0
    for i in range(cross):
        out.append(Interaction(ts, i, 100 + i, tx_id=tx)); tx += 1
    return out


class TestRegistry:
    def test_paper_order_methods_available(self):
        for name in PAPER_ORDER:
            method = make_method(name, 2, seed=1)
            assert method.k == 2

    def test_aliases(self):
        assert type(make_method("p-metis", 2)) is type(make_method("r-metis", 2))

    def test_case_insensitive(self):
        assert isinstance(make_method("HASH", 2), HashPartitioner)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            make_method("quantum", 2)

    def test_available_sorted(self):
        assert available_methods() == sorted(available_methods())

    def test_kwargs_forwarded(self):
        m = make_method("tr-metis", 2, cut_threshold=0.9)
        assert m.cut_threshold == 0.9

    def test_unknown_kwargs_rejected_naming_method_and_params(self):
        with pytest.raises(ValueError) as exc:
            make_method("tr-metis", 2, cut_treshold=0.9)  # typo'd name
        msg = str(exc.value)
        assert "tr-metis" in msg and "cut_treshold" in msg
        assert "cut_threshold" in msg and "accepted" in msg

    def test_method_params_introspection(self):
        from repro.core.registry import method_params

        assert "salt" in method_params("hash")
        assert "warm" in method_params("metis")
        # k and seed are experiment-level, never method parameters
        for name in PAPER_ORDER:
            params = method_params(name)
            assert "k" not in params and "seed" not in params

    def test_register_method_roundtrip(self):
        from repro.core.registry import _FACTORIES, register_method

        class Custom(HashPartitioner):
            name = "custom-hash"

        register_method("custom-hash", Custom)
        try:
            assert isinstance(make_method("custom-hash", 2, salt=1), Custom)
        finally:
            _FACTORIES.pop("custom-hash", None)

    def test_describe(self):
        assert "hash" in make_method("hash", 4, seed=3).describe()


class TestHash:
    def test_never_repartitions(self):
        m = HashPartitioner(2)
        ctx = make_ctx(m, two_communities(), now=100 * DAY)
        assert m.maybe_repartition(ctx) is None

    def test_placement_ignores_neighbors(self):
        m = HashPartitioner(4)
        a = ShardAssignment(4)
        s1 = m.place_vertex(42, [1, 2, 3], a)
        s2 = m.place_vertex(42, [9, 9, 9], a)
        assert s1 == s2

    def test_salt_changes_placement_pattern(self):
        a = HashPartitioner(8, salt=0)
        b = HashPartitioner(8, salt=1)
        asg = ShardAssignment(8)
        placements_a = [a.place_vertex(v, [], asg) for v in range(50)]
        placements_b = [b.place_vertex(v, [], asg) for v in range(50)]
        assert placements_a != placements_b

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestKL:
    def test_respects_period(self):
        m = KLPartitioner(2, period=REPARTITION_PERIOD)
        ctx = make_ctx(m, two_communities(), now=1 * DAY)
        assert m.maybe_repartition(ctx) is None

    def test_reduces_cut_on_bad_assignment(self):
        m = KLPartitioner(2, seed=1, rounds=6)
        inter = two_communities()
        from repro.graph.builder import build_graph

        graph = build_graph(inter)
        # worst-case start: alternate shards within each community
        assignment = ShardAssignment(2)
        for v in sorted(graph.vertices()):
            assignment.assign(v, v % 2)

        def cut(asg):
            return sum(
                1 for it in inter
                if asg.get(it.src) != asg.get(it.dst)
            )

        before = cut(assignment)
        ctx = make_ctx(m, inter, now=30 * DAY, assignment=assignment)
        proposal = m.maybe_repartition(ctx)
        assert proposal
        after_map = assignment.as_dict()
        after_map.update(proposal)

        class D(dict):
            pass

        assert cut(D(after_map)) < before

    def test_returns_none_when_no_gain(self):
        m = KLPartitioner(2, seed=1)
        # perfectly partitioned two communities: no positive-gain moves
        inter = two_communities(cross=0)
        from repro.graph.builder import build_graph

        graph = build_graph(inter)
        assignment = ShardAssignment(2)
        for v in graph.vertices():
            assignment.assign(v, 0 if v < 100 else 1)
        ctx = make_ctx(m, inter, now=30 * DAY, assignment=assignment)
        assert m.maybe_repartition(ctx) is None

    def test_empty_period_no_repartition(self):
        m = KLPartitioner(2)
        ctx = make_ctx(m, [], now=30 * DAY)
        assert m.maybe_repartition(ctx) is None


class TestMetisMethods:
    def test_metis_respects_period(self):
        m = MetisPartitioner(2)
        ctx = make_ctx(m, two_communities(), now=1 * DAY)
        assert m.maybe_repartition(ctx) is None

    def test_metis_covers_whole_graph(self):
        m = MetisPartitioner(2, seed=1)
        inter = two_communities()
        ctx = make_ctx(m, inter, now=30 * DAY)
        proposal = m.maybe_repartition(ctx)
        assert proposal is not None
        assert set(proposal) == set(ctx.graph.vertices())

    def test_metis_finds_communities(self):
        m = MetisPartitioner(2, seed=1)
        inter = two_communities(cross=1)
        ctx = make_ctx(m, inter, now=30 * DAY)
        proposal = m.maybe_repartition(ctx)
        left = {proposal[v] for v in proposal if v < 100}
        right = {proposal[v] for v in proposal if v >= 100}
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_rmetis_only_covers_period_vertices(self):
        m = RMetisPartitioner(2, seed=1)
        inter = two_communities()
        ctx = make_ctx(m, inter, now=30 * DAY)
        # pretend the cumulative graph is much bigger than the window
        ctx.assignment.assign(999, 0)
        proposal = m.maybe_repartition(ctx)
        assert proposal is not None
        assert 999 not in proposal

    def test_too_small_window_skipped(self):
        m = RMetisPartitioner(8, seed=1)
        inter = [Interaction(0.0, 1, 2, tx_id=0)]
        ctx = make_ctx(m, inter, now=30 * DAY)
        assert m.maybe_repartition(ctx) is None


class TestTRMetis:
    def test_not_triggered_below_thresholds(self):
        m = TRMetisPartitioner(2, cut_threshold=0.5, balance_threshold=0.5,
                               consecutive=1)
        ctx = make_ctx(m, two_communities(), now=30 * DAY,
                       window_cut=0.1, window_balance=1.1)
        assert m.maybe_repartition(ctx) is None

    def test_triggered_by_cut(self):
        m = TRMetisPartitioner(2, cut_threshold=0.3, consecutive=1,
                               cooldown=1 * DAY)
        ctx = make_ctx(m, two_communities(), now=30 * DAY,
                       window_cut=0.9, window_balance=1.0)
        assert m.maybe_repartition(ctx) is not None

    def test_triggered_by_balance(self):
        m = TRMetisPartitioner(2, balance_threshold=0.3, consecutive=1,
                               cooldown=1 * DAY)
        # normalized balance at k=2: (1.8-1)/(2-1) = 0.8 > 0.3
        ctx = make_ctx(m, two_communities(), now=30 * DAY,
                       window_cut=0.0, window_balance=1.8)
        assert m.maybe_repartition(ctx) is not None

    def test_cooldown_blocks(self):
        m = TRMetisPartitioner(2, cut_threshold=0.1, consecutive=1,
                               cooldown=10 * DAY)
        ctx = make_ctx(m, two_communities(), now=30 * DAY,
                       last_repartition=25 * DAY, window_cut=0.9)
        assert m.maybe_repartition(ctx) is None

    def test_consecutive_windows_required(self):
        m = TRMetisPartitioner(2, cut_threshold=0.3, consecutive=3,
                               cooldown=1 * DAY)
        inter = two_communities()
        for i in range(2):
            ctx = make_ctx(m, inter, now=(20 + i) * DAY, window_cut=0.9)
            assert m.maybe_repartition(ctx) is None
        ctx = make_ctx(m, inter, now=22 * DAY, window_cut=0.9)
        assert m.maybe_repartition(ctx) is not None

    def test_streak_resets_below_threshold(self):
        m = TRMetisPartitioner(2, cut_threshold=0.3, consecutive=2,
                               cooldown=1 * DAY)
        inter = two_communities()
        assert m.maybe_repartition(make_ctx(m, inter, now=20 * DAY, window_cut=0.9)) is None
        assert m.maybe_repartition(make_ctx(m, inter, now=21 * DAY, window_cut=0.1)) is None
        assert m.maybe_repartition(make_ctx(m, inter, now=22 * DAY, window_cut=0.9)) is None

    def test_max_interval_safety_net(self):
        m = TRMetisPartitioner(2, cut_threshold=0.99, balance_threshold=9.9,
                               consecutive=99, max_interval=5 * DAY,
                               cooldown=1 * DAY)
        ctx = make_ctx(m, two_communities(), now=30 * DAY,
                       last_repartition=0.0, window_cut=0.0)
        assert m.maybe_repartition(ctx) is not None
