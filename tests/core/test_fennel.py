"""Tests for the FENNEL-style streaming partitioner (extension)."""

import pytest

from repro.core.assignment import ShardAssignment
from repro.core.fennel import FennelPartitioner
from repro.core.registry import make_method
from repro.core.replay import replay_method
from repro.graph.builder import Interaction
from repro.graph.snapshot import DAY, HOUR


class TestPlacement:
    def test_follows_neighbors_when_balanced(self):
        m = FennelPartitioner(2, seed=1)
        a = ShardAssignment(2)
        a.assign(1, 0)
        a.assign(2, 1)
        a.assign(3, 0)
        # two co-endpoints on shard 0, one on shard 1, loads equalish
        a.assign(4, 1)
        assert m.place_vertex(99, [1, 3, 2, 99], a) == 0

    def test_load_penalty_overrides_weak_affinity(self):
        m = FennelPartitioner(2, seed=1, gamma=5.0)
        a = ShardAssignment(2)
        # shard 0 heavily overloaded but holds the single neighbor
        for v in range(20):
            a.assign(v, 0)
        a.assign(100, 1)
        shard = m.place_vertex(99, [0, 99], a)
        assert shard == 1  # penalty beats one neighbor

    def test_repeated_counterparty_counted_once(self):
        # counts balanced (2 vs 2) so only affinity decides; vertex 10
        # appears three times in the transaction's endpoint list but is
        # a single neighbor, so shard 1 (two distinct neighbors) wins.
        # Before the dedupe fix the triple-counted 10 dragged the
        # placement to shard 0.
        m = FennelPartitioner(2, seed=1)
        a = ShardAssignment(2)
        a.assign(10, 0)
        a.assign(13, 0)
        a.assign(11, 1)
        a.assign(12, 1)
        endpoints = [10, 10, 10, 11, 12, 99]
        assert m.place_vertex(99, endpoints, a) == 1

    def test_dedupe_preserves_self_exclusion(self):
        # the vertex being placed never counts toward its own affinity,
        # duplicated or not
        m = FennelPartitioner(2, seed=1)
        a = ShardAssignment(2)
        a.assign(1, 0)
        a.assign(2, 1)
        assert m.place_vertex(99, [99, 99, 1, 99], a) == 0

    def test_no_neighbors_goes_light(self):
        m = FennelPartitioner(3, seed=1)
        a = ShardAssignment(3)
        a.assign(1, 0)
        a.assign(2, 0)
        a.assign(3, 1)
        assert m.place_vertex(99, [99], a) == 2

    def test_never_repartitions(self):
        from tests.core.test_methods import make_ctx, two_communities

        m = FennelPartitioner(2)
        ctx = make_ctx(m, two_communities(), now=400 * DAY)
        assert m.maybe_repartition(ctx) is None


class TestReplayBehavior:
    def test_zero_moves(self, tiny_workload):
        result = replay_method(
            tiny_workload.builder.log, FennelPartitioner(4, seed=1),
            metric_window=12 * HOUR,
        )
        assert result.total_moves == 0
        assert result.events == []

    def test_beats_hash_on_cut(self, small_workload):
        """The point of the extension: edge-aware streaming placement
        cuts far fewer edges than hashing at the same zero-move cost."""
        log = small_workload.builder.log
        fennel = replay_method(log, make_method("fennel", 4, seed=1),
                               metric_window=24 * HOUR)
        hashing = replay_method(log, make_method("hash", 4, seed=1),
                                metric_window=24 * HOUR)

        def mean_cut(res):
            pts = [p for p in res.series.points if p.interactions > 0]
            return sum(p.dynamic_edge_cut for p in pts) / len(pts)

        assert mean_cut(fennel) < 0.8 * mean_cut(hashing)

    def test_balance_stays_bounded(self, small_workload):
        result = replay_method(
            small_workload.builder.log, make_method("fennel", 4, seed=1),
            metric_window=24 * HOUR,
        )
        assert result.series.points[-1].static_balance < 1.5

    def test_registry_integration(self):
        m = make_method("fennel", 8, seed=2, gamma=2.0)
        assert isinstance(m, FennelPartitioner)
        assert m.gamma == 2.0
