"""Unit + property tests for the KL balance oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import (
    BalanceOracle,
    MoveProposal,
    apply_probability_matrix,
)


def prop(v, src, dst, gain=1, weight=1):
    return MoveProposal(vertex=v, src=src, dst=dst, gain=gain, weight=weight)


class TestDemand:
    def test_counts_by_pair(self):
        oracle = BalanceOracle(3, weighted=False)
        demand = oracle.demand_matrix([prop(1, 0, 1), prop(2, 0, 1), prop(3, 2, 0)])
        assert demand[0][1] == 2
        assert demand[2][0] == 1
        assert demand[1][0] == 0

    def test_weighted_demand(self):
        oracle = BalanceOracle(2, weighted=True)
        demand = oracle.demand_matrix([prop(1, 0, 1, weight=5)])
        assert demand[0][1] == 5

    def test_self_move_rejected(self):
        oracle = BalanceOracle(2)
        with pytest.raises(ValueError):
            oracle.demand_matrix([prop(1, 0, 0)])

    def test_slack_bounds(self):
        with pytest.raises(ValueError):
            BalanceOracle(2, slack=1.5)
        with pytest.raises(ValueError):
            BalanceOracle(0)


class TestProbabilityMatrix:
    def test_balanced_demand_full_probability(self):
        oracle = BalanceOracle(2, slack=0.0, weighted=False)
        prob = oracle.probability_matrix([prop(1, 0, 1), prop(2, 1, 0)])
        assert prob[0][1] == 1.0
        assert prob[1][0] == 1.0

    def test_one_sided_demand_blocked_without_slack(self):
        oracle = BalanceOracle(2, slack=0.0, weighted=False)
        prob = oracle.probability_matrix([prop(1, 0, 1), prop(2, 0, 1)])
        assert prob[0][1] == 0.0

    def test_asymmetric_demand_scaled(self):
        oracle = BalanceOracle(2, slack=0.0, weighted=False)
        proposals = [prop(1, 0, 1), prop(2, 0, 1), prop(3, 1, 0)]
        prob = oracle.probability_matrix(proposals)
        assert prob[0][1] == pytest.approx(0.5)
        assert prob[1][0] == 1.0

    def test_diagonal_zero(self):
        oracle = BalanceOracle(3, weighted=False)
        prob = oracle.probability_matrix([prop(1, 0, 1), prop(2, 1, 0)])
        for s in range(3):
            assert prob[s][s] == 0.0

    def test_slack_allows_extra(self):
        strict = BalanceOracle(2, slack=0.0, weighted=False)
        loose = BalanceOracle(2, slack=1.0, weighted=False)
        proposals = [prop(1, 0, 1), prop(2, 0, 1)]
        assert strict.probability_matrix(proposals)[0][1] == 0.0
        assert loose.probability_matrix(proposals)[0][1] == 1.0

    @given(st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 5)),
        min_size=0, max_size=30,
    ))
    @settings(max_examples=50)
    def test_probabilities_always_valid(self, raw):
        proposals = [
            prop(i, s, t, weight=w)
            for i, (s, t, w) in enumerate(raw) if s != t
        ]
        oracle = BalanceOracle(4, slack=0.3)
        matrix = oracle.probability_matrix(proposals)
        for row in matrix:
            for p in row:
                assert 0.0 <= p <= 1.0


class TestApply:
    def test_full_probability_moves_everything(self):
        prob = [[0.0, 1.0], [1.0, 0.0]]
        proposals = [prop(1, 0, 1), prop(2, 1, 0)]
        accepted = apply_probability_matrix(proposals, prob, random.Random(0))
        assert accepted == {1: 1, 2: 0}

    def test_zero_probability_moves_nothing(self):
        prob = [[0.0, 0.0], [0.0, 0.0]]
        proposals = [prop(1, 0, 1)]
        assert apply_probability_matrix(proposals, prob, random.Random(0)) == {}

    def test_budget_caps_weight(self):
        prob = [[0.0, 1.0], [0.0, 0.0]]
        budgets = [[0.0, 6.0], [0.0, 0.0]]
        proposals = [prop(i, 0, 1, gain=10 - i, weight=3) for i in range(4)]
        accepted = apply_probability_matrix(
            proposals, prob, random.Random(0), budgets=budgets, weighted=True
        )
        # 6 units of budget at weight 3 each -> exactly 2 moves, and the
        # two highest-gain proposals win
        assert set(accepted) == {0, 1}

    def test_gain_priority(self):
        prob = [[0.0, 1.0], [0.0, 0.0]]
        budgets = [[0.0, 1.0], [0.0, 0.0]]
        proposals = [prop(1, 0, 1, gain=1), prop(2, 0, 1, gain=99)]
        accepted = apply_probability_matrix(
            proposals, prob, random.Random(0), budgets=budgets, weighted=True
        )
        assert accepted == {2: 1}

    @given(st.integers(0, 100))
    @settings(max_examples=25)
    def test_strict_oracle_preserves_counts_with_budget(self, seed):
        """With slack 0 and budgets enforced, realized moves between any
        pair are equal in each direction (count-weighted)."""
        rng = random.Random(seed)
        proposals = []
        vid = 0
        for _ in range(rng.randrange(40)):
            s = rng.randrange(3)
            t = (s + 1 + rng.randrange(2)) % 3
            proposals.append(prop(vid, s, t, gain=rng.randrange(5), weight=1))
            vid += 1
        oracle = BalanceOracle(3, slack=0.0, weighted=False)
        probm = oracle.probability_matrix(proposals)
        budgets = oracle.allowed_matrix(proposals)
        accepted = apply_probability_matrix(
            proposals, probm, rng, budgets=budgets, weighted=False
        )
        flow = [[0] * 3 for _ in range(3)]
        by_vertex = {p.vertex: p for p in proposals}
        for v, dst in accepted.items():
            flow[by_vertex[v].src][dst] += 1
        for s in range(3):
            for t in range(3):
                assert flow[s][t] <= budgets[s][t] + 1e-9
