"""Unit tests for ShardAssignment."""

import pytest

from repro.core.assignment import ShardAssignment
from repro.errors import InvalidPartitionError


class TestBasics:
    def test_k_validated(self):
        with pytest.raises(InvalidPartitionError):
            ShardAssignment(0)

    def test_assign_and_lookup(self):
        a = ShardAssignment(2)
        a.assign(10, 1)
        assert a[10] == 1
        assert a.shard_of(10) == 1
        assert 10 in a
        assert len(a) == 1

    def test_assign_twice_rejected(self):
        a = ShardAssignment(2)
        a.assign(10, 1)
        with pytest.raises(InvalidPartitionError, match="already assigned"):
            a.assign(10, 0)

    def test_shard_range_checked(self):
        a = ShardAssignment(2)
        with pytest.raises(InvalidPartitionError, match="out of range"):
            a.assign(1, 5)

    def test_move_returns_old(self):
        a = ShardAssignment(2)
        a.assign(1, 0)
        assert a.move(1, 1) == 0
        assert a[1] == 1

    def test_move_unassigned_rejected(self):
        a = ShardAssignment(2)
        with pytest.raises(InvalidPartitionError, match="not assigned"):
            a.move(1, 0)

    def test_get_default(self):
        a = ShardAssignment(2)
        assert a.get(5) is None
        assert a.get(5, -1) == -1


class TestAccounting:
    def test_counts_track_assign_and_move(self):
        a = ShardAssignment(3)
        a.assign(1, 0)
        a.assign(2, 0)
        a.assign(3, 1)
        assert a.counts == (2, 1, 0)
        a.move(1, 2)
        assert a.counts == (1, 1, 1)

    def test_weights_track(self):
        a = ShardAssignment(2)
        a.assign(1, 0, weight=5)
        a.assign(2, 1, weight=3)
        a.add_weight(1, 2)
        assert a.weights == (7, 3)
        a.move(1, 1, weight=7)
        assert a.weights == (0, 10)

    def test_move_same_shard_noop(self):
        a = ShardAssignment(2)
        a.assign(1, 0, weight=5)
        a.move(1, 0, weight=5)
        assert a.counts == (1, 0)
        assert a.weights == (5, 0)

    def test_lightest_shard(self):
        a = ShardAssignment(3)
        a.assign(1, 0)
        a.assign(2, 2)
        assert a.lightest_shard() == 1

    def test_lightest_by_weight(self):
        a = ShardAssignment(2)
        a.assign(1, 0, weight=10)
        a.assign(2, 1, weight=1)
        a.assign(3, 1, weight=1)
        assert a.lightest_shard(by_weight=True) == 1
        assert a.lightest_shard(by_weight=False) == 0


class TestBalances:
    def test_static_balance_empty(self):
        assert ShardAssignment(4).static_balance() == 1.0

    def test_static_balance_perfect(self):
        a = ShardAssignment(2)
        a.assign(1, 0)
        a.assign(2, 1)
        assert a.static_balance() == 1.0

    def test_static_balance_skewed(self):
        a = ShardAssignment(2)
        for v in range(3):
            a.assign(v, 0)
        a.assign(9, 1)
        assert a.static_balance() == pytest.approx(3 * 2 / 4)

    def test_dynamic_balance(self):
        a = ShardAssignment(2)
        a.assign(1, 0, weight=9)
        a.assign(2, 1, weight=1)
        assert a.dynamic_balance() == pytest.approx(9 * 2 / 10)


class TestCopyValidate:
    def test_copy_independent(self):
        a = ShardAssignment(2)
        a.assign(1, 0)
        b = a.copy()
        b.move(1, 1)
        assert a[1] == 0

    def test_validate_detects_corruption(self):
        a = ShardAssignment(2)
        a.assign(1, 0)
        a._counts[0] = 99  # simulate cache corruption
        with pytest.raises(InvalidPartitionError, match="out of sync"):
            a.validate()

    def test_validate_ok(self):
        a = ShardAssignment(2)
        a.assign(1, 0)
        a.assign(2, 1)
        a.validate()

    def test_validate_with_graph_checks_weights(self):
        from repro.graph.digraph import WeightedDiGraph

        g = WeightedDiGraph()
        g.add_vertex(1, weight=3)
        g.add_vertex(2, weight=5)
        a = ShardAssignment(2)
        a.assign(1, 0, weight=3)
        a.assign(2, 1, weight=5)
        a.validate(g)

    def test_validate_with_graph_catches_weight_drift(self):
        # a move() called with the wrong weight drifts the weight cache
        # while leaving the counts intact — the count-only validate()
        # used to pass this silently
        from repro.graph.digraph import WeightedDiGraph

        g = WeightedDiGraph()
        g.add_vertex(1, weight=3)
        g.add_vertex(2, weight=5)
        a = ShardAssignment(2)
        a.assign(1, 0, weight=3)
        a.assign(2, 1, weight=5)
        a.move(1, 1, weight=99)  # wrong weight: cache now drifted
        a.validate()  # counts still consistent: passes
        with pytest.raises(InvalidPartitionError, match="weight cache"):
            a.validate(g)

    def test_validate_with_graph_ignores_unseen_vertices(self):
        # repartition proposals may pre-place vertices the replay has
        # not streamed yet; they carry zero weight
        from repro.graph.digraph import WeightedDiGraph

        g = WeightedDiGraph()
        g.add_vertex(1, weight=2)
        a = ShardAssignment(2)
        a.assign(1, 0, weight=2)
        a.assign(99, 1)  # not in the graph
        a.validate(g)

    def test_as_dict_snapshot(self):
        a = ShardAssignment(2)
        a.assign(1, 0)
        d = a.as_dict()
        a.move(1, 1)
        assert d == {1: 0}
