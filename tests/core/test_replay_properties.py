"""Property-based tests: replay-engine invariants on random streams."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import PartitionMethod
from repro.core.hashing import HashPartitioner
from repro.core.replay import replay_method
from repro.graph.builder import Interaction


@st.composite
def interaction_logs(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            min_size=n, max_size=n,
        )
    )
    gap = draw(st.floats(min_value=0.1, max_value=5.0))
    per_tx = draw(st.integers(min_value=1, max_value=3))
    return [
        Interaction(timestamp=(i // per_tx) * gap, src=s, dst=d, tx_id=i // per_tx)
        for i, (s, d) in enumerate(pairs)
    ]


class ChaoticMethod(PartitionMethod):  # reprolint: disable=RL008 -- property-test stressor, never spec-reachable
    """Repartitions every window with a random proposal over seen
    vertices — a worst-case stress for engine bookkeeping."""

    name = "chaos"

    def maybe_repartition(self, ctx):
        vertices = list(ctx.graph.vertices())
        if not vertices:
            return None
        picked = self.rng.sample(vertices, k=max(1, len(vertices) // 2))
        return {v: self.rng.randrange(self.k) for v in picked}


@given(interaction_logs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_every_seen_vertex_is_assigned(log, k):
    result = replay_method(log, HashPartitioner(k), metric_window=3.0)
    seen = {v for it in log for v in (it.src, it.dst)}
    assert set(result.assignment.vertices()) == seen


@given(interaction_logs(), st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_metrics_always_in_bounds(log, k, seed):
    result = replay_method(log, ChaoticMethod(k, seed=seed), metric_window=3.0)
    for p in result.series.points:
        assert 0.0 <= p.static_edge_cut <= 1.0
        assert 0.0 <= p.dynamic_edge_cut <= 1.0
        assert 1.0 <= p.static_balance <= k + 1e-9
        assert 1.0 <= p.dynamic_balance <= k + 1e-9


@given(interaction_logs(), st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_assignment_counters_stay_consistent(log, k, seed):
    result = replay_method(log, ChaoticMethod(k, seed=seed), metric_window=3.0)
    result.assignment.validate()


@given(interaction_logs(), st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_moves_accounting_consistent(log, k, seed):
    result = replay_method(log, ChaoticMethod(k, seed=seed), metric_window=3.0)
    assert result.total_moves == sum(e.moves for e in result.events)
    cums = [p.cumulative_moves for p in result.series.points]
    assert cums == sorted(cums)
    assert (cums[-1] if cums else 0) == result.total_moves


@given(interaction_logs(), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_replay_graph_equals_direct_build(log, k):
    from repro.graph.builder import build_graph

    result = replay_method(log, HashPartitioner(k), metric_window=3.0)
    direct = build_graph(log)
    assert result.graph.num_vertices == direct.num_vertices
    assert result.graph.num_edges == direct.num_edges
    assert result.graph.total_edge_weight == direct.total_edge_weight


@given(interaction_logs(), st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_windows_tile_the_log(log, k, seed):
    result = replay_method(log, ChaoticMethod(k, seed=seed), metric_window=3.0)
    assert sum(p.interactions for p in result.series.points) == len(log)
    starts = [p.ts for p in result.series.points]
    assert starts == sorted(starts)
