"""Tests for the columnar interaction log."""

import pytest

from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import VertexKind


def sample_log():
    return [
        Interaction(0.0, 10, 20, tx_id=0),
        Interaction(1.0, 20, 30, VertexKind.ACCOUNT, VertexKind.CONTRACT, tx_id=1),
        Interaction(1.0, 30, 10, VertexKind.CONTRACT, VertexKind.ACCOUNT, tx_id=1),
        Interaction(5.0, 10, 10, tx_id=2),
        Interaction(9.0, 40, 20, tx_id=3),
    ]


class TestRoundTrip:
    def test_to_interactions_is_identity(self):
        log = sample_log()
        assert ColumnarLog.from_interactions(log).to_interactions() == log

    def test_row_access(self):
        log = sample_log()
        clog = ColumnarLog(log)
        assert clog[1] == log[1]
        assert clog[-1] == log[-1]
        assert clog[1:3] == log[1:3]
        assert list(clog) == log

    def test_len_and_kinds_preserved(self):
        clog = ColumnarLog(sample_log())
        assert len(clog) == 5
        assert clog[1].dst_kind is VertexKind.CONTRACT
        assert clog[2].src_kind is VertexKind.CONTRACT

    def test_index_out_of_range(self):
        clog = ColumnarLog(sample_log())
        with pytest.raises(IndexError):
            clog.interaction(99)
        with pytest.raises(IndexError):
            clog[5]

    def test_empty(self):
        clog = ColumnarLog()
        assert len(clog) == 0
        assert clog.num_vertices == 0
        assert clog.to_interactions() == []
        assert clog.first_timestamp == float("-inf")
        assert clog.last_timestamp == float("-inf")
        assert clog.window(0.0, 100.0) == []


class TestInterning:
    def test_dense_ids_in_first_appearance_order(self):
        clog = ColumnarLog(sample_log())
        assert clog.vertex_ids() == (10, 20, 30, 40)
        assert clog.num_vertices == 4
        assert clog.vertex_index(30) == 2
        assert clog.vertex_id(3) == 40

    def test_unknown_vertex_raises(self):
        clog = ColumnarLog(sample_log())
        with pytest.raises(KeyError):
            clog.vertex_index(999)


class TestOrdering:
    def test_out_of_order_append_rejected(self):
        clog = ColumnarLog(sample_log())
        with pytest.raises(ValueError):
            clog.append(Interaction(2.0, 1, 2, tx_id=9))

    def test_out_of_order_error_names_row_and_timestamps(self):
        """The append-only contract must fail with a locatable error:
        the offending row position and both timestamps."""
        clog = ColumnarLog(sample_log())
        with pytest.raises(ValueError, match=r"row 5.*2\.0.*9\.0"):
            clog.append(Interaction(2.0, 1, 2, tx_id=9))
        assert len(clog) == 5  # nothing was appended

    def test_out_of_order_extend_rejected_midstream(self):
        clog = ColumnarLog()
        bad = [
            Interaction(1.0, 1, 2, tx_id=0),
            Interaction(5.0, 2, 3, tx_id=1),
            Interaction(3.0, 3, 4, tx_id=2),  # rewinds time
        ]
        with pytest.raises(ValueError, match="out-of-order"):
            clog.extend(bad)
        # the valid prefix was appended, the bad row was not
        assert len(clog) == 2
        assert clog.last_timestamp == 5.0

    def test_out_of_order_constructor_rejected(self):
        with pytest.raises(ValueError, match="out-of-order"):
            ColumnarLog([
                Interaction(4.0, 1, 2, tx_id=0),
                Interaction(1.0, 2, 3, tx_id=1),
            ])

    def test_equal_timestamp_ok(self):
        clog = ColumnarLog(sample_log())
        clog.append(Interaction(9.0, 1, 2, tx_id=9))
        assert len(clog) == 6


class TestWindowing:
    def test_window_bounds_bisect(self):
        clog = ColumnarLog(sample_log())
        assert clog.window_bounds(0.0, 1.0) == (0, 1)
        assert clog.window_bounds(1.0, 5.0) == (1, 3)
        assert clog.window_bounds(5.0, 100.0) == (3, 5)
        assert clog.window_bounds(2.0, 4.0) == (3, 3)

    def test_window_matches_builder_semantics(self):
        log = sample_log()
        clog = ColumnarLog(log)
        assert clog.window(1.0, 9.0) == [it for it in log if 1.0 <= it.timestamp < 9.0]

    def test_index_at(self):
        clog = ColumnarLog(sample_log())
        assert clog.index_at(0.0) == 0
        assert clog.index_at(1.0) == 1
        assert clog.index_at(100.0) == 5


class TestFromBuffers:
    def _buffers(self):
        from array import array

        return dict(
            timestamps=array("d", [0.0, 1.0, 2.0]),
            src=array("q", [0, 1, 2]),
            dst=array("q", [1, 2, 0]),
            tx=array("q", [0, 0, 1]),
            src_kind=array("b", [0, 0, 1]),
            dst_kind=array("b", [0, 1, 0]),
            vertex_ids=(10, 20, 30),
        )

    def test_wraps_without_copying(self):
        bufs = self._buffers()
        clog = ColumnarLog.from_buffers(**bufs)
        assert clog.timestamps() is bufs["timestamps"]   # same object: no copy
        assert len(clog) == 3
        assert clog[0] == Interaction(0.0, 10, 20, tx_id=0)
        assert clog[2].src_kind is VertexKind.CONTRACT

    def test_reverse_index_is_lazy_and_correct(self):
        clog = ColumnarLog.from_buffers(**self._buffers())
        assert clog._vertex_index is None                # untouched so far
        assert clog.vertex_index(30) == 2
        assert clog._vertex_index is not None

    def test_read_only(self):
        clog = ColumnarLog.from_buffers(**self._buffers())
        assert not clog.is_writable
        with pytest.raises(TypeError, match="read-only"):
            clog.append(Interaction(5.0, 1, 2, tx_id=9))
        # interning an *existing* vertex is a lookup, not a mutation
        assert clog.intern(10) == 0

    def test_column_length_mismatch_rejected(self):
        bufs = self._buffers()
        from array import array

        bufs["dst"] = array("q", [1, 2])
        with pytest.raises(ValueError, match="column length mismatch"):
            ColumnarLog.from_buffers(**bufs)

    def test_identical_across_backings(self):
        bufs = self._buffers()
        wrapped = ColumnarLog.from_buffers(**bufs)
        built = ColumnarLog(wrapped.to_interactions())
        assert wrapped.identical(built) and built.identical(wrapped)
        built.append(Interaction(9.0, 99, 10, tx_id=5))
        assert not wrapped.identical(built)
