"""Property-based tests for graph substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder, Interaction, build_graph
from repro.graph.digraph import WeightedDiGraph
from repro.graph.undirected import collapse_to_undirected

# strategy: a time-ordered interaction stream over a small vertex space
interaction_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),  # src
        st.integers(min_value=0, max_value=12),  # dst
    ),
    min_size=0,
    max_size=60,
).map(
    lambda pairs: [
        Interaction(timestamp=float(i), src=s, dst=d, tx_id=i)
        for i, (s, d) in enumerate(pairs)
    ]
)


@given(interaction_streams)
def test_total_edge_weight_equals_interaction_count(stream):
    g = build_graph(stream)
    assert g.total_edge_weight == len(stream)


@given(interaction_streams)
def test_vertex_weight_equals_participation(stream):
    g = build_graph(stream)
    expected = {}
    for it in stream:
        expected[it.src] = expected.get(it.src, 0) + 1
        if it.dst != it.src:
            expected[it.dst] = expected.get(it.dst, 0) + 1
    for v, w in expected.items():
        assert g.vertex_weight(v) == w


@given(interaction_streams)
def test_edge_weight_equals_pair_frequency(stream):
    g = build_graph(stream)
    freq = {}
    for it in stream:
        freq[(it.src, it.dst)] = freq.get((it.src, it.dst), 0) + 1
    for (s, d), n in freq.items():
        assert g.edge_weight(s, d) == n


@given(interaction_streams)
def test_collapse_preserves_total_weight_minus_self_loops(stream):
    g = build_graph(stream)
    und = collapse_to_undirected(g)
    self_loop_weight = sum(1 for it in stream if it.src == it.dst)
    assert und.total_edge_weight == len(stream) - self_loop_weight


@given(interaction_streams)
def test_collapse_is_symmetric(stream):
    und = collapse_to_undirected(build_graph(stream))
    for u in und.vertices():
        for v, w in und.adjacency(u).items():
            assert und.adjacency(v)[u] == w
            assert u != v


@given(interaction_streams)
def test_predecessors_mirror_successors(stream):
    g = build_graph(stream)
    for v in g.vertices():
        for succ, w in g.successors(v).items():
            assert g.predecessors(succ)[v] == w


@given(interaction_streams)
def test_window_split_partitions_the_log(stream):
    """Window graphs over a partition of time cover the whole stream."""
    b = GraphBuilder()
    b.add_many(stream)
    mid = len(stream) / 2.0
    first = b.window_graph(float("-inf"), mid)
    second = b.window_graph(mid, float("inf"))
    assert first.total_edge_weight + second.total_edge_weight == len(stream)


@given(interaction_streams, st.integers(min_value=1, max_value=5))
def test_subgraph_weights_never_exceed_parent(stream, modulus):
    g = build_graph(stream)
    keep = [v for v in g.vertices() if v % modulus == 0]
    sub = g.subgraph(keep)
    for src, dst, w in sub.edges():
        assert g.edge_weight(src, dst) == w
