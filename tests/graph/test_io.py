"""Unit tests for trace readers/writers."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.graph.builder import Interaction
from repro.graph.digraph import VertexKind
from repro.graph.io import (
    format_interaction,
    parse_interaction,
    read_trace,
    write_trace,
)


def sample_interactions():
    return [
        Interaction(timestamp=1.0, src=1, dst=2, tx_id=10),
        Interaction(
            timestamp=2.5, src=2, dst=3, tx_id=11,
            src_kind=VertexKind.CONTRACT, dst_kind=VertexKind.ACCOUNT,
        ),
    ]


class TestFormatParse:
    def test_round_trip_line(self):
        it = sample_interactions()[1]
        assert parse_interaction(format_interaction(it)) == it

    def test_format_fields(self):
        line = format_interaction(sample_interactions()[0])
        assert line.split() == ["1.0", "10", "1", "A", "2", "A"]

    def test_format_full_precision(self):
        """Timestamps serialize with repr precision: a value with
        sub-millisecond structure round-trips bit-identically."""
        it = Interaction(timestamp=1.0000001234567891, src=1, dst=2, tx_id=0)
        back = parse_interaction(format_interaction(it))
        assert back.timestamp == it.timestamp  # exact, not %.3f-rounded

    def test_parse_wrong_field_count(self):
        with pytest.raises(TraceFormatError, match="expected 6 fields"):
            parse_interaction("1.0 2 3", lineno=4)

    def test_parse_bad_number(self):
        with pytest.raises(TraceFormatError, match="bad numeric"):
            parse_interaction("x 1 2 A 3 A")

    @pytest.mark.parametrize("bad_ts", ["nan", "inf", "-inf", "Infinity"])
    def test_parse_non_finite_timestamp_rejected(self, bad_ts):
        """nan/inf parse as floats but would break the log's
        time-ordering guard downstream with a confusing error."""
        with pytest.raises(TraceFormatError, match="non-finite timestamp") as e:
            parse_interaction(f"{bad_ts} 1 2 A 3 A", lineno=7)
        assert "line 7" in str(e.value)

    def test_parse_bad_kind(self):
        with pytest.raises(TraceFormatError, match="A or C"):
            parse_interaction("1.0 1 2 Z 3 A")


class TestFileRoundTrip:
    def test_stream_round_trip(self):
        buf = io.StringIO()
        n = write_trace(sample_interactions(), buf)
        assert n == 2
        buf.seek(0)
        back = list(read_trace(buf))
        assert back == sample_interactions()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(sample_interactions(), str(path))
        assert list(read_trace(str(path))) == sample_interactions()

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        write_trace(sample_interactions(), str(path))
        # file must actually be gzip-compressed
        with open(path, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"
        assert list(read_trace(str(path))) == sample_interactions()

    def test_comments_and_blanks_skipped(self):
        buf = io.StringIO("# header\n\n1.0 5 1 A 2 C\n")
        got = list(read_trace(buf))
        assert len(got) == 1
        assert got[0].dst_kind is VertexKind.CONTRACT

    def test_reader_is_lazy(self):
        buf = io.StringIO("1.0 1 1 A 2 A\nbroken line\n")
        it = read_trace(buf)
        assert next(it).src == 1
        with pytest.raises(TraceFormatError):
            next(it)


def test_workload_trace_round_trip(tiny_workload, tmp_path):
    """The full synthetic history survives serialisation bit-identically
    (repr-precision timestamps; ids/kinds exact)."""
    path = tmp_path / "full.txt"
    log = tiny_workload.builder.log
    write_trace(log, str(path))
    back = list(read_trace(str(path)))
    assert back == list(log)


class TestContentSniffedCompression:
    def test_gzipped_trace_without_gz_suffix_reads(self, tmp_path):
        """Compression is sniffed from the magic, not the extension."""
        import shutil

        proper = tmp_path / "t.txt.gz"
        write_trace(sample_interactions(), str(proper))
        misnamed = tmp_path / "t.dat"
        shutil.copy(proper, misnamed)
        assert list(read_trace(str(misnamed))) == sample_interactions()

    def test_binary_junk_raises_trace_format_error(self, tmp_path):
        """Non-utf-8 bytes surface as TraceFormatError, never a raw
        UnicodeDecodeError (the CLIs only catch the former)."""
        junk = tmp_path / "junk.txt"
        junk.write_bytes(bytes(range(128, 256)) * 8)
        with pytest.raises(TraceFormatError, match="invalid utf-8"):
            list(read_trace(str(junk)))
