"""Corrupt-trace fuzzing: flips and truncations must fail loudly.

The binary readers' contract for *any* malformed input is a
:class:`TraceFormatError` that names the file (and, where one is
identifiable, the offending section) — never a raw ``struct`` /
``Index`` / ``Overflow`` error, never an infinite decode loop, and
never a silent load of corrupt bytes.  This suite drives that contract
mechanically over valid v2 and v3 files: seeded single-byte flips and
truncations at (and around) every section boundary, plus seeded
random offsets across the whole file.

Every byte of both formats is covered by some validator — header
fields are checked individually (magic, version, header size, counts,
payload length, reserved-zero) and the crc32 covers the entire
payload (v3: section table + stored sections) — so a flip anywhere
must surface.
"""

import random
import struct

import pytest

from repro.errors import TraceFormatError
from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import VertexKind
from repro.graph.io import (
    _SECTION_ENTRY,
    _V3_SECTIONS,
    load_columnar,
    write_columnar,
)

_FLIP_SEED = 0xC0FFEE
_RANDOM_OFFSETS = 48


def _sample_log() -> ColumnarLog:
    """~90 rows with duplicate timestamps, self-loops, mixed kinds and
    enough vertices that every v3 section is non-trivially encoded."""
    rng = random.Random(7)
    interactions = []
    ts = 0.0
    for i in range(90):
        if rng.random() < 0.6:
            ts += rng.random() * 3600.0
        src, dst = rng.randrange(40), rng.randrange(40)
        interactions.append(Interaction(
            timestamp=ts,
            src=src * 7919,
            dst=dst * 7919,
            src_kind=VertexKind.CONTRACT if src % 3 == 0 else VertexKind.ACCOUNT,
            dst_kind=VertexKind.CONTRACT if dst % 5 == 0 else VertexKind.ACCOUNT,
            tx_id=i // 2,
        ))
    return ColumnarLog(interactions)


def _v2_boundaries(data: bytes) -> list:
    """Every v2 header-field and section start offset."""
    n_rows, n_vertices = struct.unpack_from("<QQ", data, 16)
    bounds = [0, 8, 12, 16, 24, 32, 40, 44, 64]
    offset = 64 + n_vertices * 8
    bounds.append(offset)
    for size in (8, 8, 8, 8, 1, 1):
        offset += n_rows * size
        bounds.append(offset)
    assert offset == len(data)
    return bounds


def _v3_boundaries(data: bytes) -> list:
    """Header fields, every section-table entry, every section start."""
    bounds = [0, 8, 12, 16, 24, 32, 40, 44]
    table_at = 64
    bounds.extend(table_at + i * _SECTION_ENTRY.size
                  for i in range(len(_V3_SECTIONS)))
    offset = table_at + _SECTION_ENTRY.size * len(_V3_SECTIONS)
    bounds.append(offset)
    for i in range(len(_V3_SECTIONS)):
        _tag, _flags, _rsv, stored = _SECTION_ENTRY.unpack_from(
            data, table_at + i * _SECTION_ENTRY.size
        )
        offset += stored
        bounds.append(offset)
    assert offset == len(data)
    return bounds


@pytest.fixture(scope="module", params=(2, 3), ids=("v2", "v3"))
def trace_bytes(request, tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / f"trace_v{request.param}.rct"
    write_columnar(_sample_log(), path, version=request.param)
    data = path.read_bytes()
    bounds = (_v2_boundaries if request.param == 2 else _v3_boundaries)(data)
    return request.param, data, bounds


def _offsets_under_test(data: bytes, bounds) -> list:
    rng = random.Random(_FLIP_SEED)
    offsets = set()
    for b in bounds:
        offsets.update(o for o in (b - 1, b, b + 1) if 0 <= o < len(data))
    offsets.update(rng.randrange(len(data)) for _ in range(_RANDOM_OFFSETS))
    return sorted(offsets)


def _assert_rejected(path, original: bytes, mutated: bytes, what: str):
    assert mutated != original
    path.write_bytes(mutated)
    with pytest.raises(TraceFormatError) as excinfo:
        load_columnar(path)
    # the error must name the file it rejected, not be a bare message
    assert path.name in str(excinfo.value), (
        f"{what}: error does not name the file: {excinfo.value}"
    )


def test_single_byte_flips_never_load(trace_bytes, tmp_path):
    version, data, bounds = trace_bytes
    path = tmp_path / "bad.rct"
    for offset in _offsets_under_test(data, bounds):
        mutated = bytearray(data)
        mutated[offset] ^= 0xFF
        _assert_rejected(path, data, bytes(mutated),
                         f"v{version} flip at byte {offset}")


def test_truncations_at_every_boundary_never_load(trace_bytes, tmp_path):
    version, data, bounds = trace_bytes
    path = tmp_path / "bad.rct"
    rng = random.Random(_FLIP_SEED)
    cuts = {c for b in bounds for c in (b - 1, b, b + 1) if 0 <= c < len(data)}
    cuts.update(rng.randrange(len(data)) for _ in range(_RANDOM_OFFSETS))
    for cut in sorted(cuts):
        _assert_rejected(path, data, data[:cut],
                         f"v{version} truncation to {cut} bytes")


def test_exact_section_boundary_truncations_name_the_damage(trace_bytes,
                                                            tmp_path):
    """A clean cut at a section boundary is structurally a short
    payload; the error must say so (length/truncation vocabulary),
    not fail somewhere downstream."""
    version, data, bounds = trace_bytes
    path = tmp_path / "bad.rct"
    for cut in bounds:
        if cut in (0, len(data)):
            continue
        path.write_bytes(data[:cut])
        with pytest.raises(TraceFormatError) as excinfo:
            load_columnar(path)
        message = str(excinfo.value)
        assert any(word in message for word in
                   ("truncated", "shorter", "payload length")), (
            f"v{version} cut at {cut}: unexpected error: {message}"
        )


def test_extra_trailing_bytes_never_load(trace_bytes, tmp_path):
    version, data, _bounds = trace_bytes
    path = tmp_path / "bad.rct"
    for extra in (b"\0", b"garbage-on-the-end"):
        _assert_rejected(path, data, data + extra,
                         f"v{version} +{len(extra)} trailing bytes")


def test_v3_section_table_lies_are_caught(trace_bytes, tmp_path):
    """Rewriting a stored-length or tag field (with a refreshed crc,
    so the checksum cannot save us) must still be rejected by the
    structural decoders with an error naming the section."""
    import zlib

    version, data, _bounds = trace_bytes
    if version != 3:
        pytest.skip("v3 section table only")
    path = tmp_path / "bad.rct"
    first_entry = 64

    def rewrite(mutator):
        mutated = bytearray(data)
        mutator(mutated)
        crc = zlib.crc32(bytes(mutated[64:]))
        mutated[40:44] = struct.pack("<I", crc)
        path.write_bytes(bytes(mutated))
        with pytest.raises(TraceFormatError) as excinfo:
            load_columnar(path)
        return str(excinfo.value)

    # stored length that disagrees with the payload size
    tag, flags, rsv, stored = _SECTION_ENTRY.unpack_from(data, first_entry)
    msg = rewrite(lambda d: d.__setitem__(
        slice(first_entry, first_entry + _SECTION_ENTRY.size),
        _SECTION_ENTRY.pack(tag, flags, rsv, stored + 5),
    ))
    assert "section table" in msg or "section" in msg

    # an encoding tag that is not valid for the section
    msg = rewrite(lambda d: d.__setitem__(
        slice(first_entry, first_entry + _SECTION_ENTRY.size),
        _SECTION_ENTRY.pack(99, flags, rsv, stored),
    ))
    assert "vertex_ids" in msg and "tag" in msg

    # unknown flag bits
    msg = rewrite(lambda d: d.__setitem__(
        slice(first_entry, first_entry + _SECTION_ENTRY.size),
        _SECTION_ENTRY.pack(tag, 0x80, rsv, stored),
    ))
    assert "flag" in msg


def _shrink_section_by_one(data: bytearray, section_index: int) -> bytearray:
    """Cut the last byte out of one section, patching the table entry,
    payload length and crc so only the structural decoders can object."""
    import zlib

    entry_at = 64 + section_index * _SECTION_ENTRY.size
    tag, flags, rsv, stored = _SECTION_ENTRY.unpack_from(data, entry_at)
    assert stored > 0
    section_at = 64 + _SECTION_ENTRY.size * len(_V3_SECTIONS)
    for i in range(section_index):
        section_at += _SECTION_ENTRY.unpack_from(
            data, 64 + i * _SECTION_ENTRY.size
        )[3]
    data[entry_at:entry_at + _SECTION_ENTRY.size] = _SECTION_ENTRY.pack(
        tag, flags, rsv, stored - 1
    )
    del data[section_at + stored - 1]
    payload = struct.unpack_from("<Q", data, 32)[0]
    struct.pack_into("<Q", data, 32, payload - 1)
    data[40:44] = struct.pack("<I", zlib.crc32(bytes(data[64:])))
    return data


def test_v3_corrupt_raw_section_is_structural_error(tmp_path):
    """A raw section whose stored length disagrees with the row count
    (crc refreshed) raises the section-naming length error."""
    path = tmp_path / "t.rct"
    write_columnar(_sample_log(), path, version=3, compress=False)
    data = _shrink_section_by_one(
        bytearray(path.read_bytes()), len(_V3_SECTIONS) - 1
    )
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="dst_kind"):
        load_columnar(path)


def test_v3_truncated_varint_stream_is_structural_error(tmp_path):
    """A varint stream cut mid-value (crc refreshed) must raise the
    section-naming truncation error, never hang or IndexError."""
    path = tmp_path / "t.rct"
    write_columnar(_sample_log(), path, version=3, compress=False)
    tx_index = [name for name, *_ in _V3_SECTIONS].index("tx")
    data = _shrink_section_by_one(bytearray(path.read_bytes()), tx_index)
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="tx section"):
        load_columnar(path)


def _reframe_section(data: bytearray, section_index: int,
                     body: bytes, flags: int) -> bytearray:
    """Swap one section's stored bytes (and flags), re-truing the
    table entry, payload length and crc — only decoders can object."""
    import zlib

    entry_at = 64 + section_index * _SECTION_ENTRY.size
    tag, _flags, rsv, stored = _SECTION_ENTRY.unpack_from(data, entry_at)
    section_at = 64 + _SECTION_ENTRY.size * len(_V3_SECTIONS)
    for i in range(section_index):
        section_at += _SECTION_ENTRY.unpack_from(
            data, 64 + i * _SECTION_ENTRY.size
        )[3]
    data[entry_at:entry_at + _SECTION_ENTRY.size] = _SECTION_ENTRY.pack(
        tag, flags, rsv, len(body)
    )
    data[section_at:section_at + stored] = body
    payload = struct.unpack_from("<Q", data, 32)[0]
    struct.pack_into("<Q", data, 32, payload - stored + len(body))
    data[40:44] = struct.pack("<I", zlib.crc32(bytes(data[64:])))
    return data


def test_v3_zlib_bomb_is_rejected_before_it_inflates(tmp_path):
    """A section framing that decompresses far past what its row count
    could occupy must be rejected by the bounded inflater, not
    ballooned into memory first."""
    import zlib

    path = tmp_path / "t.rct"
    write_columnar(_sample_log(), path, version=3, compress=False)
    bomb = zlib.compress(b"\x00" * 50_000_000, 9)   # ~48KB -> 50MB
    last = len(_V3_SECTIONS) - 1                     # dst_kind (raw tag)
    data = _reframe_section(bytearray(path.read_bytes()), last, bomb, 0x01)
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="inflates past"):
        load_columnar(path)


def test_v3_truncated_zlib_stream_is_rejected(tmp_path):
    import zlib

    path = tmp_path / "t.rct"
    write_columnar(_sample_log(), path, version=3, compress=False)
    rows = len(_sample_log())
    good = zlib.compress(bytes(rows), 6)
    last = len(_V3_SECTIONS) - 1
    data = _reframe_section(
        bytearray(path.read_bytes()), last, good[:-3], 0x01
    )
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError,
                       match="dst_kind.*(truncated|corrupt)"):
        load_columnar(path)
