"""Binary rctrace v2: zero-copy round trips and corruption handling.

The format's contract: a written file loads back bit-identical by
construction (the sections *are* the ColumnarLog arrays), loads are
mmap-backed and read-only, and every malformed input — bad magic,
version mismatch, truncated section, checksum failure — raises
:class:`TraceFormatError` naming the offending section, never a raw
``struct``/``IndexError``.
"""

import struct

import pytest

from repro.errors import TraceFormatError
from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import VertexKind
from repro.graph.io import (
    TRACE_MAGIC,
    convert_trace,
    load_columnar,
    load_trace_log,
    trace_format,
    write_columnar,
    write_trace,
)


def sample_log():
    return ColumnarLog([
        Interaction(0.0, 10, 20, tx_id=0),
        Interaction(1.0000001234567891, 20, 30,
                    VertexKind.ACCOUNT, VertexKind.CONTRACT, tx_id=1),
        Interaction(1.0000001234567891, 30, 10,
                    VertexKind.CONTRACT, VertexKind.ACCOUNT, tx_id=1),
        Interaction(5.5, 10, 10, tx_id=2),
        Interaction(9.25, 40, 20, tx_id=3),
    ])


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "trace.rct"
    write_columnar(sample_log(), path)
    return path


class TestRoundTrip:
    def test_bit_identity(self, trace_path):
        back = load_columnar(trace_path)
        assert back.identical(sample_log())
        assert back.to_interactions() == sample_log().to_interactions()

    def test_vertex_table_and_windows(self, trace_path):
        back = load_columnar(trace_path)
        assert back.vertex_ids() == (10, 20, 30, 40)
        assert back.vertex_index(30) == 2           # lazy reverse index
        assert back.window_bounds(1.0, 6.0) == (1, 4)

    def test_loaded_log_is_read_only(self, trace_path):
        back = load_columnar(trace_path)
        assert not back.is_writable
        with pytest.raises(TypeError, match="read-only"):
            back.append(Interaction(99.0, 1, 2, tx_id=9))
        with pytest.raises(TypeError, match="read-only"):
            back.intern(12345)
        # re-boxing gives an appendable, equal copy
        copy = ColumnarLog(back)
        assert copy.is_writable and copy.identical(back)
        copy.append(Interaction(99.0, 1, 2, tx_id=9))
        assert len(copy) == len(back) + 1

    def test_interactions_iterable_round_trip(self, tmp_path):
        """write_columnar accepts a plain interaction iterable too."""
        path = tmp_path / "t.rct"
        n = write_columnar(sample_log().to_interactions(), path)
        assert n == 5
        assert load_columnar(path).identical(sample_log())

    def test_empty_log_round_trip(self, tmp_path):
        path = tmp_path / "empty.rct"
        assert write_columnar(ColumnarLog(), path) == 0
        back = load_columnar(path)
        assert len(back) == 0 and back.num_vertices == 0
        assert back.window(0.0, 100.0) == []

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "trace.rct.gz"
        write_columnar(sample_log(), path)
        with open(path, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"
        assert load_columnar(path).identical(sample_log())

    def test_verify_false_skips_validation_not_data(self, trace_path):
        back = load_columnar(trace_path, verify=False)
        assert back.identical(sample_log())

    def test_workload_round_trip(self, tiny_workload, tmp_path):
        """The full synthetic history survives the binary format
        bit-identically (the acceptance contract of the data layer)."""
        log = ColumnarLog(tiny_workload.builder.log)
        path = tmp_path / "full.rct"
        write_columnar(log, path)
        assert load_columnar(path).identical(log)


class TestCorruption:
    def _mutate(self, trace_path, tmp_path, mutator):
        data = bytearray(trace_path.read_bytes())
        mutator(data)
        bad = tmp_path / "bad.rct"
        bad.write_bytes(bytes(data))
        return bad

    def test_bad_magic(self, trace_path, tmp_path):
        bad = self._mutate(trace_path, tmp_path,
                           lambda d: d.__setitem__(slice(0, 8), b"NOTTRACE"))
        with pytest.raises(TraceFormatError, match="bad magic at offset 0"):
            load_columnar(bad)

    def test_version_mismatch(self, trace_path, tmp_path):
        bad = self._mutate(
            trace_path, tmp_path,
            lambda d: d.__setitem__(slice(8, 12), struct.pack("<I", 99)),
        )
        with pytest.raises(TraceFormatError, match="version 99"):
            load_columnar(bad)

    def test_truncated_column_section(self, trace_path, tmp_path):
        data = trace_path.read_bytes()
        bad = tmp_path / "bad.rct"
        bad.write_bytes(data[:-7])   # cut into the dst_kind section
        with pytest.raises(TraceFormatError, match="truncated payload"):
            load_columnar(bad)

    def test_header_only_file(self, tmp_path):
        bad = tmp_path / "bad.rct"
        bad.write_bytes(b"RC")
        with pytest.raises(TraceFormatError, match="shorter than the 64-byte header"):
            load_columnar(bad)

    def test_checksum_failure(self, trace_path, tmp_path):
        bad = self._mutate(trace_path, tmp_path,
                           lambda d: d.__setitem__(70, d[70] ^ 0xFF))
        with pytest.raises(TraceFormatError, match="checksum mismatch"):
            load_columnar(bad)

    def test_inconsistent_counts(self, trace_path, tmp_path):
        """A row count that disagrees with the file size is reported as
        a length mismatch, not an IndexError downstream."""
        bad = self._mutate(
            trace_path, tmp_path,
            lambda d: d.__setitem__(slice(16, 24), struct.pack("<Q", 1000)),
        )
        with pytest.raises(TraceFormatError, match="payload length"):
            load_columnar(bad)

    def test_out_of_order_rows_rejected_on_verify(self, tmp_path):
        """verify=True re-checks the builder's time-ordering invariant
        (a well-checksummed file can still be semantically wrong)."""
        log = sample_log()
        path = tmp_path / "t.rct"
        write_columnar(log, path)
        data = bytearray(path.read_bytes())
        # swap first and last timestamps (section starts after the
        # 64-byte header + 4 vertex ids * 8 bytes)
        ts0 = 64 + 4 * 8
        first, last = data[ts0:ts0 + 8], data[ts0 + 32:ts0 + 40]
        data[ts0:ts0 + 8], data[ts0 + 32:ts0 + 40] = last, first
        # refresh the checksum so only the ordering is wrong
        import zlib
        crc = zlib.crc32(bytes(data[64:]))
        data[40:44] = struct.pack("<I", crc)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="out-of-order timestamp"):
            load_columnar(path)
        # ...and verify=False trusts the caller
        assert len(load_columnar(path, verify=False)) == 5

    def test_text_file_is_not_binary(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(sample_log(), path)
        with pytest.raises(TraceFormatError, match="bad magic|shorter"):
            load_columnar(path)


class TestSniffAndConvert:
    def test_trace_format_sniffs_magic_not_extension(self, tmp_path):
        binary = tmp_path / "misnamed.txt"
        write_columnar(sample_log(), binary)
        text = tmp_path / "misnamed.rct"
        write_trace(sample_log(), text)
        assert trace_format(binary) == "binary"
        assert trace_format(text) == "text"
        assert binary.read_bytes()[:8] == TRACE_MAGIC

    def test_load_trace_log_handles_both(self, tmp_path):
        t, b = tmp_path / "a.txt", tmp_path / "a.rct"
        write_trace(sample_log(), t)
        write_columnar(sample_log(), b)
        assert load_trace_log(t).identical(sample_log())
        assert load_trace_log(b).identical(sample_log())

    def test_convert_text_to_binary_and_back(self, tmp_path):
        text = tmp_path / "a.txt"
        write_trace(sample_log(), text)
        binary = tmp_path / "a.rct"
        assert convert_trace(text, binary) == 5          # inferred: binary
        assert trace_format(binary) == "binary"
        text2 = tmp_path / "b.txt"
        assert convert_trace(binary, text2) == 5         # inferred: text
        assert load_trace_log(text2).identical(sample_log())

    def test_convert_explicit_format_overrides_extension(self, tmp_path):
        text = tmp_path / "a.txt"
        write_trace(sample_log(), text)
        out = tmp_path / "weird.dat"
        convert_trace(text, out, fmt="binary")
        assert trace_format(out) == "binary"

    def test_convert_rejects_unknown_format(self, tmp_path):
        text = tmp_path / "a.txt"
        write_trace(sample_log(), text)
        with pytest.raises(ValueError, match="unknown trace format"):
            convert_trace(text, tmp_path / "b", fmt="parquet")


class TestNonFiniteBinaryTimestamps:
    def _write_with_ts(self, tmp_path, values):
        """A 2-row trace with hand-patched timestamps + fresh crc."""
        import zlib

        log = ColumnarLog([
            Interaction(0.0, 1, 2, tx_id=0),
            Interaction(1.0, 2, 3, tx_id=1),
        ])
        path = tmp_path / "t.rct"
        write_columnar(log, path)
        data = bytearray(path.read_bytes())
        ts0 = 64 + 3 * 8   # header + 3-entry vertex table
        for i, v in enumerate(values):
            data[ts0 + 8 * i:ts0 + 8 * (i + 1)] = struct.pack("<d", v)
        data[40:44] = struct.pack("<I", zlib.crc32(bytes(data[64:])))
        path.write_bytes(bytes(data))
        return path

    def test_positive_inf_rejected(self, tmp_path):
        """+inf satisfies every ordering <=, so it needs its own guard
        (load_columnar promises finite timestamps under verify)."""
        path = self._write_with_ts(tmp_path, [0.0, float("inf")])
        with pytest.raises(TraceFormatError, match="non-finite timestamp"):
            load_columnar(path)

    def test_negative_inf_rejected(self, tmp_path):
        path = self._write_with_ts(tmp_path, [float("-inf"), 1.0])
        with pytest.raises(TraceFormatError, match="non-finite timestamp"):
            load_columnar(path)

    def test_nan_rejected(self, tmp_path):
        path = self._write_with_ts(tmp_path, [0.0, float("nan")])
        with pytest.raises(TraceFormatError, match="non-finite timestamp"):
            load_columnar(path)


class TestMisnamedCompression:
    def test_gzipped_binary_without_gz_suffix_loads(self, tmp_path):
        """load_columnar sniffs gzip by content, matching trace_format
        and the text reader — extensions never decide decompression."""
        import shutil

        proper = tmp_path / "t.rct.gz"
        write_columnar(sample_log(), proper)
        misnamed = tmp_path / "t.rct"
        shutil.copy(proper, misnamed)
        assert trace_format(misnamed) == "binary"
        assert load_columnar(misnamed).identical(sample_log())
        assert load_trace_log(misnamed).identical(sample_log())

    def test_uncompressed_binary_with_gz_suffix_loads(self, tmp_path):
        import shutil

        proper = tmp_path / "t.rct"
        write_columnar(sample_log(), proper)
        misnamed = tmp_path / "t2.rct.gz"
        shutil.copy(proper, misnamed)
        assert load_columnar(misnamed).identical(sample_log())

    def test_truncated_gzip_is_trace_format_error(self, tmp_path):
        path = tmp_path / "t.rct.gz"
        write_columnar(sample_log(), path)
        path.write_bytes(path.read_bytes()[:20])   # cut the gzip stream
        with pytest.raises(TraceFormatError, match="corrupt gzip|truncated"):
            load_columnar(path)


class TestLoadTraceLogErrors:
    def test_out_of_order_text_trace_is_trace_format_error(self, tmp_path):
        """ColumnarLog's ordering ValueError is translated into the
        trace-error vocabulary the CLIs catch."""
        path = tmp_path / "bad.txt"
        path.write_text("5.0 0 1 A 2 A\n1.0 1 2 A 3 A\n")
        with pytest.raises(TraceFormatError, match="out-of-order"):
            load_trace_log(path)


class TestV3Format:
    """rctrace v3: compressed columns behind the same header contract."""

    def test_round_trip_and_version_sniffing(self, tmp_path):
        from repro.graph.io import TRACE_MAGIC_V3, trace_version

        path = tmp_path / "t3.rct"
        assert write_columnar(sample_log(), path, version=3) == 5
        assert path.read_bytes()[:8] == TRACE_MAGIC_V3
        assert trace_format(path) == "binary"
        assert trace_version(path) == 3
        back = load_columnar(path)
        assert back.identical(sample_log())
        assert not back.is_writable
        assert back.vertex_index(30) == 2     # lazy reverse index

    def test_workload_round_trip_and_compression(self, tiny_workload, tmp_path):
        """The full synthetic history survives v3 bit-identically and
        compresses well below its v2 byte size."""
        log = ColumnarLog(tiny_workload.builder.log)
        v2, v3 = tmp_path / "t2.rct", tmp_path / "t3.rct"
        write_columnar(log, v2, version=2)
        write_columnar(log, v3, version=3)
        assert load_columnar(v3).identical(log)
        ratio = v3.stat().st_size / v2.stat().st_size
        assert ratio <= 0.6, f"v3/v2 ratio {ratio:.3f} misses the 0.6 gate"

    def test_gzip_v3_round_trip(self, tmp_path):
        path = tmp_path / "t3.rct.gz"
        write_columnar(sample_log(), path, version=3)
        with open(path, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"
        assert load_columnar(path).identical(sample_log())
        assert trace_format(path) == "binary"

    def test_convert_v2_to_v3_and_back(self, tmp_path):
        v2, v3, back = tmp_path / "a.rct", tmp_path / "b.rct", tmp_path / "c.rct"
        write_columnar(sample_log(), v2, version=2)
        assert convert_trace(v2, v3, fmt="v3") == 5
        assert convert_trace(v3, back, fmt="v2") == 5
        assert back.read_bytes() == v2.read_bytes()

    def test_out_of_order_v3_rejected_on_verify(self, tmp_path):
        """verify re-checks time ordering after decode, as for v2.
        (from_buffers skips the builder's incremental guard, so an
        unordered log can be written; the loader must still catch it.)"""
        log = sample_log()
        unordered = ColumnarLog.from_buffers(
            timestamps=[5.0, 1.0],
            src=[0, 1], dst=[1, 0], tx=[0, 1],
            src_kind=[0, 0], dst_kind=[0, 0],
            vertex_ids=[10, 20],
        )
        path = tmp_path / "t.rct"
        write_columnar(unordered, path, version=3)
        with pytest.raises(TraceFormatError, match="out-of-order timestamp"):
            load_columnar(path)
        assert len(load_columnar(path, verify=False)) == 2
        del log

    def test_write_rejects_unknown_version(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported rctrace version"):
            write_columnar(sample_log(), tmp_path / "t.rct", version=7)

    def test_chunked_writer_rejects_gz_and_bad_chunk(self, tmp_path):
        from repro.graph.io import ChunkedTraceWriter

        with pytest.raises(ValueError, match="mappable"):
            ChunkedTraceWriter(tmp_path / "t.rct.gz")
        with pytest.raises(ValueError, match="chunk_rows"):
            ChunkedTraceWriter(tmp_path / "t.rct", chunk_rows=0)

    def test_chunked_writer_rejects_out_of_order(self, tmp_path):
        from repro.graph.io import ChunkedTraceWriter

        with ChunkedTraceWriter(tmp_path / "t.rct") as w:
            w.append(Interaction(5.0, 1, 2, tx_id=0))
            with pytest.raises(ValueError, match="out-of-order"):
                w.append(Interaction(1.0, 2, 3, tx_id=1))
            w.abort()

    def test_chunked_writer_abort_leaves_no_file(self, tmp_path):
        from repro.graph.io import ChunkedTraceWriter

        path = tmp_path / "t.rct"
        try:
            with ChunkedTraceWriter(path) as w:
                w.append(Interaction(0.0, 1, 2, tx_id=0))
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []   # spill dir cleaned up


class TestUnknownFormatSniffing:
    def test_unknown_rctrace_magic_is_named_in_the_error(self, tmp_path):
        """A future/bogus RCTRACE version must be rejected with the
        sniffed magic bytes, not a line-1 utf-8 parse failure."""
        path = tmp_path / "t.rct"
        path.write_bytes(b"RCTRACE9" + b"\x00" * 120)
        with pytest.raises(TraceFormatError, match=r"RCTRACE9"):
            load_trace_log(path)

    def test_binary_junk_reports_sniffed_magic(self, tmp_path):
        path = tmp_path / "junk.rct"
        path.write_bytes(b"\x00\x01\x02\x03PK\x05\x06" + b"\xff" * 64)
        with pytest.raises(TraceFormatError, match="sniffed magic bytes"):
            load_trace_log(path)

    def test_explicit_binary_fmt_still_names_bad_magic(self, tmp_path):
        path = tmp_path / "junk.rct"
        path.write_bytes(b"NOTTRACE" + b"\x00" * 120)
        with pytest.raises(TraceFormatError, match="bad magic"):
            load_trace_log(path, fmt="binary")

    def test_plain_text_still_parses_as_text(self, tmp_path):
        path = tmp_path / "t.dat"
        write_trace(sample_log(), path)
        assert load_trace_log(path).identical(sample_log())
