"""Property-based round-trip tests for every trace format.

Mirrors ``tests/graph/test_graph_properties.py``: Hypothesis generates
arbitrary (but contract-respecting: time-ordered, finite-timestamp,
int64-ranged) ``ColumnarLog``s and asserts the on-disk formats are
lossless — text v1 re-parses bit-identically (``repr`` timestamps),
binary v2 mmaps back bit-identically, compressed binary v3 decodes
bit-identically whatever the delta/varint streams look like, and the
chunked spill writer emits the very bytes the in-memory writer does.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import VertexKind
from repro.graph.io import (
    ChunkedTraceWriter,
    load_columnar,
    load_trace_log,
    write_columnar,
    write_trace,
)

_INT64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
_KIND = st.sampled_from(tuple(VertexKind))
_ROW = st.tuples(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),  # dt >= 0
    _INT64,   # src
    _INT64,   # dst
    _KIND,    # src kind
    _KIND,    # dst kind
    _INT64,   # tx id
)


@st.composite
def columnar_logs(draw) -> ColumnarLog:
    """A time-ordered log over arbitrary int64 ids and finite floats."""
    ts = draw(st.floats(min_value=-1e15, max_value=1e15, allow_nan=False))
    rows = draw(st.lists(_ROW, min_size=0, max_size=60))
    interactions = []
    for dt, src, dst, src_kind, dst_kind, tx_id in rows:
        ts = ts + dt   # non-decreasing by construction
        interactions.append(Interaction(
            timestamp=ts, src=src, dst=dst,
            src_kind=src_kind, dst_kind=dst_kind, tx_id=tx_id,
        ))
    return ColumnarLog(interactions)


def _assert_same_log(back: ColumnarLog, log: ColumnarLog) -> None:
    assert back.identical(log)
    assert back.to_interactions() == log.to_interactions()
    # vertex table preserved in first-appearance order...
    assert tuple(back.vertex_ids()) == tuple(log.vertex_ids())
    # ...and the lazily built reverse index agrees with the builder's
    for index, vertex in enumerate(log.vertex_ids()):
        assert back.vertex_index(vertex) == index


@settings(max_examples=60, deadline=None)
@given(columnar_logs())
def test_text_v1_round_trips_bit_identically(log):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "t.txt")
        assert write_trace(log, path) == len(log)
        _assert_same_log(load_trace_log(path), log)


@settings(max_examples=60, deadline=None)
@given(columnar_logs())
def test_binary_v2_round_trips_bit_identically(log):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "t.rct")
        assert write_columnar(log, path, version=2) == len(log)
        back = load_columnar(path)
        assert not back.is_writable
        _assert_same_log(back, log)


@settings(max_examples=60, deadline=None)
@given(columnar_logs(), st.booleans())
def test_binary_v3_round_trips_bit_identically(log, compress):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "t.rct")
        n = write_columnar(log, path, version=3, compress=compress)
        assert n == len(log)
        back = load_columnar(path)
        assert not back.is_writable
        _assert_same_log(back, log)


@settings(max_examples=40, deadline=None)
@given(columnar_logs(), st.sampled_from((2, 3)),
       st.integers(min_value=1, max_value=9))
def test_chunked_writer_matches_in_memory_writer(log, version, chunk_rows):
    """Spilled multi-chunk output is byte-identical to the one-shot
    writer — delta chains must survive chunk boundaries exactly."""
    with tempfile.TemporaryDirectory() as tmp:
        one_shot = os.path.join(tmp, "a.rct")
        chunked = os.path.join(tmp, "b.rct")
        write_columnar(log, one_shot, version=version)
        with ChunkedTraceWriter(
            chunked, version=version, chunk_rows=chunk_rows
        ) as writer:
            assert writer.extend(log) == len(log)
        with open(one_shot, "rb") as a, open(chunked, "rb") as b:
            assert a.read() == b.read()


@settings(max_examples=40, deadline=None)
@given(columnar_logs())
def test_v3_never_larger_than_v2_plus_table(log):
    """The encodings may pad tiny logs (section table, varint worst
    cases) but can never blow up beyond the fixed per-value widths:
    every varint of an int64-ranged value stays within 10 bytes."""
    with tempfile.TemporaryDirectory() as tmp:
        v2 = os.path.join(tmp, "a.rct")
        v3 = os.path.join(tmp, "b.rct")
        write_columnar(log, v2, version=2)
        write_columnar(log, v3, version=3)
        slack = 84 + (len(log) * 4 + log.num_vertices) * 2 + 64
        assert os.path.getsize(v3) <= os.path.getsize(v2) + slack
