"""Unit tests for the weighted directed graph container."""

import pytest

from repro.errors import EdgeNotFoundError, VertexNotFoundError
from repro.graph.digraph import VertexKind, WeightedDiGraph


@pytest.fixture()
def g():
    graph = WeightedDiGraph()
    graph.add_vertex(1, VertexKind.ACCOUNT, weight=0, first_seen=1.0)
    graph.add_vertex(2, VertexKind.CONTRACT, weight=0, first_seen=2.0)
    graph.add_vertex(3, VertexKind.ACCOUNT, weight=0, first_seen=3.0)
    graph.add_edge(1, 2, 3)
    graph.add_edge(2, 3, 1)
    graph.add_edge(3, 1, 2)
    return graph


class TestVertices:
    def test_add_vertex_new(self):
        g = WeightedDiGraph()
        assert g.add_vertex(7) is True
        assert 7 in g
        assert len(g) == 1

    def test_add_vertex_existing_returns_false(self, g):
        assert g.add_vertex(1) is False

    def test_add_existing_does_not_reset_weight(self, g):
        g.add_vertex_weight(1, 5)
        g.add_vertex(1, VertexKind.ACCOUNT, weight=0)
        assert g.vertex_weight(1) == 5

    def test_kind_upgrade_to_contract(self, g):
        g.add_vertex(1, VertexKind.CONTRACT)
        assert g.vertex_kind(1) is VertexKind.CONTRACT

    def test_kind_never_downgrades(self, g):
        g.add_vertex(2, VertexKind.ACCOUNT)
        assert g.vertex_kind(2) is VertexKind.CONTRACT

    def test_first_seen_preserved(self, g):
        g.add_vertex(1, first_seen=99.0)
        assert g.first_seen(1) == 1.0

    def test_vertex_weight_accumulates(self, g):
        g.add_vertex_weight(1, 2)
        g.add_vertex_weight(1, 3)
        assert g.vertex_weight(1) == 5

    def test_vertex_weight_unknown_raises(self, g):
        with pytest.raises(VertexNotFoundError):
            g.add_vertex_weight(99)

    def test_count_kind(self, g):
        assert g.count_kind(VertexKind.ACCOUNT) == 2
        assert g.count_kind(VertexKind.CONTRACT) == 1

    def test_remove_vertex(self, g):
        g.remove_vertex(2)
        assert 2 not in g
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1  # only 3 -> 1 remains

    def test_remove_vertex_updates_total_weight(self, g):
        before = g.total_edge_weight
        g.remove_vertex(2)
        assert g.total_edge_weight == before - 4  # edges 1->2 (3) and 2->3 (1)

    def test_remove_unknown_vertex_raises(self, g):
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(42)

    def test_remove_vertex_with_self_loop(self):
        g = WeightedDiGraph()
        g.add_vertex(1)
        g.add_edge(1, 1, 5)
        g.remove_vertex(1)
        assert len(g) == 0
        assert g.total_edge_weight == 0


class TestEdges:
    def test_edge_weight_accumulates(self, g):
        g.add_edge(1, 2, 2)
        assert g.edge_weight(1, 2) == 5

    def test_edges_are_directed(self, g):
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_edge_to_missing_vertex_raises(self, g):
        with pytest.raises(VertexNotFoundError):
            g.add_edge(1, 42)
        with pytest.raises(VertexNotFoundError):
            g.add_edge(42, 1)

    def test_edge_weight_missing_raises(self, g):
        with pytest.raises(EdgeNotFoundError):
            g.edge_weight(2, 1)

    def test_num_edges_counts_distinct(self, g):
        g.add_edge(1, 2)  # existing edge: weight up, count same
        assert g.num_edges == 3

    def test_total_edge_weight(self, g):
        assert g.total_edge_weight == 6

    def test_edges_iteration(self, g):
        edges = set(g.edges())
        assert edges == {(1, 2, 3), (2, 3, 1), (3, 1, 2)}

    def test_successors_predecessors(self, g):
        assert g.successors(1) == {2: 3}
        assert g.predecessors(1) == {3: 2}

    def test_neighbors_undirected(self, g):
        assert set(g.neighbors(1)) == {2, 3}

    def test_neighbor_weights_merges_directions(self):
        g = WeightedDiGraph()
        g.add_vertex(1)
        g.add_vertex(2)
        g.add_edge(1, 2, 3)
        g.add_edge(2, 1, 4)
        assert g.neighbor_weights(1) == {2: 7}

    def test_self_loop_allowed(self):
        g = WeightedDiGraph()
        g.add_vertex(1)
        g.add_edge(1, 1, 2)
        assert g.edge_weight(1, 1) == 2
        assert g.num_edges == 1

    def test_degrees(self, g):
        assert g.out_degree(1) == 1
        assert g.in_degree(1) == 1
        assert g.degree(1) == 2


class TestDerivedGraphs:
    def test_subgraph_preserves_weights(self, g):
        sub = g.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.edge_weight(1, 2) == 3
        assert not sub.has_edge(2, 3)

    def test_subgraph_unknown_vertex_raises(self, g):
        with pytest.raises(VertexNotFoundError):
            g.subgraph([1, 42])

    def test_ego_subgraph_radius_one(self):
        g = WeightedDiGraph()
        for v in range(5):
            g.add_vertex(v)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        ego = g.ego_subgraph(2, radius=1)
        assert set(ego.vertices()) == {1, 2, 3}

    def test_ego_subgraph_radius_two(self):
        g = WeightedDiGraph()
        for v in range(5):
            g.add_vertex(v)
        for v in range(4):
            g.add_edge(v, v + 1)
        ego = g.ego_subgraph(2, radius=2)
        assert set(ego.vertices()) == {0, 1, 2, 3, 4}

    def test_copy_is_independent(self, g):
        clone = g.copy()
        clone.add_edge(1, 2, 10)
        assert g.edge_weight(1, 2) == 3
        assert clone.edge_weight(1, 2) == 13

    def test_top_vertices_by_weight(self, g):
        g.add_vertex_weight(3, 10)
        g.add_vertex_weight(1, 5)
        top = g.top_vertices_by_weight(2)
        assert top == ((3, 10), (1, 5))

    def test_top_vertices_by_degree(self, g):
        top = g.top_vertices_by_degree(1)
        assert top[0][1] == 2  # every vertex has degree 2 in the triangle
