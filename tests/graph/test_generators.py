"""Unit tests for synthetic test-graph generators."""

import random

import pytest

from repro.graph import generators as gen


class TestRingPath:
    def test_ring_structure(self):
        g = gen.ring_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 5
        assert g.has_edge(4, 0)

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            gen.ring_graph(2)

    def test_path_structure(self):
        g = gen.path_graph(4)
        assert g.num_edges == 3
        assert not g.has_edge(3, 0)


class TestGridClique:
    def test_grid_edge_count(self):
        g = gen.grid_graph(3, 4)
        # horizontal: 3*3, vertical: 2*4
        assert g.num_edges == 9 + 8

    def test_grid_corner_degree(self):
        g = gen.grid_graph(3, 3)
        assert g.degree(0) == 2

    def test_clique_edge_count(self):
        g = gen.clique_graph(6)
        assert g.num_edges == 15

    def test_disjoint_cliques_disconnected(self):
        g = gen.disjoint_cliques(3, 4, bridge_weight=0)
        assert g.num_edges == 3 * 6

    def test_disjoint_cliques_bridged(self):
        g = gen.disjoint_cliques(3, 4, bridge_weight=2)
        assert g.num_edges == 3 * 6 + 3
        assert g.edge_weight(0, 4) == 2


class TestRandomGraphs:
    def test_random_graph_determinism(self):
        g1 = gen.random_graph(30, 0.2, random.Random(5))
        g2 = gen.random_graph(30, 0.2, random.Random(5))
        assert set(g1.edges()) == set(g2.edges())

    def test_random_graph_p_bounds(self):
        with pytest.raises(ValueError):
            gen.random_graph(10, 1.5, random.Random(0))

    def test_random_graph_extreme_p(self):
        empty = gen.random_graph(10, 0.0, random.Random(0))
        full = gen.random_graph(10, 1.0, random.Random(0))
        assert empty.num_edges == 0
        assert full.num_edges == 45

    def test_powerlaw_vertex_count(self):
        g = gen.powerlaw_graph(100, 2, random.Random(1))
        assert g.num_vertices == 100

    def test_powerlaw_has_hubs(self):
        g = gen.powerlaw_graph(300, 2, random.Random(1))
        top = g.top_vertices_by_degree(1)[0][1]
        degrees = sorted((g.degree(v) for v in g.vertices()))
        median = degrees[len(degrees) // 2]
        assert top > 4 * median  # heavy tail

    def test_powerlaw_min_edges(self):
        g = gen.powerlaw_graph(50, 3, random.Random(2))
        for v in range(3, 50):
            assert g.out_degree(v) >= 1


class TestCommunities:
    def test_planted_assignment_shape(self):
        pa = gen.planted_assignment(3, 4)
        assert len(pa) == 12
        assert pa[0] == 0 and pa[11] == 2

    def test_weighted_communities_intra_heavier(self):
        g = gen.weighted_communities(2, 5, intra_weight=10, inter_weight=1,
                                     rng=random.Random(3))
        assert g.edge_weight(0, 1) == 10

    def test_weighted_communities_has_bridges(self):
        g = gen.weighted_communities(3, 5, 10, 1, random.Random(3),
                                     inter_edges_per_pair=2)
        und = gen.as_undirected(g)
        pa = gen.planted_assignment(3, 5)
        bridges = sum(1 for u, v, _ in und.edges() if pa[u] != pa[v])
        assert bridges >= 3
