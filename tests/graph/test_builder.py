"""Unit tests for the interaction-stream graph builder."""

import pytest

from repro.graph.builder import (
    GraphBuilder,
    Interaction,
    build_graph,
    group_by_transaction,
)
from repro.graph.digraph import VertexKind


def mk(ts, src, dst, tx=0, src_kind=VertexKind.ACCOUNT, dst_kind=VertexKind.ACCOUNT):
    return Interaction(
        timestamp=ts, src=src, dst=dst, tx_id=tx, src_kind=src_kind, dst_kind=dst_kind
    )


class TestBuilder:
    def test_add_creates_vertices_and_edge(self):
        b = GraphBuilder()
        b.add(mk(1.0, 1, 2))
        assert 1 in b.graph and 2 in b.graph
        assert b.graph.edge_weight(1, 2) == 1

    def test_edge_weight_is_interaction_count(self):
        b = GraphBuilder()
        for i in range(3):
            b.add(mk(float(i), 1, 2))
        assert b.graph.edge_weight(1, 2) == 3

    def test_vertex_weight_counts_participation(self):
        b = GraphBuilder()
        b.add(mk(1.0, 1, 2))
        b.add(mk(2.0, 1, 3))
        assert b.graph.vertex_weight(1) == 2
        assert b.graph.vertex_weight(2) == 1

    def test_self_interaction_counts_weight_once(self):
        b = GraphBuilder()
        b.add(mk(1.0, 5, 5))
        assert b.graph.vertex_weight(5) == 1

    def test_out_of_order_rejected(self):
        b = GraphBuilder()
        b.add(mk(5.0, 1, 2))
        with pytest.raises(ValueError, match="out-of-order"):
            b.add(mk(4.0, 2, 3))

    def test_equal_timestamps_allowed(self):
        b = GraphBuilder()
        b.add(mk(5.0, 1, 2))
        b.add(mk(5.0, 2, 3))
        assert b.num_interactions == 2

    def test_kinds_recorded(self):
        b = GraphBuilder()
        b.add(mk(1.0, 1, 2, dst_kind=VertexKind.CONTRACT))
        assert b.graph.vertex_kind(2) is VertexKind.CONTRACT

    def test_first_seen_is_first_interaction_time(self):
        b = GraphBuilder()
        b.add(mk(1.0, 1, 2))
        b.add(mk(9.0, 2, 1))
        assert b.graph.first_seen(1) == 1.0
        assert b.graph.first_seen(2) == 1.0

    def test_add_many_returns_count(self):
        b = GraphBuilder()
        n = b.add_many(mk(float(i), i, i + 1) for i in range(5))
        assert n == 5
        assert b.num_interactions == 5

    def test_last_timestamp(self):
        b = GraphBuilder()
        assert b.last_timestamp == float("-inf")
        b.add(mk(3.0, 1, 2))
        assert b.last_timestamp == 3.0


class TestWindows:
    @pytest.fixture()
    def builder(self):
        b = GraphBuilder()
        for i in range(10):
            b.add(mk(float(i), i, i + 1, tx=i))
        return b

    def test_interactions_between_half_open(self, builder):
        got = list(builder.interactions_between(2.0, 5.0))
        assert [it.timestamp for it in got] == [2.0, 3.0, 4.0]

    def test_interactions_between_empty(self, builder):
        assert list(builder.interactions_between(100.0, 200.0)) == []

    def test_window_graph_only_window_edges(self, builder):
        g = builder.window_graph(2.0, 4.0)
        assert g.num_edges == 2
        assert set(g.vertices()) == {2, 3, 4}

    def test_graph_as_of(self, builder):
        g = builder.graph_as_of(3.0)
        assert g.num_edges == 3

    def test_window_graph_weights_restart(self, builder):
        # cumulative weight of vertex 5 is 2 (as src and dst); in the
        # window [5, 6) it participates once as src and not as dst
        g = builder.window_graph(5.0, 6.0)
        assert g.vertex_weight(5) == 1


class TestGrouping:
    def test_group_by_transaction_contiguous(self):
        stream = [mk(1.0, 1, 2, tx=7), mk(1.0, 2, 3, tx=7), mk(2.0, 4, 5, tx=8)]
        groups = list(group_by_transaction(stream))
        assert [g[0] for g in groups] == [7, 8]
        assert len(groups[0][1]) == 2
        assert len(groups[1][1]) == 1

    def test_group_by_transaction_empty(self):
        assert list(group_by_transaction([])) == []

    def test_group_single(self):
        groups = list(group_by_transaction([mk(1.0, 1, 2, tx=3)]))
        assert groups == [(3, [mk(1.0, 1, 2, tx=3)])]


def test_build_graph_standalone():
    g = build_graph([mk(1.0, 1, 2), mk(2.0, 2, 3), mk(3.0, 1, 2)])
    assert g.num_vertices == 3
    assert g.edge_weight(1, 2) == 2
