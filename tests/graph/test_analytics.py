"""Tests for graph/trace analytics."""

import math

import pytest

from repro.graph.analytics import (
    compute_window_stats,
    render_window_stats,
    DegreeStats,
    compute_trace_stats,
    degree_distribution,
    powerlaw_tail_exponent,
    render_trace_stats,
)
from repro.graph.builder import Interaction, build_graph


class TestDegreeStats:
    def test_uniform_distribution(self):
        stats = DegreeStats.from_values([5] * 100)
        assert stats.gini == pytest.approx(0.0, abs=1e-9)
        assert stats.median == 5
        assert stats.mean == 5

    def test_concentrated_distribution(self):
        stats = DegreeStats.from_values([0] * 99 + [100])
        assert stats.gini > 0.9
        assert stats.top1pct_share == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DegreeStats.from_values([])

    def test_percentiles(self):
        stats = DegreeStats.from_values(list(range(1, 101)))
        assert stats.minimum == 1
        assert stats.maximum == 100
        assert stats.p99 == pytest.approx(99, abs=1)

    def test_gini_monotone_in_skew(self):
        even = DegreeStats.from_values([10, 10, 10, 10])
        skewed = DegreeStats.from_values([1, 1, 1, 37])
        assert skewed.gini > even.gini


class TestPowerlawExponent:
    def test_known_exponent_recovered(self):
        import random

        rng = random.Random(7)
        # sample from a discrete power law with alpha ~ 2.5 via inverse CDF
        alpha = 2.5
        samples = [
            max(2, int(2 * (1 - rng.random()) ** (-1 / (alpha - 1))))
            for _ in range(20000)
        ]
        est = powerlaw_tail_exponent(samples, xmin=2)
        assert 2.2 < est < 2.8

    def test_insufficient_tail_nan(self):
        assert math.isnan(powerlaw_tail_exponent([1, 1, 1], xmin=2))


class TestTraceStats:
    def make_log(self):
        return [
            Interaction(0.0, 1, 2, tx_id=0),
            Interaction(1.0, 1, 2, tx_id=1),
            Interaction(1.0, 2, 3, tx_id=1),
            Interaction(86400.0, 3, 3, tx_id=2),
        ]

    def test_counts(self):
        log = self.make_log()
        stats = compute_trace_stats(build_graph(log), log)
        assert stats.interactions == 4
        assert stats.transactions == 3
        assert stats.vertices == 3
        assert stats.self_loop_ratio == pytest.approx(0.25)
        assert stats.span_days == pytest.approx(1.0)

    def test_render(self):
        log = self.make_log()
        out = render_trace_stats(compute_trace_stats(build_graph(log), log))
        assert "interactions" in out
        assert "calls/tx" in out

    def test_workload_is_heavy_tailed(self, small_workload):
        stats = compute_trace_stats(
            small_workload.graph, small_workload.builder.log
        )
        assert stats.degree.gini > 0.3
        assert stats.degree.top1pct_share > 0.10
        assert stats.calls_per_tx.maximum >= 3
        exponent = powerlaw_tail_exponent(
            degree_distribution(small_workload.graph)
        )
        assert 1.5 < exponent < 4.0  # plausible power-law band


class TestWindowStats:
    def make_columnar(self):
        from repro.graph.columnar import ColumnarLog

        return ColumnarLog([
            Interaction(0.0, 1, 2, tx_id=0),
            Interaction(10.0, 2, 3, tx_id=1),
            Interaction(95.0, 1, 4, tx_id=2),
            Interaction(205.0, 5, 1, tx_id=3),
        ])

    def test_counts_and_vertex_growth(self):
        windows = compute_window_stats(self.make_columnar(), 100.0)
        assert [w.interactions for w in windows] == [3, 0, 1]
        assert [w.distinct_vertices for w in windows] == [4, 4, 5]
        assert [w.new_vertices for w in windows] == [4, 0, 1]
        assert [w.start_ts for w in windows] == [0.0, 100.0, 200.0]

    def test_empty_log(self):
        from repro.graph.columnar import ColumnarLog

        assert compute_window_stats(ColumnarLog(), 100.0) == []

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            compute_window_stats(self.make_columnar(), 0.0)

    def test_render_elides_empty_runs(self):
        windows = compute_window_stats(self.make_columnar(), 10.0)
        out = render_window_stats(windows, 10.0)
        assert "empty window(s) elided" in out
        assert "per-window activity" in out

    def test_identical_on_v2_and_v3_sourced_columns(self, tmp_path):
        """The windowed scan runs on the ``max_index`` batch kernel;
        its output must not depend on which on-disk trace version the
        columns were loaded from, nor on the kernel backend."""
        from repro import kernels
        from repro.graph.io import load_columnar, write_columnar

        log = self.make_columnar()
        v2, v3 = tmp_path / "t2.rct", tmp_path / "t3.rct"
        write_columnar(log, v2, version=2)
        write_columnar(log, v3, version=3)
        expected = compute_window_stats(log, 100.0)
        for backend in kernels.available_backends():
            with kernels.using_backend(backend):
                assert compute_window_stats(load_columnar(v2), 100.0) == expected
                assert compute_window_stats(load_columnar(v3), 100.0) == expected


class TestWindowStatsGuards:
    def test_sub_resolution_window_rejected_not_hung(self):
        """A window below float resolution at the log's timestamp
        magnitude must raise, not spin forever."""
        from repro.graph.columnar import ColumnarLog

        log = ColumnarLog([
            Interaction(1e9, 1, 2, tx_id=0),
            Interaction(1e9 + 1.0, 2, 3, tx_id=1),
        ])
        with pytest.raises(ValueError, match="too small to advance"):
            compute_window_stats(log, 1e-13)

    def test_non_finite_span_rejected(self):
        from repro.graph.columnar import ColumnarLog

        log = ColumnarLog([
            Interaction(0.0, 1, 2, tx_id=0),
            Interaction(float("inf"), 2, 3, tx_id=1),
        ])
        with pytest.raises(ValueError, match="must be finite"):
            compute_window_stats(log, 100.0)


class TestWindowStatsEdgeCases:
    """The satellite grid: empty, single-row, window > span, and
    v3-trace-backed mmap columns must all resolve identically."""

    def test_empty_log_yields_no_windows(self):
        from repro.graph.columnar import ColumnarLog

        assert compute_window_stats(ColumnarLog(), 3600.0) == []

    def test_single_row_log_is_one_window(self):
        from repro.graph.columnar import ColumnarLog

        log = ColumnarLog([Interaction(12.5, 7, 9, tx_id=0)])
        windows = compute_window_stats(log, 3600.0)
        assert len(windows) == 1
        (w,) = windows
        assert w.start_ts == 12.5
        assert w.interactions == 1
        assert w.distinct_vertices == 2
        assert w.new_vertices == 2

    def test_window_larger_than_whole_span(self):
        from repro.graph.columnar import ColumnarLog

        log = ColumnarLog([
            Interaction(0.0, 1, 2, tx_id=0),
            Interaction(50.0, 2, 3, tx_id=1),
            Interaction(99.0, 3, 1, tx_id=2),
        ])
        windows = compute_window_stats(log, 1e6)
        assert len(windows) == 1
        assert windows[0].interactions == 3
        assert windows[0].distinct_vertices == 3

    def test_v3_mmap_columns_match_builder_columns(self, tmp_path):
        """Stats over a v3-sourced (decoded/mmap-backed) log are
        identical to stats over the builder-path log."""
        from repro.graph.columnar import ColumnarLog
        from repro.graph.io import load_columnar, write_columnar

        log = ColumnarLog([
            Interaction(float(i) * 10.0, i % 5, (i * 3) % 7, tx_id=i)
            for i in range(40)
        ])
        path = tmp_path / "t.rct"
        write_columnar(log, path, version=3)
        loaded = load_columnar(path)
        assert not loaded.is_writable
        assert (compute_window_stats(loaded, 60.0)
                == compute_window_stats(log, 60.0))
        # the same trace downgraded to v2 exercises the raw-mmap casts
        v2 = tmp_path / "t2.rct"
        write_columnar(log, v2, version=2)
        assert (compute_window_stats(load_columnar(v2), 60.0)
                == compute_window_stats(log, 60.0))
