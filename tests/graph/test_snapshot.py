"""Unit tests for time-window indexing."""

import pytest

from repro.graph.builder import GraphBuilder, Interaction
from repro.graph.snapshot import (
    DAY,
    HOUR,
    METRIC_WINDOW,
    REPARTITION_PERIOD,
    WEEK,
    Window,
    WindowIndex,
    iter_windows,
)


def test_canonical_constants():
    assert METRIC_WINDOW == 4 * HOUR
    assert REPARTITION_PERIOD == 2 * WEEK
    assert WEEK == 7 * DAY


class TestWindow:
    def test_contains_half_open(self):
        w = Window(0.0, 10.0)
        assert w.contains(0.0)
        assert w.contains(9.999)
        assert not w.contains(10.0)

    def test_duration_midpoint(self):
        w = Window(10.0, 30.0)
        assert w.duration == 20.0
        assert w.midpoint == 20.0


class TestIterWindows:
    def test_exact_coverage(self):
        ws = list(iter_windows(0.0, 10.0, 2.5))
        assert len(ws) == 4
        assert ws[0] == Window(0.0, 2.5)
        assert ws[-1] == Window(7.5, 10.0)

    def test_final_window_truncated(self):
        ws = list(iter_windows(0.0, 7.0, 3.0))
        assert ws[-1] == Window(6.0, 7.0)

    def test_no_gap_no_overlap(self):
        ws = list(iter_windows(0.0, 100.0, 7.0))
        for a, b in zip(ws, ws[1:]):
            assert a.end == b.start

    def test_bad_width_raises(self):
        with pytest.raises(ValueError):
            list(iter_windows(0.0, 1.0, 0.0))


class TestWindowIndex:
    @pytest.fixture()
    def index(self):
        b = GraphBuilder()
        for i in range(20):
            b.add(Interaction(timestamp=float(i), src=i, dst=i + 1, tx_id=i))
        return WindowIndex(b)

    def test_span(self, index):
        span = index.span
        assert span.start == 0.0
        assert span.end > 19.0

    def test_span_empty(self):
        idx = WindowIndex(GraphBuilder())
        assert idx.span == Window(0.0, 0.0)

    def test_windows_cover_span(self, index):
        ws = index.windows(5.0)
        assert ws[0].start == 0.0
        assert ws[-1].end >= 19.0

    def test_graph_in_window(self, index):
        w = Window(5.0, 10.0)
        g = index.graph_in(w)
        assert g.num_edges == 5

    def test_cumulative_graph_until(self, index):
        g = index.cumulative_graph_until(10.0)
        assert g.num_edges == 10

    def test_per_window_counts_sum_to_total(self, index):
        counts = index.per_window_counts(6.0)
        assert sum(c for _, c in counts) == 20
