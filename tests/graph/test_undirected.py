"""Unit tests for the undirected collapse."""

import pytest

from repro.errors import VertexNotFoundError
from repro.graph.digraph import WeightedDiGraph
from repro.graph.undirected import collapse_to_undirected


def make_digraph():
    g = WeightedDiGraph()
    for v in (1, 2, 3):
        g.add_vertex(v)
    g.add_vertex_weight(1, 4)
    g.add_edge(1, 2, 3)
    g.add_edge(2, 1, 2)   # reverse edge: must merge
    g.add_edge(2, 3, 1)
    g.add_edge(3, 3, 9)   # self loop: must vanish
    return g


class TestCollapse:
    def test_bidirectional_edges_merge(self):
        und = collapse_to_undirected(make_digraph())
        assert und.adjacency(1)[2] == 5
        assert und.adjacency(2)[1] == 5

    def test_self_loops_dropped(self):
        und = collapse_to_undirected(make_digraph())
        assert 3 not in und.adjacency(3)

    def test_num_edges(self):
        und = collapse_to_undirected(make_digraph())
        assert und.num_edges == 2

    def test_total_edge_weight_counts_each_edge_once(self):
        und = collapse_to_undirected(make_digraph())
        assert und.total_edge_weight == 6  # 5 + 1

    def test_vertex_weight_floor(self):
        und = collapse_to_undirected(make_digraph())
        assert und.vertex_weight(1) == 4
        assert und.vertex_weight(2) == 1  # floored to min 1

    def test_unit_vertex_weights(self):
        und = collapse_to_undirected(make_digraph(), unit_vertex_weights=True)
        assert und.vertex_weight(1) == 1
        assert und.total_vertex_weight == 3

    def test_edges_yielded_once_ordered(self):
        und = collapse_to_undirected(make_digraph())
        edges = list(und.edges())
        assert sorted(edges) == [(1, 2, 5), (2, 3, 1)]
        assert all(u < v for u, v, _ in edges)

    def test_degrees(self):
        und = collapse_to_undirected(make_digraph())
        assert und.degree(2) == 2
        assert und.weighted_degree(2) == 6

    def test_unknown_vertex_raises(self):
        und = collapse_to_undirected(make_digraph())
        with pytest.raises(VertexNotFoundError):
            und.adjacency(42)
        with pytest.raises(VertexNotFoundError):
            und.vertex_weight(42)

    def test_empty_graph(self):
        und = collapse_to_undirected(WeightedDiGraph())
        assert und.num_vertices == 0
        assert und.num_edges == 0

    def test_isolated_vertex_kept(self):
        g = WeightedDiGraph()
        g.add_vertex(9)
        und = collapse_to_undirected(g)
        assert 9 in und
        assert und.degree(9) == 0
