"""Tests for the state-migration execution mode (paper solution class b)."""

import pytest

from repro.ethereum.state import WorldState
from repro.graph.builder import Interaction
from repro.sharding.coordinator import ShardedExecution, ShardedExecutionConfig


MIGRATE_CFG = ShardedExecutionConfig(
    service_time=1.0, prepare_time=1.0, commit_time=0.5, network_rtt=2.0,
    mode="migrate", migration_time_fixed=3.0,
)


def tx_stream(groups):
    """groups: list of endpoint tuples, one transaction each."""
    out = []
    for i, endpoints in enumerate(groups):
        for j in range(len(endpoints) - 1):
            out.append(Interaction(
                timestamp=float(i), src=endpoints[j], dst=endpoints[j + 1], tx_id=i
            ))
    return out


class TestMigrateMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            ShardedExecution(2, {}, ShardedExecutionConfig(mode="teleport"))

    def test_single_shard_tx_unaffected(self):
        ex = ShardedExecution(2, {1: 0, 2: 0}, MIGRATE_CFG)
        ex.submit_endpoints(0, (1, 2))
        ex.sim.run()
        assert ex.completed == 1
        assert ex.migrations == 0
        assert ex.latencies == [1.0]

    def test_minority_vertex_moves_to_majority(self):
        ex = ShardedExecution(2, {1: 0, 2: 0, 3: 1}, MIGRATE_CFG)
        ex.submit_endpoints(0, (1, 2, 3))
        ex.sim.run()
        assert ex.migrations == 1
        assert ex.assignment[3] == 0  # sticky move

    def test_migration_latency(self):
        ex = ShardedExecution(2, {1: 0, 2: 1}, MIGRATE_CFG)
        ex.submit_endpoints(0, (1, 2))
        ex.sim.run()
        # tie between shards -> target 0; vertex 2 moves: 3s at source
        # and 3s at target (parallel) then 1s local execution
        assert ex.latencies == [pytest.approx(4.0)]

    def test_second_tx_benefits_from_move(self):
        ex = ShardedExecution(2, {1: 0, 2: 1}, MIGRATE_CFG)
        ex.submit_endpoints(0, (1, 2))
        ex.sim.run()
        ex.submit_endpoints(1, (1, 2))
        ex.sim.run()
        assert ex.single_shard == 1  # the repeat pair is now co-located
        assert ex.multi_shard == 1

    def test_ping_pong_costs_repeatedly(self):
        # vertex 2 is pulled between shard-0 and shard-1 majorities
        ex = ShardedExecution(2, {1: 0, 2: 1, 3: 1, 4: 1}, MIGRATE_CFG)
        ex.submit_endpoints(0, (1, 1, 2))  # tie 0 vs 1 -> target 0, 2 moves
        ex.sim.run()
        assert ex.assignment[2] == 0
        ex.submit_endpoints(1, (2, 3, 4))  # majority on 1 -> 2 moves back
        ex.sim.run()
        assert ex.assignment[2] == 1
        assert ex.migrations == 2

    def test_state_sized_migration(self):
        state = WorldState()
        eoa = state.create_eoa()
        fat = state.create_contract((0,), initial_storage={i: 1 for i in range(50)})
        other = state.create_eoa()
        state.discard_journal()
        cfg = ShardedExecutionConfig(
            service_time=1.0, mode="migrate", migration_bandwidth=1000.0
        )
        # two endpoints on shard 0, fat contract on shard 1 -> fat moves
        ex = ShardedExecution(
            2, {eoa.address: 0, other.address: 0, fat.address: 1}, cfg, state=state
        )
        ex.submit_endpoints(0, (eoa.address, other.address, fat.address))
        ex.sim.run()
        assert ex.migration_bytes == fat.state_bytes()
        # transfer time dominates: bytes/bandwidth on each side
        expected = fat.state_bytes() / 1000.0 + 1.0
        assert ex.latencies[0] == pytest.approx(expected)

    def test_original_assignment_not_mutated(self):
        original = {1: 0, 2: 1}
        ex = ShardedExecution(2, original, MIGRATE_CFG)
        ex.submit_endpoints(0, (1, 2))
        ex.sim.run()
        assert original == {1: 0, 2: 1}

    def test_replay_in_migrate_mode(self):
        stream = tx_stream([(1, 2), (1, 2), (3, 3), (1, 2)])
        ex = ShardedExecution(2, {1: 0, 2: 1, 3: 1}, MIGRATE_CFG)
        report = ex.replay(stream, arrival_rate=0.01)  # serial arrivals
        assert report.completed == 4
        assert report.migrations == 1          # only the first (1,2) moves
        assert report.multi_shard == 1
        assert report.single_shard == 3

    def test_report_carries_migration_stats(self):
        ex = ShardedExecution(2, {1: 0, 2: 1}, MIGRATE_CFG)
        ex.submit_endpoints(0, (1, 2))
        ex.sim.run()
        rep = ex.report()
        assert rep.migrations == 1
