"""List-vs-columnar driver equivalence and execution determinism.

The batched columnar driver (`replay_columnar`) must be a bit-identical
mirror of the closure-based list path — same event order, same float
arithmetic order — so these tests compare full ``ThroughputReport``
values with ``==``, never ``approx``.
"""

import random

import pytest

from repro.errors import UnassignedVertexError
from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.sharding.coordinator import ShardedExecution, ShardedExecutionConfig


CFG_2PC = ShardedExecutionConfig(
    service_time=0.01, prepare_time=0.008, commit_time=0.004, network_rtt=0.05
)
CFG_MIGRATE = ShardedExecutionConfig(
    service_time=0.01, mode="migrate", migration_time_fixed=0.03
)

RAW_BASE = 1000  # raw vertex ids offset so raw id != dense index


def make_stream(n_tx=300, n_vertices=40, seed=7):
    """Deterministic multi-row transaction stream with raw vertex ids."""
    rng = random.Random(seed)
    out = []
    ts = 0.0
    for i in range(n_tx):
        ts += rng.random() * 0.05
        for _ in range(rng.randint(1, 4)):
            out.append(Interaction(
                timestamp=ts,
                src=RAW_BASE + rng.randrange(n_vertices),
                dst=RAW_BASE + rng.randrange(n_vertices),
                tx_id=i,
            ))
    return out


def full_assignment(k, n_vertices=40):
    return {RAW_BASE + v: v % k for v in range(n_vertices)}


STREAM = make_stream()
LOG = ColumnarLog.from_interactions(STREAM)


class TestDriverEquivalence:
    @pytest.mark.parametrize("cfg", [CFG_2PC, CFG_MIGRATE], ids=["2pc", "migrate"])
    @pytest.mark.parametrize("k", [2, 4])
    def test_rate_mode_bit_identical(self, cfg, k):
        asg = full_assignment(k)
        boxed = ShardedExecution(k, asg, cfg).replay(STREAM, arrival_rate=120.0)
        cols = ShardedExecution(k, asg, cfg).replay_columnar(
            LOG, arrival_rate=120.0
        )
        assert boxed == cols

    @pytest.mark.parametrize("cfg", [CFG_2PC, CFG_MIGRATE], ids=["2pc", "migrate"])
    def test_time_scale_mode_bit_identical(self, cfg):
        asg = full_assignment(2)
        boxed = ShardedExecution(2, asg, cfg).replay(STREAM, time_scale=0.5)
        cols = ShardedExecution(2, asg, cfg).replay_columnar(LOG, time_scale=0.5)
        assert boxed == cols

    def test_default_arrival_rate_matches(self):
        asg = full_assignment(3)
        boxed = ShardedExecution(3, asg, CFG_2PC).replay(STREAM)
        cols = ShardedExecution(3, asg, CFG_2PC).replay_columnar(LOG)
        assert boxed == cols

    @pytest.mark.parametrize("lo,hi", [(0, len(STREAM)), (10, 137), (57, 58), (5, 5)])
    def test_row_slices_match_boxed_slices(self, lo, hi):
        asg = full_assignment(2)
        rows = LOG.to_interactions()[lo:hi]
        boxed = ShardedExecution(2, asg, CFG_2PC).replay(rows, arrival_rate=150.0)
        cols = ShardedExecution(2, asg, CFG_2PC).replay_columnar(
            LOG, lo, hi, arrival_rate=150.0
        )
        assert boxed == cols

    def test_migrate_live_assignment_matches(self):
        asg = full_assignment(2)
        ex_boxed = ShardedExecution(2, asg, CFG_MIGRATE)
        ex_cols = ShardedExecution(2, asg, CFG_MIGRATE)
        ex_boxed.replay(STREAM, arrival_rate=120.0)
        ex_cols.replay_columnar(LOG, arrival_rate=120.0)
        assert ex_boxed.assignment == ex_cols.assignment
        assert asg == full_assignment(2)  # the input mapping stays untouched

    def test_empty_log(self):
        boxed = ShardedExecution(2, {}, CFG_2PC, strict=False).replay([])
        cols = ShardedExecution(2, {}, CFG_2PC).replay_columnar(
            ColumnarLog(), strict=False
        )
        assert boxed == cols
        assert cols.completed == 0
        assert cols.throughput == 0.0


class TestRepeatRunDeterminism:
    @pytest.mark.parametrize("cfg", [CFG_2PC, CFG_MIGRATE], ids=["2pc", "migrate"])
    def test_boxed_repeat_runs_bit_identical(self, cfg):
        asg = full_assignment(3)
        runs = [
            ShardedExecution(3, asg, cfg).replay(STREAM, arrival_rate=200.0)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("cfg", [CFG_2PC, CFG_MIGRATE], ids=["2pc", "migrate"])
    def test_columnar_repeat_runs_bit_identical(self, cfg):
        asg = full_assignment(3)
        runs = [
            ShardedExecution(3, asg, cfg).replay_columnar(LOG, arrival_rate=200.0)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestWarmupEdges:
    def _cfg(self, fraction):
        return ShardedExecutionConfig(
            service_time=0.01, warmup_fraction=fraction
        )

    def test_all_samples_skipped(self):
        asg = full_assignment(2)
        rep = ShardedExecution(2, asg, self._cfg(1.0)).replay_columnar(
            LOG, arrival_rate=100.0
        )
        assert rep.completed > 0
        assert rep.latency.count == 0
        assert rep.latency.mean == 0.0

    def test_zero_samples_with_warmup(self):
        rep = ShardedExecution(2, {}, self._cfg(0.5)).replay_columnar(
            ColumnarLog(), strict=False
        )
        assert rep.latency.count == 0

    def test_rounding_truncates_toward_zero(self):
        # 3 completions at warmup 0.5 -> int(1.5) == 1 skipped, 2 kept
        stream = make_stream(n_tx=3, n_vertices=4, seed=11)
        log = ColumnarLog.from_interactions(stream)
        asg = full_assignment(2, n_vertices=4)
        rep = ShardedExecution(2, asg, self._cfg(0.5)).replay_columnar(
            log, arrival_rate=10.0
        )
        assert rep.completed == 3
        assert rep.latency.count == 2

    def test_warmup_agrees_across_drivers(self):
        asg = full_assignment(2)
        boxed = ShardedExecution(2, asg, self._cfg(0.3)).replay(
            STREAM, arrival_rate=100.0
        )
        cols = ShardedExecution(2, asg, self._cfg(0.3)).replay_columnar(
            LOG, arrival_rate=100.0
        )
        assert boxed == cols


class TestStrictAndUnassigned:
    def _partial(self, k):
        asg = full_assignment(k)
        del asg[RAW_BASE + 0]
        del asg[RAW_BASE + 1]
        return asg

    def test_columnar_strict_by_default(self):
        with pytest.raises(UnassignedVertexError, match="100[01]"):
            ShardedExecution(2, self._partial(2), CFG_2PC).replay_columnar(
                LOG, arrival_rate=100.0
            )

    def test_error_names_the_vertex(self):
        try:
            ShardedExecution(2, self._partial(2), CFG_2PC).replay_columnar(LOG)
        except UnassignedVertexError as exc:
            assert exc.vertex in (RAW_BASE + 0, RAW_BASE + 1)
        else:
            pytest.fail("expected UnassignedVertexError")

    @pytest.mark.parametrize("cfg", [CFG_2PC, CFG_MIGRATE], ids=["2pc", "migrate"])
    def test_unassigned_counts_match_across_drivers(self, cfg):
        asg = self._partial(2)
        boxed = ShardedExecution(2, asg, cfg).replay(STREAM, arrival_rate=100.0)
        cols = ShardedExecution(2, asg, cfg).replay_columnar(
            LOG, arrival_rate=100.0, strict=False
        )
        assert boxed == cols
        assert cols.unassigned_endpoints > 0

    def test_list_path_counts_instead_of_dropping(self):
        rep = ShardedExecution(2, {1: 0}, CFG_2PC).replay(
            [Interaction(timestamp=0.0, src=1, dst=99, tx_id=0)],
            arrival_rate=10.0,
        )
        assert rep.unassigned_endpoints == 1
        assert rep.completed == 1  # the assigned endpoint still executes

    def test_strict_list_path_raises(self):
        ex = ShardedExecution(2, {1: 0}, CFG_2PC, strict=True)
        with pytest.raises(UnassignedVertexError, match="99"):
            ex.replay(
                [Interaction(timestamp=0.0, src=1, dst=99, tx_id=0)],
                arrival_rate=10.0,
            )


class TestValidation:
    def test_arrival_rate_zero_rejected(self):
        ex = ShardedExecution(2, full_assignment(2), CFG_2PC)
        with pytest.raises(ValueError, match="arrival_rate must be > 0, got 0"):
            ex.replay(STREAM, arrival_rate=0)

    def test_arrival_rate_negative_rejected_columnar(self):
        ex = ShardedExecution(2, full_assignment(2), CFG_2PC)
        with pytest.raises(ValueError, match="arrival_rate must be > 0, got -5"):
            ex.replay_columnar(LOG, arrival_rate=-5)

    def test_negative_time_scale_rejected(self):
        ex = ShardedExecution(2, full_assignment(2), CFG_2PC)
        with pytest.raises(ValueError, match="time_scale must be >= 0, got -1"):
            ex.replay(STREAM, time_scale=-1)

    def test_bad_row_window_rejected(self):
        ex = ShardedExecution(2, full_assignment(2), CFG_2PC)
        with pytest.raises(ValueError, match="invalid row window"):
            ex.replay_columnar(LOG, lo=10, hi=5)

    @pytest.mark.parametrize("kwargs,needle", [
        ({"service_time": 0.0}, "service_time must be > 0, got 0.0"),
        ({"prepare_time": -0.1}, "prepare_time must be >= 0, got -0.1"),
        ({"commit_time": -1}, "commit_time must be >= 0, got -1"),
        ({"network_rtt": -2.5}, "network_rtt must be >= 0, got -2.5"),
        ({"migration_time_fixed": -0.5}, "migration_time_fixed must be >= 0"),
        ({"migration_bandwidth": 0}, "migration_bandwidth must be > 0, got 0"),
        ({"warmup_fraction": 1.5}, r"warmup_fraction must be in \[0, 1\], got 1.5"),
        ({"warmup_fraction": -0.1}, r"warmup_fraction must be in \[0, 1\]"),
        ({"mode": "teleport"}, "unknown mode"),
    ])
    def test_config_validation_names_value(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            ShardedExecutionConfig(**kwargs)

    def test_k_validated(self):
        with pytest.raises(ValueError, match="k must be >= 1, got 0"):
            ShardedExecution(0, {})
