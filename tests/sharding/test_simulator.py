"""Unit tests for the DES kernel, shards and event queue."""

import pytest

from repro.errors import SimulationClockError
from repro.sharding.events import EventQueue
from repro.sharding.shard import Shard
from repro.sharding.simulator import Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        q.pop().callback()
        q.pop().callback()
        assert fired == ["a", "b"]

    def test_fifo_at_same_time(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append(1))
        q.push(1.0, lambda: fired.append(2))
        q.pop().callback()
        q.pop().callback()
        assert fired == [1, 2]

    def test_cancel(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        e.cancel()
        assert q.pop() is None
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e.cancel()
        assert q.peek_time() == 2.0


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0, 5.0]
        assert sim.now == 5.0

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []

        def first():
            out.append(sim.now)
            sim.schedule(3.0, lambda: out.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert out == [1.0, 4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationClockError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationClockError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_run_until_advances_clock_on_idle(self):
        # an idle simulator asked to run to a horizon must report that
        # horizon, not 0.0 — elapsed/utilization figures depend on it
        sim = Simulator()
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_run_until_advances_clock_on_early_drain(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.run(until=10.0)
        assert fired == [1]
        assert sim.now == 10.0

    def test_run_until_in_past_of_drained_queue_keeps_clock(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        sim.run(until=3.0)  # horizon already passed: clock must not rewind
        assert sim.now == 5.0

    def test_run_until_in_past_with_pending_events_keeps_clock(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run(until=3.0)  # event still pending: clock must not rewind
        assert sim.now == 4.0

    def test_max_events_stop_does_not_jump_to_until(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=10.0, max_events=1)
        assert sim.now == 1.0

    def test_events_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1


class TestShard:
    def test_serial_execution(self):
        sim = Simulator()
        shard = Shard(0, sim)
        done = []
        shard.submit(2.0, lambda: done.append(sim.now))
        shard.submit(3.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [2.0, 5.0]  # second job waits for the first

    def test_busy_time_accumulates(self):
        sim = Simulator()
        shard = Shard(0, sim)
        shard.submit(2.0, lambda: None)
        shard.submit(3.0, lambda: None)
        sim.run()
        assert shard.busy_time == 5.0
        assert shard.jobs_done == 2
        assert shard.utilization(10.0) == 0.5

    def test_queue_wait_tracked(self):
        sim = Simulator()
        shard = Shard(0, sim)
        shard.submit(2.0, lambda: None)
        shard.submit(1.0, lambda: None)  # waits 2.0
        sim.run()
        assert shard.total_queue_wait == 2.0

    def test_negative_service_rejected(self):
        sim = Simulator()
        shard = Shard(0, sim)
        with pytest.raises(ValueError):
            shard.submit(-1.0, lambda: None)

    def test_idle_shard_starts_immediately(self):
        sim = Simulator()
        shard = Shard(0, sim)
        done = []
        shard.submit(1.5, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.5]
