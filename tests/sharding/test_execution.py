"""Tests for 2PC sharded execution, migration and throughput accounting."""

import pytest

from repro.ethereum.state import WorldState
from repro.graph.builder import Interaction
from repro.sharding.coordinator import ShardedExecution, ShardedExecutionConfig
from repro.sharding.migration import MigrationModel
from repro.sharding.throughput import LatencyStats


CFG = ShardedExecutionConfig(
    service_time=1.0, prepare_time=1.0, commit_time=0.5, network_rtt=2.0
)


def tx_stream(pairs):
    return [
        Interaction(timestamp=float(i), src=s, dst=d, tx_id=i)
        for i, (s, d) in enumerate(pairs)
    ]


class TestShardSets:
    def test_shard_set_sorted_distinct(self):
        ex = ShardedExecution(4, {1: 3, 2: 0, 3: 3}, CFG)
        assert ex.shard_set([1, 2, 3]) == (0, 3)

    def test_unassigned_ignored(self):
        ex = ShardedExecution(4, {1: 1}, CFG)
        assert ex.shard_set([1, 99]) == (1,)


class TestSingleShardTx:
    def test_cost_is_one_service(self):
        ex = ShardedExecution(2, {1: 0, 2: 0}, CFG)
        ex.submit_transaction(0, (0,))
        ex.sim.run()
        assert ex.completed == 1
        assert ex.latencies == [1.0]
        assert ex.single_shard == 1
        assert ex.multi_shard == 0


class TestMultiShardTx:
    def test_2pc_latency(self):
        ex = ShardedExecution(2, {1: 0, 2: 1}, CFG)
        ex.submit_transaction(0, (0, 1))
        ex.sim.run()
        # prepare (1.0, parallel) + rtt (2.0) + commit (0.5) = 3.5
        assert ex.latencies == [pytest.approx(3.5)]
        assert ex.multi_shard == 1

    def test_2pc_occupies_both_shards(self):
        ex = ShardedExecution(2, {1: 0, 2: 1}, CFG)
        ex.submit_transaction(0, (0, 1))
        ex.sim.run()
        for shard in ex.shards:
            assert shard.busy_time == pytest.approx(1.5)  # prepare + commit

    def test_multi_shard_queues_behind_local_work(self):
        ex = ShardedExecution(2, {1: 0, 2: 1}, CFG)
        # keep shard 1 busy for 10s
        ex.shards[1].submit(10.0, lambda: None)
        ex.submit_transaction(0, (0, 1))
        ex.sim.run()
        # prepare on shard 1 starts at 10 -> done 11; rtt -> 13; commit 13.5
        assert ex.latencies == [pytest.approx(13.5)]

    def test_empty_shard_set_ignored(self):
        ex = ShardedExecution(2, {}, CFG)
        ex.submit_transaction(0, ())
        ex.sim.run()
        assert ex.completed == 0


class TestReplay:
    def test_replay_counts_transactions(self):
        ex = ShardedExecution(2, {1: 0, 2: 1, 3: 0}, CFG)
        report = ex.replay(tx_stream([(1, 3), (1, 2), (2, 2)]), arrival_rate=100.0)
        assert report.completed == 3
        assert report.single_shard == 2  # (1,3) same shard, (2,2) single
        assert report.multi_shard == 1

    def test_report_ratios(self):
        ex = ShardedExecution(2, {1: 0, 2: 1}, CFG)
        report = ex.replay(tx_stream([(1, 2), (1, 1)]), arrival_rate=100.0)
        assert report.multi_shard_ratio == pytest.approx(0.5)
        assert report.throughput > 0
        assert 0 < report.mean_utilization <= 1.0

    def test_time_scale_replay(self):
        ex = ShardedExecution(2, {1: 0, 2: 0}, CFG)
        stream = tx_stream([(1, 2), (1, 2)])
        report = ex.replay(stream, time_scale=10.0)
        # arrivals at 0 and 10; each takes 1s
        assert report.elapsed == pytest.approx(11.0)

    def test_balanced_assignment_spreads_utilization(self):
        stream = tx_stream([(i % 4, i % 4) for i in range(40)])
        balanced = ShardedExecution(4, {0: 0, 1: 1, 2: 2, 3: 3}, CFG)
        rep = balanced.replay(stream, arrival_rate=100.0)
        assert rep.utilization_imbalance < 1.2

    def test_skewed_assignment_detected(self):
        stream = tx_stream([(1, 1) for _ in range(40)])
        skewed = ShardedExecution(4, {1: 2}, CFG)
        rep = skewed.replay(stream, arrival_rate=100.0)
        assert rep.utilization_imbalance == pytest.approx(4.0)


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.p99 == 0.0

    def test_percentiles(self):
        stats = LatencyStats.from_samples(list(range(1, 101)))
        assert stats.median == pytest.approx(50, abs=1)
        assert stats.p99 == pytest.approx(99, abs=1)
        assert stats.maximum == 100
        assert stats.mean == pytest.approx(50.5)


class TestMigration:
    def test_cost_of_moves(self):
        state = WorldState()
        eoa = state.create_eoa()
        contract = state.create_contract((0,), initial_storage={i: i + 1 for i in range(10)})
        state.discard_journal()
        model = MigrationModel(bandwidth=1000.0, per_vertex_overhead=0)
        before = {eoa.address: 0, contract.address: 1}
        after = {eoa.address: 1, contract.address: 1}
        cost = model.cost_of(before, after, state, k=2)
        assert cost.vertices_moved == 1
        assert cost.bytes_moved == eoa.state_bytes()
        assert cost.per_shard_send_time[0] == pytest.approx(eoa.state_bytes() / 1000.0)
        assert cost.per_shard_recv_time[1] == pytest.approx(eoa.state_bytes() / 1000.0)

    def test_contract_storage_dominates(self):
        """The paper's point: moving a contract moves its whole storage."""
        state = WorldState()
        eoa = state.create_eoa()
        fat = state.create_contract((0,), initial_storage={i: 1 for i in range(100)})
        state.discard_journal()
        model = MigrationModel()
        move_eoa = model.cost_of({eoa.address: 0}, {eoa.address: 1}, state, 2)
        move_fat = model.cost_of({fat.address: 0}, {fat.address: 1}, state, 2)
        # 100 slots x 64 bytes dwarf the ~40-byte account record (both
        # sides carry the fixed per-vertex envelope overhead)
        assert move_fat.bytes_moved > 30 * move_eoa.bytes_moved

    def test_no_moves_no_cost(self):
        state = WorldState()
        eoa = state.create_eoa()
        state.discard_journal()
        cost = MigrationModel().cost_of({eoa.address: 0}, {eoa.address: 0}, state, 2)
        assert cost.vertices_moved == 0
        assert cost.total_transfer_time == 0.0
