"""End-to-end integration tests: the paper's qualitative claims.

Each test here corresponds to a sentence in the paper's §III results
discussion; together they are the "does the reproduction reproduce"
gate.  They run on the shared small workload via the cached runner.
"""

import pytest

from repro.ethereum.history import ATTACK_END
from repro.metrics.balance import normalized_balance


@pytest.fixture(scope="module")
def replays(small_runner):
    """All five methods at k=2 and k=8 (cached in the runner)."""
    out = {}
    for method in ("hash", "kl", "metis", "p-metis", "tr-metis"):
        for k in (2, 8):
            out[(method, k)] = small_runner.replay(method, k, seed=1)
    return out


def mean_metric(result, column, after=None):
    pts = [p for p in result.series.points if p.interactions > 0]
    if after is not None:
        pts = [p for p in pts if p.ts > after]
    return sum(getattr(p, column) for p in pts) / len(pts)


class TestPaperClaims:
    def test_hash_optimal_static_balance(self, replays):
        """'Hashing provides optimum static balance.'"""
        for k in (2, 8):
            final = replays[("hash", k)].series.points[-1]
            assert final.static_balance < 1.10

    def test_hash_50pct_cut_at_two_shards(self, replays):
        """'With two shards hashing leads to about 50% of transactions
        across shards.'"""
        cut = mean_metric(replays[("hash", 2)], "dynamic_edge_cut")
        assert 0.42 <= cut <= 0.58

    def test_hash_never_moves(self, replays):
        """'There are no moves since partitioning depends on vertex id
        only.'"""
        for k in (2, 8):
            assert replays[("hash", k)].total_moves == 0

    def test_metis_much_lower_cut_than_hash(self, replays):
        """'METIS provides a much lower edge-cut, both static and
        dynamic.'"""
        for k in (2, 8):
            metis = replays[("metis", k)]
            hashing = replays[("hash", k)]
            assert (mean_metric(metis, "dynamic_edge_cut")
                    < 0.75 * mean_metric(hashing, "dynamic_edge_cut"))
            assert (mean_metric(metis, "static_edge_cut")
                    < 0.75 * mean_metric(hashing, "static_edge_cut"))

    def test_metis_dynamic_balance_anomaly(self, replays):
        """'Notice that dynamic balance is near two ... after the
        September 2016 attack' (k=2)."""
        metis_bal = mean_metric(replays[("metis", 2)], "dynamic_balance",
                                after=ATTACK_END)
        hash_bal = mean_metric(replays[("hash", 2)], "dynamic_balance",
                               after=ATTACK_END)
        assert metis_bal > 1.45
        assert metis_bal > hash_bal + 0.2

    def test_metis_static_balance_still_good(self, replays):
        """'Although METIS statically balances the graph...'"""
        final = replays[("metis", 2)].series.points[-1]
        assert final.static_balance < 1.15

    def test_kl_reduces_cut_keeping_balance(self, replays):
        """'KL reduces dynamic edge-cuts while maintaining shards
        balanced.'  Balance compared over the post-attack bulk, as in
        the paper's Fig. 4 (early sparse windows are pure noise)."""
        kl = replays[("kl", 2)]
        hashing = replays[("hash", 2)]
        assert (mean_metric(kl, "dynamic_edge_cut")
                < mean_metric(hashing, "dynamic_edge_cut"))
        assert (mean_metric(kl, "dynamic_balance", after=ATTACK_END)
                < mean_metric(replays[("metis", 2)], "dynamic_balance",
                              after=ATTACK_END))

    def test_kl_many_moves(self, replays):
        """'The various iterations of the technique lead to a large
        number of vertices changing shards.'"""
        assert replays[("kl", 2)].total_moves > 200

    def test_rmetis_better_dynamic_balance_than_metis(self, replays):
        """'With this technique we managed to get a lower dynamic
        balance' (R-METIS vs METIS, post attack)."""
        rm = mean_metric(replays[("p-metis", 2)], "dynamic_balance",
                         after=ATTACK_END)
        metis = mean_metric(replays[("metis", 2)], "dynamic_balance",
                            after=ATTACK_END)
        assert rm < metis

    def test_trmetis_dramatic_move_reduction(self, replays):
        """'The result is a dramatic decrease in the number of moved
        vertices, without compromising edge-cuts and balance.'"""
        for k in (2, 8):
            tr = replays[("tr-metis", k)]
            rm = replays[("p-metis", k)]
            assert tr.total_moves < 0.8 * rm.total_moves
            # quality must not diverge much from R-METIS
            assert (mean_metric(tr, "dynamic_edge_cut")
                    <= mean_metric(rm, "dynamic_edge_cut") + 0.12)

    def test_metis_family_huge_moves(self, replays):
        """'The number of moves is large in the METIS algorithm, since
        the partitioner does not optimize for this aspect' + 'P-METIS
        and TR-METIS perform substantially fewer moves'."""
        for k in (2, 8):
            metis = replays[("metis", k)].total_moves
            pm = replays[("p-metis", k)].total_moves
            assert metis > 3 * pm

    def test_cut_worsens_with_shards(self, replays):
        """'In all techniques, dynamic edge-cut becomes worse as the
        number of shards increases.'"""
        for method in ("hash", "kl", "metis", "p-metis", "tr-metis"):
            assert (mean_metric(replays[(method, 8)], "dynamic_edge_cut")
                    > mean_metric(replays[(method, 2)], "dynamic_edge_cut"))

    def test_tradeoff_no_method_wins_both(self, replays):
        """'There is a clear compromise between edge-cut and balance,
        and no technique clearly stands out.'"""
        for k in (2, 8):
            best_cut = min(
                ("hash", "kl", "metis", "p-metis", "tr-metis"),
                key=lambda m: mean_metric(replays[(m, k)], "dynamic_edge_cut"),
            )
            best_bal = min(
                ("hash", "kl", "metis", "p-metis", "tr-metis"),
                key=lambda m: mean_metric(replays[(m, k)], "dynamic_balance"),
            )
            assert best_cut != best_bal


class TestCrossCutting:
    def test_all_methods_assign_every_vertex(self, replays, small_workload):
        n = small_workload.graph.num_vertices
        for result in replays.values():
            assert len(result.assignment) == n
            result.assignment.validate()

    def test_series_lengths_agree(self, replays):
        lengths = {len(r.series) for r in replays.values()}
        assert len(lengths) == 1  # same windows for every method

    def test_moves_match_events(self, replays):
        for result in replays.values():
            assert result.total_moves == sum(e.moves for e in result.events)
            assert result.series.points[-1].cumulative_moves == result.total_moves

    def test_determinism_across_runs(self, small_workload):
        from repro.core import make_method
        from repro.core.replay import replay_method
        from repro.graph.snapshot import HOUR

        log = small_workload.builder.log
        a = replay_method(log, make_method("tr-metis", 2, seed=5),
                          metric_window=24 * HOUR)
        b = replay_method(log, make_method("tr-metis", 2, seed=5),
                          metric_window=24 * HOUR)
        assert a.total_moves == b.total_moves
        assert a.assignment.as_dict() == b.assignment.as_dict()
        assert [p.dynamic_edge_cut for p in a.series.points] == [
            p.dynamic_edge_cut for p in b.series.points
        ]
