"""Shared fixtures.

Workloads are expensive to generate, so the tiny and small histories
are session-scoped and shared by every test module; tests must not
mutate them (builders/logs are treated as read-only — replays build
their own graphs).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.ethereum.workload import WorkloadConfig, generate_history


@pytest.fixture(scope="session")
def tiny_workload():
    """~600 transactions over 60 days (no attack window)."""
    return generate_history(WorkloadConfig.tiny(seed=42))


@pytest.fixture(scope="session")
def small_workload():
    """~6k transactions over the full 886-day timeline."""
    return generate_history(WorkloadConfig.small(seed=42))


@pytest.fixture(scope="session")
def small_runner(small_workload):
    """An ExperimentRunner pre-seeded with the shared small workload."""
    runner = ExperimentRunner(scale="small", seed=42, metric_window_hours=24.0)
    runner._workload = small_workload
    return runner


@pytest.fixture()
def rng():
    return random.Random(1234)
