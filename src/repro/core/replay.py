"""The replay engine: stream history → placement → metrics → repartition.

This is the experimental harness of the paper.  It consumes the
time-ordered interaction log (from the workload generator or a trace
file), maintains the live shard assignment, and per metric window
(four hours in the paper):

1. groups the window's interactions by transaction and places
   newly-appearing vertices via the method's placement rule;
2. incrementally maintains the cumulative graph and the static-metric
   counters, and accumulates per-window dynamic-metric counters;
3. records a :class:`~repro.metrics.series.MetricPoint`;
4. offers the method a chance to repartition; if it does, applies the
   proposal, counts the moves and resets the period buffer.

Static metrics are maintained incrementally (recomputed from scratch
only at repartitionings), so a full replay is O(interactions + windows
+ repartitions × |E|) rather than O(windows × |E|).

The streaming loop itself lives in
:mod:`repro.core.multireplay`, which fans one pass over the log out to
any number of methods; :class:`ReplayEngine` is its single-method
facade.
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Sequence

from repro.core.assignment import ShardAssignment
from repro.core.base import PartitionMethod, RepartitionEvent
from repro.graph.builder import Interaction
from repro.graph.digraph import WeightedDiGraph
from repro.graph.snapshot import METRIC_WINDOW
from repro.metrics.series import MetricSeries


@dataclasses.dataclass
class ReplayResult:
    """Everything a replay produced.

    ``graph`` is the cumulative blockchain graph at the end of the
    replay.  Results fanned out of one
    :class:`~repro.core.multireplay.MultiReplayEngine` pass all
    reference the *same* graph object (it is built once by design), so
    treat it as read-only — derive from it with
    :meth:`~repro.graph.digraph.WeightedDiGraph.copy` or
    ``subgraph`` before mutating.
    """

    method: str
    k: int
    series: MetricSeries
    assignment: ShardAssignment
    events: List[RepartitionEvent]
    graph: WeightedDiGraph

    @property
    def total_moves(self) -> int:
        return sum(e.moves for e in self.events)

    @property
    def num_repartitions(self) -> int:
        return sum(1 for e in self.events if e.moves or e.reassigned)


def apply_proposal(
    proposal: Mapping[int, int],
    assignment: ShardAssignment,
    graph: WeightedDiGraph,
) -> int:
    """Apply a repartition proposal; returns the move count."""
    moves = 0
    for v, shard in proposal.items():
        current = assignment.shard_of(v)
        if current is None:
            # method proposed a vertex the replay has not seen yet;
            # treat as a fresh placement (no move)
            assignment.assign(v, shard)
            continue
        if current != shard:
            assignment.move(v, shard, weight=graph.vertex_weight(v) if v in graph else 0)
            moves += 1
    return moves


def recount_static_cut(graph: WeightedDiGraph, assignment: ShardAssignment) -> int:
    """Recompute the distinct-directed-edge cut after a repartition."""
    cut = 0
    for src, dst, _w in graph.edges():
        if src == dst:
            continue
        if assignment[src] != assignment[dst]:
            cut += 1
    return cut


class ReplayEngine:
    """Replays an interaction log through one partitioning method.

    This is the single-method special case of
    :class:`~repro.core.multireplay.MultiReplayEngine`: :meth:`run`
    delegates to the shared streaming loop with a one-method fan-out,
    so both paths stay bit-identical by construction.
    """

    def __init__(
        self,
        interactions: Sequence[Interaction],
        method: PartitionMethod,
        metric_window: float = METRIC_WINDOW,
        end_ts: Optional[float] = None,
    ):
        """Args:
            interactions: the full, time-ordered interaction log (e.g.
                ``workload_result.builder.log``).
            method: the partitioning method under study.
            metric_window: sampling window width in seconds (paper: 4h).
            end_ts: replay horizon; defaults to just past the last
                interaction.
        """
        if metric_window <= 0:
            raise ValueError("metric_window must be positive")
        self.log = interactions
        self.method = method
        self.k = method.k
        self.metric_window = metric_window
        if end_ts is None:
            # one full second past the last interaction: a naive +epsilon
            # is absorbed by float rounding at multi-year timestamps and
            # silently drops the final window
            end_ts = (interactions[-1].timestamp + 1.0) if interactions else 0.0
        self.end_ts = end_ts

    # ------------------------------------------------------------------

    def run(self) -> ReplayResult:
        from repro.core.multireplay import MultiReplayEngine

        return MultiReplayEngine(
            self.log,
            [self.method],
            metric_window=self.metric_window,
            end_ts=self.end_ts,
        ).run()[0]


def replay_method(
    interactions: Sequence[Interaction],
    method: PartitionMethod,
    metric_window: float = METRIC_WINDOW,
) -> ReplayResult:
    """Convenience one-call replay."""
    return ReplayEngine(interactions, method, metric_window=metric_window).run()
