"""The replay engine: stream history → placement → metrics → repartition.

This is the experimental harness of the paper.  It consumes the
time-ordered interaction log (from the workload generator or a trace
file), maintains the live shard assignment, and per metric window
(four hours in the paper):

1. groups the window's interactions by transaction and places
   newly-appearing vertices via the method's placement rule;
2. incrementally maintains the cumulative graph and the static-metric
   counters, and accumulates per-window dynamic-metric counters;
3. records a :class:`~repro.metrics.series.MetricPoint`;
4. offers the method a chance to repartition; if it does, applies the
   proposal, counts the moves and resets the period buffer.

Static metrics are maintained incrementally (recomputed from scratch
only at repartitionings), so a full replay is O(interactions + windows
+ repartitions × |E|) rather than O(windows × |E|).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.assignment import ShardAssignment
from repro.core.base import PartitionMethod, RepartitionEvent, ReplayContext
from repro.graph.builder import GraphBuilder, Interaction, group_by_transaction
from repro.graph.digraph import WeightedDiGraph
from repro.graph.snapshot import METRIC_WINDOW
from repro.metrics.series import MetricPoint, MetricSeries


@dataclasses.dataclass
class ReplayResult:
    """Everything a replay produced."""

    method: str
    k: int
    series: MetricSeries
    assignment: ShardAssignment
    events: List[RepartitionEvent]
    graph: WeightedDiGraph

    @property
    def total_moves(self) -> int:
        return sum(e.moves for e in self.events)

    @property
    def num_repartitions(self) -> int:
        return sum(1 for e in self.events if e.moves or e.reassigned)


class ReplayEngine:
    """Replays an interaction log through one partitioning method."""

    def __init__(
        self,
        interactions: Sequence[Interaction],
        method: PartitionMethod,
        metric_window: float = METRIC_WINDOW,
        end_ts: Optional[float] = None,
    ):
        """Args:
            interactions: the full, time-ordered interaction log (e.g.
                ``workload_result.builder.log``).
            method: the partitioning method under study.
            metric_window: sampling window width in seconds (paper: 4h).
            end_ts: replay horizon; defaults to just past the last
                interaction.
        """
        if metric_window <= 0:
            raise ValueError("metric_window must be positive")
        self.log = interactions
        self.method = method
        self.k = method.k
        self.metric_window = metric_window
        if end_ts is None:
            # one full second past the last interaction: a naive +epsilon
            # is absorbed by float rounding at multi-year timestamps and
            # silently drops the final window
            end_ts = (interactions[-1].timestamp + 1.0) if interactions else 0.0
        self.end_ts = end_ts

    # ------------------------------------------------------------------

    def run(self) -> ReplayResult:
        method = self.method
        k = self.k
        assignment = ShardAssignment(k)
        graph = WeightedDiGraph()
        series = MetricSeries(method=method.name, k=k)
        events: List[RepartitionEvent] = []

        # incremental static-metric counters
        distinct_edges = 0
        static_cut = 0

        period_buffer: List[Interaction] = []
        last_repartition_ts = self.log[0].timestamp if self.log else 0.0
        total_moves = 0

        log = self.log
        idx = 0
        n_log = len(log)
        window_start = log[0].timestamp if log else 0.0

        while window_start < self.end_ts:
            window_end = window_start + self.metric_window
            # collect this window's interactions
            window: List[Interaction] = []
            while idx < n_log and log[idx].timestamp < window_end:
                window.append(log[idx])
                idx += 1

            wcut = 0
            wtotal = 0
            load: Counter = Counter()

            for _tx_id, bucket in group_by_transaction(window):
                # place new vertices, in endpoint-appearance order
                endpoints: List[int] = []
                for it in bucket:
                    endpoints.append(it.src)
                    endpoints.append(it.dst)
                for it in bucket:
                    for v, kind in ((it.src, it.src_kind), (it.dst, it.dst_kind)):
                        if v not in assignment:
                            shard = method.place_vertex(v, endpoints, assignment)
                            assignment.assign(v, shard)
                        graph.add_vertex(v, kind, 0, it.timestamp)

                for it in bucket:
                    src, dst = it.src, it.dst
                    is_new_edge = not graph.has_edge(src, dst)
                    graph.add_vertex_weight(src, 1)
                    if dst != src:
                        graph.add_vertex_weight(dst, 1)
                    graph.add_edge(src, dst, 1)
                    assignment.add_weight(src, 1)
                    if dst != src:
                        assignment.add_weight(dst, 1)

                    if src != dst:
                        s_src = assignment[src]
                        s_dst = assignment[dst]
                        crossing = s_src != s_dst
                        if is_new_edge:
                            # static cut counts distinct *directed* edges,
                            # per the paper's directed-graph formulation
                            distinct_edges += 1
                            if crossing:
                                static_cut += 1
                        wtotal += 1
                        if crossing:
                            wcut += 1
                        load[s_src] += 1
                        load[s_dst] += 1
                    period_buffer.append(it)

            dyn_cut = wcut / wtotal if wtotal else 0.0
            load_total = sum(load.values())
            dyn_balance = (max(load.values()) * k / load_total) if load_total else 1.0

            ctx = ReplayContext(
                now=window_end,
                k=k,
                assignment=assignment,
                graph=graph,
                window_interactions=window,
                period_interactions=period_buffer,
                last_repartition_ts=last_repartition_ts,
                window_dynamic_edge_cut=dyn_cut,
                window_dynamic_balance=dyn_balance,
                rng=method.rng,
            )
            proposal = method.maybe_repartition(ctx)
            if proposal is not None:
                moves = self._apply(proposal, assignment, graph)
                total_moves += moves
                static_cut = self._recount_static_cut(graph, assignment)
                period_buffer = []
                last_repartition_ts = window_end
                events.append(
                    RepartitionEvent(
                        ts=window_end,
                        moves=moves,
                        reassigned=len(proposal),
                        reason=method.name,
                    )
                )

            series.append(
                MetricPoint(
                    ts=window_start,
                    static_edge_cut=(static_cut / distinct_edges) if distinct_edges else 0.0,
                    dynamic_edge_cut=dyn_cut,
                    static_balance=assignment.static_balance(),
                    dynamic_balance=dyn_balance,
                    cumulative_moves=total_moves,
                    interactions=len(window),
                )
            )
            window_start = window_end

        return ReplayResult(
            method=method.name,
            k=k,
            series=series,
            assignment=assignment,
            events=events,
            graph=graph,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _apply(
        proposal: Mapping[int, int],
        assignment: ShardAssignment,
        graph: WeightedDiGraph,
    ) -> int:
        """Apply a repartition proposal; returns the move count."""
        moves = 0
        for v, shard in proposal.items():
            current = assignment.shard_of(v)
            if current is None:
                # method proposed a vertex the replay has not seen yet;
                # treat as a fresh placement (no move)
                assignment.assign(v, shard)
                continue
            if current != shard:
                assignment.move(v, shard, weight=graph.vertex_weight(v) if v in graph else 0)
                moves += 1
        return moves

    @staticmethod
    def _recount_static_cut(
        graph: WeightedDiGraph, assignment: ShardAssignment
    ) -> int:
        """Recompute the distinct-directed-edge cut after a repartition."""
        cut = 0
        for src, dst, _w in graph.edges():
            if src == dst:
                continue
            if assignment[src] != assignment[dst]:
                cut += 1
        return cut


def replay_method(
    interactions: Sequence[Interaction],
    method: PartitionMethod,
    metric_window: float = METRIC_WINDOW,
) -> ReplayResult:
    """Convenience one-call replay."""
    return ReplayEngine(interactions, method, metric_window=metric_window).run()
