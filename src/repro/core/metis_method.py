"""Method 3 — periodic full-graph METIS (§II-C).

Every ``period`` (two weeks in the paper), partition the *entire
cumulative graph* with the multilevel partitioner, edge weights set to
interaction counts and vertex weights to activity counts ("we aim to
reduce dynamic edge-cuts by assigning weights to the edges").

The pitfall the paper documents: METIS balances *vertex weight* but
after the 2016 attack most vertices are dead dummies, so one shard ends
up with nearly all the *live* vertices — dynamic balance ≈ k.  METIS
also freely relabels shards between runs ("it is not part of METIS
objectives to minimize the number of vertices that change shard"), so
raw move counts are huge; we deliberately do **not** align shard labels
between runs, to reproduce that behaviour honestly.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.base import PartitionMethod, ReplayContext
from repro.graph.snapshot import REPARTITION_PERIOD
from repro.metis import part_graph


class MetisPartitioner(PartitionMethod):
    name = "metis"

    def __init__(
        self,
        k: int,
        seed: int = 0,
        period: float = REPARTITION_PERIOD,
        ubfactor: float = 1.05,
        ntrials: int = 4,
    ):
        super().__init__(k, seed)
        self.period = period
        self.ubfactor = ubfactor
        self.ntrials = ntrials
        self._run = 0

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        if ctx.elapsed_since_repartition < self.period:
            return None
        if ctx.graph.num_vertices < self.k:
            return None
        self._run += 1
        result = part_graph(
            ctx.graph,
            self.k,
            seed=self.seed * 10_007 + self._run,
            ubfactor=self.ubfactor,
            ntrials=self.ntrials,
        )
        return result.assignment
