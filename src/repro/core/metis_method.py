"""Method 3 — periodic full-graph METIS (§II-C).

Every ``period`` (two weeks in the paper), partition the *entire
cumulative graph* with the multilevel partitioner, edge weights set to
interaction counts and vertex weights to activity counts ("we aim to
reduce dynamic edge-cuts by assigning weights to the edges").

The pitfall the paper documents: METIS balances *vertex weight* but
after the 2016 attack most vertices are dead dummies, so one shard ends
up with nearly all the *live* vertices — dynamic balance ≈ k.  METIS
also freely relabels shards between runs ("it is not part of METIS
objectives to minimize the number of vertices that change shard"), so
raw move counts are huge; we deliberately do **not** align shard labels
between runs, to reproduce that behaviour honestly.

Warm mode (``warm=True``, off by default) is this reproduction's
incremental extension: when the replay streams a
:class:`~repro.graph.columnar.ColumnarLog`, the cumulative graph is
accumulated incrementally from the log's dense indices
(:class:`~repro.metis.graph.ColumnarCSRBuilder`) and each repartition
warm-starts from the previous run's assignment
(``part_graph(warm_start=...)``), with a
:class:`~repro.metis.coarsen.LadderCache` amortising any cold restarts.
Note the shard-relabeling caveat: because a warm run *inherits* the
previous labels, its move counts are structurally small — it sidesteps
the relabeling pitfall the paper documents for cold METIS, so warm and
cold move counts are not comparable.  Warm mode therefore defaults off;
the paper figures use the cold path.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.base import PartitionMethod, ReplayContext
from repro.graph.snapshot import REPARTITION_PERIOD
from repro.metis import ColumnarCSRBuilder, LadderCache, part_graph


class MetisPartitioner(PartitionMethod):
    name = "metis"

    def __init__(
        self,
        k: int,
        seed: int = 0,
        period: float = REPARTITION_PERIOD,
        ubfactor: float = 1.05,
        ntrials: int = 4,
        warm: bool = False,
        warm_growth_threshold: float = 0.5,
    ):
        """Args:
            warm: enable warm-started incremental repartitioning (needs
                a ColumnarLog-backed replay; falls back to the cold path
                otherwise).  Off by default — see the module docstring's
                shard-relabeling caveat.
            warm_growth_threshold: fall back to a cold multilevel run
                when more than this fraction of vertices are new since
                the previous repartitioning.
        """
        super().__init__(k, seed)
        self.period = period
        self.ubfactor = ubfactor
        self.ntrials = ntrials
        self.warm = warm
        self.warm_growth_threshold = warm_growth_threshold
        self._run = 0
        self._builder: Optional[ColumnarCSRBuilder] = None
        self._ladder_cache = LadderCache()
        self._prev_assignment: Optional[Dict[int, int]] = None

    def begin_replay(self) -> None:
        """Drop all warm state so a reused instance never warm-starts
        one replay from another's builder/cache/assignment, and rewind
        the run counter so every replay derives the same part_graph
        seed sequence (no-op for a fresh instance)."""
        self._run = 0
        self._builder = None
        self._ladder_cache = LadderCache()
        self._prev_assignment = None

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        if ctx.elapsed_since_repartition < self.period:
            return None
        if self.warm and ctx.columnar_log is not None:
            return self._repartition_warm(ctx)
        if ctx.graph.num_vertices < self.k:
            return None
        self._run += 1
        result = part_graph(
            ctx.graph,
            self.k,
            seed=self.seed * 10_007 + self._run,
            ubfactor=self.ubfactor,
            ntrials=self.ntrials,
        )
        return result.assignment

    def _repartition_warm(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        log = ctx.columnar_log
        assert log is not None
        if (
            self._builder is None
            or self._builder.log is not log
            or ctx.log_hi < self._builder.rows_consumed
        ):
            # first repartition of this replay, or (defensively) state
            # that cannot belong to this run: a different log object,
            # or a row bound behind what was already consumed.  The
            # authoritative cross-replay reset is begin_replay() — this
            # guard only protects direct maybe_repartition() callers.
            self._builder = ColumnarCSRBuilder(log)
            self._ladder_cache = LadderCache()
            self._prev_assignment = None
        self._builder.advance(ctx.log_hi)
        if self._builder.num_vertices < self.k:
            return None
        csr = self._builder.snapshot(vertex_weights="unit")
        self._run += 1
        result = part_graph(
            csr,
            self.k,
            seed=self.seed * 10_007 + self._run,
            ubfactor=self.ubfactor,
            ntrials=self.ntrials,
            warm_start=self._prev_assignment,
            warm_cache=self._ladder_cache,
            warm_growth_threshold=self.warm_growth_threshold,
        )
        self._prev_assignment = result.assignment
        return result.assignment
