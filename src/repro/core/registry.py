"""Name → method factory, used by the CLI, benchmarks and figures.

Names match the paper's figure legends: ``hash``, ``kl``, ``metis``,
``p-metis`` (= ``r-metis``), ``tr-metis``.

The registry is also the introspection point of the declarative
experiment API (:mod:`repro.experiments`): :func:`method_params`
exposes each factory's accepted keyword parameters so
``MethodSpec.parse("tr-metis?warm=true")`` can validate parameterised
variants up front, and :func:`make_method` rejects unknown parameters
with an error that names the method and what it does accept instead of
an opaque ``TypeError`` from the factory.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Tuple

from repro.core.base import PartitionMethod
from repro.core.fennel import FennelPartitioner
from repro.core.hashing import HashPartitioner
from repro.core.kl import KLPartitioner
from repro.core.metis_method import MetisPartitioner
from repro.core.rmetis import RMetisPartitioner
from repro.core.trmetis import TRMetisPartitioner

_FACTORIES: Dict[str, Callable[..., PartitionMethod]] = {
    "hash": HashPartitioner,
    "kl": KLPartitioner,
    "metis": MetisPartitioner,
    "r-metis": RMetisPartitioner,
    "p-metis": RMetisPartitioner,   # the paper's Figs. 4-5 label
    "tr-metis": TRMetisPartitioner,
    "fennel": FennelPartitioner,    # extension: streaming placement
}

#: Canonical order used in the paper's figures (1=HASH ... 5=TR-METIS).
PAPER_ORDER: List[str] = ["hash", "kl", "metis", "p-metis", "tr-metis"]

#: Names baked into this module (available in any freshly-imported
#: interpreter, e.g. spawn-started worker processes), as opposed to
#: runtime :func:`register_method` registrations.  Re-registering a
#: built-in name removes it from this set: a spawn worker would
#: resolve the original factory, not the override.
_BUILTIN_NAMES = set(_FACTORIES)


def is_builtin_method(name: str) -> bool:
    """True when the name resolves without runtime registration."""
    return name.lower() in _BUILTIN_NAMES

#: Constructor arguments every method shares; they are experiment-level
#: (the shard count and the replay seed), not method parameters.
_RESERVED_PARAMS = ("k", "seed")


def available_methods() -> List[str]:
    """All accepted method names."""
    return sorted(_FACTORIES)


def register_method(name: str, factory: Callable[..., PartitionMethod]) -> None:
    """Register a custom method under ``name`` (lower-cased).

    The factory must accept ``(k, seed=..., **params)`` like the
    built-in methods; once registered it is reachable from method
    strings (``"my-method?alpha=2"``), the CLI and experiment specs.
    Re-registering an existing name replaces it.
    """
    _FACTORIES[name.lower()] = factory
    _BUILTIN_NAMES.discard(name.lower())


def method_params(name: str) -> Tuple[str, ...]:
    """Keyword parameters the named method's factory accepts.

    ``k`` and ``seed`` are excluded: they are experiment-level knobs
    supplied by the grid, not method parameters.
    """
    factory = _resolve(name)
    params = []
    for p in inspect.signature(factory).parameters.values():
        if p.kind in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD):
            continue
        if p.name in _RESERVED_PARAMS:
            continue
        params.append(p.name)
    return tuple(params)


def method_accepts_any_params(name: str) -> bool:
    """True when the factory takes ``**kwargs`` (custom registrations),
    so parameter names cannot be validated up front."""
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in inspect.signature(_resolve(name)).parameters.values()
    )


def _resolve(name: str) -> Callable[..., PartitionMethod]:
    try:
        return _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; available: {', '.join(available_methods())}"
        ) from None


def make_method(name: str, k: int, seed: int = 0, **kwargs) -> PartitionMethod:
    """Instantiate a partitioning method by its figure-legend name.

    Unknown keyword parameters raise a :class:`ValueError` naming the
    method and its accepted parameters.
    """
    factory = _resolve(name)
    if method_accepts_any_params(name):
        # factory takes **kwargs (custom registrations): let it validate
        return factory(k, seed=seed, **kwargs)
    accepted = method_params(name)
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise ValueError(
            f"method {name.lower()!r} got unknown parameter(s) "
            f"{', '.join(unknown)}; accepted: {', '.join(accepted) or '(none)'}"
        )
    return factory(k, seed=seed, **kwargs)
