"""Name → method factory, used by the CLI, benchmarks and figures.

Names match the paper's figure legends: ``hash``, ``kl``, ``metis``,
``p-metis`` (= ``r-metis``), ``tr-metis``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.base import PartitionMethod
from repro.core.fennel import FennelPartitioner
from repro.core.hashing import HashPartitioner
from repro.core.kl import KLPartitioner
from repro.core.metis_method import MetisPartitioner
from repro.core.rmetis import RMetisPartitioner
from repro.core.trmetis import TRMetisPartitioner

_FACTORIES: Dict[str, Callable[..., PartitionMethod]] = {
    "hash": HashPartitioner,
    "kl": KLPartitioner,
    "metis": MetisPartitioner,
    "r-metis": RMetisPartitioner,
    "p-metis": RMetisPartitioner,   # the paper's Figs. 4-5 label
    "tr-metis": TRMetisPartitioner,
    "fennel": FennelPartitioner,    # extension: streaming placement
}

#: Canonical order used in the paper's figures (1=HASH ... 5=TR-METIS).
PAPER_ORDER: List[str] = ["hash", "kl", "metis", "p-metis", "tr-metis"]


def available_methods() -> List[str]:
    """All accepted method names."""
    return sorted(_FACTORIES)


def make_method(name: str, k: int, seed: int = 0, **kwargs) -> PartitionMethod:
    """Instantiate a partitioning method by its figure-legend name."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; available: {', '.join(available_methods())}"
        ) from None
    return factory(k, seed=seed, **kwargs)
