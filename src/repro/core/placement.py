"""New-vertex placement: the paper's min-edge-cut / max-balance rule.

When an account or contract appears for the first time it must be
assigned to some shard before its transaction can be accounted.  The
paper (§II-C): "This is done by inspecting all the accounts involved in
the transaction and picking the shard that minimizes edge-cuts; if more
than one exists, we maximize the balance."

Alternative rules (hash, random, lightest) are provided for the
ABL-PLACE ablation.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.core.assignment import ShardAssignment
from repro.ethereum.types import address_hash


def place_by_min_cut(
    vertex: int,
    tx_endpoints: Sequence[int],
    assignment: ShardAssignment,
    scratch: Optional[Dict[int, int]] = None,
) -> int:
    """Pick the shard minimising new edge-cut, tie-break on balance.

    The shard hosting the most already-assigned endpoints of the
    transaction minimises the number of freshly-cut edges.  Among
    equally good shards the emptiest (by vertex count) wins; a vertex
    with no assigned co-endpoints goes to the emptiest shard outright.

    ``scratch``, when given, is an *empty* dict the affinity counts are
    built in and which is cleared again before returning — the batch
    placement path reuses one map across all placements of a replay
    instead of allocating per vertex.  Shard iteration order (and so
    tie-breaking) is identical either way: insertion-ordered by first
    assigned co-endpoint.
    """
    affinity: Dict[int, int] = {} if scratch is None else scratch
    shard_of = assignment.shard_of
    for other in tx_endpoints:
        if other == vertex:
            continue
        shard = shard_of(other)
        if shard is not None:
            affinity[shard] = affinity.get(shard, 0) + 1

    if not affinity:
        return assignment.lightest_shard()

    best_affinity = max(affinity.values())
    candidates = [s for s, c in affinity.items() if c == best_affinity]
    if scratch is not None:
        scratch.clear()
    if len(candidates) == 1:
        return candidates[0]
    counts = assignment.counts
    return min(candidates, key=lambda s: (counts[s], s))


def place_by_hash(vertex: int, k: int) -> int:
    """The HASH rule: shard = hash(vertex id) mod k."""
    return address_hash(vertex) % k


def place_randomly(k: int, rng: random.Random) -> int:
    """Uniform random placement (ablation baseline)."""
    return rng.randrange(k)


def place_lightest(assignment: ShardAssignment) -> int:
    """Always the emptiest shard (pure balance, ignores edges)."""
    return assignment.lightest_shard()
