"""The paper's contribution: partitioning the blockchain graph over time.

This package implements the five partitioning methods of §II-C —
HASH, KL (distributed Kernighan–Lin with a balance oracle), METIS
(periodic full-graph), R-METIS (periodic window-graph; "P-METIS" in the
paper's figures) and TR-METIS (threshold-triggered window-graph) — plus
the replay engine that streams the transaction history through a
method, places newly created vertices, triggers repartitionings and
records the per-window metric series.
"""

from repro.core.assignment import ShardAssignment
from repro.core.base import PartitionMethod, RepartitionEvent, ReplayContext
from repro.core.hashing import HashPartitioner
from repro.core.kl import KLPartitioner
from repro.core.metis_method import MetisPartitioner
from repro.core.rmetis import RMetisPartitioner
from repro.core.trmetis import TRMetisPartitioner
from repro.core.placement import place_by_min_cut
from repro.core.registry import available_methods, make_method
from repro.core.replay import ReplayEngine, ReplayResult
from repro.core.multireplay import MultiReplayEngine, replay_methods

__all__ = [
    "ShardAssignment",
    "PartitionMethod",
    "ReplayContext",
    "RepartitionEvent",
    "HashPartitioner",
    "KLPartitioner",
    "MetisPartitioner",
    "RMetisPartitioner",
    "TRMetisPartitioner",
    "place_by_min_cut",
    "make_method",
    "available_methods",
    "ReplayEngine",
    "ReplayResult",
    "MultiReplayEngine",
    "replay_methods",
]
