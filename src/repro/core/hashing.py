"""Method 1 — HASH (paper §II-C, first bullet).

Shard = hash(vertex id) mod k.  Placement depends on the id only, so a
vertex never moves and the method never repartitions: "There are no
moves since partitioning depends on vertex id only and once assigned to
a shard a vertex remains in the assigned shard."

Static balance is near-optimal (uniform hashing), but the method is
oblivious to edges, so the edge-cut approaches ``1 - 1/k`` — with k = 8
the paper measures ~88% multi-shard transactions.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.assignment import ShardAssignment
from repro.core.base import PartitionMethod, ReplayContext
from repro.core.placement import place_by_hash


class HashPartitioner(PartitionMethod):
    name = "hash"

    def __init__(self, k: int, seed: int = 0, salt: int = 0):
        super().__init__(k, seed)
        self.salt = salt

    def place_vertex(
        self,
        vertex: int,
        tx_endpoints: Sequence[int],
        assignment: ShardAssignment,
    ) -> int:
        from repro.ethereum.types import address_hash

        return address_hash(vertex, self.salt) % self.k

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        return None
