"""Extension method — FENNEL-style streaming partitioning.

The paper's five methods either ignore edges (HASH) or periodically
*re*-partition (KL, METIS family), paying moves.  A natural sixth point
in the design space — and the one a blockchain could deploy most easily,
since accounts are placed exactly once, at creation — is single-pass
streaming partitioning à la FENNEL (Tsourakakis et al., WSDM 2014):

    place v on the shard maximising  |N(v) ∩ shard|  −  γ · load(shard)ᵠ

i.e. neighbor affinity minus a convex load penalty.  Like HASH it never
moves a vertex (zero moves, no repartitioning); unlike HASH it looks at
the edges available at placement time.

We stream over *transaction endpoints* (what is known when the vertex
first appears) plus the vertex's accumulated neighborhood if it was
placed earlier in the same window — faithful to the streaming model.

This method is an extension beyond the paper (flagged in DESIGN.md and
EXPERIMENTS.md); benchmarks compare it against the paper's five.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.assignment import ShardAssignment
from repro.core.base import PartitionMethod, ReplayContext


class FennelPartitioner(PartitionMethod):
    name = "fennel"

    def __init__(
        self,
        k: int,
        seed: int = 0,
        gamma: float = 1.5,
        power: float = 2.0,
    ):
        """Args:
            gamma: weight of the load penalty relative to affinity
                (units: "equivalent neighbors at 1x average load").
            power: exponent of the convex load penalty.

        The penalty is ``gamma * (load/avg_load)^power`` — a scale-free
        variant of FENNEL's alpha*gamma*n^(gamma-1): the original fixes
        its scale from the final |V| and |E|, which a streaming
        blockchain cannot know in advance, so we normalise by the
        running average load instead.
        """
        super().__init__(k, seed)
        self.gamma = gamma
        self.power = power
        # scratch for the batch placement path: one affinity buffer and
        # one seen-set reused across placements instead of fresh
        # allocations per vertex
        self._affinity_scratch = [0.0] * k
        self._seen_scratch: set = set()

    def place_vertex(
        self,
        vertex: int,
        tx_endpoints: Sequence[int],
        assignment: ShardAssignment,
    ) -> int:
        # affinity: *distinct* co-endpoints of the introducing
        # transaction that already live somewhere.  tx_endpoints lists
        # src/dst per interaction in the bucket, so a counterparty
        # repeated across the transaction's calls would otherwise be
        # counted once per call — FENNEL's |N(v) ∩ shard| is over the
        # neighbor set, not the call multiset.
        affinity = [0.0] * self.k
        shard_of = assignment.shard_of
        seen = set()
        add_seen = seen.add
        for other in tx_endpoints:
            if other == vertex or other in seen:
                continue
            add_seen(other)
            shard = shard_of(other)
            if shard is not None:
                affinity[shard] += 1.0

        counts = assignment.counts
        total = sum(counts)
        avg = max(total / self.k, 1.0)

        gamma = self.gamma
        power = self.power
        best_shard = 0
        best_score = float("-inf")
        for s, count in enumerate(counts):
            score = affinity[s] - gamma * (count / avg) ** power
            if score > best_score:
                best_score = score
                best_shard = s
        return best_shard

    def place_new_vertices(
        self,
        vertices: Sequence[int],
        tx_endpoints: Sequence[int],
        assignment: ShardAssignment,
    ) -> None:
        # batch form of place_vertex over one transaction bucket:
        # identical affinity/score arithmetic in identical order, but
        # the affinity buffer and the distinct-endpoint set are scratch
        # state zeroed between vertices rather than re-allocated.
        # Placements are sequential — each score sees the counts left
        # by the previous assign, exactly like the per-vertex path.
        k = self.k
        affinity = self._affinity_scratch
        seen = self._seen_scratch
        shard_of = assignment._map.get
        counts = assignment._counts
        gamma = self.gamma
        power = self.power
        touched: list = []
        for vertex in vertices:
            if vertex in assignment:
                continue
            seen.clear()
            add_seen = seen.add
            for other in tx_endpoints:
                if other == vertex or other in seen:
                    continue
                add_seen(other)
                shard = shard_of(other)
                if shard is not None:
                    affinity[shard] += 1.0
                    touched.append(shard)

            total = sum(counts)
            avg = max(total / k, 1.0)
            best_shard = 0
            best_score = float("-inf")
            for s, count in enumerate(counts):
                score = affinity[s] - gamma * (count / avg) ** power
                if score > best_score:
                    best_score = score
                    best_shard = s
            for s in touched:
                affinity[s] = 0.0
            del touched[:]
            assignment.assign(vertex, best_shard)

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        return None  # streaming: placement is final, like HASH
