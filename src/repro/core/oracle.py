"""The balance oracle of the distributed KL method.

In the paper's KL design (§II-C) each shard selects vertices whose move
would reduce edge-cut and reports them to an oracle.  "The oracle
calculates the probability that each shard should move its selected
vertices to the other shards so that at the end shards remain balanced.
The oracle then sends the matrix to all the shards, which exchange
vertices with each other based on the probability matrix."

We implement the pairwise-exchange rule of Facebook's balanced label
propagation (the paper's reference [10]): for each ordered shard pair
(s, t), the oracle permits ``min(demand[s][t], demand[t][s])`` vertices
to move in each direction — a perfectly balance-preserving swap — so
the probability attached to (s, t) is that quantity divided by
``demand[s][t]``.  A relaxation factor allows some one-directional
slack, bounded by a per-shard weight budget.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class MoveProposal:
    """One shard's wish to move one vertex to another shard."""

    vertex: int
    src: int
    dst: int
    gain: int       # edge-cut reduction if the move happens (window weights)
    weight: int = 1  # vertex activity weight, for balance accounting


class BalanceOracle:
    """Computes the k×k migration probability matrix."""

    def __init__(self, k: int, slack: float = 0.0, weighted: bool = True):
        """Args:
            slack: ∈ [0, 1], extra one-directional fraction allowed on
                top of the perfectly balance-preserving pairwise swaps.
            weighted: match *activity weight* between shard pairs
                (preserves dynamic balance, the paper's objective)
                rather than vertex counts (static balance).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0.0 <= slack <= 1.0:
            raise ValueError(f"slack must be in [0, 1], got {slack}")
        self.k = k
        self.slack = slack
        self.weighted = weighted

    def demand_matrix(
        self, proposals: Sequence[MoveProposal]
    ) -> List[List[int]]:
        """demand[s][t] = how much shard s wants to send to t
        (vertex count, or total activity weight when ``weighted``)."""
        demand = [[0] * self.k for _ in range(self.k)]
        for p in proposals:
            if p.src == p.dst:
                raise ValueError(f"proposal moves vertex {p.vertex} nowhere")
            demand[p.src][p.dst] += p.weight if self.weighted else 1
        return demand

    def allowed_matrix(
        self,
        proposals: Sequence[MoveProposal],
        loads: Optional[Sequence[float]] = None,
    ) -> List[List[float]]:
        """allowed[s][t] = budget (count or weight) that may move s→t.

        The base budget is the balance-preserving pairwise swap
        ``min(demand[s][t], demand[t][s])`` plus the ``slack`` fraction
        of the surplus.  When current shard ``loads`` are supplied, a
        corrective term additionally lets an *overloaded* shard ship up
        to half its load surplus toward a lighter shard — this is what
        makes the oracle keep shards balanced over time rather than
        merely not making things worse.
        """
        demand = self.demand_matrix(proposals)
        allowed = [[0.0] * self.k for _ in range(self.k)]
        for s in range(self.k):
            for t in range(s + 1, self.k):
                d_st, d_ts = demand[s][t], demand[t][s]
                base = float(min(d_st, d_ts))
                extra = self.slack * abs(d_st - d_ts)
                a_st = base + (extra if d_st > d_ts else 0.0)
                a_ts = base + (extra if d_ts > d_st else 0.0)
                if loads is not None:
                    surplus = (loads[s] - loads[t]) / 2.0
                    if surplus > 0:
                        a_st += surplus
                    else:
                        a_ts += -surplus
                allowed[s][t] = min(d_st, a_st)
                allowed[t][s] = min(d_ts, a_ts)
        return allowed

    def probability_matrix(
        self,
        proposals: Sequence[MoveProposal],
        loads: Optional[Sequence[float]] = None,
    ) -> List[List[float]]:
        """P[s][t] = probability a vertex proposed for s→t may move.

        The diagonal is zero.  With ``slack`` = 0 and no ``loads`` the
        expected amount moving s→t equals the amount moving t→s, so
        shard sizes are preserved in expectation; with ``loads`` the
        probabilities are biased toward draining overloaded shards.
        """
        demand = self.demand_matrix(proposals)
        allowed = self.allowed_matrix(proposals, loads=loads)
        prob = [[0.0] * self.k for _ in range(self.k)]
        for s in range(self.k):
            for t in range(self.k):
                if s != t and demand[s][t] > 0:
                    prob[s][t] = min(1.0, allowed[s][t] / demand[s][t])
        return prob


def apply_probability_matrix(
    proposals: Sequence[MoveProposal],
    prob: Sequence[Sequence[float]],
    rng,
    budgets: Optional[Sequence[Sequence[float]]] = None,
    weighted: bool = True,
    prioritize_gain: bool = True,
) -> Dict[int, int]:
    """Shards execute the oracle's matrix.

    Each proposal succeeds with probability P[src][dst]; higher-gain
    proposals draw first so that when the budget is fractional the best
    moves are favoured.  When ``budgets`` is given, the realised amount
    moved on each (src, dst) pair is additionally capped at the budget
    — probabilities alone only bound the move *in expectation*, and a
    few heavy vertices can otherwise blow the balance.

    Returns the vertex → destination mapping of accepted moves.
    """
    accepted: Dict[int, int] = {}
    spent = [[0.0] * len(prob) for _ in prob] if budgets is not None else None
    ordered = (
        sorted(proposals, key=lambda p: (-p.gain, p.vertex))
        if prioritize_gain
        else list(proposals)
    )
    for p in ordered:
        cost = float(p.weight if weighted else 1)
        if spent is not None:
            if spent[p.src][p.dst] + cost > budgets[p.src][p.dst]:
                continue
        if rng.random() < prob[p.src][p.dst]:
            if spent is not None:
                spent[p.src][p.dst] += cost
            accepted[p.vertex] = p.dst
    return accepted
