"""Method 5 — TR-METIS, the threshold-triggered variant (§II-C).

"Instead of triggering a repartition at constant time intervals, we set
a threshold on the dynamic edge-cut and dynamic balance.  When the
threshold is reached, we run METIS to compute a new partitioning ...
The motivation ... is to reduce unnecessary repartitioning", and the
observed result is "a dramatic decrease in the number of moved
vertices, without compromising edge-cuts and balance".

Trigger design (the paper only says thresholds were "adjusted"; we make
the mechanism explicit and ablate it in ABL-THRESH):

* the trigger looks at the *window's* dynamic metrics — what a running
  sharded system can observe cheaply;
* balance is compared in normalised form ``(balance-1)/(k-1)`` so one
  threshold works for any shard count;
* the threshold must be exceeded for ``consecutive`` windows before a
  repartitioning fires, filtering out single-window noise;
* a cooldown bounds the repartition frequency from above, and a
  max-interval safety net bounds staleness from below.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.base import PartitionMethod, ReplayContext
from repro.core.rmetis import RMetisPartitioner
from repro.graph.snapshot import DAY, REPARTITION_PERIOD
from repro.metrics.balance import normalized_balance


class TRMetisPartitioner(RMetisPartitioner):
    name = "tr-metis"

    def __init__(
        self,
        k: int,
        seed: int = 0,
        cut_threshold: Optional[float] = None,
        balance_threshold: float = 0.45,
        consecutive: int = 3,
        cooldown: float = 7 * DAY,
        max_interval: float = 6 * REPARTITION_PERIOD,
        ubfactor: float = 1.05,
        ntrials: int = 4,
        warm: bool = False,
    ):
        """Args:
            cut_threshold: repartition when the window dynamic edge-cut
                exceeds this for ``consecutive`` windows.  Defaults to
                ``0.85 * (1 - 1/k)`` — a fixed fraction of the hashing
                (edge-oblivious) cut level, so the trigger means "we
                have lost most of the benefit over random placement"
                for any shard count.
            balance_threshold: ...or when the *normalised* window
                dynamic balance ``(b-1)/(k-1)`` exceeds this.
            consecutive: windows the condition must hold in a row.
            cooldown: minimum seconds between repartitionings.
            max_interval: repartition anyway after this long (safety
                net, ~3 months by default; rarely reached in practice).
            warm: warm-start each triggered repartition from the live
                assignment on the ColumnarLog-built window graph (see
                :mod:`repro.core.rmetis`).
        """
        super().__init__(
            k, seed, period=max_interval, ubfactor=ubfactor, ntrials=ntrials,
            warm=warm,
        )
        if cut_threshold is None:
            cut_threshold = 0.85 * (1.0 - 1.0 / k)
        self.cut_threshold = cut_threshold
        self.balance_threshold = balance_threshold
        self.consecutive = max(1, consecutive)
        self.cooldown = cooldown
        self.max_interval = max_interval
        self._streak = 0

    def begin_replay(self) -> None:
        super().begin_replay()
        self._streak = 0

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        above = (
            ctx.window_dynamic_edge_cut > self.cut_threshold
            or normalized_balance(ctx.window_dynamic_balance, self.k) > self.balance_threshold
        )
        self._streak = self._streak + 1 if above else 0

        elapsed = ctx.elapsed_since_repartition
        if elapsed < self.cooldown:
            return None
        if self._streak < self.consecutive and elapsed < self.max_interval:
            return None
        proposal = self.partition_window(ctx)
        if proposal is not None:
            self._streak = 0
        return proposal
