"""Partition-method interface and the replay context it sees.

A :class:`PartitionMethod` answers two questions:

1. *Where does a brand-new vertex go?*  (:meth:`place_vertex`) — by
   default the paper's min-edge-cut / max-balance rule over the other
   accounts in the same transaction (§II-C, METIS bullet); HASH
   overrides it with the hash rule.
2. *Should the system repartition now, and into what?*
   (:meth:`maybe_repartition`) — called once per metric window with a
   :class:`ReplayContext`; returning a mapping triggers a
   repartitioning (vertices absent from the mapping keep their shard).

The replay engine owns all bookkeeping (assignment, metrics, move
counting); methods are pure decision logic, which keeps each of the
paper's five methods to a page.
"""

from __future__ import annotations

import abc
import dataclasses
import random
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.assignment import ShardAssignment
from repro.core.placement import place_by_min_cut
from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import WeightedDiGraph


@dataclasses.dataclass
class ReplayContext:
    """Everything a method may look at when making decisions.

    Attributes:
        now: end timestamp of the window just processed.
        k: number of shards.
        assignment: the live assignment (methods must not mutate it;
            they return proposed mappings instead).
        graph: the cumulative blockchain graph up to ``now``.
        window_interactions: interactions of the window just processed.
        period_interactions: interactions since the last repartitioning
            (the R-METIS / TR-METIS / KL input).
        period_graph: graph of ``period_interactions`` (built lazily by
            the engine on first access within a window).
        last_repartition_ts: when the last repartitioning happened
            (genesis if never).
        window_dynamic_edge_cut: dynamic edge-cut of the window just
            processed (TR-METIS trigger input).
        window_dynamic_balance: dynamic balance of the window just
            processed (TR-METIS trigger input).
        rng: the method's own seeded RNG.
        columnar_log: the shared :class:`ColumnarLog` when the replay
            streams one (else None).  Methods that can consume dense
            vertex indices (warm-started METIS) read the log columns
            directly instead of rebuilding graphs from ``graph`` /
            ``period_interactions``.
        log_hi: rows ``[0, log_hi)`` of ``columnar_log`` are exactly
            the interactions replayed so far (the cumulative graph).
        log_period_start: first row of the current repartition period;
            rows ``[log_period_start, log_hi)`` are
            ``period_interactions``.
    """

    now: float
    k: int
    assignment: ShardAssignment
    graph: WeightedDiGraph
    window_interactions: Sequence[Interaction]
    period_interactions: Sequence[Interaction]
    last_repartition_ts: float
    window_dynamic_edge_cut: float
    window_dynamic_balance: float
    rng: random.Random
    _period_graph_cache: Optional[WeightedDiGraph] = None
    columnar_log: Optional[ColumnarLog] = None
    log_hi: int = 0
    log_period_start: int = 0

    @property
    def period_graph(self) -> WeightedDiGraph:
        """Reduced graph of interactions since the last repartitioning.

        With a columnar log underneath, the graph is aggregated by the
        batch kernels straight from the dense columns (identical output,
        no per-row Interaction boxing); otherwise it falls back to the
        boxed builder.
        """
        if self._period_graph_cache is None:
            if self.columnar_log is not None:
                from repro.graph.builder import build_graph_columnar

                self._period_graph_cache = build_graph_columnar(
                    self.columnar_log, self.log_period_start, self.log_hi)
            else:
                from repro.graph.builder import build_graph

                self._period_graph_cache = build_graph(self.period_interactions)
        return self._period_graph_cache

    @property
    def elapsed_since_repartition(self) -> float:
        return self.now - self.last_repartition_ts


@dataclasses.dataclass(frozen=True)
class RepartitionEvent:
    """One repartitioning, as recorded by the replay engine."""

    ts: float
    moves: int
    reassigned: int          # vertices covered by the method's proposal
    reason: str = "periodic"


class PartitionMethod(abc.ABC):
    """Base class of the five methods.

    Subclasses set :attr:`name` and implement :meth:`maybe_repartition`;
    HASH additionally overrides :meth:`place_vertex`.
    """

    #: Short method name used in figures and the registry.
    name: str = "abstract"

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.seed = seed
        self.rng = random.Random(seed)
        # reused by the default batch placement path so the min-cut
        # rule does not allocate an affinity map per vertex
        self._mincut_scratch: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def begin_replay(self) -> None:
        """Hook called by the replay engine at the start of each run.

        Methods that accumulate per-replay state beyond their RNG (the
        warm-started METIS variants keep an incremental graph builder,
        a coarsening-ladder cache and the previous assignment) override
        this to drop it, so a method instance reused across engines
        never warm-starts one replay from another's state.  The base
        implementation is a no-op.
        """

    def place_vertex(
        self,
        vertex: int,
        tx_endpoints: Sequence[int],
        assignment: ShardAssignment,
    ) -> int:
        """Shard for a vertex appearing for the first time.

        ``tx_endpoints`` are all accounts involved in the transaction
        that introduced the vertex.  The default implements the paper's
        rule: pick the shard that minimises edge-cuts; ties maximise
        balance.
        """
        return place_by_min_cut(vertex, tx_endpoints, assignment)

    def place_new_vertices(
        self,
        vertices: Sequence[int],
        tx_endpoints: Sequence[int],
        assignment: ShardAssignment,
    ) -> None:
        """Place every not-yet-assigned vertex of one transaction bucket.

        The replay engine calls this with the bucket's first-seen
        vertices in appearance order instead of testing every endpoint
        per method.  Contract: placements happen sequentially in the
        given order, and placement rules may read the assignment's map
        and per-shard vertex *counts* but never the activity weights
        (the engine folds those in separately after placement).
        Subclasses with per-vertex scratch state override this; the
        default routes through :meth:`place_vertex`, feeding the
        min-cut rule a reused scratch map when it is not overridden.
        """
        if type(self).place_vertex is PartitionMethod.place_vertex:
            scratch = self._mincut_scratch
            for v in vertices:
                if v not in assignment:
                    assignment.assign(
                        v,
                        place_by_min_cut(v, tx_endpoints, assignment, scratch),
                    )
        else:
            for v in vertices:
                if v not in assignment:
                    assignment.assign(
                        v, self.place_vertex(v, tx_endpoints, assignment))

    @abc.abstractmethod
    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        """Return a vertex → shard mapping to repartition, or None.

        The mapping need not cover every vertex: uncovered vertices keep
        their current shard (this is how R-METIS leaves dormant
        vertices alone).
        """

    def describe(self) -> str:
        """One-line human description, used by the experiment CLI."""
        return f"{self.name} (k={self.k}, seed={self.seed})"
