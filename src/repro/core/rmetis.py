"""Method 4 — R-METIS, the reduced-graph variant (§II-C).

"This graph contains all accounts, contracts, and their interactions
within a fixed window of time (two weeks), which starts at the last
(re)partitioning."  Only vertices *active* in the window are
repartitioned; dormant vertices — including the attack-period dummies —
keep their shard and stop distorting the balance objective, which is
why the paper reports a much better dynamic balance than full METIS,
and far fewer moves ("because they use a smaller graph").

The paper's Figs. 4–5 label this method **P-METIS** (periodic METIS on
the reduced graph); the registry accepts both names.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.base import PartitionMethod, ReplayContext
from repro.graph.snapshot import REPARTITION_PERIOD
from repro.metis import part_graph


class RMetisPartitioner(PartitionMethod):
    name = "r-metis"

    def __init__(
        self,
        k: int,
        seed: int = 0,
        period: float = REPARTITION_PERIOD,
        ubfactor: float = 1.05,
        ntrials: int = 4,
    ):
        super().__init__(k, seed)
        self.period = period
        self.ubfactor = ubfactor
        self.ntrials = ntrials
        self._run = 0

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        if ctx.elapsed_since_repartition < self.period:
            return None
        return self.partition_window(ctx)

    def partition_window(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        """Partition the window graph; shared with TR-METIS."""
        window = ctx.period_graph
        if window.num_vertices < self.k:
            return None
        self._run += 1
        result = part_graph(
            window,
            self.k,
            seed=self.seed * 10_007 + self._run,
            ubfactor=self.ubfactor,
            ntrials=self.ntrials,
        )
        return result.assignment
