"""Method 4 — R-METIS, the reduced-graph variant (§II-C).

"This graph contains all accounts, contracts, and their interactions
within a fixed window of time (two weeks), which starts at the last
(re)partitioning."  Only vertices *active* in the window are
repartitioned; dormant vertices — including the attack-period dummies —
keep their shard and stop distorting the balance objective, which is
why the paper reports a much better dynamic balance than full METIS,
and far fewer moves ("because they use a smaller graph").

The paper's Figs. 4–5 label this method **P-METIS** (periodic METIS on
the reduced graph); the registry accepts both names.

Warm mode (``warm=True``, off by default): with a ColumnarLog-backed
replay, the reduced window graph is built straight from the log's dense
index columns (:meth:`~repro.metis.graph.CSRGraph.from_columnar` over
the period's row range — no ``Interaction`` boxing, no
``WeightedDiGraph``) and the partitioner warm-starts from the *live*
assignment, so window vertices tend to keep their current shard and
only boundary refinement runs.  The coarsening ladder cache is **not**
used here (successive windows are different graphs, not grown versions
of one graph, so a cached hierarchy would not transfer), and there is
no growth-threshold knob either: every window vertex was placed by the
replay before the repartition fires, so the warm projection always
covers the whole window graph.  The same
shard-relabeling caveat as warm full-METIS applies — warm runs inherit
labels, cold runs relabel freely, so their move counts measure
different things.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.base import PartitionMethod, ReplayContext
from repro.graph.snapshot import REPARTITION_PERIOD
from repro.metis import CSRGraph, part_graph


class RMetisPartitioner(PartitionMethod):
    name = "r-metis"

    def __init__(
        self,
        k: int,
        seed: int = 0,
        period: float = REPARTITION_PERIOD,
        ubfactor: float = 1.05,
        ntrials: int = 4,
        warm: bool = False,
    ):
        super().__init__(k, seed)
        self.period = period
        self.ubfactor = ubfactor
        self.ntrials = ntrials
        self.warm = warm
        self._run = 0

    def begin_replay(self) -> None:
        """Rewind the run counter so a reused instance derives the same
        part_graph seed sequence every replay (no-op when fresh)."""
        self._run = 0

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        if ctx.elapsed_since_repartition < self.period:
            return None
        return self.partition_window(ctx)

    def partition_window(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        """Partition the window graph; shared with TR-METIS."""
        if self.warm and ctx.columnar_log is not None:
            return self._partition_window_warm(ctx)
        window = ctx.period_graph
        if window.num_vertices < self.k:
            return None
        self._run += 1
        result = part_graph(
            window,
            self.k,
            seed=self.seed * 10_007 + self._run,
            ubfactor=self.ubfactor,
            ntrials=self.ntrials,
        )
        return result.assignment

    def _partition_window_warm(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        log = ctx.columnar_log
        assert log is not None
        csr = CSRGraph.from_columnar(
            log, start=ctx.log_period_start, stop=ctx.log_hi, vertex_weights="unit"
        )
        if csr.num_vertices < self.k:
            return None
        assert csr.orig_ids is not None
        shard_of = ctx.assignment.shard_of
        warm_start = {}
        for vid in csr.orig_ids:
            s = shard_of(vid)
            if s is not None:
                warm_start[vid] = s
        self._run += 1
        result = part_graph(
            csr,
            self.k,
            seed=self.seed * 10_007 + self._run,
            ubfactor=self.ubfactor,
            ntrials=self.ntrials,
            warm_start=warm_start or None,
        )
        return result.assignment
