"""Single-pass multi-method replay: one log stream, N method fan-outs.

Every figure and benchmark that compares partitioning methods replays
the *same* interaction log once per method.  All of that work except
the method's own decisions is identical across runs: the window
slicing, the transaction grouping, the cumulative
:class:`~repro.graph.digraph.WeightedDiGraph` and the distinct-edge
detection do not depend on the method at all.

:class:`MultiReplayEngine` streams the log exactly once and maintains
the shared state a single time, fanning out only the per-method parts:

* the :class:`~repro.core.assignment.ShardAssignment` (placement is
  method- and history-dependent),
* the incremental static-cut counter (depends on the assignment),
* the per-window dynamic counters, the
  :class:`~repro.metrics.series.MetricSeries` and the repartition
  events.

For deterministic (seeded) methods the results are bit-identical to N
independent :class:`~repro.core.replay.ReplayEngine` runs — the single
engine is in fact implemented as a one-method fan-out, so there is
only one streaming loop in the codebase.  The shared cumulative graph
is built once and the *same* object is referenced by every
:class:`~repro.core.replay.ReplayResult`; treat it as read-only.

The log may be a plain ``Sequence[Interaction]`` or a
:class:`~repro.graph.columnar.ColumnarLog`; with the columnar form,
window boundaries resolve by bisect and rows materialise lazily, one
window at a time.

This engine is the execution substrate of the declarative experiment
API: :func:`repro.experiments.run.run_experiment` plans a (method × k
× seed) grid, shares one engine pass per worker, and serializes the
fan-out into a :class:`~repro.experiments.results.ResultSet` — prefer
that entry point for sweeps (parallelism, on-disk resume); construct
the engine directly for one-off method studies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.assignment import ShardAssignment
from repro.core.base import PartitionMethod, RepartitionEvent, ReplayContext
from repro.core.replay import ReplayResult, apply_proposal, recount_static_cut
from repro.graph.builder import Interaction, group_by_transaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import WeightedDiGraph
from repro.graph.snapshot import METRIC_WINDOW
from repro.metrics.series import MetricPoint, MetricSeries


class _LogView(Sequence):
    """Zero-copy, immutable view of ``log[start:stop]``.

    Period buffers always cover a contiguous suffix of the streamed
    log (they reset only at window boundaries), so every method's
    ``period_interactions`` can share the one log instead of holding
    its own boxed copy — with a :class:`ColumnarLog` underneath, rows
    materialise only when a method actually reads them.
    """

    __slots__ = ("_log", "_start", "_stop")

    def __init__(self, log, start: int, stop: int):
        self._log = log
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self):
        log = self._log
        for i in range(self._start, self._stop):
            yield log[i]

    def __getitem__(self, i):
        n = self._stop - self._start
        if isinstance(i, slice):
            start, stop, step = i.indices(n)
            return [self._log[self._start + j] for j in range(start, stop, step)]
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        return self._log[self._start + i]


class _MethodState:
    """Everything one method accumulates during the shared pass."""

    __slots__ = (
        "method", "k", "assignment", "series", "events",
        "static_cut", "total_moves", "last_repartition_ts", "period_start",
    )

    def __init__(self, method: PartitionMethod, first_ts: float):
        self.method = method
        self.k = method.k
        self.assignment = ShardAssignment(method.k)
        self.series = MetricSeries(method=method.name, k=method.k)
        self.events: List[RepartitionEvent] = []
        self.static_cut = 0
        self.total_moves = 0
        self.last_repartition_ts = first_ts
        # index into the shared log where this method's current
        # repartition period begins
        self.period_start = 0

    def result(self, graph: WeightedDiGraph) -> ReplayResult:
        return ReplayResult(
            method=self.method.name,
            k=self.k,
            series=self.series,
            assignment=self.assignment,
            events=self.events,
            graph=graph,
        )


class MultiReplayEngine:
    """Replays an interaction log through many methods in one pass."""

    def __init__(
        self,
        interactions: Union[Sequence[Interaction], ColumnarLog],
        methods: Sequence[PartitionMethod],
        metric_window: float = METRIC_WINDOW,
        end_ts: Optional[float] = None,
    ):
        """Args:
            interactions: the full, time-ordered interaction log — a
                plain sequence or a :class:`ColumnarLog`.
            methods: the partitioning methods under study.  Must be
                distinct instances (each carries its own RNG and
                repartitioning state); methods may use different ``k``.
            metric_window: sampling window width in seconds (paper: 4h).
            end_ts: replay horizon; defaults to one second past the
                last interaction (the final-partial-window contract).
        """
        if metric_window <= 0:
            raise ValueError("metric_window must be positive")
        if len(set(map(id, methods))) != len(methods):
            raise ValueError("methods must be distinct instances")
        if isinstance(interactions, ColumnarLog):
            self.clog: Optional[ColumnarLog] = interactions
            self.log: Sequence[Interaction] = interactions
            n = len(interactions)
            first = interactions.first_timestamp if n else 0.0
            last = interactions.last_timestamp if n else 0.0
        else:
            self.clog = None
            self.log = interactions
            n = len(interactions)
            first = interactions[0].timestamp if n else 0.0
            last = interactions[-1].timestamp if n else 0.0
        self.methods = list(methods)
        self.metric_window = metric_window
        self._first_ts = first
        if end_ts is None:
            # one full second past the last interaction: a naive +epsilon
            # is absorbed by float rounding at multi-year timestamps and
            # silently drops the final window
            end_ts = (last + 1.0) if n else 0.0
        self.end_ts = end_ts

    # ------------------------------------------------------------------

    def run(self) -> List[ReplayResult]:
        """One pass over the log; results in ``methods`` order."""
        log = self.log
        clog = self.clog
        n_log = len(log)
        metric_window = self.metric_window
        end_ts = self.end_ts

        graph = WeightedDiGraph()
        for m in self.methods:
            m.begin_replay()
        states = [_MethodState(m, self._first_ts) for m in self.methods]
        distinct_edges = 0

        idx = 0
        window_start = self._first_ts if n_log else 0.0

        while window_start < end_ts:
            window_end = window_start + metric_window

            # slice this window's interactions off the shared log
            lo = idx
            if clog is not None:
                idx = max(clog.index_at(window_end), lo)
                window: Sequence[Interaction] = clog[lo:idx]
            else:
                while idx < n_log and log[idx].timestamp < window_end:
                    idx += 1
                window = log[lo:idx]

            # shared pass: grow the cumulative graph exactly once and
            # precompute, per transaction bucket, the placement input
            # (endpoint appearance order) and the accounting rows
            # (src, dst, new-edge?) every method will replay against its
            # own assignment
            bucket_inputs: List = []
            for _tx_id, bucket in group_by_transaction(window):
                endpoints: List[int] = []
                append_endpoint = endpoints.append
                for it in bucket:
                    append_endpoint(it.src)
                    append_endpoint(it.dst)
                for it in bucket:
                    graph.add_vertex(it.src, it.src_kind, 0, it.timestamp)
                    graph.add_vertex(it.dst, it.dst_kind, 0, it.timestamp)
                rows: List = []
                append_row = rows.append
                for it in bucket:
                    src, dst = it.src, it.dst
                    is_new_edge = not graph.has_edge(src, dst)
                    graph.add_vertex_weight(src, 1)
                    if dst != src:
                        graph.add_vertex_weight(dst, 1)
                    graph.add_edge(src, dst, 1)
                    if src != dst and is_new_edge:
                        # static cut counts distinct *directed* edges,
                        # per the paper's directed-graph formulation
                        distinct_edges += 1
                    append_row((src, dst, is_new_edge))
                bucket_inputs.append((endpoints, rows))

            # fan-out: placement, accounting and the window close for
            # each method, with its state bound once per window
            for st in states:
                method = st.method
                assignment = st.assignment
                k = st.k
                place_vertex = method.place_vertex
                assign = assignment.assign
                # hot path: bind the assignment's internals once per
                # window instead of paying a method call per endpoint
                # (equivalent to assignment[v] / assignment.add_weight)
                shard_map = assignment._map
                shard_weights = assignment._weights
                load = [0] * k
                wcut = 0
                wtotal = 0
                static_cut = st.static_cut
                for endpoints, rows in bucket_inputs:
                    for v in endpoints:
                        if v not in shard_map:
                            assign(v, place_vertex(v, endpoints, assignment))
                    for src, dst, is_new_edge in rows:
                        s_src = shard_map[src]
                        shard_weights[s_src] += 1
                        if src == dst:
                            continue
                        s_dst = shard_map[dst]
                        shard_weights[s_dst] += 1
                        if s_src != s_dst:
                            if is_new_edge:
                                static_cut += 1
                            wcut += 1
                            load[s_src] += 1
                            load[s_dst] += 1
                        else:
                            load[s_src] += 2
                        wtotal += 1
                st.static_cut = static_cut

                # window close: metrics, repartition offer, series point
                dyn_cut = wcut / wtotal if wtotal else 0.0
                load_total = sum(load)
                dyn_balance = (
                    (max(load) * k / load_total) if load_total else 1.0
                )

                ctx = ReplayContext(
                    now=window_end,
                    k=k,
                    assignment=assignment,
                    graph=graph,
                    window_interactions=window,
                    period_interactions=_LogView(log, st.period_start, idx),
                    last_repartition_ts=st.last_repartition_ts,
                    window_dynamic_edge_cut=dyn_cut,
                    window_dynamic_balance=dyn_balance,
                    rng=method.rng,
                    columnar_log=clog,
                    log_hi=idx,
                    log_period_start=st.period_start,
                )
                proposal = method.maybe_repartition(ctx)
                if proposal is not None:
                    moves = apply_proposal(proposal, assignment, graph)
                    st.total_moves += moves
                    st.static_cut = recount_static_cut(graph, assignment)
                    st.period_start = idx
                    st.last_repartition_ts = window_end
                    st.events.append(
                        RepartitionEvent(
                            ts=window_end,
                            moves=moves,
                            reassigned=len(proposal),
                            reason=method.name,
                        )
                    )

                st.series.append(
                    MetricPoint(
                        ts=window_start,
                        static_edge_cut=(
                            (st.static_cut / distinct_edges) if distinct_edges else 0.0
                        ),
                        dynamic_edge_cut=dyn_cut,
                        static_balance=assignment.static_balance(),
                        dynamic_balance=dyn_balance,
                        cumulative_moves=st.total_moves,
                        interactions=len(window),
                    )
                )

            window_start = window_end

        return [st.result(graph) for st in states]


def replay_methods(
    interactions: Union[Sequence[Interaction], ColumnarLog],
    methods: Sequence[PartitionMethod],
    metric_window: float = METRIC_WINDOW,
) -> List[ReplayResult]:
    """Convenience one-call multi-method replay (results in input order)."""
    return MultiReplayEngine(interactions, methods, metric_window=metric_window).run()
