"""Single-pass multi-method replay: one log stream, N method fan-outs.

Every figure and benchmark that compares partitioning methods replays
the *same* interaction log once per method.  All of that work except
the method's own decisions is identical across runs: the window
slicing, the transaction grouping, the cumulative
:class:`~repro.graph.digraph.WeightedDiGraph` and the distinct-edge
detection do not depend on the method at all.

:class:`MultiReplayEngine` streams the log exactly once and maintains
the shared state a single time, fanning out only the per-method parts:

* the :class:`~repro.core.assignment.ShardAssignment` (placement is
  method- and history-dependent),
* the incremental static-cut counter (depends on the assignment),
* the per-window dynamic counters, the
  :class:`~repro.metrics.series.MetricSeries` and the repartition
  events.

For deterministic (seeded) methods the results are bit-identical to N
independent :class:`~repro.core.replay.ReplayEngine` runs — the single
engine is in fact implemented as a one-method fan-out, so there is
only one streaming loop in the codebase.  The shared cumulative graph
is built once and the *same* object is referenced by every
:class:`~repro.core.replay.ReplayResult`; treat it as read-only.

The log may be a plain ``Sequence[Interaction]`` or a
:class:`~repro.graph.columnar.ColumnarLog`; with the columnar form,
window boundaries resolve by bisect and rows materialise lazily, one
window at a time.

This engine is the execution substrate of the declarative experiment
API: :func:`repro.experiments.run.run_experiment` plans a (method × k
× seed) grid, shares one engine pass per worker, and serializes the
fan-out into a :class:`~repro.experiments.results.ResultSet` — prefer
that entry point for sweeps (parallelism, on-disk resume); construct
the engine directly for one-off method studies.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Union

from repro import kernels
from repro.core.assignment import ShardAssignment
from repro.core.base import PartitionMethod, RepartitionEvent, ReplayContext
from repro.core.replay import ReplayResult, apply_proposal
from repro.graph.builder import Interaction
from repro.graph.columnar import _KIND_LIST, ColumnarLog
from repro.graph.digraph import VertexKind, WeightedDiGraph
from repro.graph.snapshot import METRIC_WINDOW
from repro.kernels import PACK_MASK, PACK_SHIFT, StreamState
from repro.metrics.series import MetricPoint, MetricSeries

_CONTRACT = VertexKind.CONTRACT


class _LogView(Sequence):
    """Zero-copy, immutable view of ``log[start:stop]``.

    Period buffers always cover a contiguous suffix of the streamed
    log (they reset only at window boundaries), so every method's
    ``period_interactions`` can share the one log instead of holding
    its own boxed copy — with a :class:`ColumnarLog` underneath, rows
    materialise only when a method actually reads them.
    """

    __slots__ = ("_log", "_start", "_stop")

    def __init__(self, log, start: int, stop: int):
        self._log = log
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self):
        log = self._log
        for i in range(self._start, self._stop):
            yield log[i]

    def __getitem__(self, i):
        n = self._stop - self._start
        if isinstance(i, slice):
            start, stop, step = i.indices(n)
            return [self._log[self._start + j] for j in range(start, stop, step)]
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        return self._log[self._start + i]


class _MethodState:
    """Everything one method accumulates during the shared pass."""

    __slots__ = (
        "method", "k", "assignment", "series", "events",
        "static_cut", "total_moves", "last_repartition_ts", "period_start",
        "shard_arr",
    )

    def __init__(self, method: PartitionMethod, first_ts: float):
        self.method = method
        self.k = method.k
        self.assignment = ShardAssignment(method.k)
        self.series = MetricSeries(method=method.name, k=method.k)
        self.events: List[RepartitionEvent] = []
        self.static_cut = 0
        self.total_moves = 0
        self.last_repartition_ts = first_ts
        # index into the shared log where this method's current
        # repartition period begins
        self.period_start = 0
        # the assignment mirrored as a dense-index array (shard of the
        # vertex with dense index i) — the accounting kernels' input
        self.shard_arr = array("i")

    def result(self, graph: WeightedDiGraph) -> ReplayResult:
        return ReplayResult(
            method=self.method.name,
            k=self.k,
            series=self.series,
            assignment=self.assignment,
            events=self.events,
            graph=graph,
        )


class MultiReplayEngine:
    """Replays an interaction log through many methods in one pass."""

    def __init__(
        self,
        interactions: Union[Sequence[Interaction], ColumnarLog],
        methods: Sequence[PartitionMethod],
        metric_window: float = METRIC_WINDOW,
        end_ts: Optional[float] = None,
    ):
        """Args:
            interactions: the full, time-ordered interaction log — a
                plain sequence or a :class:`ColumnarLog`.
            methods: the partitioning methods under study.  Must be
                distinct instances (each carries its own RNG and
                repartitioning state); methods may use different ``k``.
            metric_window: sampling window width in seconds (paper: 4h).
            end_ts: replay horizon; defaults to one second past the
                last interaction (the final-partial-window contract).
        """
        if metric_window <= 0:
            raise ValueError("metric_window must be positive")
        if len(set(map(id, methods))) != len(methods):
            raise ValueError("methods must be distinct instances")
        if isinstance(interactions, ColumnarLog):
            self.clog: Optional[ColumnarLog] = interactions
            self.log: Sequence[Interaction] = interactions
            self._kclog = interactions
            n = len(interactions)
            first = interactions.first_timestamp if n else 0.0
            last = interactions.last_timestamp if n else 0.0
        else:
            self.clog = None
            self.log = interactions
            # the batch kernels consume dense columns, so a plain
            # sequence is interned into a private ColumnarLog up front;
            # ``clog`` stays None on purpose — methods gate columnar
            # fast paths (warm METIS) on the *caller* providing one
            self._kclog = ColumnarLog(interactions)
            n = len(interactions)
            first = interactions[0].timestamp if n else 0.0
            last = interactions[-1].timestamp if n else 0.0
        self.methods = list(methods)
        self.metric_window = metric_window
        self._first_ts = first
        if end_ts is None:
            # one full second past the last interaction: a naive +epsilon
            # is absorbed by float rounding at multi-year timestamps and
            # silently drops the final window
            end_ts = (last + 1.0) if n else 0.0
        self.end_ts = end_ts

    # ------------------------------------------------------------------

    def run(self) -> List[ReplayResult]:
        """One pass over the log; results in ``methods`` order."""
        log = self.log
        clog = self.clog
        kclog = self._kclog
        n_log = len(log)
        metric_window = self.metric_window
        end_ts = self.end_ts

        # batch-kernel inputs: the raw dense columns and the shared
        # stream state (max streamed vertex, distinct-edge set)
        kr = kernels.active()
        stream = StreamState()
        ts_col = kclog.timestamps()
        src_col = kclog.src_indices()
        dst_col = kclog.dst_indices()
        tx_col = kclog.tx_ids()
        sk_col = kclog.src_kind_codes()
        dk_col = kclog.dst_kind_codes()
        vertex_id = kclog.vertex_id

        graph = WeightedDiGraph()
        add_vertex = graph.add_vertex
        add_edge = graph.add_edge
        add_vertex_weight = graph.add_vertex_weight
        for m in self.methods:
            m.begin_replay()
        states = [_MethodState(m, self._first_ts) for m in self.methods]
        distinct_edges = 0

        idx = 0
        window_start = self._first_ts if n_log else 0.0

        while window_start < end_ts:
            window_end = window_start + metric_window
            lo = idx
            idx = max(kclog.index_at(window_end), lo)

            # shared pass: one kernel call bucketises the window
            # (first-seen vertices per transaction, edge/vertex weight
            # folds, never-seen-before edges), then the cumulative graph
            # grows in bulk — vertex and adjacency insertion orders are
            # identical to the per-row legacy loop (the kernel contract,
            # see docs/kernels.md)
            batch = kr.window_pass(
                ts_col, src_col, dst_col, tx_col, sk_col, dk_col,
                lo, idx, stream)
            new_pairs: List = []
            for dense, kind_code, first_ts in batch.first_seen:
                raw = vertex_id(dense)
                new_pairs.append((dense, raw))
                add_vertex(raw, _KIND_LIST[kind_code], 0, first_ts)
            for dense in batch.upgrades:
                add_vertex(vertex_id(dense), _CONTRACT)
            for packed, weight in batch.edge_weights.items():
                add_edge(vertex_id(packed >> PACK_SHIFT),
                         vertex_id(packed & PACK_MASK), weight)
            for dense, delta in batch.vertex_weights.items():
                add_vertex_weight(vertex_id(dense), delta)
            # static cut counts distinct *directed* edges, per the
            # paper's directed-graph formulation
            distinct_edges += len(batch.new_edges)
            stream.record_new_edges(batch.new_edges)

            # placement inputs, shared across methods: the raw endpoint
            # appearance list of each transaction bucket that introduced
            # at least one first-seen vertex (all other buckets skip the
            # placement loop entirely)
            group_inputs: List = []
            for g_lo, g_hi, new_dense in batch.placement_groups:
                endpoints: List[int] = []
                append_endpoint = endpoints.append
                for i in range(g_lo, g_hi):
                    append_endpoint(vertex_id(src_col[i]))
                    append_endpoint(vertex_id(dst_col[i]))
                group_inputs.append(
                    ([vertex_id(d) for d in new_dense], endpoints))

            window_rows = idx - lo
            window_view = _LogView(log, lo, idx)

            # fan-out: placement, accounting and the window close for
            # each method.  Placement first, bulk accounting second —
            # equivalent to the legacy interleaved walk because
            # placement rules read only the shard map and vertex counts,
            # never the activity weights accounting mutates.
            for st in states:
                method = st.method
                assignment = st.assignment
                k = st.k
                shard_map = assignment._map
                shard_arr = st.shard_arr
                if new_pairs:
                    shard_arr.extend([-1] * len(new_pairs))
                    place_new = method.place_new_vertices
                    for new_raws, endpoints in group_inputs:
                        place_new(new_raws, endpoints, assignment)
                    for dense, raw in new_pairs:
                        shard_arr[dense] = shard_map[raw]

                wcut, wtotal, load, weight_delta, static_delta = (
                    kr.account_window(src_col, dst_col, lo, idx,
                                      batch.new_edges, shard_arr, k))
                shard_weights = assignment._weights
                for shard in range(k):
                    shard_weights[shard] += weight_delta[shard]
                st.static_cut += static_delta

                # window close: metrics, repartition offer, series point
                dyn_cut = wcut / wtotal if wtotal else 0.0
                load_total = sum(load)
                dyn_balance = (
                    (max(load) * k / load_total) if load_total else 1.0
                )

                ctx = ReplayContext(
                    now=window_end,
                    k=k,
                    assignment=assignment,
                    graph=graph,
                    window_interactions=window_view,
                    period_interactions=_LogView(log, st.period_start, idx),
                    last_repartition_ts=st.last_repartition_ts,
                    window_dynamic_edge_cut=dyn_cut,
                    window_dynamic_balance=dyn_balance,
                    rng=method.rng,
                    columnar_log=clog,
                    log_hi=idx,
                    log_period_start=st.period_start,
                )
                proposal = method.maybe_repartition(ctx)
                if proposal is not None:
                    moves = apply_proposal(proposal, assignment, graph)
                    st.total_moves += moves
                    # resync the dense mirror for moved vertices, then
                    # recount the static cut over the accumulated
                    # distinct-edge arrays (identical to walking the
                    # graph's edges: they are the same edge set)
                    index_of = kclog._index()
                    n_streamed = len(shard_arr)
                    for raw in proposal:
                        dense = index_of.get(raw)
                        if dense is not None and dense < n_streamed:
                            shard_arr[dense] = shard_map[raw]
                    st.static_cut = kr.static_cut_count(
                        stream.esrc, stream.edst, shard_arr)
                    st.period_start = idx
                    st.last_repartition_ts = window_end
                    st.events.append(
                        RepartitionEvent(
                            ts=window_end,
                            moves=moves,
                            reassigned=len(proposal),
                            reason=method.name,
                        )
                    )

                st.series.append(
                    MetricPoint(
                        ts=window_start,
                        static_edge_cut=(
                            (st.static_cut / distinct_edges) if distinct_edges else 0.0
                        ),
                        dynamic_edge_cut=dyn_cut,
                        static_balance=assignment.static_balance(),
                        dynamic_balance=dyn_balance,
                        cumulative_moves=st.total_moves,
                        interactions=window_rows,
                    )
                )

            window_start = window_end

        return [st.result(graph) for st in states]


def replay_methods(
    interactions: Union[Sequence[Interaction], ColumnarLog],
    methods: Sequence[PartitionMethod],
    metric_window: float = METRIC_WINDOW,
) -> List[ReplayResult]:
    """Convenience one-call multi-method replay (results in input order)."""
    return MultiReplayEngine(interactions, methods, metric_window=metric_window).run()
