"""Shard assignment: the vertex → shard map with shard-side accounting.

The assignment is the mutable object a replay maintains.  It tracks per
shard the vertex count and the activity weight so balance-aware
placement is O(1), and it validates shard indices against k.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import InvalidPartitionError


class ShardAssignment:
    """Mutable vertex → shard map for a fixed number of shards ``k``."""

    __slots__ = ("k", "_map", "_counts", "_weights")

    def __init__(self, k: int):
        if k < 1:
            raise InvalidPartitionError(f"k must be >= 1, got {k}")
        self.k = k
        self._map: Dict[int, int] = {}
        self._counts: List[int] = [0] * k
        self._weights: List[int] = [0] * k

    # ------------------------------------------------------------------

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._map

    def __len__(self) -> int:
        return len(self._map)

    def get(self, vertex: int, default: Optional[int] = None) -> Optional[int]:
        return self._map.get(vertex, default)

    def __getitem__(self, vertex: int) -> int:
        return self._map[vertex]

    def shard_of(self, vertex: int) -> Optional[int]:
        return self._map.get(vertex)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._map.items())

    def vertices(self) -> Iterator[int]:
        return iter(self._map)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._map)

    # ------------------------------------------------------------------

    def assign(self, vertex: int, shard: int, weight: int = 0) -> None:
        """Place a *new* vertex; re-placing an assigned vertex is an error
        (use :meth:`move`)."""
        self._check_shard(shard)
        if vertex in self._map:
            raise InvalidPartitionError(f"vertex {vertex} already assigned")
        self._map[vertex] = shard
        self._counts[shard] += 1
        self._weights[shard] += weight

    def move(self, vertex: int, shard: int, weight: int = 0) -> int:
        """Move an assigned vertex; returns its previous shard."""
        self._check_shard(shard)
        try:
            old = self._map[vertex]
        except KeyError:
            raise InvalidPartitionError(f"vertex {vertex} not assigned") from None
        if old != shard:
            self._map[vertex] = shard
            self._counts[old] -= 1
            self._counts[shard] += 1
            self._weights[old] -= weight
            self._weights[shard] += weight
        return old

    def add_weight(self, vertex: int, delta: int) -> None:
        """Account additional activity weight to the vertex's shard."""
        shard = self._map[vertex]
        self._weights[shard] += delta

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.k:
            raise InvalidPartitionError(f"shard {shard} out of range [0, {self.k})")

    # ------------------------------------------------------------------

    @property
    def counts(self) -> Tuple[int, ...]:
        """Vertex count per shard."""
        return tuple(self._counts)

    @property
    def weights(self) -> Tuple[int, ...]:
        """Activity weight per shard."""
        return tuple(self._weights)

    def lightest_shard(self, by_weight: bool = False) -> int:
        """Index of the emptiest shard (count or weight)."""
        source = self._weights if by_weight else self._counts
        return min(range(self.k), key=lambda s: (source[s], s))

    def static_balance(self) -> float:
        """Paper Eq. 2 over vertex counts."""
        total = len(self._map)
        if total == 0:
            return 1.0
        return max(self._counts) * self.k / total

    def dynamic_balance(self) -> float:
        """Paper Eq. 2 over accumulated activity weights."""
        total = sum(self._weights)
        if total == 0:
            return 1.0
        return max(self._weights) * self.k / total

    def copy(self) -> "ShardAssignment":
        clone = ShardAssignment(self.k)
        clone._map = dict(self._map)
        clone._counts = list(self._counts)
        clone._weights = list(self._weights)
        return clone

    def validate(self, graph: Optional[object] = None) -> None:
        """Re-derive counters and check internal consistency.

        Args:
            graph: optional weight source with a ``vertex_weight(v)``
                method (e.g. a
                :class:`~repro.graph.digraph.WeightedDiGraph`).  When
                given, the per-shard weight cache is re-derived from it
                and checked too — catching drift from a :meth:`move`
                called with the wrong weight, which the count check
                alone cannot see.  Vertices unknown to the graph
                contribute zero weight (a repartition proposal may
                pre-place vertices the replay has not streamed yet).
        """
        counts = [0] * self.k
        for v, s in self._map.items():
            if not 0 <= s < self.k:
                raise InvalidPartitionError(f"vertex {v} on invalid shard {s}")
            counts[s] += 1
        if counts != self._counts:
            raise InvalidPartitionError(
                f"count cache out of sync: {counts} != {self._counts}"
            )
        if graph is not None:
            weights = [0] * self.k
            for v, s in self._map.items():
                if v in graph:
                    weights[s] += graph.vertex_weight(v)
            if weights != self._weights:
                raise InvalidPartitionError(
                    f"weight cache out of sync: {weights} != {self._weights}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ShardAssignment(k={self.k}, |V|={len(self._map)}, counts={self._counts})"
