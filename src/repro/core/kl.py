"""Method 2 — distributed Kernighan–Lin with a balance oracle (§II-C).

Periodically, "based on the transactions executed in the period, each
shard identifies vertices that if moved to other shards would minimize
edge-cuts.  Each shard sends to an oracle the selected vertices and ...
the oracle computes a k×k probability matrix ... the shards ...
exchange vertices with each other based on the probability matrix."

Gains are computed on the *period* graph (weighted by interaction
frequency), so the method chases dynamic edge-cut while the oracle's
pairwise swap rule keeps shards balanced — trading optimality for a
decentralised protocol, which is why the paper observes it "optimizes
for a local minima" and produces many moves across iterations.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.base import PartitionMethod, ReplayContext
from repro.core.oracle import BalanceOracle, MoveProposal, apply_probability_matrix
from repro.graph.snapshot import REPARTITION_PERIOD
from repro.graph.undirected import collapse_to_undirected


class KLPartitioner(PartitionMethod):
    name = "kl"

    def __init__(
        self,
        k: int,
        seed: int = 0,
        period: float = REPARTITION_PERIOD,
        rounds: int = 6,
        slack: float = 0.1,
        min_gain: int = 1,
        weighted_oracle: bool = True,
    ):
        """Args:
            period: seconds between repartitionings (paper: two weeks).
            rounds: KL iterations per repartitioning; each round
                recomputes gains after the previous round's exchanges.
            slack: oracle one-directional slack (0 = strict swaps).
            min_gain: smallest edge-cut improvement worth proposing.
            weighted_oracle: match activity weight (dynamic balance)
                rather than vertex counts between shard pairs.
        """
        super().__init__(k, seed)
        self.period = period
        self.rounds = rounds
        self.oracle = BalanceOracle(k, slack=slack, weighted=weighted_oracle)
        self.min_gain = min_gain

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        if ctx.elapsed_since_repartition < self.period:
            return None
        period_graph = ctx.period_graph
        if period_graph.num_vertices == 0:
            return None

        und = collapse_to_undirected(period_graph)
        # working copy of shard labels for the vertices in the period
        shard: Dict[int, int] = {}
        for v in und.vertices():
            s = ctx.assignment.shard_of(v)
            if s is not None:
                shard[v] = s

        moved: Dict[int, int] = {}
        for _ in range(self.rounds):
            proposals = self._gather_proposals(und, shard)
            if not proposals:
                break
            # current per-shard load of the period (activity weight):
            # the oracle uses it to drain overloaded shards
            loads = [0.0] * self.k
            for v, s in shard.items():
                loads[s] += und.vertex_weight(v)
            prob = self.oracle.probability_matrix(proposals, loads=loads)
            budgets = self.oracle.allowed_matrix(proposals, loads=loads)
            accepted = apply_probability_matrix(
                proposals, prob, self.rng,
                budgets=budgets, weighted=self.oracle.weighted,
            )
            if not accepted:
                break
            for v, dst in accepted.items():
                shard[v] = dst
                moved[v] = dst
        return moved or None

    def _gather_proposals(self, und, shard: Dict[int, int]) -> List[MoveProposal]:
        """Each shard's candidate list: positive-gain boundary vertices."""
        proposals: List[MoveProposal] = []
        for v, s in shard.items():
            conn: Dict[int, int] = {}
            for nbr, w in und.adjacency(v).items():
                t = shard.get(nbr)
                if t is not None:
                    conn[t] = conn.get(t, 0) + w
            internal = conn.get(s, 0)
            best_t = -1
            best_gain = self.min_gain - 1
            for t, w in conn.items():
                if t == s:
                    continue
                gain = w - internal
                if gain > best_gain:
                    best_gain = gain
                    best_t = t
            if best_t >= 0 and best_gain >= self.min_gain:
                proposals.append(
                    MoveProposal(
                        vertex=v, src=s, dst=best_t, gain=best_gain,
                        weight=und.vertex_weight(v),
                    )
                )
        return proposals
