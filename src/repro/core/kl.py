"""Method 2 — distributed Kernighan–Lin with a balance oracle (§II-C).

Periodically, "based on the transactions executed in the period, each
shard identifies vertices that if moved to other shards would minimize
edge-cuts.  Each shard sends to an oracle the selected vertices and ...
the oracle computes a k×k probability matrix ... the shards ...
exchange vertices with each other based on the probability matrix."

Gains are computed on the *period* graph (weighted by interaction
frequency), so the method chases dynamic edge-cut while the oracle's
pairwise swap rule keeps shards balanced — trading optimality for a
decentralised protocol, which is why the paper observes it "optimizes
for a local minima" and produces many moves across iterations.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro import kernels
from repro.core.base import PartitionMethod, ReplayContext
from repro.core.oracle import BalanceOracle, MoveProposal, apply_probability_matrix
from repro.graph.snapshot import REPARTITION_PERIOD
from repro.metis.graph import CSRGraph


class KLPartitioner(PartitionMethod):
    name = "kl"

    def __init__(
        self,
        k: int,
        seed: int = 0,
        period: float = REPARTITION_PERIOD,
        rounds: int = 6,
        slack: float = 0.1,
        min_gain: int = 1,
        weighted_oracle: bool = True,
    ):
        """Args:
            period: seconds between repartitionings (paper: two weeks).
            rounds: KL iterations per repartitioning; each round
                recomputes gains after the previous round's exchanges.
            slack: oracle one-directional slack (0 = strict swaps).
            min_gain: smallest edge-cut improvement worth proposing.
            weighted_oracle: match activity weight (dynamic balance)
                rather than vertex counts between shard pairs.
        """
        super().__init__(k, seed)
        self.period = period
        self.rounds = rounds
        self.oracle = BalanceOracle(k, slack=slack, weighted=weighted_oracle)
        self.min_gain = min_gain

    def maybe_repartition(self, ctx: ReplayContext) -> Optional[Mapping[int, int]]:
        if ctx.elapsed_since_repartition < self.period:
            return None

        # CSR bridge: local indices follow the collapsed undirected
        # view's vertex order, and each adjacency keeps its
        # first-encounter insertion order, so the batched kernel sees
        # exactly the structures the per-vertex dict loop iterated —
        # proposal order and tie-breaks are bit-identical.  With a
        # columnar log underneath, one ``graph_batch`` kernel call +
        # ``from_graph_batch`` skips the period ``WeightedDiGraph``
        # entirely; the boxed fallback collapses ``ctx.period_graph``.
        if ctx.columnar_log is not None:
            lo, hi = ctx.log_period_start, ctx.log_hi
            if hi <= lo:
                return None
            log = ctx.columnar_log
            first_seen, _upgrades, edge_weights, vertex_weights = (
                kernels.active().graph_batch(
                    log.timestamps(), log.src_indices(), log.dst_indices(),
                    log.src_kind_codes(), log.dst_kind_codes(), lo, hi))
            csr = CSRGraph.from_graph_batch(
                first_seen, edge_weights, vertex_weights, log.vertex_id)
        else:
            period_graph = ctx.period_graph
            if period_graph.num_vertices == 0:
                return None
            csr = CSRGraph.from_digraph(period_graph)
        if csr.num_vertices == 0:
            return None
        ids = csr.orig_ids or []
        local = {v: i for i, v in enumerate(ids)}
        # working copy of shard labels, local-indexed (-1 = unassigned:
        # skipped as proposer and excluded from neighbors' connectivity,
        # as the legacy shard-dict lookups did)
        shard: List[int] = [-1] * csr.num_vertices
        for i, v in enumerate(ids):
            s = ctx.assignment.shard_of(v)
            if s is not None:
                shard[i] = s

        kr = kernels.active()
        moved: Dict[int, int] = {}
        for _ in range(self.rounds):
            raw = kr.kl_proposals(csr, shard, self.k, self.min_gain)
            if not raw:
                break
            proposals = [
                MoveProposal(vertex=ids[i], src=s, dst=t, gain=g,
                             weight=csr.vwgt[i])
                for i, s, t, g in raw
            ]
            # current per-shard load of the period (activity weight):
            # the oracle uses it to drain overloaded shards
            loads = [
                float(w) for w in kr.part_weights(
                    csr, shard, self.k, skip_unassigned=True)
            ]
            prob = self.oracle.probability_matrix(proposals, loads=loads)
            budgets = self.oracle.allowed_matrix(proposals, loads=loads)
            accepted = apply_probability_matrix(
                proposals, prob, self.rng,
                budgets=budgets, weighted=self.oracle.weighted,
            )
            if not accepted:
                break
            for v, dst in accepted.items():
                shard[local[v]] = dst
                moved[v] = dst
        return moved or None
