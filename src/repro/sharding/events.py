"""Event queue primitives for the discrete-event simulator.

A heap of (time, sequence, callback) with a monotonically increasing
sequence number so simultaneous events fire in scheduling order —
deterministic, which the reproducibility tests rely on.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationClockError


@dataclasses.dataclass(order=True)
class ScheduledEvent:
    """One pending event; ordering is (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of scheduled events."""

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._seq = 0

    def push(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        event = ScheduledEvent(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Next non-cancelled event, or None when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
