"""A shard: a serial execution resource with a FIFO work queue.

Each shard processes one job at a time (validators execute transactions
sequentially); jobs carry a service time and a completion callback.
Utilisation accounting feeds the throughput report.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Deque, Optional

from repro.sharding.simulator import Simulator


@dataclasses.dataclass
class _Job:
    service_time: float
    on_done: Callable[[], None]
    enqueued_at: float


class Shard:
    """One shard's execution engine."""

    def __init__(self, shard_id: int, sim: Simulator):
        self.shard_id = shard_id
        self.sim = sim
        self._queue: Deque[_Job] = deque()
        self._busy = False
        self.busy_time = 0.0        # total seconds spent executing
        self.jobs_done = 0
        self.total_queue_wait = 0.0

    def submit(self, service_time: float, on_done: Callable[[], None]) -> None:
        """Enqueue a job; ``on_done`` fires when it finishes executing."""
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        self._queue.append(_Job(service_time, on_done, self.sim.now))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        job = self._queue.popleft()
        self.total_queue_wait += self.sim.now - job.enqueued_at

        def finish() -> None:
            self.busy_time += job.service_time
            self.jobs_done += 1
            job.on_done()
            self._start_next()

        self.sim.schedule(job.service_time, finish)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def is_busy(self) -> bool:
        return self._busy

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent executing."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0
