"""Batched columnar replay driver for the sharded executor.

The closure-based path (:meth:`ShardedExecution.replay`) schedules one
``Simulator`` callback per arrival and one ``Shard`` closure per phase
job — fine for demo-sized streams, too slow for million-row v3 traces.
This module replays the same cost model directly off ``ColumnarLog``'s
dense columns with a flat tuple heap and array-backed shard state: no
``Interaction`` boxing, no per-job closure allocation.

The engine is a *bit-identical* mirror of the closure machinery, not an
approximation.  Equivalence hinges on three invariants, each matched
exactly:

* **Event order.**  The simulator orders events by ``(time, seq)`` with
  ``seq`` assigned at schedule time.  In the list path all n arrivals
  are pre-scheduled (seqs ``0..n-1``) before any runtime event exists,
  so arrivals win every time tie.  Here arrivals are a sorted cursor,
  popped while ``(t_arrival, i) < (heap[0].time, heap[0].seq)``, and the
  runtime ``seq`` counter starts at ``n`` — the same total order.
* **Shard semantics.**  ``Shard.finish`` accrues busy time, runs the
  completion hook (which may enqueue more work, including on the same
  shard), *then* starts the next queued job — mirrored verbatim.
* **Float order.**  Every arithmetic expression (``now + service``,
  ``now + rtt``, ``now - arrived_at``, warmup slicing) evaluates in the
  same order on the same values, so reports compare equal with ``==``.
"""

from __future__ import annotations

from array import array
from collections import deque
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

from repro.errors import SimulationClockError, UnassignedVertexError

# heap event kinds; payload is a shard id (_FINISH) or a tx state (_COMMITS)
_FINISH = 0
_COMMITS = 1

# tx phases (list layout: [pending, phase, arrived_at, shards])
_PH_PREPARE = 0
_PH_COMMIT = 1
_PH_MIGRATE = 2


def extract_transactions(
    log: Any, lo: int, hi: int
) -> Tuple[List[float], List[Tuple[int, ...]]]:
    """Group rows ``[lo, hi)`` into transactions off the dense columns.

    Returns parallel lists: first-row timestamp and deduplicated
    endpoint tuple (dense indices, first-occurrence order — the same
    order ``dict.fromkeys(src0, dst0, src1, dst1, ...)`` yields in the
    boxed path) per transaction.  Contiguity of tx_id rows is assumed,
    exactly as :func:`repro.graph.builder.group_by_transaction` does.
    """
    ts_col = log.timestamps()
    src = log.src_indices()
    dst = log.dst_indices()
    txc = log.tx_ids()

    times: List[float] = []
    endpoints: List[Tuple[int, ...]] = []
    a = lo
    while a < hi:
        tx = txc[a]
        b = a + 1
        while b < hi and txc[b] == tx:
            b += 1
        if b - a == 1:
            s0 = src[a]
            d0 = dst[a]
            eps = (s0,) if s0 == d0 else (s0, d0)
        else:
            eps = tuple(
                dict.fromkeys(
                    x for j in range(a, b) for x in (src[j], dst[j])
                )
            )
        times.append(ts_col[a])
        endpoints.append(eps)
        a = b
    return times, endpoints


def run_columnar(
    ex: Any,
    log: Any,
    lo: int,
    hi: int,
    time_scale: float,
    arrival_rate: Optional[float],
    strict: bool,
) -> None:
    """Replay ``log[lo:hi]`` through ``ex`` (a ``ShardedExecution``).

    Runs the batched engine, then folds counters, latencies, per-shard
    accounting and the final clock back into ``ex`` so ``ex.report()``
    is indistinguishable from a closure-path run.
    """
    cfg = ex.config
    migrate = cfg.mode == "migrate"
    raw_ids = log.vertex_ids()
    assignment = ex.assignment
    shard_of = array("q", (assignment.get(raw, -1) for raw in raw_ids))

    arr_time, arr_eps = extract_transactions(log, lo, hi)
    n = len(arr_time)

    if time_scale > 0:
        base = arr_time[0] if arr_time else 0.0
        arr_time = [(t - base) * time_scale for t in arr_time]
        for t in arr_time:
            if t < 0:
                raise SimulationClockError(f"cannot schedule at {t} < now 0.0")
        order = sorted(range(n), key=lambda i: (arr_time[i], i))
    else:
        if arrival_rate is None:
            arrival_rate = 0.8 * ex.k / cfg.service_time
        gap = 1.0 / arrival_rate
        arr_time = [i * gap for i in range(n)]
        order = list(range(n))

    # ---- engine state ------------------------------------------------
    k = ex.k
    heap: List[Tuple[float, int, int, Any]] = []
    seq = n  # arrivals own seqs 0..n-1, exactly as pre-scheduled events
    busy = bytearray(k)
    queues = [deque() for _ in range(k)]
    current: List[Any] = [None] * k
    busy_time = [0.0] * k
    jobs_done = [0] * k
    queue_wait = [0.0] * k

    latencies: List[float] = []
    completed = 0
    single_shard = 0
    multi_shard = 0
    migrations = 0
    migration_bytes = 0
    unassigned = 0
    last_completion = 0.0
    now = 0.0

    service_time = cfg.service_time
    prepare_time = cfg.prepare_time
    commit_time = cfg.commit_time
    network_rtt = cfg.network_rtt
    world_state = ex.state

    def submit(s: int, service: float, state: list) -> None:
        # Shard.submit + _start_next on an idle shard collapse to this.
        nonlocal seq
        if busy[s]:
            queues[s].append((service, state, now))
        else:
            busy[s] = 1
            current[s] = (service, state)
            heappush(heap, (now + service, seq, _FINISH, s))
            seq += 1

    def phase_done(state: list) -> None:
        nonlocal seq, completed, last_completion
        state[0] -= 1
        if state[0] > 0:
            return
        phase = state[1]
        if phase == _PH_PREPARE:
            state[1] = _PH_COMMIT
            state[0] = len(state[3])
            heappush(heap, (now + network_rtt, seq, _COMMITS, state))
            seq += 1
        elif phase == _PH_MIGRATE:
            state[1] = _PH_COMMIT
            state[0] = 1
            submit(state[3][0], service_time, state)
        else:
            completed += 1
            latencies.append(now - state[2])
            last_completion = now

    def migration_time(dense: int) -> float:
        nonlocal migration_bytes
        if world_state is not None:
            acct = world_state.get_optional(raw_ids[dense])
            if acct is not None:
                size = acct.state_bytes()
                migration_bytes += size
                return size / cfg.migration_bandwidth
        return cfg.migration_time_fixed

    def note_unassigned(dense: int) -> None:
        nonlocal unassigned
        if strict:
            raise UnassignedVertexError(raw_ids[dense])
        unassigned += 1

    def dispatch(i: int) -> None:
        nonlocal single_shard, multi_shard, migrations
        eps = arr_eps[i]
        if migrate:
            placed = []
            for v in eps:
                if shard_of[v] >= 0:
                    placed.append(v)
                else:
                    note_unassigned(v)
            if not placed:
                return
            shards = tuple(sorted({shard_of[v] for v in placed}))
            if len(shards) == 1:
                single_shard += 1
                state = [1, _PH_COMMIT, now, shards]
                submit(shards[0], service_time, state)
                return
            multi_shard += 1
            votes = {}
            for v in placed:
                s = shard_of[v]
                votes[s] = votes.get(s, 0) + 1
            target = min(votes, key=lambda s: (-votes[s], s))
            jobs: List[Tuple[int, float]] = []
            for v in placed:
                s = shard_of[v]
                if s == target:
                    continue
                seconds = migration_time(v)
                jobs.append((s, seconds))       # serialize at source
                jobs.append((target, seconds))  # apply at target
                shard_of[v] = target            # sticky move
                assignment[raw_ids[v]] = target
                migrations += 1
            state = [len(jobs), _PH_MIGRATE, now, (target,)]
            for s, seconds in jobs:
                submit(s, seconds, state)
            return
        # 2pc: derive the shard set, mirroring shard_set()
        sset = set()
        for v in eps:
            s = shard_of[v]
            if s >= 0:
                sset.add(s)
            else:
                note_unassigned(v)
        shards = tuple(sorted(sset))
        if not shards:
            return
        if len(shards) == 1:
            single_shard += 1
            state = [1, _PH_COMMIT, now, shards]
            submit(shards[0], service_time, state)
            return
        multi_shard += 1
        state = [len(shards), _PH_PREPARE, now, shards]
        for s in shards:
            submit(s, prepare_time, state)

    # ---- event loop --------------------------------------------------
    ai = 0
    while True:
        if ai < n:
            i = order[ai]
            t_arr = arr_time[i]
            if not heap or (t_arr, i) < (heap[0][0], heap[0][1]):
                now = t_arr
                ai += 1
                dispatch(i)
                continue
        if not heap:
            break
        t, _sq, kind, payload = heappop(heap)
        now = t
        if kind == _FINISH:
            s = payload
            service, state = current[s]
            busy_time[s] += service
            jobs_done[s] += 1
            phase_done(state)
            q = queues[s]
            if q:
                service, state, enqueued_at = q.popleft()
                queue_wait[s] += now - enqueued_at
                current[s] = (service, state)
                heappush(heap, (now + service, seq, _FINISH, s))
                seq += 1
            else:
                busy[s] = 0
                current[s] = None
        else:  # _COMMITS: votes arrived, commit on every involved shard
            for s in payload[3]:
                submit(s, commit_time, payload)

    # ---- fold results back into the executor -------------------------
    ex.latencies.extend(latencies)
    ex.completed += completed
    ex.single_shard += single_shard
    ex.multi_shard += multi_shard
    ex.migrations += migrations
    ex.migration_bytes += migration_bytes
    ex.unassigned_endpoints += unassigned
    ex._last_completion = max(ex._last_completion, last_completion)
    for i in range(k):
        shard = ex.shards[i]
        shard.busy_time += busy_time[i]
        shard.jobs_done += jobs_done[i]
        shard.total_queue_wait += queue_wait[i]
    ex.sim.run(until=now)
