"""Throughput and latency accounting for the sharded executor."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """Latency distribution summary (seconds)."""

    count: int
    mean: float
    median: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls(count=0, mean=0.0, median=0.0, p99=0.0, maximum=0.0)
        ordered = sorted(samples)
        n = len(ordered)

        def pct(q: float) -> float:
            idx = min(n - 1, max(0, int(round(q * (n - 1)))))
            return ordered[idx]

        return cls(
            count=n,
            mean=sum(ordered) / n,
            median=pct(0.5),
            p99=pct(0.99),
            maximum=ordered[-1],
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LatencyStats":
        return cls(
            count=int(payload["count"]),
            mean=float(payload["mean"]),
            median=float(payload["median"]),
            p99=float(payload["p99"]),
            maximum=float(payload["maximum"]),
        )


@dataclasses.dataclass(frozen=True)
class ThroughputReport:
    """Outcome of one sharded-execution run."""

    k: int
    completed: int
    single_shard: int
    multi_shard: int
    elapsed: float
    throughput: float           # committed transactions per second
    latency: LatencyStats
    utilization: Tuple[float, ...]
    migrations: int = 0         # vertices moved (migrate mode only)
    migration_bytes: int = 0    # serialized state moved (with a state)
    unassigned_endpoints: int = 0  # endpoint lookups dropped (no shard)

    @property
    def multi_shard_ratio(self) -> float:
        total = self.single_shard + self.multi_shard
        return self.multi_shard / total if total else 0.0

    @property
    def mean_utilization(self) -> float:
        return sum(self.utilization) / len(self.utilization) if self.utilization else 0.0

    @property
    def utilization_imbalance(self) -> float:
        """max/mean utilisation — the load-balance analogue of Eq. 2."""
        mean = self.mean_utilization
        return max(self.utilization) / mean if mean > 0 else 1.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload; inverse of :meth:`from_dict`."""
        return {
            "k": self.k,
            "completed": self.completed,
            "single_shard": self.single_shard,
            "multi_shard": self.multi_shard,
            "elapsed": self.elapsed,
            "throughput": self.throughput,
            "latency": self.latency.to_dict(),
            "utilization": list(self.utilization),
            "migrations": self.migrations,
            "migration_bytes": self.migration_bytes,
            "unassigned_endpoints": self.unassigned_endpoints,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ThroughputReport":
        return cls(
            k=int(payload["k"]),
            completed=int(payload["completed"]),
            single_shard=int(payload["single_shard"]),
            multi_shard=int(payload["multi_shard"]),
            elapsed=float(payload["elapsed"]),
            throughput=float(payload["throughput"]),
            latency=LatencyStats.from_dict(payload["latency"]),
            utilization=tuple(float(u) for u in payload["utilization"]),
            migrations=int(payload.get("migrations", 0)),
            migration_bytes=int(payload.get("migration_bytes", 0)),
            unassigned_endpoints=int(payload.get("unassigned_endpoints", 0)),
        )
