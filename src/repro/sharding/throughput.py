"""Throughput and latency accounting for the sharded executor."""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """Latency distribution summary (seconds)."""

    count: int
    mean: float
    median: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls(count=0, mean=0.0, median=0.0, p99=0.0, maximum=0.0)
        ordered = sorted(samples)
        n = len(ordered)

        def pct(q: float) -> float:
            idx = min(n - 1, max(0, int(round(q * (n - 1)))))
            return ordered[idx]

        return cls(
            count=n,
            mean=sum(ordered) / n,
            median=pct(0.5),
            p99=pct(0.99),
            maximum=ordered[-1],
        )


@dataclasses.dataclass(frozen=True)
class ThroughputReport:
    """Outcome of one sharded-execution run."""

    k: int
    completed: int
    single_shard: int
    multi_shard: int
    elapsed: float
    throughput: float           # committed transactions per second
    latency: LatencyStats
    utilization: Tuple[float, ...]
    migrations: int = 0         # vertices moved (migrate mode only)
    migration_bytes: int = 0    # serialized state moved (with a state)

    @property
    def multi_shard_ratio(self) -> float:
        total = self.single_shard + self.multi_shard
        return self.multi_shard / total if total else 0.0

    @property
    def mean_utilization(self) -> float:
        return sum(self.utilization) / len(self.utilization) if self.utilization else 0.0

    @property
    def utilization_imbalance(self) -> float:
        """max/mean utilisation — the load-balance analogue of Eq. 2."""
        mean = self.mean_utilization
        return max(self.utilization) / mean if mean > 0 else 1.0
