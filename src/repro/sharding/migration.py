"""State-migration cost model.

The paper: "If we were to move one vertex from one shard to another, we
ought to move the entire state of the vertex.  If the vertex is a
contract, that would result in moving the entire contract storage to
another shard", and its final remarks stress that "moving state
indiscriminately will have both an impact in the bandwidth and storage
of the system."

The model converts a repartitioning's move set into per-shard busy time
(serialisation on the source, deserialisation on the destination) and
total bytes on the wire, given the world state holding each account's
balance/nonce/storage/code.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Tuple

from repro.ethereum.state import WorldState


@dataclasses.dataclass(frozen=True)
class MigrationCost:
    """Aggregate cost of one repartitioning's moves."""

    vertices_moved: int
    bytes_moved: int
    per_shard_send_time: Tuple[float, ...]
    per_shard_recv_time: Tuple[float, ...]

    @property
    def total_transfer_time(self) -> float:
        return sum(self.per_shard_send_time) + sum(self.per_shard_recv_time)


@dataclasses.dataclass(frozen=True)
class MigrationModel:
    """Cost parameters: bytes/sec on the wire, fixed per-vertex overhead."""

    bandwidth: float = 50e6          # bytes per second per shard link
    per_vertex_overhead: int = 128   # proof/envelope bytes per moved vertex

    def cost_of(
        self,
        before: Mapping[int, int],
        after: Mapping[int, int],
        state: WorldState,
        k: int,
    ) -> MigrationCost:
        """Cost of moving every vertex whose shard changed."""
        send = [0.0] * k
        recv = [0.0] * k
        moved = 0
        total_bytes = 0
        for v, old in before.items():
            new = after.get(v)
            if new is None or new == old:
                continue
            acct = state.get_optional(v)
            size = (acct.state_bytes() if acct is not None else 0) + self.per_vertex_overhead
            moved += 1
            total_bytes += size
            seconds = size / self.bandwidth
            send[old] += seconds
            recv[new] += seconds
        return MigrationCost(
            vertices_moved=moved,
            bytes_moved=total_bytes,
            per_shard_send_time=tuple(send),
            per_shard_recv_time=tuple(recv),
        )
