"""The simulation kernel: clock plus event loop.

Minimal by design (schedule / run / now); all domain behaviour lives in
:mod:`repro.sharding.shard` and :mod:`repro.sharding.coordinator`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationClockError
from repro.sharding.events import EventQueue, ScheduledEvent


class Simulator:
    """A deterministic discrete-event simulation kernel."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationClockError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationClockError(f"cannot schedule at {time} < now {self._now}")
        return self._queue.push(time, callback)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the final clock.

        When ``until`` is given, the clock always ends at ``until`` —
        even if the queue drains early — so elapsed-time and
        utilization figures are computed against the requested horizon.
        (The clock does not advance to ``until`` on a ``max_events``
        stop: the simulation was cut off mid-flight, not run out.)
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                if until is not None and until > self._now:
                    self._now = until
                break
            if until is not None and next_time > until:
                if until > self._now:  # never rewind a clock already past it
                    self._now = until
                break
            event = self._queue.pop()
            assert event is not None
            self._now = event.time
            event.callback()
            self._processed += 1
            fired += 1
        return self._now
