"""Cross-shard transaction execution: two-phase commit or state moves.

A transaction touches the set of shards hosting its endpoint vertices.
Single-shard transactions always cost one ``service_time`` slot on
their shard.  Multi-shard transactions are handled per the paper's two
solution classes (§I):

* ``mode="2pc"`` (class (a): Spanner / S-SMR) — the coordinating shard
  drives two-phase commit: every involved shard executes a *prepare*
  job, votes travel one network RTT, then every shard executes a
  *commit* job.  Cost per shard ≈ 2 service slots plus the vote RTT.

* ``mode="migrate"`` (class (b): Dynamic S-SMR [5]) — the vertices on
  minority shards *move* to the shard hosting the most endpoints
  (source and destination each pay the transfer time, which scales
  with the vertex's serialized state when a world state is supplied),
  after which the transaction executes locally.  Moves are sticky: the
  live assignment is updated, so later transactions benefit — or pay
  again when access patterns ping-pong.

The driver replays an interaction log: each transaction arrives at its
(scaled) timestamp, its shard set is derived from a vertex → shard
assignment, and the report aggregates throughput and latency.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import UnassignedVertexError
from repro.graph.builder import Interaction, group_by_transaction
from repro.sharding.batch import run_columnar
from repro.sharding.shard import Shard
from repro.sharding.simulator import Simulator
from repro.sharding.throughput import LatencyStats, ThroughputReport


@dataclasses.dataclass(frozen=True)
class ShardedExecutionConfig:
    """Cost model of the sharded executor.

    Times are in simulated seconds; defaults approximate a permissioned
    deployment (1 ms execution, 5 ms inter-shard RTT).
    """

    service_time: float = 0.001      # single-shard execution slot
    prepare_time: float = 0.001      # per-shard prepare work (2PC phase 1)
    commit_time: float = 0.0005      # per-shard commit work (2PC phase 2)
    network_rtt: float = 0.005       # vote round-trip between shards
    warmup_fraction: float = 0.0     # ignore the first X of completions
    mode: str = "2pc"                # "2pc" or "migrate"
    migration_bandwidth: float = 50e6   # bytes/sec when a state is given
    migration_time_fixed: float = 0.002  # per-vertex move time otherwise

    def __post_init__(self) -> None:
        if self.mode not in ("2pc", "migrate"):
            raise ValueError(f"unknown mode: {self.mode!r}")
        if not self.service_time > 0:
            raise ValueError(f"service_time must be > 0, got {self.service_time}")
        for name in ("prepare_time", "commit_time", "network_rtt",
                     "migration_time_fixed"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if not self.migration_bandwidth > 0:
            raise ValueError(
                f"migration_bandwidth must be > 0, got {self.migration_bandwidth}"
            )
        if not 0.0 <= self.warmup_fraction <= 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1], got {self.warmup_fraction}"
            )


@dataclasses.dataclass
class _TxState:
    tx_id: int
    shards: Tuple[int, ...]
    arrived_at: float
    pending: int = 0
    phase: str = "prepare"


class ShardedExecution:
    """Replays transactions against k shards under an assignment.

    In ``migrate`` mode the assignment is copied and mutated as state
    moves happen; pass ``state`` (a :class:`WorldState`) to charge
    per-vertex transfer times proportional to serialized account size.
    """

    def __init__(
        self,
        k: int,
        assignment: Mapping[int, int],
        config: Optional[ShardedExecutionConfig] = None,
        state=None,
        strict: bool = False,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.config = config or ShardedExecutionConfig()
        self.assignment = (
            dict(assignment) if self.config.mode == "migrate" else assignment
        )
        self.state = state
        self.strict = strict
        self.sim = Simulator()
        self.shards = [Shard(i, self.sim) for i in range(k)]
        self.latencies: List[float] = []
        self.completed = 0
        self.single_shard = 0
        self.multi_shard = 0
        self.migrations = 0
        self.migration_bytes = 0
        self.unassigned_endpoints = 0
        self._last_completion = 0.0

    # ------------------------------------------------------------------

    def shard_set(self, endpoints: Iterable[int]) -> Tuple[int, ...]:
        """Distinct shards hosting the endpoints (sorted for determinism).

        Endpoints without an assignment are counted in
        ``unassigned_endpoints`` (and raise under ``strict``) rather
        than silently dropped.
        """
        shards: Set[int] = set()
        for v in endpoints:
            s = self.assignment.get(v)
            if s is not None:
                shards.add(s)
            else:
                self._note_unassigned(v)
        return tuple(sorted(shards))

    def _note_unassigned(self, vertex: int) -> None:
        if self.strict:
            raise UnassignedVertexError(vertex)
        self.unassigned_endpoints += 1

    def submit_endpoints(self, tx_id: int, endpoints: Sequence[int]) -> None:
        """Inject one transaction described by its endpoint vertices.

        Dispatches to 2PC or state-migration handling per the config;
        in migrate mode the shard set is computed against the *live*
        (mutated) assignment.
        """
        if self.config.mode == "migrate":
            self._submit_migrating(tx_id, endpoints)
        else:
            self.submit_transaction(tx_id, self.shard_set(endpoints))

    def submit_transaction(self, tx_id: int, shards: Tuple[int, ...]) -> None:
        """Inject one 2PC-mode transaction at the current sim time."""
        if not shards:
            return
        cfg = self.config
        if len(shards) == 1:
            self.single_shard += 1
            state = _TxState(tx_id, shards, self.sim.now, pending=1, phase="commit")
            self.shards[shards[0]].submit(
                cfg.service_time, lambda st=state: self._phase_done(st)
            )
            return

        self.multi_shard += 1
        state = _TxState(tx_id, shards, self.sim.now, pending=len(shards), phase="prepare")
        for s in shards:
            self.shards[s].submit(
                cfg.prepare_time, lambda st=state: self._phase_done(st)
            )

    def _submit_migrating(self, tx_id: int, endpoints: Sequence[int]) -> None:
        """Migrate minority vertices to the majority shard, run locally."""
        placed = []
        for v in dict.fromkeys(endpoints):
            if v in self.assignment:
                placed.append(v)
            else:
                self._note_unassigned(v)
        if not placed:
            return
        shards = self.shard_set(placed)
        if len(shards) == 1:
            self.single_shard += 1
            state = _TxState(tx_id, shards, self.sim.now, pending=1, phase="commit")
            self.shards[shards[0]].submit(
                self.config.service_time, lambda st=state: self._phase_done(st)
            )
            return

        self.multi_shard += 1
        # majority shard hosts the most endpoints; ties go to the lowest id
        votes: Dict[int, int] = {}
        for v in placed:
            votes[self.assignment[v]] = votes.get(self.assignment[v], 0) + 1
        target = min(votes, key=lambda s: (-votes[s], s))

        movers = [v for v in placed if self.assignment[v] != target]
        jobs: List[Tuple[int, float]] = []  # (shard, transfer time)
        for v in movers:
            seconds = self._migration_time(v)
            jobs.append((self.assignment[v], seconds))  # serialize at source
            jobs.append((target, seconds))              # apply at target
            self.assignment[v] = target                 # sticky move
            self.migrations += 1

        state = _TxState(
            tx_id, (target,), self.sim.now, pending=len(jobs), phase="migrate"
        )
        for shard, seconds in jobs:
            self.shards[shard].submit(
                seconds, lambda st=state: self._phase_done(st)
            )

    def _migration_time(self, vertex: int) -> float:
        if self.state is not None:
            acct = self.state.get_optional(vertex)
            if acct is not None:
                size = acct.state_bytes()
                self.migration_bytes += size
                return size / self.config.migration_bandwidth
        return self.config.migration_time_fixed

    def _phase_done(self, state: _TxState) -> None:
        state.pending -= 1
        if state.pending > 0:
            return
        if state.phase == "prepare":
            # all prepared: votes travel one RTT, then commit everywhere
            state.phase = "commit"
            state.pending = len(state.shards)

            def start_commits() -> None:
                for s in state.shards:
                    self.shards[s].submit(
                        self.config.commit_time,
                        lambda st=state: self._phase_done(st),
                    )

            self.sim.schedule(self.config.network_rtt, start_commits)
        elif state.phase == "migrate":
            # all state landed on the target: execute locally
            state.phase = "commit"
            state.pending = 1
            target = state.shards[0]
            self.shards[target].submit(
                self.config.service_time, lambda st=state: self._phase_done(st)
            )
        else:
            self.completed += 1
            self.latencies.append(self.sim.now - state.arrived_at)
            self._last_completion = self.sim.now

    # ------------------------------------------------------------------

    def replay(
        self,
        interactions: Sequence[Interaction],
        time_scale: float = 0.0,
        arrival_rate: Optional[float] = None,
    ) -> ThroughputReport:
        """Replay an interaction log grouped into transactions.

        Arrival process: either compress the original timestamps by
        ``time_scale`` (seconds of sim time per second of history), or —
        the default — open-loop Poisson-like arrivals at
        ``arrival_rate`` transactions/second (deterministically spaced;
        rate defaults to 80% of the single-shard capacity k/service).
        """
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        if arrival_rate is not None and not arrival_rate > 0:
            raise ValueError(f"arrival_rate must be > 0, got {arrival_rate}")
        txs: List[Tuple[int, float, Tuple[int, ...]]] = []
        for tx_id, bucket in group_by_transaction(interactions):
            endpoints = tuple(
                dict.fromkeys(e for it in bucket for e in (it.src, it.dst))
            )
            txs.append((tx_id, bucket[0].timestamp, endpoints))

        if time_scale > 0:
            base = txs[0][1] if txs else 0.0
            for tx_id, ts, endpoints in txs:
                self.sim.schedule_at(
                    (ts - base) * time_scale,
                    lambda t=tx_id, e=endpoints: self.submit_endpoints(t, e),
                )
        else:
            if arrival_rate is None:
                arrival_rate = 0.8 * self.k / self.config.service_time
            gap = 1.0 / arrival_rate
            for i, (tx_id, _ts, endpoints) in enumerate(txs):
                self.sim.schedule_at(
                    i * gap, lambda t=tx_id, e=endpoints: self.submit_endpoints(t, e)
                )

        self.sim.run()
        return self.report()

    def replay_columnar(
        self,
        log,
        lo: int = 0,
        hi: Optional[int] = None,
        time_scale: float = 0.0,
        arrival_rate: Optional[float] = None,
        strict: Optional[bool] = None,
    ) -> ThroughputReport:
        """Replay rows ``[lo, hi)`` of a :class:`ColumnarLog` batched.

        The columnar driver groups transactions directly off the dense
        ``src_indices()``/``dst_indices()``/``tx_ids()`` columns and
        runs a flat-heap event engine (:mod:`repro.sharding.batch`) —
        no ``Interaction`` boxing, no per-phase closures — producing a
        report bit-identical to :meth:`replay` on the boxed equivalent
        of the same slice.

        ``strict`` defaults to True: trace-backed replays must not
        touch unpartitioned vertices (:class:`UnassignedVertexError`
        names the offender).  Pass ``strict=False`` to count them in
        ``unassigned_endpoints`` instead.
        """
        if hi is None:
            hi = len(log)
        if not 0 <= lo <= hi <= len(log):
            raise ValueError(
                f"invalid row window [{lo}, {hi}) for a {len(log)}-row log"
            )
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        if arrival_rate is not None and not arrival_rate > 0:
            raise ValueError(f"arrival_rate must be > 0, got {arrival_rate}")
        if strict is None:
            strict = True
        run_columnar(self, log, lo, hi, time_scale, arrival_rate, strict)
        return self.report()

    def report(self) -> ThroughputReport:
        elapsed = max(self._last_completion, self.sim.now)
        lat = self.latencies
        skip = int(len(lat) * self.config.warmup_fraction)
        return ThroughputReport(
            k=self.k,
            completed=self.completed,
            single_shard=self.single_shard,
            multi_shard=self.multi_shard,
            elapsed=elapsed,
            throughput=self.completed / elapsed if elapsed > 0 else 0.0,
            latency=LatencyStats.from_samples(lat[skip:]),
            utilization=tuple(
                s.utilization(elapsed) if elapsed > 0 else 0.0 for s in self.shards
            ),
            migrations=self.migrations,
            migration_bytes=self.migration_bytes,
            unassigned_endpoints=self.unassigned_endpoints,
        )
