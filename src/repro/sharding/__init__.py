"""Sharded-execution discrete-event simulator (the paper's "pitfall").

The paper's introduction argues — without measuring — that "if the
application state is poorly partitioned, overall system performance
will most likely decrease, instead of increase, due to the overhead of
multi-shard requests."  This package turns that claim into a measurable
experiment: shards are serial execution resources, single-shard
transactions cost one service slot, and multi-shard transactions run a
two-phase commit across every involved shard (prepare + vote round-trip
+ commit), exactly the "shards coordinate and execute the request in a
distributed fashion" class of solutions (Spanner / S-SMR) the paper
cites.  State migration after repartitionings occupies shards in
proportion to the bytes moved.

The EXT-PITFALL benchmark feeds the same transaction stream through
assignments produced by each partitioning method and reports achieved
throughput and latency — showing the edge-cut ↔ performance coupling.
"""

from repro.sharding.events import EventQueue, ScheduledEvent
from repro.sharding.simulator import Simulator
from repro.sharding.shard import Shard
from repro.sharding.coordinator import ShardedExecution, ShardedExecutionConfig
from repro.sharding.migration import MigrationModel
from repro.sharding.throughput import LatencyStats, ThroughputReport

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "Simulator",
    "Shard",
    "ShardedExecution",
    "ShardedExecutionConfig",
    "MigrationModel",
    "LatencyStats",
    "ThroughputReport",
]
