"""Accounts: externally-owned accounts (EOAs) and contract accounts.

Both share the Ethereum account model: a balance, a nonce, and — for
contracts — code plus a key→value storage.  Storage maps 256-bit keys to
256-bit values ("a database mapping 32-byte keys to 32-byte values",
paper §II-A); reading an absent key yields zero, and writing zero deletes
the key, like the real state trie.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Tuple

from repro.ethereum.types import Address, Wei, to_word


class AccountKind(enum.Enum):
    EOA = "eoa"
    CONTRACT = "contract"


@dataclasses.dataclass
class Account:
    """One entry of the world state."""

    address: Address
    kind: AccountKind
    balance: Wei = 0
    nonce: int = 0
    code: Tuple[int, ...] = ()
    storage: Dict[int, int] = dataclasses.field(default_factory=dict)
    created_at: float = 0.0

    @property
    def is_contract(self) -> bool:
        return self.kind is AccountKind.CONTRACT

    def storage_read(self, key: int) -> int:
        """SLOAD semantics: absent keys read as zero."""
        return self.storage.get(to_word(key), 0)

    def storage_write(self, key: int, value: int) -> None:
        """SSTORE semantics: writing zero deletes the slot."""
        key = to_word(key)
        value = to_word(value)
        if value == 0:
            self.storage.pop(key, None)
        else:
            self.storage[key] = value

    @property
    def storage_size(self) -> int:
        """Number of non-zero storage slots.

        This is the quantity that matters for the paper's moves metric
        discussion: "if the vertex is a contract, [moving it] would
        result in moving the entire contract storage to another shard."
        """
        return len(self.storage)

    def state_bytes(self) -> int:
        """Approximate serialized state size, for migration cost models.

        Balance + nonce ≈ 40 bytes; each storage slot is a 32-byte key
        plus 32-byte value; code is one byte per instruction word.
        """
        return 40 + 64 * len(self.storage) + len(self.code)

    def copy(self) -> "Account":
        return Account(
            address=self.address,
            kind=self.kind,
            balance=self.balance,
            nonce=self.nonce,
            code=self.code,
            storage=dict(self.storage),
            created_at=self.created_at,
        )
