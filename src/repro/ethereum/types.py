"""Primitive types for the blockchain substrate.

Addresses, wei amounts and gas are plain ints at runtime (this is
performance-sensitive code: the workload generator executes hundreds of
thousands of transactions); the aliases exist to make signatures
self-documenting.  ``address_hash`` is the deterministic hash used by
the HASH partitioning method and by contract-address derivation — it is
explicitly *not* Python's randomised ``hash()``.
"""

from __future__ import annotations

import hashlib

#: A vertex / account identifier.  Real Ethereum uses 160-bit addresses;
#: we use arbitrary non-negative ints assigned sequentially by the world
#: state, which keeps traces compact and human-readable.
Address = int

#: Currency amount (integral wei).
Wei = int

#: Gas amount.
Gas = int

#: Word size of the EVM-lite: 256-bit unsigned arithmetic, like the EVM.
WORD_BITS = 256
WORD_MASK = (1 << WORD_BITS) - 1

#: Maximum message-call depth, as in Ethereum.
MAX_CALL_DEPTH = 1024

#: Maximum stack height, as in Ethereum.
MAX_STACK = 1024


def to_word(value: int) -> int:
    """Truncate a Python int to an unsigned 256-bit word."""
    return value & WORD_MASK


def address_hash(address: Address, salt: int = 0) -> int:
    """Deterministic 64-bit hash of an address.

    Used by the HASH partitioner (shard = address_hash(a) mod k) and in
    tests.  Based on blake2b so the distribution is uniform and stable
    across processes and Python versions (unlike built-in ``hash``).
    """
    payload = address.to_bytes(16, "little", signed=False) + salt.to_bytes(
        8, "little", signed=False
    )
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def contract_address(creator: Address, nonce: int) -> int:
    """Deterministic new-contract address from (creator, nonce).

    Mirrors Ethereum's CREATE address derivation in spirit.  The world
    state remaps the result onto its compact sequential id space; this
    function provides the collision-resistant raw material.
    """
    payload = creator.to_bytes(16, "little") + nonce.to_bytes(8, "little")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")
