"""Standard contract programs used by the synthetic workload.

Each function returns assembled EVM-lite code.  The programs mirror the
contract archetypes that dominate the real Ethereum graph:

* **token** — an ERC-20-style ledger: balances live in contract storage
  keyed by address; a transfer touches only the contract (graph-wise,
  the edge is sender → token), which is why token hubs are
  high-in-degree vertices;
* **exchange / hub** — receives value and pays out to an address given
  in calldata, creating *internal* contract → account edges;
* **mixer** — fans value out to three calldata addresses (one
  transaction, several internal edges — like contract 9703 in the
  paper's Fig. 2);
* **wallet** — forwards its call value to a fixed owner stored at slot 0
  (set via initialization storage);
* **factory** — CREATEs a new contract from a calldata template id
  (exercises contract-creates-contract edges);
* **dummy** — a single STOP; the attack-period state-bloat target.

Stack-effect comments use ``[bottom ... top]`` notation.
"""

from __future__ import annotations

from typing import Tuple

from repro.ethereum.evm import assemble

#: Gas forwarded on internal calls by the standard programs.
FORWARD_GAS = 30_000


def token_code() -> Tuple[int, ...]:
    """ERC-20-style transfer: ``data = (recipient, amount)``.

    ``balances[recipient] += amount; balances[caller] -= amount`` with
    256-bit wraparound (the synthetic workload never overdraws, and the
    paper's graph does not care about token accounting anyway).
    """
    return assemble([
        ("PUSH", 0), "CALLDATALOAD",      # [recipient]
        ("DUP", 1), "SLOAD",              # [recipient, bal_r]
        ("PUSH", 1), "CALLDATALOAD",      # [recipient, bal_r, amount]
        "ADD",                            # [recipient, bal_r + amount]
        ("SWAP", 1),                      # [bal_r + amount, recipient]
        "SSTORE",                         # balances[recipient] updated
        "CALLER", "SLOAD",                # [bal_c]
        ("PUSH", 1), "CALLDATALOAD",      # [bal_c, amount]
        ("SWAP", 1),                      # [amount, bal_c]
        "SUB",                            # [bal_c - amount]
        "CALLER",                         # [newbal, caller]
        "SSTORE",                         # balances[caller] updated
        "STOP",
    ])


def exchange_code() -> Tuple[int, ...]:
    """Pay out half the call value to ``data[0]``."""
    return assemble([
        ("PUSH", 0), "CALLDATALOAD",      # [addr]
        "CALLVALUE",                      # [addr, value]
        ("PUSH", 2), ("SWAP", 1), "DIV",  # [addr, value // 2]
        ("SWAP", 1),                      # [value // 2, addr]
        ("PUSH", FORWARD_GAS),            # [value // 2, addr, gas]
        "CALL", "POP",
        "STOP",
    ])


def mixer_code() -> Tuple[int, ...]:
    """Send a quarter of the call value to each of ``data[0..2]``."""
    program = []
    for i in range(3):
        program += [
            "CALLVALUE",
            ("PUSH", 4), ("SWAP", 1), "DIV",   # [value // 4]
            ("PUSH", i), "CALLDATALOAD",       # [value // 4, addr_i]
            ("PUSH", FORWARD_GAS),             # [value // 4, addr_i, gas]
            "CALL", "POP",
        ]
    program.append("STOP")
    return assemble(program)


def wallet_code() -> Tuple[int, ...]:
    """Forward the whole call value to the owner stored at slot 0."""
    return assemble([
        ("PUSH", 0), "SLOAD",             # [owner]
        "CALLVALUE",                      # [owner, value]
        ("SWAP", 1),                      # [value, owner]
        ("PUSH", FORWARD_GAS),            # [value, owner, gas]
        "CALL", "POP",
        "STOP",
    ])


def factory_code() -> Tuple[int, ...]:
    """CREATE a contract from template id ``data[0]`` with zero value."""
    return assemble([
        ("PUSH", 0),                      # [value = 0]
        ("PUSH", 0), "CALLDATALOAD",      # [value, template_id]
        "CREATE", "POP",
        "STOP",
    ])


def spammer_code(fanout: int = 4) -> Tuple[int, ...]:
    """Attack-period spammer: zero-value CALL to ``fanout`` calldata
    addresses, touching (and thereby materialising in the graph) fresh
    throwaway accounts."""
    program = []
    for i in range(fanout):
        program += [
            ("PUSH", 0),                  # [value = 0]
            ("PUSH", i), "CALLDATALOAD",  # [value, addr_i]
            ("PUSH", 5_000),              # [value, addr_i, gas]
            "CALL", "POP",
        ]
    program.append("STOP")
    return assemble(program)


def dummy_code() -> Tuple[int, ...]:
    """A contract that does nothing (attack-period state bloat)."""
    return assemble(["STOP"])
