"""Gas schedule for EVM-lite.

Constants follow the spirit (and rough magnitudes) of Ethereum's yellow
paper schedule: storage writes are expensive, calls carry a base fee plus
a stipend mechanism, arithmetic is cheap.  The absolute values only need
to be *relatively* sensible — the workload generator budgets gas limits
from these constants, and the paper's analysis never depends on exact
gas numbers.
"""

from __future__ import annotations

from typing import Dict

#: Intrinsic cost charged to every transaction before execution.
G_TRANSACTION = 21_000

#: Per-byte cost of transaction data.
G_TXDATA = 16

#: Cheap stack/arithmetic ops.
G_BASE = 2
G_VERYLOW = 3
G_LOW = 5

#: Storage.
G_SLOAD = 200
G_SSTORE_SET = 20_000    # writing a non-zero value into a zero slot
G_SSTORE_RESET = 5_000   # overwriting / zeroing an existing slot
R_SSTORE_CLEAR = 15_000  # refund for clearing a slot (capped at 1/2 used)

#: Calls.
G_CALL = 700
G_CALLVALUE = 9_000      # surcharge when a call transfers value
G_CALLSTIPEND = 2_300    # stipend passed to the callee on value transfer
G_NEWACCOUNT = 25_000    # surcharge when the callee did not exist

#: Contract creation.
G_CREATE = 32_000

#: Jumps.
G_JUMPDEST = 1
G_MID = 8                # JUMP
G_HIGH = 10              # JUMPI

#: Environment reads (CALLER, ADDRESS, BALANCE, CALLDATALOAD, ...).
G_BALANCE = 400
G_ENV = 2


def sstore_cost(old_value: int, new_value: int) -> int:
    """Gas for an SSTORE given the slot's old and new values."""
    if old_value == 0 and new_value != 0:
        return G_SSTORE_SET
    return G_SSTORE_RESET


def sstore_refund(old_value: int, new_value: int) -> int:
    """Refund earned by an SSTORE (clearing a slot refunds gas)."""
    if old_value != 0 and new_value == 0:
        return R_SSTORE_CLEAR
    return 0


def intrinsic_gas(data_len: int) -> int:
    """Intrinsic transaction cost: base fee plus data fee."""
    return G_TRANSACTION + G_TXDATA * data_len


def call_cost(transfers_value: bool, callee_exists: bool) -> int:
    """Up-front gas for a CALL, excluding the gas forwarded."""
    cost = G_CALL
    if transfers_value:
        cost += G_CALLVALUE
    if not callee_exists:
        cost += G_NEWACCOUNT
    return cost
