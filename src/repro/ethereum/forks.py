"""Protocol eras: fork-dependent gas repricing (paper Fig. 1 landmarks).

Ethereum's consensus rules "have been revised (i.e., forked) many
times" (paper §II-A).  One fork matters *causally* to this study:
**EIP-150** (Oct 2016) repriced state-access opcodes precisely because
the autumn-2016 DoS attack — the event that distorts METIS's balance in
the paper — exploited their underpricing.

An :class:`Era` carries the repriced costs; :func:`era_at` maps a
timestamp to the era in force, and the EVM consults it per transaction.
Costs before EIP-150 match the launch schedule (SLOAD 50, CALL 40,
BALANCE 20); afterwards the familiar 200/700/400.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.ethereum.history import date_to_ts


@dataclasses.dataclass(frozen=True)
class Era:
    """Gas costs that changed across the forks we model."""

    name: str
    start_ts: float
    sload_cost: int
    call_cost: int
    balance_cost: int


def _ts(year: int, month: int, day: int) -> float:
    import datetime

    return date_to_ts(datetime.date(year, month, day))


#: Eras in force over the study period, ascending by start time.
ERAS: Tuple[Era, ...] = (
    Era(name="frontier", start_ts=float("-inf"),
        sload_cost=50, call_cost=40, balance_cost=20),
    # Homestead (Mar 2016) did not touch these costs; listed for the
    # timeline's sake with identical pricing.
    Era(name="homestead", start_ts=_ts(2016, 3, 14),
        sload_cost=50, call_cost=40, balance_cost=20),
    # EIP-150 "gas cost changes for IO-heavy operations" — the direct
    # protocol response to the DoS attack.
    Era(name="eip150", start_ts=_ts(2016, 10, 18),
        sload_cost=200, call_cost=700, balance_cost=400),
)


def era_at(ts: float) -> Era:
    """The era in force at simulated timestamp ``ts``."""
    current = ERAS[0]
    for era in ERAS:
        if ts >= era.start_ts:
            current = era
        else:
            break
    return current


def era_names() -> List[str]:
    return [e.name for e in ERAS]
