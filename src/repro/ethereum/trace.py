"""Message-call traces: the bridge from execution to the graph.

Executing a transaction yields a :class:`TransactionTrace` — the ordered
list of message calls (top-level activation plus internal calls and
transfers).  The paper's graph rule (§II-B) maps each call to a directed
edge caller → callee; :meth:`TransactionTrace.to_interactions` performs
exactly that mapping.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List, Tuple

from repro.ethereum.types import Address, Wei
from repro.graph.builder import Interaction
from repro.graph.digraph import VertexKind


class CallKind(enum.Enum):
    """How the callee was reached."""

    TRANSFER = "transfer"  # pure value transfer (callee may be EOA or contract)
    CALL = "call"          # contract activation with code execution
    CREATE = "create"      # contract creation


@dataclasses.dataclass(frozen=True)
class MessageCall:
    """One caller → callee event inside a transaction."""

    kind: CallKind
    caller: Address
    callee: Address
    value: Wei
    depth: int
    caller_is_contract: bool
    callee_is_contract: bool
    success: bool = True

    def endpoints(self) -> Tuple[Address, Address]:
        return self.caller, self.callee


@dataclasses.dataclass
class TransactionTrace:
    """All message calls of one executed transaction."""

    tx_id: int
    timestamp: float
    calls: List[MessageCall] = dataclasses.field(default_factory=list)
    succeeded: bool = True
    gas_used: int = 0

    def record(self, call: MessageCall) -> None:
        self.calls.append(call)

    @property
    def num_calls(self) -> int:
        return len(self.calls)

    def touched_addresses(self) -> Tuple[Address, ...]:
        """Every distinct address involved, in first-touch order."""
        seen = {}
        for c in self.calls:
            seen.setdefault(c.caller, None)
            seen.setdefault(c.callee, None)
        return tuple(seen)

    def to_interactions(self, include_failed: bool = True) -> Iterator[Interaction]:
        """Map message calls to graph interactions (paper §II-B).

        Failed internal calls are included by default: the paper builds
        the graph from observed calls, and a failed call still crossed
        shards (the coordination cost is paid regardless of outcome).
        """
        for c in self.calls:
            if not include_failed and not c.success:
                continue
            yield Interaction(
                timestamp=self.timestamp,
                src=c.caller,
                dst=c.callee,
                src_kind=VertexKind.CONTRACT if c.caller_is_contract else VertexKind.ACCOUNT,
                dst_kind=VertexKind.CONTRACT if c.callee_is_contract else VertexKind.ACCOUNT,
                tx_id=self.tx_id,
            )
