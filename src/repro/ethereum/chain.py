"""The blockchain: block validation, execution and trace emission.

The chain owns the world state and the EVM.  Appending a block validates
it structurally (parent hash, monotone number and timestamp, gas limit),
executes every transaction, credits the miner with the block reward plus
fees, and emits one :class:`~repro.ethereum.trace.TransactionTrace` per
transaction.  Traces are the raw material of the blockchain graph.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import InvalidBlockError, InvalidTransactionError
from repro.ethereum.block import Block, BlockHeader, make_genesis
from repro.ethereum.evm import EVM
from repro.ethereum.state import WorldState
from repro.ethereum.trace import TransactionTrace
from repro.ethereum.transaction import Receipt, Transaction
from repro.ethereum.types import Address, Gas, Wei

#: Miner reward per block (5 ether pre-Byzantium; units are arbitrary).
BLOCK_REWARD: Wei = 5_000_000_000


class Blockchain:
    """A single-fork chain executing blocks against a world state.

    ``trace_sink`` (if given) receives every transaction trace as it is
    produced; the replay pipeline uses this to stream interactions into
    the graph builder without buffering the whole history.
    """

    def __init__(
        self,
        state: Optional[WorldState] = None,
        trace_sink: Optional[Callable[[TransactionTrace], None]] = None,
        keep_traces: bool = True,
    ):
        self.state = state if state is not None else WorldState()
        self.evm = EVM(self.state)
        self.blocks: List[Block] = [make_genesis()]
        self.receipts: List[Receipt] = []
        self.traces: List[TransactionTrace] = []
        self._trace_sink = trace_sink
        self._keep_traces = keep_traces

    # ------------------------------------------------------------------

    @property
    def head(self) -> Block:
        return self.blocks[-1]

    @property
    def height(self) -> int:
        return self.head.number

    def validate_header(self, header: BlockHeader) -> None:
        """Structural validation against the current head."""
        head = self.head
        if header.number != head.number + 1:
            raise InvalidBlockError(
                f"block number {header.number}, expected {head.number + 1}"
            )
        if header.parent_hash != head.hash():
            raise InvalidBlockError(
                f"parent hash mismatch at block {header.number}"
            )
        if header.timestamp < head.timestamp:
            raise InvalidBlockError(
                f"timestamp {header.timestamp} before parent {head.timestamp}"
            )
        if header.gas_limit <= 0:
            raise InvalidBlockError("non-positive gas limit")

    def add_block(
        self,
        transactions: Sequence[Transaction],
        timestamp: float,
        miner: Address,
        gas_limit: Gas = 10_000_000,
    ) -> Tuple[Block, List[Receipt]]:
        """Build, validate, execute and append the next block.

        Transactions that fail chain-level validation (bad nonce,
        unaffordable) are rejected with :class:`InvalidTransactionError`
        — block producers are expected to only include valid
        transactions, as real miners do.  EVM-level failures yield
        failed receipts but stay in the block.
        """
        header = BlockHeader(
            number=self.head.number + 1,
            parent_hash=self.head.hash(),
            timestamp=timestamp,
            miner=miner,
            gas_limit=gas_limit,
        )
        self.validate_header(header)

        receipts: List[Receipt] = []
        gas_used_total = 0
        for tx in transactions:
            if gas_used_total + tx.gas_limit > gas_limit:
                raise InvalidBlockError(
                    f"block gas limit exceeded at tx {tx.tx_id}"
                )
            receipt, trace = self.evm.execute_transaction(tx, timestamp, miner=miner)
            receipts.append(receipt)
            gas_used_total += receipt.gas_used
            if self._trace_sink is not None:
                self._trace_sink(trace)
            if self._keep_traces:
                self.traces.append(trace)

        if miner in self.state:
            self.state.add_balance(miner, BLOCK_REWARD)
        self.state.discard_journal()

        header = BlockHeader(
            number=header.number,
            parent_hash=header.parent_hash,
            timestamp=header.timestamp,
            miner=header.miner,
            gas_limit=header.gas_limit,
            gas_used=gas_used_total,
        )
        block = Block(header=header, transactions=tuple(transactions))
        self.blocks.append(block)
        self.receipts.extend(receipts)
        return block, receipts

    # ------------------------------------------------------------------
    # inspection helpers

    @property
    def total_transactions(self) -> int:
        return sum(b.num_transactions for b in self.blocks)

    def verify_chain(self) -> bool:
        """Re-check hash linkage of the whole chain (integrity test)."""
        for parent, child in zip(self.blocks, self.blocks[1:]):
            if child.header.parent_hash != parent.hash():
                return False
            if child.number != parent.number + 1:
                return False
            if child.timestamp < parent.timestamp:
                return False
        return True
