"""Calibrated synthetic Ethereum history generator.

This module substitutes for the paper's real trace (see DESIGN.md §2).
It drives the full substrate — world state, EVM-lite, blocks, chain —
to produce a transaction history whose *statistical shape* matches the
published characteristics of the Aug-2015 → Jan-2018 Ethereum trace:

* **growth phases** (paper Fig. 1): transaction intensity grows
  exponentially from genesis to the autumn-2016 attack, bursts during
  the attack window, then grows superlinearly through the 2017 boom;
* **the DoS attack** (Sep–Oct 2016): a flood of transactions touching
  throwaway accounts that are never used again — the cause of the
  METIS dynamic-balance anomaly the paper highlights;
* **hub structure**: token contracts, exchanges, mixers and wallets
  accumulate heavy-tailed degree via preferential attachment;
* **community structure**: accounts cluster around dApp ecosystems
  (most interactions stay within a community, a minority bridges) —
  this is what gives cut-minimising partitioners something to find,
  and it grows over time as new ecosystems appear;
* **internal calls**: contract programs fan out into nested message
  calls, so single transactions produce multiple graph edges, as in
  the paper's Fig. 2 subgraph.

Every transaction is genuinely executed by EVM-lite; graph interactions
come out of the message-call traces, never from shortcuts.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ethereum import contracts as programs
from repro.ethereum.chain import Blockchain
from repro.ethereum.history import ATTACK_END, ATTACK_START, STUDY_DAYS
from repro.ethereum.state import WorldState
from repro.ethereum.trace import TransactionTrace
from repro.ethereum.transaction import Transaction
from repro.ethereum.types import Address, Wei
from repro.graph.builder import GraphBuilder, Interaction
from repro.graph.snapshot import DAY, HOUR


@dataclasses.dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic history.

    The defaults produce a laptop-scale run (~60k transactions, ~25k
    accounts) with the full 886-day timeline.  Use :meth:`small` for
    integration tests and :meth:`tiny` for smoke tests; scale is linear
    in ``total_transactions``.
    """

    seed: int = 42
    total_transactions: int = 60_000
    step_hours: float = 4.0
    start_ts: float = 0.0
    end_ts: float = STUDY_DAYS * DAY

    # growth shape (relative intensities; absolute scale comes from
    # total_transactions)
    preattack_growth_ratio: float = 40.0   # intensity(attack) / intensity(genesis)
    attack_multiplier: float = 6.0         # burst factor during the attack window
    postattack_final_ratio: float = 8.0    # intensity(end) / intensity(attack end)
    postattack_power: float = 1.35         # superlinearity of the 2017 boom

    # transaction mixture (normal periods; renormalised internally)
    mix_transfer: float = 0.40
    mix_token: float = 0.28
    mix_exchange: float = 0.12
    mix_mixer: float = 0.04
    mix_wallet: float = 0.06
    mix_deploy: float = 0.02

    # population dynamics
    p_new_recipient: float = 0.25    # transfers that mint a fresh account
    p_new_sender: float = 0.08       # txs sent from a freshly funded account
    p_preferential: float = 0.75     # weight of preferential vs uniform pick
    attack_spam_fraction: float = 0.80
    spam_fanout: int = 4

    # community structure
    p_intra_community: float = 0.85  # interactions that stay in-community
    community_interval_days: float = 45.0  # a new ecosystem roughly monthly+
    max_communities: int = 48
    p_inherit_community: float = 0.90  # fresh recipient joins sender's community

    # economics
    initial_balance: Wei = 10**15
    gas_price: Wei = 1
    use_eras: bool = True   # fork-dependent gas repricing (EIP-150)

    # bootstrap population
    bootstrap_eoas: int = 24
    bootstrap_tokens: int = 2
    bootstrap_exchanges: int = 1

    @classmethod
    def tiny(cls, seed: int = 42) -> "WorkloadConfig":
        """~600 transactions over 60 days — for smoke tests."""
        return cls(
            seed=seed,
            total_transactions=600,
            end_ts=60 * DAY,
            step_hours=12.0,
        )

    @classmethod
    def small(cls, seed: int = 42) -> "WorkloadConfig":
        """~6k transactions over the full timeline — for integration
        tests and quick benchmark runs."""
        return cls(seed=seed, total_transactions=6_000, step_hours=24.0)

    @classmethod
    def medium(cls, seed: int = 42) -> "WorkloadConfig":
        """~24k transactions, 8-hour steps — the default for figures."""
        return cls(seed=seed, total_transactions=24_000, step_hours=8.0)

    @classmethod
    def large(cls, seed: int = 42) -> "WorkloadConfig":
        """~2M transactions, 1-hour steps — the Ethereum-scale export
        tier (multi-million interaction rows over the full timeline).

        This tier exists to *emit traces*, not to hold a log in
        memory: drive it through
        :func:`repro.ethereum.export.export_workload_trace`, which
        streams interactions into a chunked rctrace writer instead of
        boxing them in a :class:`~repro.graph.builder.GraphBuilder`.
        """
        return cls(seed=seed, total_transactions=2_000_000, step_hours=1.0)

    def mixture(self) -> Dict[str, float]:
        """Normalised transaction-type mixture for normal periods."""
        raw = {
            "transfer": self.mix_transfer,
            "token": self.mix_token,
            "exchange": self.mix_exchange,
            "mixer": self.mix_mixer,
            "wallet": self.mix_wallet,
            "deploy": self.mix_deploy,
        }
        total = sum(raw.values())
        if total <= 0:
            raise ValueError("transaction mixture weights must sum to > 0")
        return {k: v / total for k, v in raw.items()}


@dataclasses.dataclass
class WorkloadResult:
    """Everything the generator produced."""

    config: WorkloadConfig
    builder: GraphBuilder
    chain: Blockchain

    @property
    def graph(self):
        return self.builder.graph

    @property
    def num_transactions(self) -> int:
        return self.chain.total_transactions

    @property
    def state(self) -> WorldState:
        return self.chain.state


@dataclasses.dataclass
class _Community:
    """One dApp ecosystem: its members, hubs and activity multiset."""

    index: int
    eoas: List[Address] = dataclasses.field(default_factory=list)
    activity: List[Address] = dataclasses.field(default_factory=list)
    hubs: Dict[str, List[Address]] = dataclasses.field(
        default_factory=lambda: {"token": [], "exchange": [], "mixer": [], "wallet": []}
    )


# gas limits generous enough that well-formed workload txs never OOG
_GAS_LIMITS = {
    "transfer": 25_000,
    "token": 110_000,
    "exchange": 160_000,
    "mixer": 260_000,
    "wallet": 130_000,
    "deploy": 120_000,
    "spam": 120_000,
    "activate": 120_000,
}

_HUB_PROGRAMS = {
    "token": programs.token_code,
    "exchange": programs.exchange_code,
    "mixer": programs.mixer_code,
    "wallet": programs.wallet_code,
}


class WorkloadGenerator:
    """Drives the chain to produce the synthetic history.

    ``interaction_sink`` redirects the generated interaction stream:
    when set, every interaction is handed to the callable (in time
    order) *instead of* being accumulated in :attr:`builder`, so the
    generator runs in bounded memory — chain state and community
    registries only, no boxed log, no cumulative graph.  The stream is
    identical either way: the sink replaces only the storage, never
    the RNG-driven generation path.  This is the Ethereum-scale trace
    ingestion hook (:func:`repro.ethereum.export.export_workload_trace`).
    """

    def __init__(
        self,
        config: WorkloadConfig,
        interaction_sink: Optional[Callable[[Interaction], None]] = None,
    ):
        self.config = config
        self.rng = random.Random(config.seed)
        self.state = WorldState()
        self.builder = GraphBuilder()
        self._interaction_sink = interaction_sink
        self.chain = Blockchain(
            self.state, trace_sink=self._on_trace, keep_traces=False
        )
        self.chain.evm.use_eras = config.use_eras
        self._tmpl_dummy = self.chain.evm.register_template(programs.dummy_code())

        # community registries
        self.communities: List[_Community] = [_Community(0)]
        self.community_of: Dict[Address, int] = {}
        # flat registries (fallbacks and bookkeeping)
        self.eoas: List[Address] = []
        self.hubs: Dict[str, List[Address]] = {
            "token": [], "exchange": [], "mixer": [], "wallet": []
        }
        self.spammers: List[Address] = []
        self.spammers_senders: List[Address] = []
        self._eoa_index: set = set()
        self._hub_kind: Dict[Address, str] = {}

        self._next_tx_id = 0
        self.miner = self._new_eoa(funded=True, timestamp=0.0, community=0)

    # ------------------------------------------------------------------
    # population helpers

    def _ensure_communities(self, ts: float) -> None:
        """Grow the ecosystem count with time (new dApp waves)."""
        want = min(
            self.config.max_communities,
            1 + int(ts / (self.config.community_interval_days * DAY)),
        )
        while len(self.communities) < want:
            self.communities.append(_Community(len(self.communities)))

    def _pick_community(self) -> _Community:
        """Community for a brand-new actor: uniform over existing ones
        (keeps ecosystems comparable in size)."""
        return self.rng.choice(self.communities)

    def _new_eoa(self, funded: bool, timestamp: float, community: Optional[int] = None) -> Address:
        balance = self.config.initial_balance if funded else 0
        acct = self.state.create_eoa(balance=balance, timestamp=timestamp)
        self.state.discard_journal()
        addr = acct.address
        comm = self._pick_community().index if community is None else community
        self.community_of[addr] = comm
        self.communities[comm].eoas.append(addr)
        self.eoas.append(addr)
        self._eoa_index.add(addr)
        return addr

    def _deploy_hub(
        self,
        kind: str,
        timestamp: float,
        community: int,
        initial_storage: Optional[Dict[int, int]] = None,
    ) -> Address:
        acct = self.state.create_contract(
            _HUB_PROGRAMS[kind](), timestamp=timestamp, initial_storage=initial_storage
        )
        self.state.discard_journal()
        addr = acct.address
        self.community_of[addr] = community
        self.communities[community].hubs[kind].append(addr)
        self.hubs[kind].append(addr)
        self._hub_kind[addr] = kind
        return addr

    def _community_for_tx(self, sender: Address) -> _Community:
        """The community a transaction plays out in: the sender's, with
        probability ``p_intra_community``; otherwise a random one (the
        bridging minority that creates inter-community edges)."""
        if self.rng.random() < self.config.p_intra_community:
            return self.communities[self.community_of[sender]]
        return self._pick_community()

    def _pick_eoa(self, community: Optional[_Community] = None) -> Address:
        """An existing EOA, preferentially by past activity.

        The activity multiset also holds contract endpoints, so a
        bounded rejection loop keeps only EOAs (contracts must not
        receive plain transfers: their code would run with a
        transfer-sized gas budget and fail).
        """
        rng = self.rng
        if community is not None:
            if community.activity and rng.random() < self.config.p_preferential:
                for _ in range(8):
                    cand = rng.choice(community.activity)
                    if cand in self._eoa_index:
                        return cand
            if community.eoas:
                return rng.choice(community.eoas)
        # global fallback
        comm = self.rng.choice(self.communities)
        if comm.activity and rng.random() < self.config.p_preferential:
            for _ in range(8):
                cand = rng.choice(comm.activity)
                if cand in self._eoa_index:
                    return cand
        return rng.choice(self.eoas)

    def _pick_sender(self, timestamp: float) -> Address:
        """A funded sender; occasionally a brand-new funded account."""
        if self.rng.random() < self.config.p_new_sender:
            return self._new_eoa(funded=True, timestamp=timestamp)
        addr = self._pick_eoa(self._pick_community())
        acct = self.state.get(addr)
        if acct.balance < 10**9:
            # never-funded recipient account: top it up out of band
            # (faucet semantics — stands in for an exchange withdrawal)
            self.state.add_balance(addr, self.config.initial_balance)
            self.state.discard_journal()
        return addr

    def _pick_hub(self, kind: str, community: _Community) -> Address:
        """A hub of ``kind``, from the community when it has one."""
        local = community.hubs[kind]
        if local:
            # preferential within the community: recent activity first
            rng = self.rng
            if rng.random() < self.config.p_preferential:
                for _ in range(8):
                    cand = rng.choice(community.activity) if community.activity else None
                    if cand is not None and self._hub_kind.get(cand) == kind:
                        return cand
            return rng.choice(local)
        return self.rng.choice(self.hubs[kind])

    # ------------------------------------------------------------------
    # trace sink

    def _on_trace(self, trace: TransactionTrace) -> None:
        sink = self._interaction_sink
        for interaction in trace.to_interactions():
            if sink is not None:
                sink(interaction)
            else:
                self.builder.add(interaction)
            for endpoint in (interaction.src, interaction.dst):
                comm_idx = self.community_of.get(endpoint)
                if comm_idx is not None:
                    self.communities[comm_idx].activity.append(endpoint)

    # ------------------------------------------------------------------
    # transaction builders

    def _fresh_tx_id(self) -> int:
        tid = self._next_tx_id
        self._next_tx_id += 1
        return tid

    def _base_tx(
        self,
        sender: Address,
        to: Address,
        kind: str,
        pending: Dict[Address, int],
        value: Wei = 0,
        data: Tuple[int, ...] = (),
    ) -> Transaction:
        nonce = self.state.get(sender).nonce + pending.get(sender, 0)
        pending[sender] = pending.get(sender, 0) + 1
        return Transaction(
            tx_id=self._fresh_tx_id(),
            sender=sender,
            to=to,
            value=value,
            gas_limit=_GAS_LIMITS[kind],
            gas_price=self.config.gas_price,
            nonce=nonce,
            data=data,
        )

    def _tx_transfer(self, ts: float, pending: Dict[Address, int]) -> Transaction:
        sender = self._pick_sender(ts)
        community = self._community_for_tx(sender)
        if self.rng.random() < self.config.p_new_recipient:
            if self.rng.random() < self.config.p_inherit_community:
                comm = community.index
            else:
                comm = self._pick_community().index
            to = self._new_eoa(funded=False, timestamp=ts, community=comm)
        else:
            to = self._pick_eoa(community)
            if to == sender and len(self.eoas) > 1:
                to = self._pick_eoa(community)
        value = self.rng.randint(1, 10**6)
        return self._base_tx(sender, to, "transfer", pending, value=value)

    def _tx_token(self, ts: float, pending: Dict[Address, int]) -> Transaction:
        sender = self._pick_sender(ts)
        community = self._community_for_tx(sender)
        token = self._pick_hub("token", community)
        recipient = self._pick_eoa(community)
        amount = self.rng.randint(1, 10**6)
        return self._base_tx(
            sender, token, "token", pending, value=0, data=(recipient, amount)
        )

    def _tx_exchange(self, ts: float, pending: Dict[Address, int]) -> Transaction:
        sender = self._pick_sender(ts)
        community = self._community_for_tx(sender)
        exchange = self._pick_hub("exchange", community)
        payout = self._pick_eoa(community)
        value = self.rng.randint(2, 10**6)
        return self._base_tx(
            sender, exchange, "exchange", pending, value=value, data=(payout,)
        )

    def _tx_mixer(self, ts: float, pending: Dict[Address, int]) -> Transaction:
        sender = self._pick_sender(ts)
        community = self._community_for_tx(sender)
        mixer = self._pick_hub("mixer", community)
        outs = tuple(self._pick_eoa(community) for _ in range(3))
        value = self.rng.randint(4, 10**6)
        return self._base_tx(sender, mixer, "mixer", pending, value=value, data=outs)

    def _tx_wallet(self, ts: float, pending: Dict[Address, int]) -> Transaction:
        sender = self._pick_sender(ts)
        community = self._community_for_tx(sender)
        wallet = self._pick_hub("wallet", community)
        value = self.rng.randint(1, 10**6)
        return self._base_tx(sender, wallet, "wallet", pending, value=value)

    def _tx_deploy(self, ts: float, pending: Dict[Address, int]) -> Transaction:
        """Deploy a new hub contract and activate it with a transaction.

        The contract object is created directly in the state (standing
        in for init-code execution); the returned transaction is the
        deployer's activation call, which materialises the deployer →
        contract edge in the graph.  A small fraction goes through the
        factory-CREATE path to exercise contract-creates-contract.
        """
        sender = self._pick_sender(ts)
        comm = self.community_of[sender]
        roll = self.rng.random()
        if roll < 0.45:
            addr = self._deploy_hub("token", ts, comm)
            return self._base_tx(
                sender, addr, "activate", pending, value=0, data=(sender, 0)
            )
        if roll < 0.65:
            addr = self._deploy_hub("exchange", ts, comm)
            return self._base_tx(
                sender, addr, "activate", pending, value=2, data=(sender,)
            )
        if roll < 0.78:
            addr = self._deploy_hub("mixer", ts, comm)
            return self._base_tx(
                sender, addr, "activate", pending, value=4,
                data=(sender, sender, sender),
            )
        if roll < 0.94:
            owner = self._pick_eoa(self.communities[comm])
            addr = self._deploy_hub("wallet", ts, comm, initial_storage={0: owner})
            return self._base_tx(sender, addr, "activate", pending, value=2)
        # factory path: deploy via CREATE inside the EVM
        acct = self.state.create_contract(programs.factory_code(), timestamp=ts)
        self.state.discard_journal()
        self.community_of[acct.address] = comm
        return self._base_tx(
            sender, acct.address, "deploy", pending, value=0,
            data=(self._tmpl_dummy,),
        )

    def _tx_spam(self, ts: float, pending: Dict[Address, int]) -> Transaction:
        """One attack transaction touching ``spam_fanout`` fresh accounts."""
        sender = self.rng.choice(self.spammers_senders)
        spammer = self.rng.choice(self.spammers)
        targets = tuple(
            self._new_throwaway(ts) for _ in range(self.config.spam_fanout)
        )
        return self._base_tx(sender, spammer, "spam", pending, value=0, data=targets)

    def _new_throwaway(self, ts: float) -> Address:
        """A dummy account that will never act again (attack bloat).

        Deliberately NOT added to any community or registry: throwaways
        never transact again, exactly like the dummy accounts the paper
        blames for METIS's post-attack imbalance.
        """
        acct = self.state.create_eoa(balance=0, timestamp=ts)
        self.state.discard_journal()
        return acct.address

    # ------------------------------------------------------------------
    # intensity profile

    def _step_weights(self, step_mids: Sequence[float]) -> List[float]:
        """Relative transaction intensity at each step midpoint.

        Exponential to the attack, burst inside the window, superlinear
        (power-law in time) afterwards — the Fig. 1 shape.
        """
        cfg = self.config
        span_pre = max(ATTACK_START - cfg.start_ts, 1.0)
        growth_k = math.log(cfg.preattack_growth_ratio)
        span_post = max(cfg.end_ts - ATTACK_END, 1.0)
        boom_c = cfg.postattack_final_ratio ** (1.0 / cfg.postattack_power) - 1.0

        weights: List[float] = []
        for ts in step_mids:
            if ts < ATTACK_START:
                w = math.exp(growth_k * (ts - cfg.start_ts) / span_pre)
            elif ts < ATTACK_END:
                w = cfg.preattack_growth_ratio * cfg.attack_multiplier
            else:
                tau = (ts - ATTACK_END) / span_post
                w = cfg.preattack_growth_ratio * (1.0 + boom_c * tau) ** cfg.postattack_power
            weights.append(w)
        return weights

    # ------------------------------------------------------------------
    # main loop

    def run(self, progress: Optional[Callable[[int, int], None]] = None) -> WorkloadResult:
        """Generate the whole history; returns builder + chain."""
        cfg = self.config
        ts = cfg.start_ts

        # bootstrap population (genesis-time actors)
        for _ in range(cfg.bootstrap_eoas):
            self._new_eoa(funded=True, timestamp=ts)
        for _ in range(cfg.bootstrap_tokens):
            self._deploy_hub("token", ts, 0)
        for _ in range(cfg.bootstrap_exchanges):
            self._deploy_hub("exchange", ts, 0)
        self._deploy_hub("mixer", ts, 0)
        owner = self.rng.choice(self.eoas)
        self._deploy_hub("wallet", ts, 0, initial_storage={0: owner})
        # attack infrastructure (dormant until the window)
        self.spammers_senders = [
            self._new_eoa(funded=True, timestamp=ts) for _ in range(3)
        ]
        for _ in range(2):
            acct = self.state.create_contract(
                programs.spammer_code(cfg.spam_fanout), timestamp=ts
            )
            self.state.discard_journal()
            self.spammers.append(acct.address)
            self.community_of[acct.address] = 0

        step = cfg.step_hours * HOUR
        step_starts: List[float] = []
        t = cfg.start_ts
        while t < cfg.end_ts:
            step_starts.append(t)
            t += step
        mids = [s + step / 2 for s in step_starts]
        weights = self._step_weights(mids)
        total_w = sum(weights)

        carried = 0.0
        executed = 0
        mixture = cfg.mixture()
        mix_kinds = list(mixture)
        mix_weights = [mixture[k] for k in mix_kinds]

        for i, start in enumerate(step_starts):
            self._ensure_communities(start)
            quota = cfg.total_transactions * weights[i] / total_w + carried
            n = int(quota)
            carried = quota - n
            if n == 0:
                continue
            block_ts = start
            in_attack = ATTACK_START <= mids[i] < ATTACK_END
            txs: List[Transaction] = []
            pending: Dict[Address, int] = {}
            for _ in range(n):
                if in_attack and self.rng.random() < cfg.attack_spam_fraction:
                    txs.append(self._tx_spam(block_ts, pending))
                    continue
                kind = self.rng.choices(mix_kinds, weights=mix_weights, k=1)[0]
                tx_builder = getattr(self, f"_tx_{kind}")
                txs.append(tx_builder(block_ts, pending))
            gas_limit = sum(tx.gas_limit for tx in txs) + 1_000
            self.chain.add_block(txs, block_ts, self.miner, gas_limit=gas_limit)
            executed += n
            if progress is not None:
                progress(executed, cfg.total_transactions)

        return WorkloadResult(config=cfg, builder=self.builder, chain=self.chain)


def generate_history(config: Optional[WorkloadConfig] = None) -> WorkloadResult:
    """Generate a synthetic Ethereum history with the given config."""
    return WorkloadGenerator(config or WorkloadConfig()).run()
