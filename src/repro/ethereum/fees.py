"""Resource metering and fee attribution (paper final remarks).

The paper closes: "In case of a generic framework such as Ethereum,
there are three main components that need to be addressed: computation,
storage and bandwidth [Chepurnoy et al., 2018/078].  All of these
components play an important role in partitioning."

This module makes those components first-class:

* :class:`ResourceVector` — (computation, storage, bandwidth) usage;
* :func:`meter_transaction` — derive a transaction's vector from its
  receipt and trace: computation = gas used, storage = net state-slot
  delta (bytes), bandwidth = serialized calls that crossed shards under
  a given assignment;
* :class:`FeeSchedule` — prices a vector, with a configurable
  cross-shard surcharge (multi-shard coordination is the scarce
  resource sharding introduces);
* :class:`ShardResourceAccounting` — per-shard accumulation over a
  replay, answering "which shard does the work and who pays for the
  cross-shard traffic" for each partitioning method.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.ethereum.trace import TransactionTrace
from repro.ethereum.transaction import Receipt
from repro.ethereum.types import Wei

#: Serialized size of one message call on the wire (envelope + payload).
CALL_WIRE_BYTES = 120


@dataclasses.dataclass(frozen=True)
class ResourceVector:
    """Usage along the paper's three resource axes."""

    computation: int = 0   # gas units
    storage: int = 0       # net bytes of persistent state added (>= 0)
    bandwidth: int = 0     # bytes that crossed shard boundaries

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            computation=self.computation + other.computation,
            storage=self.storage + other.storage,
            bandwidth=self.bandwidth + other.bandwidth,
        )

    @property
    def is_zero(self) -> bool:
        return self.computation == 0 and self.storage == 0 and self.bandwidth == 0


@dataclasses.dataclass(frozen=True)
class FeeSchedule:
    """Prices per resource unit, in wei.

    ``cross_shard_multiplier`` scales the *bandwidth* charge: bandwidth
    here is by construction cross-shard traffic, the resource a sharded
    deployment must ration hardest.
    """

    computation_price: Wei = 1          # wei per gas
    storage_price: Wei = 20             # wei per byte of new state
    bandwidth_price: Wei = 5            # wei per cross-shard byte
    cross_shard_multiplier: float = 2.0

    def price(self, usage: ResourceVector) -> Wei:
        return int(
            usage.computation * self.computation_price
            + usage.storage * self.storage_price
            + usage.bandwidth * self.bandwidth_price * self.cross_shard_multiplier
        )


def meter_transaction(
    receipt: Receipt,
    trace: TransactionTrace,
    storage_delta_slots: int = 0,
    assignment: Optional[Mapping[int, int]] = None,
) -> ResourceVector:
    """Meter one executed transaction.

    Args:
        receipt: the execution receipt (gas used).
        trace: the message-call trace.
        storage_delta_slots: net storage slots created by the
            transaction (callers track it via
            ``WorldState.total_storage_slots`` before/after).
        assignment: vertex → shard; when given, every call whose
            endpoints live on different shards contributes wire bytes
            to the bandwidth component.  Without an assignment the
            bandwidth component is zero (unsharded deployment).
    """
    bandwidth = 0
    if assignment is not None:
        for call in trace.calls:
            src = assignment.get(call.caller)
            dst = assignment.get(call.callee)
            if src is not None and dst is not None and src != dst:
                bandwidth += CALL_WIRE_BYTES
    return ResourceVector(
        computation=receipt.gas_used,
        storage=max(0, storage_delta_slots) * 64,
        bandwidth=bandwidth,
    )


@dataclasses.dataclass
class ShardResourceAccounting:
    """Per-shard resource totals plus fee attribution."""

    k: int
    schedule: FeeSchedule = dataclasses.field(default_factory=FeeSchedule)
    per_shard: List[ResourceVector] = dataclasses.field(default_factory=list)
    total_fees: Wei = 0
    cross_shard_fees: Wei = 0
    transactions: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not self.per_shard:
            self.per_shard = [ResourceVector() for _ in range(self.k)]

    def charge(
        self,
        usage: ResourceVector,
        home_shard: int,
        touched_shards: Sequence[int] = (),
    ) -> Wei:
        """Account a transaction's usage and return the fee charged.

        Computation and storage accrue to the *home* shard (where the
        transaction's entry account lives); bandwidth is split evenly
        across every shard it touched, since each of them did
        coordination work.
        """
        if not 0 <= home_shard < self.k:
            raise ValueError(f"home shard {home_shard} out of range")
        self.transactions += 1
        comp_store = ResourceVector(
            computation=usage.computation, storage=usage.storage
        )
        self.per_shard[home_shard] = self.per_shard[home_shard] + comp_store
        involved = [s for s in dict.fromkeys(touched_shards) if 0 <= s < self.k]
        if usage.bandwidth and involved:
            share = usage.bandwidth // len(involved)
            for s in involved:
                self.per_shard[s] = self.per_shard[s] + ResourceVector(
                    bandwidth=share
                )
        fee = self.schedule.price(usage)
        self.total_fees += fee
        self.cross_shard_fees += fee - self.schedule.price(
            ResourceVector(computation=usage.computation, storage=usage.storage)
        )
        return fee

    @property
    def fee_imbalance(self) -> float:
        """max/mean of per-shard priced work — Eq. 2 for revenue."""
        priced = [self.schedule.price(v) for v in self.per_shard]
        total = sum(priced)
        if total == 0:
            return 1.0
        return max(priced) * self.k / total

    @property
    def cross_shard_fee_share(self) -> float:
        """Fraction of all fees caused by cross-shard bandwidth."""
        if self.total_fees == 0:
            return 0.0
        return self.cross_shard_fees / self.total_fees


def account_replay(
    traces: Iterable[Tuple[Receipt, TransactionTrace]],
    assignment: Mapping[int, int],
    k: int,
    schedule: Optional[FeeSchedule] = None,
) -> ShardResourceAccounting:
    """Run fee accounting over (receipt, trace) pairs under an
    assignment — the EXT-FEES experiment core."""
    acct = ShardResourceAccounting(k=k, schedule=schedule or FeeSchedule())
    for receipt, trace in traces:
        usage = meter_transaction(receipt, trace, assignment=assignment)
        touched = [
            s for s in (
                assignment.get(a) for a in trace.touched_addresses()
            ) if s is not None
        ]
        home = touched[0] if touched else 0
        acct.charge(usage, home_shard=home, touched_shards=touched)
    return acct
