"""The world state: all accounts, with journaled mutation for reverts.

EVM semantics require that a failing message call reverts *all* state
changes made inside its frame while keeping changes of enclosing frames.
We implement this with a journal of undo entries: :meth:`snapshot`
records the journal length, :meth:`revert_to` pops and undoes entries
back to it — the same design as go-ethereum's ``journal``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import InsufficientBalanceError, UnknownAccountError
from repro.ethereum.account import Account, AccountKind
from repro.ethereum.types import Address, Wei


class WorldState:
    """All accounts, addressed by compact sequential ids."""

    def __init__(self) -> None:
        self._accounts: Dict[Address, Account] = {}
        self._next_address: Address = 0
        # journal of undo closures; snapshot = index into this list
        self._journal: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # account management

    def allocate_address(self) -> Address:
        addr = self._next_address
        self._next_address += 1
        return addr

    def create_eoa(self, balance: Wei = 0, timestamp: float = 0.0) -> Account:
        """Create a fresh externally-owned account."""
        addr = self.allocate_address()
        acct = Account(addr, AccountKind.EOA, balance=balance, created_at=timestamp)
        self._accounts[addr] = acct
        self._journal.append(lambda a=addr: self._undo_create(a))
        return acct

    def create_contract(
        self,
        code: tuple,
        balance: Wei = 0,
        timestamp: float = 0.0,
        initial_storage: Optional[Dict[int, int]] = None,
    ) -> Account:
        """Create a fresh contract account with the given code.

        ``initial_storage`` models the contract's initialization code
        having run at creation (paper §II-A: "the initial contract state
        can be set by using an initialization code").
        """
        addr = self.allocate_address()
        acct = Account(
            addr,
            AccountKind.CONTRACT,
            balance=balance,
            code=tuple(code),
            storage=dict(initial_storage or {}),
            created_at=timestamp,
        )
        self._accounts[addr] = acct
        self._journal.append(lambda a=addr: self._undo_create(a))
        return acct

    def _undo_create(self, address: Address) -> None:
        self._accounts.pop(address, None)

    # ------------------------------------------------------------------
    # lookup

    def __contains__(self, address: Address) -> bool:
        return address in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

    def get(self, address: Address) -> Account:
        try:
            return self._accounts[address]
        except KeyError:
            raise UnknownAccountError(address) from None

    def get_optional(self, address: Address) -> Optional[Account]:
        return self._accounts.get(address)

    def accounts(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def addresses(self) -> Iterator[Address]:
        return iter(self._accounts)

    # ------------------------------------------------------------------
    # journaled mutation

    def snapshot(self) -> int:
        """Mark the current journal position for a later revert."""
        return len(self._journal)

    def revert_to(self, snapshot: int) -> None:
        """Undo all mutations made since ``snapshot`` (LIFO order)."""
        while len(self._journal) > snapshot:
            undo = self._journal.pop()
            undo()

    def discard_journal(self) -> None:
        """Forget undo history (call at transaction commit)."""
        self._journal.clear()

    def add_balance(self, address: Address, amount: Wei) -> None:
        acct = self.get(address)
        old = acct.balance
        acct.balance = old + amount
        self._journal.append(lambda a=acct, b=old: setattr(a, "balance", b))

    def sub_balance(self, address: Address, amount: Wei) -> None:
        acct = self.get(address)
        if acct.balance < amount:
            raise InsufficientBalanceError(
                f"account {address} balance {acct.balance} < {amount}"
            )
        old = acct.balance
        acct.balance = old - amount
        self._journal.append(lambda a=acct, b=old: setattr(a, "balance", b))

    def transfer(self, src: Address, dst: Address, amount: Wei) -> None:
        """Move value between accounts (journaled, all-or-nothing)."""
        if amount < 0:
            raise ValueError(f"negative transfer amount: {amount}")
        self.sub_balance(src, amount)
        self.add_balance(dst, amount)

    def increment_nonce(self, address: Address) -> None:
        acct = self.get(address)
        old = acct.nonce
        acct.nonce = old + 1
        self._journal.append(lambda a=acct, n=old: setattr(a, "nonce", n))

    def storage_write(self, address: Address, key: int, value: int) -> None:
        acct = self.get(address)
        old = acct.storage_read(key)
        acct.storage_write(key, value)
        self._journal.append(lambda a=acct, k=key, v=old: a.storage_write(k, v))

    def storage_read(self, address: Address, key: int) -> int:
        return self.get(address).storage_read(key)

    # ------------------------------------------------------------------
    # global invariant helpers (used by property tests)

    def total_balance(self) -> Wei:
        return sum(a.balance for a in self._accounts.values())

    def total_storage_slots(self) -> int:
        return sum(a.storage_size for a in self._accounts.values())
