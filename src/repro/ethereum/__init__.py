"""Ethereum-like blockchain substrate.

The paper derives its graph from the real Ethereum blockchain.  Offline,
we substitute a faithful miniature: a world state with externally-owned
accounts and contracts, a 256-bit stack VM ("EVM-lite") with storage,
value transfers, nested message calls and gas accounting, blocks and a
chain that executes them, and a calibrated synthetic workload generator
reproducing the statistical shape of the Ethereum trace (growth phases,
the 2016 DoS-attack burst, hub contracts, heavy-tailed degree skew).

The crucial interface to the rest of the library is the *message-call
trace*: executing a transaction yields the list of caller → callee events
from which graph edges are derived, exactly as the paper derives edges
from internal calls (§II-B).
"""

from repro.ethereum.types import Address, Gas, Wei, address_hash
from repro.ethereum.account import Account, AccountKind
from repro.ethereum.state import WorldState
from repro.ethereum.transaction import Receipt, Transaction
from repro.ethereum.block import Block, BlockHeader
from repro.ethereum.chain import Blockchain
from repro.ethereum.evm import EVM, assemble, disassemble
from repro.ethereum.trace import CallKind, MessageCall, TransactionTrace
from repro.ethereum.workload import WorkloadConfig, WorkloadGenerator, generate_history

__all__ = [
    "Address",
    "Gas",
    "Wei",
    "address_hash",
    "Account",
    "AccountKind",
    "WorldState",
    "Transaction",
    "Receipt",
    "Block",
    "BlockHeader",
    "Blockchain",
    "EVM",
    "assemble",
    "disassemble",
    "CallKind",
    "MessageCall",
    "TransactionTrace",
    "WorkloadConfig",
    "WorkloadGenerator",
    "generate_history",
]
