"""Blocks and block headers.

Blocks package transactions and link to their parent by hash, forming
the chain (paper §I).  Proof-of-work is modelled as a recorded nonce and
difficulty field without actually grinding hashes — mining effort is
irrelevant to the partitioning analysis, but the structural chain
integrity (parent hashes, monotone numbers and timestamps, gas limits)
is enforced by :mod:`repro.ethereum.chain` and tested.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional, Tuple

from repro.ethereum.transaction import Transaction
from repro.ethereum.types import Address, Gas


@dataclasses.dataclass(frozen=True)
class BlockHeader:
    number: int
    parent_hash: int
    timestamp: float
    miner: Address
    gas_limit: Gas
    gas_used: Gas = 0
    difficulty: int = 1
    nonce: int = 0

    def hash(self) -> int:
        """Deterministic 64-bit header hash (blake2b over the fields)."""
        payload = (
            f"{self.number}|{self.parent_hash}|{self.timestamp:.6f}|"
            f"{self.miner}|{self.gas_limit}|{self.gas_used}|"
            f"{self.difficulty}|{self.nonce}"
        ).encode()
        return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "little")


@dataclasses.dataclass(frozen=True)
class Block:
    header: BlockHeader
    transactions: Tuple[Transaction, ...] = ()

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def timestamp(self) -> float:
        return self.header.timestamp

    def hash(self) -> int:
        return self.header.hash()

    @property
    def num_transactions(self) -> int:
        return len(self.transactions)


GENESIS_HASH = 0


def make_genesis(timestamp: float = 0.0, miner: Address = 0, gas_limit: Gas = 10_000_000) -> Block:
    """The canonical genesis block (no transactions, parent hash 0)."""
    header = BlockHeader(
        number=0,
        parent_hash=GENESIS_HASH,
        timestamp=timestamp,
        miner=miner,
        gas_limit=gas_limit,
    )
    return Block(header=header)
