"""Timeline of the Ethereum history the paper analyses (Fig. 1).

The paper's trace spans the chain's conception (30 July 2015) to the
start of 2018, annotated with protocol forks and the autumn-2016 DoS
attack.  We reproduce the same timeline in *simulated seconds since
genesis*; the constants here are the single source of truth for the
workload generator, the analysis code and the figure labels.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from typing import List, Tuple

from repro.graph.snapshot import DAY

#: Real-world genesis date of the Ethereum main net.
GENESIS_DATE = _dt.date(2015, 7, 30)

#: End of the study period (paper uses data up to the start of 2018).
END_DATE = _dt.date(2018, 1, 1)


def date_to_ts(date: _dt.date) -> float:
    """Simulated timestamp (seconds since genesis) of a calendar date."""
    return (date - GENESIS_DATE).days * DAY


def ts_to_date(ts: float) -> _dt.date:
    """Calendar date of a simulated timestamp."""
    return GENESIS_DATE + _dt.timedelta(days=ts / DAY)


def month_label(ts: float) -> str:
    """Label in the paper's ``MM.YY`` axis style (e.g. ``09.16``)."""
    d = ts_to_date(ts)
    return f"{d.month:02d}.{d.year % 100:02d}"


#: Total study duration in days.
STUDY_DAYS = (END_DATE - GENESIS_DATE).days

#: Fork / event landmarks (name, date) as the paper's Fig. 1 dashed lines.
LANDMARKS: List[Tuple[str, _dt.date]] = [
    ("Homestead", _dt.date(2016, 3, 14)),
    ("DAO", _dt.date(2016, 7, 20)),
    ("Attack", _dt.date(2016, 9, 18)),
    ("EIP150", _dt.date(2016, 10, 18)),
    ("EIP155&158", _dt.date(2016, 11, 22)),
    ("Byzantium", _dt.date(2017, 10, 16)),
]

#: The DoS-attack window during which dummy accounts flooded the chain.
ATTACK_START = date_to_ts(_dt.date(2016, 9, 18))
ATTACK_END = date_to_ts(_dt.date(2016, 10, 18))

#: Until roughly October 2016 growth was exponential; afterwards
#: superlinear (paper §I).
GROWTH_REGIME_CHANGE = date_to_ts(_dt.date(2016, 10, 18))

#: The four 2017 sub-periods of Fig. 4, as (label, start, end) in ts.
FIG4_PERIODS: List[Tuple[str, float, float]] = [
    ("01.17 - 06.17", date_to_ts(_dt.date(2017, 1, 1)), date_to_ts(_dt.date(2017, 6, 1))),
    ("06.17 - 09.17", date_to_ts(_dt.date(2017, 6, 1)), date_to_ts(_dt.date(2017, 9, 1))),
    ("09.17 - 12.17", date_to_ts(_dt.date(2017, 9, 1)), date_to_ts(_dt.date(2017, 12, 1))),
    ("12.17 - 01.18", date_to_ts(_dt.date(2017, 12, 1)), date_to_ts(_dt.date(2018, 1, 1))),
]


@dataclasses.dataclass(frozen=True)
class Landmark:
    name: str
    ts: float

    @property
    def label(self) -> str:
        return f"{self.name} ({month_label(self.ts)})"


def landmarks() -> List[Landmark]:
    return [Landmark(name, date_to_ts(date)) for name, date in LANDMARKS]
