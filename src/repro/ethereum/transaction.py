"""Transactions and receipts.

A transaction is always submitted from an externally-owned account
(paper §II-A: "users interact with Ethereum's blockchain by sending a
transaction from a user account").  It either transfers value to another
account or activates a contract; contract execution may fan out into
further calls, which the trace records.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.ethereum.types import Address, Gas, Wei


@dataclasses.dataclass(frozen=True)
class Transaction:
    """A signed (by construction, in our substrate) user transaction.

    Attributes:
        tx_id: globally unique id, assigned by the chain/workload.
        sender: originating EOA address.
        to: recipient account or contract address.
        value: wei transferred to ``to`` before execution.
        gas_limit: maximum gas the sender pays for.
        gas_price: wei per gas unit.
        nonce: sender's transaction counter (replay protection).
        data: calldata words; contracts read them via CALLDATALOAD
            (e.g. a token contract reads the recipient from data[0]).
    """

    tx_id: int
    sender: Address
    to: Address
    value: Wei = 0
    gas_limit: Gas = 100_000
    gas_price: Wei = 1
    nonce: int = 0
    data: Tuple[int, ...] = ()

    @property
    def max_cost(self) -> Wei:
        """Upper bound on what this transaction can cost the sender."""
        return self.value + self.gas_limit * self.gas_price


@dataclasses.dataclass(frozen=True)
class Receipt:
    """Outcome of executing a transaction."""

    tx_id: int
    success: bool
    gas_used: Gas
    error: Optional[str] = None
    num_calls: int = 1
