"""Ethereum-workload → trace-file ingestion (bounded memory).

The paper's pipeline starts from a real multi-million-row Ethereum
transaction trace.  This module is the repo's equivalent ingestion
path: it drives the full chain/EVM workload generator
(:mod:`repro.ethereum.workload`) at any scale — including the
``large`` export tier (~2M transactions, multi-million interaction
rows) — and streams the interaction log straight into a binary
rctrace file through :class:`~repro.graph.io.ChunkedTraceWriter`.

Nothing log-sized is ever materialised: the generator's
``interaction_sink`` hook bypasses the boxed
:class:`~repro.graph.builder.GraphBuilder` log and cumulative graph,
and the chunked writer encodes/spills columns every ``chunk_rows``
rows, so peak memory is O(chain state + chunk + vertex-intern table)
regardless of trace length.  The emitted file is byte-identical to
``write_columnar(ColumnarLog(generate_history(cfg).builder.log),
path, version=...)`` — asserted in ``tests/ethereum/test_workload.py``.

Typical pipeline (see README "Trace datasets")::

    from repro.ethereum.export import export_workload_trace
    from repro.ethereum.workload import WorkloadConfig

    export_workload_trace(WorkloadConfig.large(seed=42), "eth_large.rct")
    # then: repro-trace stats/verify, repro-experiments sweep --source
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Optional, Union

from repro.ethereum.workload import WorkloadConfig, WorkloadGenerator
from repro.graph.io import TRACE_VERSION_V3, ChunkedTraceWriter


@dataclasses.dataclass(frozen=True)
class TraceExportResult:
    """What an export produced (the CLI report surface)."""

    path: str
    version: int
    rows: int                #: interaction rows written
    vertices: int            #: distinct vertices in the trace
    transactions: int        #: transactions the chain executed
    file_bytes: int          #: size of the emitted trace file


def export_workload_trace(
    config: WorkloadConfig,
    path: Union[str, os.PathLike],
    version: int = TRACE_VERSION_V3,
    compress: bool = True,
    chunk_rows: int = 1 << 18,
    progress: Optional[Callable[[int, int], None]] = None,
) -> TraceExportResult:
    """Generate the synthetic history and stream it into a trace file.

    ``version`` selects rctrace v2 or v3 (default: v3, the compressed
    format — the right choice for the ``large`` tier where trace bytes
    dominate).  ``progress`` is forwarded to the generator
    (``progress(executed, total_transactions)`` per block).

    On any failure the partial spill state is discarded and no output
    file is left behind.
    """
    writer = ChunkedTraceWriter(
        path, version=version, chunk_rows=chunk_rows, compress=compress
    )
    try:
        generator = WorkloadGenerator(config, interaction_sink=writer.append)
        generator.run(progress)
        vertices = writer.num_vertices
        rows = writer.close()
    except BaseException:
        writer.abort()
        raise
    return TraceExportResult(
        path=os.fspath(path),
        version=version,
        rows=rows,
        vertices=vertices,
        transactions=generator.chain.total_transactions,
        file_bytes=os.path.getsize(path),
    )
