"""EVM-lite: a miniature 256-bit stack virtual machine.

This is the substrate standing in for the Ethereum Virtual Machine.  It
keeps the properties the paper's graph construction depends on:

* contracts are bytecode executed on a word stack with key→value storage;
* a transaction activates one account/contract and may fan out into
  *nested message calls* to other accounts and contracts — each such
  call is recorded in the transaction trace and becomes a graph edge;
* execution is metered with gas; running out of gas aborts the current
  frame and reverts its state changes (journaled in the world state).

Instruction encoding
--------------------

Code is a tuple of ints.  Most opcodes are a single word; ``PUSH``,
``DUP``, ``SWAP``, ``JUMP`` and ``JUMPI`` carry one immediate operand in
the following word.  The :func:`assemble` helper turns a symbolic program
(with string labels) into code, and :func:`disassemble` reverses it.

One deliberate simplification: ``CREATE`` takes a *code template id*
(registered on the VM) from the stack instead of reading init code from
memory — EVM-lite has no byte-addressable memory because nothing in the
paper's analysis needs it.  The template registry is documented in
DESIGN.md as part of the substitution.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    CallDepthExceededError,
    EVMError,
    InsufficientBalanceError,
    InvalidOpcodeError,
    InvalidTransactionError,
    OutOfGasError,
    StackOverflowError_,
    StackUnderflowError,
)
from repro.ethereum import gas as G
from repro.ethereum.account import AccountKind
from repro.ethereum.state import WorldState
from repro.ethereum.trace import CallKind, MessageCall, TransactionTrace
from repro.ethereum.transaction import Receipt, Transaction
from repro.ethereum.types import MAX_CALL_DEPTH, MAX_STACK, Address, to_word


class Op(enum.IntEnum):
    """EVM-lite opcodes."""

    STOP = 0
    PUSH = 1        # imm: value
    POP = 2
    ADD = 3
    SUB = 4
    MUL = 5
    DIV = 6
    MOD = 7
    LT = 8
    GT = 9
    EQ = 10
    ISZERO = 11
    AND = 12
    OR = 13
    XOR = 14
    NOT = 15
    DUP = 16        # imm: depth (1 = top)
    SWAP = 17       # imm: depth (1 = swap top with next)
    JUMP = 18       # imm: absolute code offset
    JUMPI = 19      # imm: absolute code offset; pops condition
    SLOAD = 20      # pops key; pushes value
    SSTORE = 21     # pops key, value
    CALLER = 22
    ADDRESS = 23
    CALLVALUE = 24
    BALANCE = 25    # pops address
    CALLDATALOAD = 26  # pops index
    CALLDATASIZE = 27
    CALL = 28       # pops gas, address, value; pushes success flag
    CREATE = 29     # pops template_id, value; pushes new address
    RETURN = 30     # pops return value
    REVERT = 31
    TIMESTAMP = 32
    GASLEFT = 33
    SELFBALANCE = 34


#: Opcodes that carry an immediate operand in the following code word.
_HAS_IMMEDIATE = {Op.PUSH, Op.DUP, Op.SWAP, Op.JUMP, Op.JUMPI}

#: Static gas cost per opcode (dynamic parts handled inline).
_STATIC_GAS: Dict[Op, int] = {
    Op.STOP: 0,
    Op.PUSH: G.G_VERYLOW,
    Op.POP: G.G_BASE,
    Op.ADD: G.G_VERYLOW,
    Op.SUB: G.G_VERYLOW,
    Op.MUL: G.G_LOW,
    Op.DIV: G.G_LOW,
    Op.MOD: G.G_LOW,
    Op.LT: G.G_VERYLOW,
    Op.GT: G.G_VERYLOW,
    Op.EQ: G.G_VERYLOW,
    Op.ISZERO: G.G_VERYLOW,
    Op.AND: G.G_VERYLOW,
    Op.OR: G.G_VERYLOW,
    Op.XOR: G.G_VERYLOW,
    Op.NOT: G.G_VERYLOW,
    Op.DUP: G.G_VERYLOW,
    Op.SWAP: G.G_VERYLOW,
    Op.JUMP: G.G_MID,
    Op.JUMPI: G.G_HIGH,
    Op.SLOAD: G.G_SLOAD,
    # SSTORE cost is dynamic
    Op.CALLER: G.G_ENV,
    Op.ADDRESS: G.G_ENV,
    Op.CALLVALUE: G.G_ENV,
    Op.BALANCE: G.G_BALANCE,
    Op.CALLDATALOAD: G.G_ENV,
    Op.CALLDATASIZE: G.G_ENV,
    # CALL / CREATE cost is dynamic
    Op.RETURN: 0,
    Op.REVERT: 0,
    Op.TIMESTAMP: G.G_ENV,
    Op.GASLEFT: G.G_ENV,
    Op.SELFBALANCE: G.G_LOW,
}

Instruction = Union[str, Tuple[str, Union[int, str]], Tuple[str]]


def assemble(program: Sequence[Instruction]) -> Tuple[int, ...]:
    """Assemble a symbolic program into EVM-lite code.

    A program is a sequence of:

    * ``"OPNAME"`` — an opcode with no immediate;
    * ``("OPNAME", operand)`` — an opcode with an immediate operand;
    * ``("label", "name")`` — a label definition (emits nothing).

    Jump targets may be label names; they are resolved to absolute code
    offsets in a second pass.

    >>> assemble([("PUSH", 7), ("PUSH", 35), "ADD", "STOP"])
    (1, 7, 1, 35, 3, 0)
    """
    labels: Dict[str, int] = {}
    offset = 0
    for instr in program:
        if isinstance(instr, tuple) and instr[0] == "label":
            labels[str(instr[1])] = offset
            continue
        name = instr[0] if isinstance(instr, tuple) else instr
        op = Op[name]
        offset += 2 if op in _HAS_IMMEDIATE else 1

    code: List[int] = []
    for instr in program:
        if isinstance(instr, tuple) and instr[0] == "label":
            continue
        if isinstance(instr, tuple):
            name = instr[0]
            operand = instr[1] if len(instr) > 1 else None
        else:
            name, operand = instr, None
        op = Op[name]
        code.append(int(op))
        if op in _HAS_IMMEDIATE:
            if operand is None:
                raise ValueError(f"{name} requires an immediate operand")
            if isinstance(operand, str):
                if operand not in labels:
                    raise ValueError(f"undefined label: {operand!r}")
                operand = labels[operand]
            code.append(to_word(int(operand)))
        elif operand is not None:
            raise ValueError(f"{name} takes no operand")
    return tuple(code)


def disassemble(code: Sequence[int]) -> List[Tuple[int, str, Optional[int]]]:
    """Decode code into (offset, opname, immediate-or-None) triples."""
    out: List[Tuple[int, str, Optional[int]]] = []
    pc = 0
    while pc < len(code):
        try:
            op = Op(code[pc])
        except ValueError:
            out.append((pc, f"INVALID({code[pc]})", None))
            pc += 1
            continue
        if op in _HAS_IMMEDIATE:
            imm = code[pc + 1] if pc + 1 < len(code) else None
            out.append((pc, op.name, imm))
            pc += 2
        else:
            out.append((pc, op.name, None))
            pc += 1
    return out


@dataclasses.dataclass
class _Frame:
    """One message-call execution frame."""

    caller: Address
    callee: Address
    value: int
    gas: int
    calldata: Tuple[int, ...]
    depth: int
    refund: int = 0

    def charge(self, amount: int) -> None:
        if self.gas < amount:
            self.gas = 0
            raise OutOfGasError(f"frame at depth {self.depth} out of gas")
        self.gas -= amount


class EVM:
    """The EVM-lite interpreter bound to a world state.

    The VM owns a *code template registry* used by CREATE: workload code
    registers contract programs once, and contracts instantiate them by
    template id.
    """

    def __init__(self, state: WorldState, use_eras: bool = False):
        """``use_eras`` makes state-access gas costs fork-dependent
        (:mod:`repro.ethereum.forks`): cheap pre-EIP-150 IO, repriced
        afterwards — historically faithful, off by default so cost
        assertions stay era-independent."""
        self.state = state
        self.use_eras = use_eras
        self._templates: Dict[int, Tuple[int, ...]] = {}
        self._next_template: int = 0
        self._era = None

    # ------------------------------------------------------------------
    # template registry

    def register_template(self, code: Sequence[int]) -> int:
        """Register contract code; returns its template id."""
        tid = self._next_template
        self._next_template += 1
        self._templates[tid] = tuple(code)
        return tid

    def template_code(self, template_id: int) -> Tuple[int, ...]:
        try:
            return self._templates[template_id]
        except KeyError:
            raise EVMError(f"unknown code template: {template_id}") from None

    # ------------------------------------------------------------------
    # transaction entry point

    def execute_transaction(
        self, tx: Transaction, timestamp: float, miner: Optional[Address] = None
    ) -> Tuple[Receipt, TransactionTrace]:
        """Validate and execute one transaction against the state.

        Returns the receipt and the message-call trace.  Chain-level
        validation failures (bad nonce, unaffordable gas) raise
        :class:`InvalidTransactionError`; execution failures inside the
        EVM are *captured* into a failed receipt, as on the real chain.
        """
        sender = self.state.get_optional(tx.sender)
        if sender is None:
            raise InvalidTransactionError(f"unknown sender: {tx.sender}")
        if sender.nonce != tx.nonce:
            raise InvalidTransactionError(
                f"bad nonce for {tx.sender}: expected {sender.nonce}, got {tx.nonce}"
            )
        upfront = tx.gas_limit * tx.gas_price + tx.value
        if sender.balance < upfront:
            raise InvalidTransactionError(
                f"sender {tx.sender} cannot afford tx: balance {sender.balance} < {upfront}"
            )
        intrinsic = G.intrinsic_gas(len(tx.data))
        if tx.gas_limit < intrinsic:
            raise InvalidTransactionError(
                f"gas limit {tx.gas_limit} below intrinsic cost {intrinsic}"
            )

        # buy gas, bump nonce — these survive even if execution fails
        self.state.sub_balance(tx.sender, tx.gas_limit * tx.gas_price)
        self.state.increment_nonce(tx.sender)
        self.state.discard_journal()

        trace = TransactionTrace(tx_id=tx.tx_id, timestamp=timestamp)
        self._timestamp = timestamp
        if self.use_eras:
            from repro.ethereum.forks import era_at

            self._era = era_at(timestamp)
        else:
            self._era = None
        frame = _Frame(
            caller=tx.sender,
            callee=tx.to,
            value=tx.value,
            gas=tx.gas_limit - intrinsic,
            calldata=tx.data,
            depth=0,
        )
        snapshot = self.state.snapshot()
        callee_acct = self.state.get_optional(tx.to)
        callee_is_contract = callee_acct is not None and callee_acct.is_contract
        kind = CallKind.CALL if callee_is_contract else CallKind.TRANSFER
        success = True
        error: Optional[str] = None
        try:
            if callee_acct is None:
                raise InvalidTransactionError(f"unknown recipient: {tx.to}")
            self.state.transfer(tx.sender, tx.to, tx.value)
            if callee_is_contract:
                self._run(frame, callee_acct.code, trace)
        except InvalidTransactionError:
            self.state.revert_to(snapshot)
            raise
        except EVMError as exc:
            self.state.revert_to(snapshot)
            success = False
            error = f"{type(exc).__name__}: {exc}"
            frame.gas = 0  # failed top-level frame consumes all gas

        trace.record(
            MessageCall(
                kind=kind,
                caller=tx.sender,
                callee=tx.to,
                value=tx.value,
                depth=0,
                caller_is_contract=False,
                callee_is_contract=callee_is_contract,
                success=success,
            )
        )
        # order trace as caller-first: the top-level activation edge comes
        # before internal edges (we appended it last, so rotate).
        trace.calls.insert(0, trace.calls.pop())

        gas_used = tx.gas_limit - frame.gas
        if success and frame.refund:
            refund = min(frame.refund, gas_used // 2)
            gas_used -= refund
        # refund unused gas to sender; pay the miner for gas used
        self.state.add_balance(tx.sender, (tx.gas_limit - gas_used) * tx.gas_price)
        if miner is not None:
            self.state.add_balance(miner, gas_used * tx.gas_price)
        self.state.discard_journal()

        trace.succeeded = success
        trace.gas_used = gas_used
        receipt = Receipt(
            tx_id=tx.tx_id, success=success, gas_used=gas_used, error=error,
            num_calls=trace.num_calls,
        )
        return receipt, trace

    # ------------------------------------------------------------------
    # interpreter core

    def _run(self, frame: _Frame, code: Tuple[int, ...], trace: TransactionTrace) -> int:
        """Execute ``code`` in ``frame``; returns the RETURN value (or 0).

        Raises EVMError subclasses on failure; the *caller* is
        responsible for reverting state to its pre-frame snapshot.
        """
        stack: List[int] = []
        pc = 0

        def pop() -> int:
            if not stack:
                raise StackUnderflowError(f"pc={pc}")
            return stack.pop()

        def push(v: int) -> None:
            if len(stack) >= MAX_STACK:
                raise StackOverflowError_(f"pc={pc}")
            stack.append(to_word(v))

        while pc < len(code):
            raw = code[pc]
            try:
                op = Op(raw)
            except ValueError:
                raise InvalidOpcodeError(f"opcode {raw} at pc={pc}") from None

            if self._era is not None and op is Op.SLOAD:
                frame.charge(self._era.sload_cost)
            elif self._era is not None and op is Op.BALANCE:
                frame.charge(self._era.balance_cost)
            else:
                static = _STATIC_GAS.get(op)
                if static is not None:
                    frame.charge(static)

            if op is Op.STOP:
                return 0
            elif op is Op.PUSH:
                push(code[pc + 1])
                pc += 2
                continue
            elif op is Op.POP:
                pop()
            elif op is Op.ADD:
                push(pop() + pop())
            elif op is Op.SUB:
                a, b = pop(), pop()
                push(a - b)
            elif op is Op.MUL:
                push(pop() * pop())
            elif op is Op.DIV:
                a, b = pop(), pop()
                push(0 if b == 0 else a // b)
            elif op is Op.MOD:
                a, b = pop(), pop()
                push(0 if b == 0 else a % b)
            elif op is Op.LT:
                a, b = pop(), pop()
                push(1 if a < b else 0)
            elif op is Op.GT:
                a, b = pop(), pop()
                push(1 if a > b else 0)
            elif op is Op.EQ:
                push(1 if pop() == pop() else 0)
            elif op is Op.ISZERO:
                push(1 if pop() == 0 else 0)
            elif op is Op.AND:
                push(pop() & pop())
            elif op is Op.OR:
                push(pop() | pop())
            elif op is Op.XOR:
                push(pop() ^ pop())
            elif op is Op.NOT:
                push(~pop())
            elif op is Op.DUP:
                depth = code[pc + 1]
                if depth < 1 or depth > len(stack):
                    raise StackUnderflowError(f"DUP {depth} with stack {len(stack)}")
                push(stack[-depth])
                pc += 2
                continue
            elif op is Op.SWAP:
                depth = code[pc + 1]
                if depth < 1 or depth >= len(stack):
                    raise StackUnderflowError(f"SWAP {depth} with stack {len(stack)}")
                stack[-1], stack[-1 - depth] = stack[-1 - depth], stack[-1]
                pc += 2
                continue
            elif op is Op.JUMP:
                pc = code[pc + 1]
                continue
            elif op is Op.JUMPI:
                dest = code[pc + 1]
                cond = pop()
                if cond:
                    pc = dest
                    continue
                pc += 2
                continue
            elif op is Op.SLOAD:
                key = pop()
                push(self.state.storage_read(frame.callee, key))
            elif op is Op.SSTORE:
                key, value = pop(), pop()
                old = self.state.storage_read(frame.callee, key)
                frame.charge(G.sstore_cost(old, value))
                frame.refund += G.sstore_refund(old, value)
                self.state.storage_write(frame.callee, key, value)
            elif op is Op.CALLER:
                push(frame.caller)
            elif op is Op.ADDRESS:
                push(frame.callee)
            elif op is Op.CALLVALUE:
                push(frame.value)
            elif op is Op.BALANCE:
                addr = pop()
                acct = self.state.get_optional(addr)
                push(acct.balance if acct is not None else 0)
            elif op is Op.CALLDATALOAD:
                idx = pop()
                push(frame.calldata[idx] if idx < len(frame.calldata) else 0)
            elif op is Op.CALLDATASIZE:
                push(len(frame.calldata))
            elif op is Op.CALL:
                gas_req, addr, value = pop(), pop(), pop()
                push(self._do_call(frame, gas_req, addr, value, trace))
            elif op is Op.CREATE:
                template_id, value = pop(), pop()
                push(self._do_create(frame, template_id, value, trace))
            elif op is Op.RETURN:
                return pop()
            elif op is Op.REVERT:
                raise EVMError(f"REVERT at pc={pc}")
            elif op is Op.TIMESTAMP:
                push(int(self._timestamp))
            elif op is Op.GASLEFT:
                push(frame.gas)
            elif op is Op.SELFBALANCE:
                push(self.state.get(frame.callee).balance)
            else:  # pragma: no cover - enum is exhaustive
                raise InvalidOpcodeError(f"unhandled opcode {op.name}")
            pc += 1
        return 0

    # ------------------------------------------------------------------
    # nested calls

    def _do_call(
        self, parent: _Frame, gas_req: int, addr: Address, value: int, trace: TransactionTrace
    ) -> int:
        """CALL: run the callee in a child frame; returns 1/0 success."""
        if parent.depth + 1 >= MAX_CALL_DEPTH:
            raise CallDepthExceededError(f"depth {parent.depth + 1}")
        callee = self.state.get_optional(addr)
        callee_exists = callee is not None
        base_call = G.call_cost(value > 0, callee_exists)
        if self._era is not None:
            base_call += self._era.call_cost - G.G_CALL
        parent.charge(base_call)
        # forward the requested gas, capped at what the parent has left
        forwarded = min(gas_req, parent.gas)
        parent.gas -= forwarded
        if value > 0:
            forwarded += G.G_CALLSTIPEND

        child = _Frame(
            caller=parent.callee,
            callee=addr,
            value=value,
            gas=forwarded,
            calldata=(),
            depth=parent.depth + 1,
        )
        snapshot = self.state.snapshot()
        success = True
        callee_is_contract = callee_exists and callee.is_contract
        # reserve the trace slot *before* the child runs so calls appear
        # in invocation order (parent before its children)
        trace_idx = len(trace.calls)
        try:
            if not callee_exists:
                raise EVMError(f"CALL to unknown account {addr}")
            if value > 0:
                self.state.transfer(parent.callee, addr, value)
            if callee_is_contract:
                self._run(child, callee.code, trace)
        except EVMError:
            self.state.revert_to(snapshot)
            success = False
            child.gas = 0  # failed frame consumes its gas

        trace.calls.insert(
            trace_idx,
            MessageCall(
                kind=CallKind.CALL if callee_is_contract else CallKind.TRANSFER,
                caller=parent.callee,
                callee=addr,
                value=value,
                depth=child.depth,
                caller_is_contract=True,
                callee_is_contract=callee_is_contract,
                success=success,
            ),
        )
        # return unused child gas (stipend surplus included) to the parent
        parent.gas += child.gas
        parent.refund += child.refund if success else 0
        return 1 if success else 0

    def _do_create(
        self, parent: _Frame, template_id: int, value: int, trace: TransactionTrace
    ) -> int:
        """CREATE: instantiate a registered template; returns new address."""
        if parent.depth + 1 >= MAX_CALL_DEPTH:
            raise CallDepthExceededError(f"depth {parent.depth + 1}")
        parent.charge(G.G_CREATE)
        code = self.template_code(template_id)
        creator = self.state.get(parent.callee)
        if creator.balance < value:
            raise InsufficientBalanceError(
                f"CREATE value {value} exceeds balance {creator.balance}"
            )
        acct = self.state.create_contract(code, balance=0, timestamp=self._timestamp)
        if value > 0:
            self.state.transfer(parent.callee, acct.address, value)
        trace.record(
            MessageCall(
                kind=CallKind.CREATE,
                caller=parent.callee,
                callee=acct.address,
                value=value,
                depth=parent.depth + 1,
                caller_is_contract=True,
                callee_is_contract=True,
                success=True,
            )
        )
        return acct.address
