"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems get
their own branch of the hierarchy:

* :class:`GraphError` — graph substrate (:mod:`repro.graph`);
* :class:`ChainError` — blockchain substrate (:mod:`repro.ethereum`);
* :class:`EVMError` — EVM-lite execution failures (out of gas, stack
  violations, ...), which are *recoverable* at the transaction level:
  the transaction is recorded as failed but the chain keeps going;
* :class:`PartitionError` — partitioning methods (:mod:`repro.core`,
  :mod:`repro.metis`);
* :class:`SimulationError` — sharded-execution simulator
  (:mod:`repro.sharding`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Errors from the graph substrate."""


class VertexNotFoundError(GraphError):
    """A vertex id was not present in the graph."""

    def __init__(self, vertex: object):
        super().__init__(f"vertex not in graph: {vertex!r}")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """An edge (src, dst) was not present in the graph."""

    def __init__(self, src: object, dst: object):
        super().__init__(f"edge not in graph: {src!r} -> {dst!r}")
        self.src = src
        self.dst = dst


class TraceFormatError(GraphError):
    """A trace file / record could not be parsed."""


class ChainError(ReproError):
    """Errors from the blockchain substrate."""


class InvalidBlockError(ChainError):
    """A block failed validation against the chain rules."""


class InvalidTransactionError(ChainError):
    """A transaction failed validation (bad nonce, unknown sender, ...)."""


class UnknownAccountError(ChainError):
    """An address was looked up that does not exist in the world state."""

    def __init__(self, address: object):
        super().__init__(f"unknown account: {address!r}")
        self.address = address


class EVMError(ReproError):
    """A transaction-level execution failure inside EVM-lite.

    EVM errors abort the *current message call frame* (and, per
    Ethereum semantics, consume the gas of the frame) but are not fatal
    to the chain: the enclosing transaction is recorded with a failed
    receipt.
    """


class OutOfGasError(EVMError):
    """Execution ran out of gas."""


class StackUnderflowError(EVMError):
    """An opcode popped more items than the stack held."""


class StackOverflowError_(EVMError):
    """The EVM-lite stack limit (1024 items) was exceeded."""


class InvalidOpcodeError(EVMError):
    """An undefined opcode was executed."""


class CallDepthExceededError(EVMError):
    """The message-call depth limit was exceeded."""


class InsufficientBalanceError(EVMError):
    """A value transfer exceeded the sender's balance."""


class PartitionError(ReproError):
    """Errors from partitioning methods and the multilevel partitioner."""


class InvalidPartitionError(PartitionError):
    """A partition assignment violated disjointness/coverage invariants."""


class BalanceConstraintError(PartitionError):
    """The partitioner could not honour the requested balance constraint."""


class SimulationError(ReproError):
    """Errors from the sharded-execution discrete-event simulator."""


class SimulationClockError(SimulationError):
    """An event was scheduled in the past."""


class UnassignedVertexError(SimulationError):
    """A replayed transaction touched a vertex with no shard assignment.

    Raised only under ``strict`` replays (the default for trace-backed
    columnar replays, where every endpoint must have been partitioned);
    non-strict runs count the endpoint in
    ``ThroughputReport.unassigned_endpoints`` instead.
    """

    def __init__(self, vertex: object):
        super().__init__(f"endpoint vertex has no shard assignment: {vertex!r}")
        self.vertex = vertex
