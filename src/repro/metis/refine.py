"""Refinement: Fiduccia–Mattheyses boundary passes.

After each uncoarsening step the projected partition is locally
improved.  We implement the classic FM scheme:

* every *boundary* vertex gets a gain = (edge weight to the other part)
  − (edge weight to its own part);
* vertices are tentatively moved in best-gain-first order, each vertex
  at most once per pass, even when the gain is negative (hill
  climbing);
* moves must keep both parts within the balance tolerance, except that
  balance-*improving* moves are always allowed;
* at the end of the pass the move sequence is rolled back to the prefix
  with the best (cut, imbalance) seen, and passes repeat until one
  yields no improvement.

A direct k-way variant (:func:`kway_refine`) runs greedy
best-neighbor-part moves on the final k-way partition — cheaper than FM
bookkeeping across k parts and enough to clean up recursive-bisection
seams, which is how METIS's k-way refinement is typically approximated
in reimplementations.  :func:`boundary_kway_refine` is its work-list
form: it touches only boundary vertices and move cascades, which is
what warm-started repartitioning runs from a projected previous
partition.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional, Sequence, Tuple

from repro import kernels
from repro.kernels import GainBuckets
from repro.metis.graph import CSRGraph


def _imbalance(weights: Sequence[float], targets: Sequence[float]) -> float:
    """max over parts of weight/target — 1.0 is perfectly on target."""
    return max(
        (w / t if t > 0 else float("inf")) for w, t in zip(weights, targets)
    )


def fm_refine(
    graph: CSRGraph,
    part: List[int],
    targets: Tuple[float, float],
    ubfactor: float = 1.05,
    max_passes: int = 8,
    rng: Optional[random.Random] = None,
) -> int:
    """FM refinement of a bisection, in place.  Returns the final cut.

    ``targets`` are the desired vertex-weight totals of parts 0 and 1;
    ``ubfactor`` is the allowed overweight ratio (1.05 = 5% slack, the
    METIS default ballpark).  ``rng`` defaults to a *fresh*
    ``random.Random(0)`` per call — never a shared instance, whose
    state would leak across calls and make results depend on call
    order within the process.
    """
    if rng is None:
        rng = random.Random(0)
    weights = [float(w) for w in kernels.active().part_weights(graph, part, 2)]
    cut = graph.cut_of(part)

    for _ in range(max_passes):
        improved = _fm_pass(
            graph, part, weights, targets, ubfactor, cut, rng
        )
        if improved is None:
            break
        cut = improved
    return cut


def _fm_pass(
    graph: CSRGraph,
    part: List[int],
    weights: List[float],
    targets: Tuple[float, float],
    ubfactor: float,
    start_cut: int,
    rng: random.Random,
):
    """One FM pass.  Returns the new cut if it improved, else None.

    Mutates ``part`` and ``weights`` to the best prefix state.

    Gains live in a :class:`GainBuckets` structure whose pop order is
    identical to the lazy-deletion heap this replaces (max gain, then
    push order), seeded with one batched ``gain_vector`` over the
    boundary.  Mid-pass, a moved vertex shifts each unlocked neighbor's
    gain by exactly ``±2×`` the connecting edge weight (the edge flips
    between internal and external), so gains are maintained
    incrementally; a vertex first reached mid-pass (not boundary, not
    updated before) gets one full recompute — the same value the legacy
    per-push recomputation produced, at a fraction of the scans.
    """
    n = graph.num_vertices
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    kr = kernels.active()

    # gain[v] is only meaningful where known[v] is set (vertices that
    # have entered the bucket structure) — same contract as the heap's
    # stale-entry check against the gain array
    gain = [0] * n
    known = bytearray(n)
    locked = bytearray(n)
    buckets = GainBuckets(kr.max_weighted_degree(graph))

    # seed with boundary vertices; the kernel returns them ascending,
    # which is exactly the legacy scan's push order
    boundary = kr.boundary_list(graph, part)
    for v, g in zip(boundary, kr.gain_vector(graph, part, boundary)):
        gain[v] = g
        known[v] = 1
        buckets.push(v, g)

    moves: List[int] = []  # sequence of moved vertices
    cur_cut = start_cut
    best_cut = start_cut
    best_imb = _imbalance(weights, targets)
    best_prefix = 0

    while True:
        entry = buckets.pop()
        if entry is None:
            break
        v, g = entry
        if locked[v] or g != gain[v]:
            continue
        src = part[v]
        dst = 1 - src
        new_weights = (
            weights[0] - vwgt[v] if src == 0 else weights[0] + vwgt[v],
            weights[1] - vwgt[v] if src == 1 else weights[1] + vwgt[v],
        )
        imb_before = _imbalance(weights, targets)
        imb_after = _imbalance(new_weights, targets)
        # the tolerance has a floor of one vertex above target (as in
        # METIS) — otherwise FM freezes solid on perfectly balanced
        # unit-weight graphs, where any single move exceeds a pure
        # ratio bound
        limit = max(ubfactor * targets[dst], targets[dst] + vwgt[v])
        if new_weights[dst] > limit and imb_after >= imb_before:
            continue  # would unbalance beyond tolerance without helping

        # commit the tentative move
        part[v] = dst
        weights[0], weights[1] = new_weights
        cur_cut -= gain[v]
        locked[v] = 1
        moves.append(v)
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            if locked[u]:
                continue
            if known[u]:
                if part[u] == src:
                    gain[u] += 2 * adjwgt[i]
                else:
                    gain[u] -= 2 * adjwgt[i]
            else:
                pu = part[u]
                g_u = 0
                for j in range(xadj[u], xadj[u + 1]):
                    if part[adjncy[j]] == pu:
                        g_u -= adjwgt[j]
                    else:
                        g_u += adjwgt[j]
                gain[u] = g_u
                known[u] = 1
            buckets.push(u, gain[u])

        if cur_cut < best_cut or (cur_cut == best_cut and imb_after < best_imb):
            best_cut = cur_cut
            best_imb = imb_after
            best_prefix = len(moves)

    # roll back to the best prefix
    for v in moves[best_prefix:]:
        src = part[v]
        part[v] = 1 - src
        weights[src] -= vwgt[v]
        weights[1 - src] += vwgt[v]

    if best_cut < start_cut:
        return best_cut
    return None


def rebalance_kway(
    graph: CSRGraph,
    part: List[int],
    k: int,
    targets: Sequence[float],
    ubfactor: float = 1.05,
) -> int:
    """Force every part under its weight limit, minimising cut damage.

    Needed because projected partitions can carry lumpy coarse-vertex
    imbalance that gain-driven refinement alone cannot repair: it moves
    the cheapest (smallest cut-loss) vertices out of each overweight
    part into the lightest parts.  Returns the number of forced moves.
    """
    n = graph.num_vertices
    vwgt = graph.vwgt
    weights = [float(w) for w in kernels.active().part_weights(graph, part, k)]
    maxw = max(vwgt, default=1)

    moves = 0
    for p in range(k):
        limit = max(ubfactor * targets[p], targets[p] + maxw)
        if weights[p] <= limit:
            continue
        # candidates in p, cheapest cut-loss first; connectivity rows
        # come from one batched kernel call over the members (legacy:
        # a python conn dict per vertex).  Preferred destination is the
        # strongest-connected other part, first-encounter order
        # breaking ties — the conn-dict iteration order this replaces.
        members = [v for v in range(n) if part[v] == p]
        conn_rows, pos_rows, _movable = kernels.active().conn_matrix(
            graph, part, k, members)
        candidates = []
        base = 0
        for v in members:
            internal = conn_rows[base + p]
            external_best = 0
            best_dst = -1
            best_pos = -1
            for q in range(k):
                if q == p:
                    continue
                fp = pos_rows[base + q]
                if fp < 0:
                    continue
                w = conn_rows[base + q]
                if w < external_best or w == 0:
                    continue
                if w == external_best and fp > best_pos:
                    continue
                external_best = w
                best_dst = q
                best_pos = fp
            candidates.append((internal - external_best, v, best_dst))
            base += k
        candidates.sort()
        for _loss, v, preferred in candidates:
            if weights[p] <= limit:
                break
            dst = preferred
            if dst < 0 or weights[dst] + vwgt[v] > ubfactor * targets[dst]:
                # fallback: the lightest part (by weight/target ratio)
                # that can actually absorb v.  Zero-target parts are
                # never destinations (they should hold nothing — the
                # old ratio of 0 made them attract every forced move),
                # and the destination must stay under its own
                # rebalance limit, the same criterion that made part p
                # overweight (the old fallback skipped the capacity
                # check entirely and could overfill the part it chose).
                dst = -1
                best_ratio = 0.0
                for q in range(k):
                    if q == p or targets[q] <= 0:
                        continue
                    if weights[q] + vwgt[v] > max(
                        ubfactor * targets[q], targets[q] + maxw
                    ):
                        continue
                    ratio = weights[q] / targets[q]
                    if dst < 0 or ratio < best_ratio:
                        best_ratio = ratio
                        dst = q
                if dst < 0:
                    continue  # nobody can take v without overfilling
            if dst == p:
                continue
            weights[p] -= vwgt[v]
            weights[dst] += vwgt[v]
            part[v] = dst
            moves += 1
    return moves


def _conn_row(graph, part: Sequence[int], k: int, v: int):
    """Fresh connectivity row of one vertex, ``conn_matrix`` layout.

    The per-vertex fallback the refinement loops use for *dirty*
    vertices — ones whose batched row a mid-pass move invalidated.
    Rows are invalidated rather than patched: the summed weights could
    be delta-maintained, but the first-encounter positions cannot (a
    neighbor leaving a part may expose a *later* first position, which
    no delta records), and a stale position would corrupt the tie-break
    order the selectors contract to.  The third return mirrors
    ``conn_matrix``'s per-row ``movable`` flag.
    """
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    conn = [0] * k
    pos = [-1] * k
    for i in range(xadj[v], xadj[v + 1]):
        p = part[adjncy[i]]
        if p < 0:
            continue
        conn[p] += adjwgt[i]
        if pos[p] < 0:
            pos[p] = i
    own = part[v]
    internal = conn[own] if own >= 0 else 0
    movable = 0
    for p in range(k):
        if p != own and pos[p] >= 0 and conn[p] > internal:
            movable = 1
            break
    return conn, pos, movable


def _select_kway_move(
    pv: int,
    vw: int,
    conn: Sequence[int],
    pos: Sequence[int],
    base: int,
    k: int,
    weights: List[float],
    targets: Sequence[float],
    ubfactor: float,
):
    """Best admissible destination part for one vertex, or its own part.

    The single source of the k-way move rules — positive cut gain,
    balance tolerance with a one-vertex floor, never empty a part —
    shared by :func:`kway_refine` and :func:`boundary_kway_refine` so
    warm and cold refinement can never drift apart.  ``conn``/``pos``
    are flat ``conn_matrix`` rows read at offset ``base``; among
    equal-gain admissible parts the smallest first-encounter position
    wins, which is exactly the iteration order of the per-vertex conn
    dict this selector replaces.  Returns (part, gain).
    """
    internal = conn[base + pv]
    best_part = pv
    best_gain = 0
    best_pos = -1
    for p in range(k):
        if p == pv:
            continue
        fp = pos[base + p]
        if fp < 0:
            continue
        gain = conn[base + p] - internal
        if gain < best_gain or gain <= 0:
            continue
        if gain == best_gain and fp > best_pos:
            continue
        if weights[p] + vw > max(ubfactor * targets[p], targets[p] + vw):
            continue
        if weights[pv] - vw <= 0:
            continue
        best_gain = gain
        best_part = p
        best_pos = fp
    return best_part, best_gain


def boundary_kway_refine(
    graph: CSRGraph,
    part: List[int],
    k: int,
    targets: Sequence[float],
    ubfactor: float = 1.05,
    max_moves_factor: float = 2.0,
) -> int:
    """Queue-driven greedy k-way refinement touching only the boundary.

    The warm-start workhorse: a projected previous partition is already
    good almost everywhere, so instead of scanning every vertex per pass
    (as :func:`kway_refine` does) this seeds a FIFO work-list with the
    *boundary* vertices and re-enqueues only the neighborhood of each
    applied move — O(boundary + cascades) instead of O(passes × n).
    Move rules (gain, balance tolerance, never empty a part) match
    :func:`kway_refine`; total moves are capped at
    ``max_moves_factor × n`` to bound oscillation.  Returns the number
    of moves applied — deliberately *not* the cut, which would cost a
    full O(E) scan on the sub-O(E) warm path (callers that want the
    cut compute it once at the end, as ``part_graph`` does).

    Connectivity rows for the whole seed boundary come from one batched
    ``conn_matrix`` call; a cached row stays valid until a *neighbor*
    moves (a vertex's own move never changes its row — the row sums
    neighbors' parts), at which point the vertex is marked dirty and
    its next dequeue recomputes the row fresh, reproducing the legacy
    per-dequeue conn dict exactly.
    """
    n = graph.num_vertices
    xadj, adjncy, vwgt = graph.xadj, graph.adjncy, graph.vwgt
    kr = kernels.active()
    rebalance_kway(graph, part, k, targets, ubfactor=ubfactor)
    weights = [float(w) for w in kr.part_weights(graph, part, k)]

    boundary = kr.boundary_list(graph, part)
    conn_rows, pos_rows, movable = kr.conn_matrix(graph, part, k, boundary)
    row_of = {v: i for i, v in enumerate(boundary)}

    dirty = bytearray(n)
    queued = bytearray(n)
    queue: "deque[int]" = deque(boundary)
    for v in boundary:
        queued[v] = 1

    moves = 0
    max_moves = int(max_moves_factor * n) + 1
    while queue and moves < max_moves:
        v = queue.popleft()
        queued[v] = 0
        pv = part[v]
        if dirty[v]:
            conn, pos, mv = _conn_row(graph, part, k, v)
            base = 0
        else:
            # only seed-boundary vertices can still be clean: mid-pass
            # enqueues always come with a moved neighbor (dirty)
            conn, pos = conn_rows, pos_rows
            r = row_of[v]
            base = r * k
            mv = movable[r]
        if not mv:
            # no positive-gain destination exists for this row; the
            # selector could only return "stay" (its balance checks
            # never create a move), so skipping it is exact
            continue
        best_part, _gain = _select_kway_move(
            pv, vwgt[v], conn, pos, base, k, weights, targets, ubfactor)
        if best_part == pv:
            continue
        weights[pv] -= vwgt[v]
        weights[best_part] += vwgt[v]
        part[v] = best_part
        moves += 1
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            dirty[u] = 1
            if not queued[u]:
                queue.append(u)
                queued[u] = 1
    return moves


def kway_refine(
    graph: CSRGraph,
    part: List[int],
    k: int,
    targets: Sequence[float],
    ubfactor: float = 1.05,
    max_passes: int = 4,
) -> int:
    """Greedy direct k-way refinement, in place.  Returns the final cut.

    A rebalancing pass first repairs any projected imbalance; each
    greedy pass then scans boundary vertices and moves a vertex to the
    neighboring part with the largest positive cut gain, subject to the
    balance tolerance.
    """
    n = graph.num_vertices
    xadj, adjncy, vwgt = graph.xadj, graph.adjncy, graph.vwgt
    kr = kernels.active()
    rebalance_kway(graph, part, k, targets, ubfactor=ubfactor)
    weights = [float(w) for w in kr.part_weights(graph, part, k)]
    cut = graph.cut_of(part)

    for _ in range(max_passes):
        moved = 0
        # restrict the scan to vertices that can possibly move: the
        # boundary at pass start plus anything adjacent to a mid-pass
        # move.  A vertex outside that set has all neighbors in its own
        # part at scan time, so _select_kway_move returns (pv, 0) for
        # it regardless of the weight state — skipping it is exact.
        # Connectivity rows are batched once per pass over the
        # boundary and stay valid until a neighbor moves (dirty), when
        # the scan recomputes the row fresh — values identical to the
        # legacy per-visit conn dict either way.
        boundary = kr.boundary_list(graph, part)
        conn_rows, pos_rows, movable = kr.conn_matrix(graph, part, k, boundary)
        row_of = {u: i for i, u in enumerate(boundary)}
        candidate = bytearray(n)
        for v in boundary:
            candidate[v] = 1
        dirty = bytearray(n)
        for v in range(n):
            if not candidate[v]:
                continue
            pv = part[v]
            if dirty[v]:
                conn, pos, mv = _conn_row(graph, part, k, v)
                base = 0
            else:
                conn, pos = conn_rows, pos_rows
                r = row_of[v]
                base = r * k
                mv = movable[r]
            if not mv:
                continue  # no positive-gain destination: selector can't move it
            best_part, best_gain = _select_kway_move(
                pv, vwgt[v], conn, pos, base, k, weights, targets, ubfactor
            )
            if best_part != pv:
                weights[pv] -= vwgt[v]
                weights[best_part] += vwgt[v]
                part[v] = best_part
                cut -= best_gain
                moved += 1
                for i in range(xadj[v], xadj[v + 1]):
                    u = adjncy[i]
                    candidate[u] = 1
                    dirty[u] = 1
        if moved == 0:
            break
    return cut
