"""Refinement: Fiduccia–Mattheyses boundary passes.

After each uncoarsening step the projected partition is locally
improved.  We implement the classic FM scheme:

* every *boundary* vertex gets a gain = (edge weight to the other part)
  − (edge weight to its own part);
* vertices are tentatively moved in best-gain-first order, each vertex
  at most once per pass, even when the gain is negative (hill
  climbing);
* moves must keep both parts within the balance tolerance, except that
  balance-*improving* moves are always allowed;
* at the end of the pass the move sequence is rolled back to the prefix
  with the best (cut, imbalance) seen, and passes repeat until one
  yields no improvement.

A direct k-way variant (:func:`kway_refine`) runs greedy
best-neighbor-part moves on the final k-way partition — cheaper than FM
bookkeeping across k parts and enough to clean up recursive-bisection
seams, which is how METIS's k-way refinement is typically approximated
in reimplementations.  :func:`boundary_kway_refine` is its work-list
form: it touches only boundary vertices and move cascades, which is
what warm-started repartitioning runs from a projected previous
partition.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Sequence, Tuple

from repro import kernels
from repro.metis.graph import CSRGraph


def _imbalance(weights: Sequence[float], targets: Sequence[float]) -> float:
    """max over parts of weight/target — 1.0 is perfectly on target."""
    return max(
        (w / t if t > 0 else float("inf")) for w, t in zip(weights, targets)
    )


def fm_refine(
    graph: CSRGraph,
    part: List[int],
    targets: Tuple[float, float],
    ubfactor: float = 1.05,
    max_passes: int = 8,
    rng: random.Random = random.Random(0),
) -> int:
    """FM refinement of a bisection, in place.  Returns the final cut.

    ``targets`` are the desired vertex-weight totals of parts 0 and 1;
    ``ubfactor`` is the allowed overweight ratio (1.05 = 5% slack, the
    METIS default ballpark).
    """
    weights = [float(w) for w in kernels.active().part_weights(graph, part, 2)]
    cut = graph.cut_of(part)

    for _ in range(max_passes):
        improved = _fm_pass(
            graph, part, weights, targets, ubfactor, cut, rng
        )
        if improved is None:
            break
        cut = improved
    return cut


def _fm_pass(
    graph: CSRGraph,
    part: List[int],
    weights: List[float],
    targets: Tuple[float, float],
    ubfactor: float,
    start_cut: int,
    rng: random.Random,
):
    """One FM pass.  Returns the new cut if it improved, else None.

    Mutates ``part`` and ``weights`` to the best prefix state.
    """
    n = graph.num_vertices
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt

    gain = [0] * n
    locked = [False] * n
    heap: List[Tuple[int, int, int]] = []
    counter = 0

    def compute_gain(v: int) -> int:
        g = 0
        pv = part[v]
        for i in range(xadj[v], xadj[v + 1]):
            if part[adjncy[i]] == pv:
                g -= adjwgt[i]
            else:
                g += adjwgt[i]
        return g

    def push(v: int) -> None:
        nonlocal counter
        gain[v] = compute_gain(v)
        counter += 1
        heapq.heappush(heap, (-gain[v], counter, v))

    # seed the heap with boundary vertices; the kernel returns them
    # ascending, which is exactly the legacy scan's push order
    for v in kernels.active().boundary_list(graph, part):
        push(v)

    moves: List[int] = []  # sequence of moved vertices
    cur_cut = start_cut
    best_cut = start_cut
    best_imb = _imbalance(weights, targets)
    best_prefix = 0

    while heap:
        neg_g, _, v = heapq.heappop(heap)
        if locked[v] or -neg_g != gain[v]:
            continue
        src = part[v]
        dst = 1 - src
        new_weights = (
            weights[0] - vwgt[v] if src == 0 else weights[0] + vwgt[v],
            weights[1] - vwgt[v] if src == 1 else weights[1] + vwgt[v],
        )
        imb_before = _imbalance(weights, targets)
        imb_after = _imbalance(new_weights, targets)
        # the tolerance has a floor of one vertex above target (as in
        # METIS) — otherwise FM freezes solid on perfectly balanced
        # unit-weight graphs, where any single move exceeds a pure
        # ratio bound
        limit = max(ubfactor * targets[dst], targets[dst] + vwgt[v])
        if new_weights[dst] > limit and imb_after >= imb_before:
            continue  # would unbalance beyond tolerance without helping

        # commit the tentative move
        part[v] = dst
        weights[0], weights[1] = new_weights
        cur_cut -= gain[v]
        locked[v] = True
        moves.append(v)
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            if not locked[u]:
                push(u)

        if cur_cut < best_cut or (cur_cut == best_cut and imb_after < best_imb):
            best_cut = cur_cut
            best_imb = imb_after
            best_prefix = len(moves)

    # roll back to the best prefix
    for v in moves[best_prefix:]:
        src = part[v]
        part[v] = 1 - src
        weights[src] -= vwgt[v]
        weights[1 - src] += vwgt[v]

    if best_cut < start_cut:
        return best_cut
    return None


def rebalance_kway(
    graph: CSRGraph,
    part: List[int],
    k: int,
    targets: Sequence[float],
    ubfactor: float = 1.05,
) -> int:
    """Force every part under its weight limit, minimising cut damage.

    Needed because projected partitions can carry lumpy coarse-vertex
    imbalance that gain-driven refinement alone cannot repair: it moves
    the cheapest (smallest cut-loss) vertices out of each overweight
    part into the lightest parts.  Returns the number of forced moves.
    """
    n = graph.num_vertices
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    weights = [float(w) for w in kernels.active().part_weights(graph, part, k)]

    moves = 0
    for p in range(k):
        limit = max(ubfactor * targets[p], targets[p] + max(vwgt, default=1))
        if weights[p] <= limit:
            continue
        # candidates in p, cheapest cut-loss first
        candidates = []
        for v in range(n):
            if part[v] != p:
                continue
            internal = external_best = 0
            best_dst = -1
            conn: dict = {}
            for i in range(xadj[v], xadj[v + 1]):
                conn[part[adjncy[i]]] = conn.get(part[adjncy[i]], 0) + adjwgt[i]
            internal = conn.get(p, 0)
            for q, w in conn.items():
                if q != p and w > external_best:
                    external_best = w
                    best_dst = q
            candidates.append((internal - external_best, v, best_dst))
        candidates.sort()
        for _loss, v, preferred in candidates:
            if weights[p] <= limit:
                break
            dst = preferred
            if dst < 0 or weights[dst] + vwgt[v] > ubfactor * targets[dst]:
                dst = min(range(k), key=lambda q: weights[q] / targets[q] if targets[q] else 0)
            if dst == p:
                continue
            weights[p] -= vwgt[v]
            weights[dst] += vwgt[v]
            part[v] = dst
            moves += 1
    return moves


def _best_kway_move(
    pv: int,
    vw: int,
    conn: dict,
    weights: List[float],
    targets: Sequence[float],
    ubfactor: float,
):
    """Best admissible destination part for one vertex, or its own part.

    The single source of the k-way move rules — positive cut gain,
    balance tolerance with a one-vertex floor, never empty a part —
    shared by :func:`kway_refine` and :func:`boundary_kway_refine` so
    warm and cold refinement can never drift apart.  ``conn`` maps
    adjacent part → connecting edge weight; returns (part, gain).
    """
    internal = conn.get(pv, 0)
    best_part = pv
    best_gain = 0
    for p, w in conn.items():
        if p == pv:
            continue
        gain = w - internal
        if gain <= best_gain:
            continue
        if weights[p] + vw > max(ubfactor * targets[p], targets[p] + vw):
            continue
        if weights[pv] - vw <= 0:
            continue
        best_gain = gain
        best_part = p
    return best_part, best_gain


def boundary_kway_refine(
    graph: CSRGraph,
    part: List[int],
    k: int,
    targets: Sequence[float],
    ubfactor: float = 1.05,
    max_moves_factor: float = 2.0,
) -> int:
    """Queue-driven greedy k-way refinement touching only the boundary.

    The warm-start workhorse: a projected previous partition is already
    good almost everywhere, so instead of scanning every vertex per pass
    (as :func:`kway_refine` does) this seeds a FIFO work-list with the
    *boundary* vertices and re-enqueues only the neighborhood of each
    applied move — O(boundary + cascades) instead of O(passes × n).
    Move rules (gain, balance tolerance, never empty a part) match
    :func:`kway_refine`; total moves are capped at
    ``max_moves_factor × n`` to bound oscillation.  Returns the number
    of moves applied — deliberately *not* the cut, which would cost a
    full O(E) scan on the sub-O(E) warm path (callers that want the
    cut compute it once at the end, as ``part_graph`` does).
    """
    from collections import deque

    n = graph.num_vertices
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    kr = kernels.active()
    rebalance_kway(graph, part, k, targets, ubfactor=ubfactor)
    weights = [float(w) for w in kr.part_weights(graph, part, k)]

    queued = [False] * n
    queue: "deque[int]" = deque()
    for v in kr.boundary_list(graph, part):
        queue.append(v)
        queued[v] = True

    moves = 0
    max_moves = int(max_moves_factor * n) + 1
    while queue and moves < max_moves:
        v = queue.popleft()
        queued[v] = False
        pv = part[v]
        conn: dict = {}
        for i in range(xadj[v], xadj[v + 1]):
            p = part[adjncy[i]]
            conn[p] = conn.get(p, 0) + adjwgt[i]
        best_part, _gain = _best_kway_move(pv, vwgt[v], conn, weights, targets, ubfactor)
        if best_part == pv:
            continue
        weights[pv] -= vwgt[v]
        weights[best_part] += vwgt[v]
        part[v] = best_part
        moves += 1
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            if not queued[u]:
                queue.append(u)
                queued[u] = True
    return moves


def kway_refine(
    graph: CSRGraph,
    part: List[int],
    k: int,
    targets: Sequence[float],
    ubfactor: float = 1.05,
    max_passes: int = 4,
) -> int:
    """Greedy direct k-way refinement, in place.  Returns the final cut.

    A rebalancing pass first repairs any projected imbalance; each
    greedy pass then scans boundary vertices and moves a vertex to the
    neighboring part with the largest positive cut gain, subject to the
    balance tolerance.
    """
    n = graph.num_vertices
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    kr = kernels.active()
    rebalance_kway(graph, part, k, targets, ubfactor=ubfactor)
    weights = [float(w) for w in kr.part_weights(graph, part, k)]
    cut = graph.cut_of(part)

    for _ in range(max_passes):
        moved = 0
        # restrict the scan to vertices that can possibly move: the
        # boundary at pass start plus anything adjacent to a mid-pass
        # move.  A vertex outside that set has all neighbors in its own
        # part at scan time, so _best_kway_move returns (pv, 0) for it
        # regardless of the weight state — skipping it is exact.
        candidate = bytearray(n)
        for v in kr.boundary_list(graph, part):
            candidate[v] = 1
        for v in range(n):
            if not candidate[v]:
                continue
            pv = part[v]
            # connectivity of v to each adjacent part
            conn: dict = {}
            for i in range(xadj[v], xadj[v + 1]):
                conn[part[adjncy[i]]] = conn.get(part[adjncy[i]], 0) + adjwgt[i]
            best_part, best_gain = _best_kway_move(
                pv, vwgt[v], conn, weights, targets, ubfactor
            )
            if best_part != pv:
                weights[pv] -= vwgt[v]
                weights[best_part] += vwgt[v]
                part[v] = best_part
                cut -= best_gain
                moved += 1
                for i in range(xadj[v], xadj[v + 1]):
                    candidate[adjncy[i]] = 1
        if moved == 0:
            break
    return cut
