"""k-way partitioning by recursive bisection plus direct refinement.

METIS's pmetis-style approach: split the target weights in two, bisect,
recurse into each side on the induced subgraph, then run a direct k-way
greedy refinement pass over the assembled partition to clean up seams
between recursion branches.

:func:`warm_kway_partition` is the incremental entry: given a previous
partition projected onto a grown graph (``-1`` marks vertices the
previous run never saw), it places the new vertices by weighted
neighbor majority and runs boundary-focused refinement from there,
skipping coarsening entirely — the amortised path of periodic
repartitioning.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro import kernels
from repro.metis.bisect import multilevel_bisect
from repro.metis.coarsen import LadderCache
from repro.metis.graph import CSRGraph
from repro.metis.refine import boundary_kway_refine, kway_refine


def _induced_subgraph(
    graph: CSRGraph, vertices: List[int]
) -> Tuple[CSRGraph, List[int]]:
    """Induced subgraph on ``vertices``; returns (subgraph, sub→orig map)."""
    index = {v: i for i, v in enumerate(vertices)}
    xadj = [0] * (len(vertices) + 1)
    adjncy: List[int] = []
    adjwgt: List[int] = []
    vwgt = [graph.vwgt[v] for v in vertices]
    for i, v in enumerate(vertices):
        for j in range(graph.xadj[v], graph.xadj[v + 1]):
            u = graph.adjncy[j]
            if u in index:
                adjncy.append(index[u])
                adjwgt.append(graph.adjwgt[j])
        xadj[i + 1] = len(adjncy)
    return (
        CSRGraph(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt),
        vertices,
    )


def recursive_bisection(
    graph: CSRGraph,
    k: int,
    targets: Sequence[float],
    rng: random.Random,
    ubfactor: float = 1.05,
    coarsen_to: int = 64,
    initial: str = "greedy",
    ntrials: int = 8,
) -> List[int]:
    """Partition into k parts with the given per-part weight targets.

    Returns part labels ``0..k-1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(targets) != k:
        raise ValueError(f"need {k} targets, got {len(targets)}")
    n = graph.num_vertices
    if k == 1:
        return [0] * n
    if n == 0:
        return []

    k0 = (k + 1) // 2
    target0 = float(sum(targets[:k0]))

    part01 = multilevel_bisect(
        graph,
        (target0, float(sum(targets[k0:]))),
        rng,
        ubfactor=ubfactor,
        coarsen_to=coarsen_to,
        initial=initial,
        ntrials=ntrials,
    )

    side0 = [v for v in range(n) if part01[v] == 0]
    side1 = [v for v in range(n) if part01[v] == 1]
    k1 = k - k0
    # each side must host at least as many vertices as parts it will be
    # split into; degenerate bisections (stars, heavy vertices) can
    # violate this — repair by moving the lightest vertices across
    while len(side0) < k0 and len(side1) > k1:
        v = min(side1, key=lambda u: (graph.vwgt[u], u))
        side1.remove(v)
        side0.append(v)
    while len(side1) < k1 and len(side0) > k0:
        v = min(side0, key=lambda u: (graph.vwgt[u], u))
        side0.remove(v)
        side1.append(v)
    result = [0] * n

    if k0 == 1:
        for v in side0:
            result[v] = 0
    else:
        sub, orig = _induced_subgraph(graph, side0)
        sub_part = recursive_bisection(
            sub, k0, targets[:k0], rng, ubfactor, coarsen_to, initial, ntrials
        )
        for i, v in enumerate(orig):
            result[v] = sub_part[i]

    if k1 == 1:
        for v in side1:
            result[v] = k0
    else:
        sub, orig = _induced_subgraph(graph, side1)
        sub_part = recursive_bisection(
            sub, k1, targets[k0:], rng, ubfactor, coarsen_to, initial, ntrials
        )
        for i, v in enumerate(orig):
            result[v] = k0 + sub_part[i]
    return result


def kway_partition(
    graph: CSRGraph,
    k: int,
    rng: random.Random,
    targets: Sequence[float] = (),
    ubfactor: float = 1.05,
    coarsen_to: int = 64,
    initial: str = "greedy",
    ntrials: int = 8,
    refine_passes: int = 4,
) -> List[int]:
    """Full k-way pipeline: recursive bisection + direct k-way refine."""
    if not targets:
        total = float(graph.total_vertex_weight)
        targets = [total / k] * k
    part = recursive_bisection(
        graph, k, targets, rng, ubfactor, coarsen_to, initial, ntrials
    )
    if k > 2 and refine_passes > 0:
        kway_refine(graph, part, k, targets, ubfactor=ubfactor, max_passes=refine_passes)
    return part


def direct_kway_partition(
    graph: CSRGraph,
    k: int,
    rng: random.Random,
    targets: Sequence[float] = (),
    ubfactor: float = 1.05,
    initial: str = "greedy",
    ntrials: int = 8,
    refine_passes: int = 4,
    ladder_cache: Optional[LadderCache] = None,
) -> List[int]:
    """kmetis-style direct k-way: one coarsening ladder, k-way initial
    partition of the coarsest graph, greedy k-way refinement at every
    uncoarsening level.

    Versus recursive bisection (which re-coarsens each half at every
    recursion level) this coarsens *once*, so it is markedly faster for
    larger k at comparable quality — the same tradeoff the two METIS
    binaries (pmetis/kmetis) embody.

    ``ladder_cache`` (optional) reuses and updates a
    :class:`~repro.metis.coarsen.LadderCache` from a previous run on a
    prefix-stable grown version of the same graph — the cold-restart
    path of warm-started periodic repartitioning.
    """
    from repro.metis.coarsen import coarsen, coarsen_warm, project_partition

    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    if k == 1:
        return [0] * n
    if n == 0:
        return []
    if not targets:
        total = float(graph.total_vertex_weight)
        targets = [total / k] * k

    if ladder_cache is not None:
        levels = coarsen_warm(graph, rng, ladder_cache, coarsen_to=max(64, 12 * k))
    else:
        levels = coarsen(graph, rng, coarsen_to=max(64, 12 * k))
    coarsest = levels[-1].graph

    part = recursive_bisection(
        coarsest, k, _scaled_targets(targets, coarsest, graph), rng,
        ubfactor=ubfactor, coarsen_to=32, initial=initial, ntrials=ntrials,
    )
    kway_refine(coarsest, part, k, _scaled_targets(targets, coarsest, graph),
                ubfactor=ubfactor, max_passes=refine_passes)

    for level_idx in range(len(levels) - 1, 0, -1):
        level = levels[level_idx]
        finer = levels[level_idx - 1].graph
        part = project_partition(level, part)
        kway_refine(finer, part, k, _scaled_targets(targets, finer, graph),
                    ubfactor=ubfactor, max_passes=refine_passes)
    return part


def warm_kway_partition(
    graph: CSRGraph,
    k: int,
    part: List[int],
    targets: Sequence[float] = (),
    ubfactor: float = 1.05,
) -> List[int]:
    """Incremental k-way partition from a projected previous partition.

    ``part`` has length ``graph.num_vertices`` with entries in
    ``0..k-1`` for vertices the previous run assigned and ``-1`` for
    vertices that are new since.  New vertices are placed greedily by
    weighted neighbor majority (ties and isolated vertices go to the
    part with the lowest weight/target ratio — the Fennel-style load
    term), then :func:`~repro.metis.refine.boundary_kway_refine` cleans
    up from that projection.  No coarsening happens at all, which is
    why warm periods cost O(boundary) instead of O(V + E) × levels.

    Mutates and returns ``part``.
    """
    n = graph.num_vertices
    if k == 1:
        for v in range(n):
            part[v] = 0
        return part
    if n == 0:
        return part
    if not targets:
        total = float(graph.total_vertex_weight)
        targets = [total / k] * k

    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    kr = kernels.active()
    weights = [float(w) for w in kr.part_weights(graph, part, k, skip_unassigned=True)]

    def lightest() -> int:
        return min(
            range(k),
            key=lambda p: (weights[p] / targets[p] if targets[p] > 0 else weights[p], p),
        )

    for v in kr.unassigned_list(part):
        conn: dict = {}
        for i in range(xadj[v], xadj[v + 1]):
            p = part[adjncy[i]]
            if p >= 0:
                conn[p] = conn.get(p, 0) + adjwgt[i]
        if conn:
            best = max(
                conn.items(),
                key=lambda item: (
                    item[1],
                    -(weights[item[0]] / targets[item[0]] if targets[item[0]] > 0 else 0.0),
                    -item[0],
                ),
            )[0]
        else:
            best = lightest()
        part[v] = best
        weights[best] += vwgt[v]

    boundary_kway_refine(graph, part, k, targets, ubfactor=ubfactor)
    return part


def _scaled_targets(
    targets: Sequence[float], level_graph: CSRGraph, original: CSRGraph
) -> List[float]:
    """Coarsening conserves total vertex weight, so targets transfer
    unchanged; kept as a function for clarity and future non-conserving
    weight schemes."""
    return list(targets)
