"""Compact CSR work-graph for the multilevel partitioner.

The partitioner operates on vertices renumbered to ``0..n-1`` with
adjacency in CSR (compressed sparse row) layout — the same representation
METIS uses — because the coarsening and refinement inner loops touch
every edge many times and dict-of-dict graphs are too slow for that.

``CSRGraph`` is immutable after construction.  ``from_undirected``
bridges from the domain-level :class:`~repro.graph.undirected.UndirectedView`
and keeps the original-vertex-id mapping.

Two ColumnarLog bridges skip the ``WeightedDiGraph`` →
``collapse_to_undirected`` → CSR rebuild entirely, reading the log's
dense vertex indices straight into CSR arrays:

* :meth:`CSRGraph.from_columnar` builds the undirected interaction
  graph of any row range ``[start, stop)`` in one pass — the R-METIS /
  TR-METIS reduced-window input;
* :class:`ColumnarCSRBuilder` maintains the *cumulative* graph
  incrementally: each :meth:`~ColumnarCSRBuilder.advance` call folds in
  only the rows appended since the previous call, so periodic
  full-graph repartitioning pays O(new rows) per period instead of
  O(all rows) — the warm-started METIS hot path.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import kernels
from repro.errors import PartitionError
from repro.graph.undirected import UndirectedView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.graph.columnar import ColumnarLog


@dataclasses.dataclass
class CSRGraph:
    """Undirected weighted graph in CSR form.

    Attributes:
        xadj: index into adjncy/adjwgt; neighbors of v are
            ``adjncy[xadj[v]:xadj[v+1]]`` (length n+1).
        adjncy: concatenated neighbor lists (each undirected edge appears
            twice, once per endpoint).
        adjwgt: edge weights, parallel to adjncy.
        vwgt: vertex weights (length n).
        orig_ids: optional original vertex id per CSR index.
    """

    xadj: List[int]
    adjncy: List[int]
    adjwgt: List[int]
    vwgt: List[int]
    orig_ids: Optional[List[int]] = None

    @property
    def num_vertices(self) -> int:
        return len(self.vwgt)

    @property
    def num_edges(self) -> int:
        return len(self.adjncy) // 2

    @property
    def total_vertex_weight(self) -> int:
        return sum(self.vwgt)

    @property
    def total_edge_weight(self) -> int:
        """Sum of undirected edge weights (each edge counted once)."""
        return sum(self.adjwgt) // 2

    def neighbors(self, v: int) -> Iterator[Tuple[int, int]]:
        """Yield (neighbor, edge weight) pairs of v."""
        for i in range(self.xadj[v], self.xadj[v + 1]):
            yield self.adjncy[i], self.adjwgt[i]

    def degree(self, v: int) -> int:
        return self.xadj[v + 1] - self.xadj[v]

    def weighted_degree(self, v: int) -> int:
        return sum(self.adjwgt[self.xadj[v] : self.xadj[v + 1]])

    # ------------------------------------------------------------------

    @classmethod
    def from_undirected(cls, und: UndirectedView) -> "CSRGraph":
        """Build a CSR graph from an :class:`UndirectedView`.

        Vertices are renumbered in iteration order; the original ids are
        retained in ``orig_ids`` so partition vectors can be mapped back.
        """
        index: Dict[int, int] = {}
        orig_ids: List[int] = []
        for v in und.vertices():
            index[v] = len(orig_ids)
            orig_ids.append(v)
        n = len(orig_ids)
        xadj: List[int] = [0] * (n + 1)
        adjncy: List[int] = []
        adjwgt: List[int] = []
        vwgt: List[int] = [0] * n
        for v, idx in index.items():
            vwgt[idx] = und.vertex_weight(v)
        for idx, v in enumerate(orig_ids):
            for nbr, w in und.adjacency(v).items():
                adjncy.append(index[nbr])
                adjwgt.append(w)
            xadj[idx + 1] = len(adjncy)
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt, orig_ids=orig_ids)

    @classmethod
    def from_digraph(
        cls,
        digraph,
        min_vertex_weight: int = 1,
        unit_vertex_weights: bool = False,
    ) -> "CSRGraph":
        """Collapse a ``WeightedDiGraph`` straight to CSR in one pass.

        Fuses ``collapse_to_undirected`` + :meth:`from_undirected`
        without materialising the intermediate ``UndirectedView`` or
        re-walking it.  Every observable order is preserved exactly:
        vertices are renumbered in ``digraph.vertices()`` order, each
        adjacency keeps first-encounter order over ``digraph.edges()``,
        and reverse-direction weights merge on the first encounter of a
        pair — bit-identical CSR arrays to the two-step pipeline (the
        KL repartitioner depends on this for its tie-breaks).
        """
        index: Dict[int, int] = {}
        orig_ids: List[int] = []
        vwgt: List[int] = []
        for v in digraph.vertices():
            index[v] = len(orig_ids)
            orig_ids.append(v)
            vwgt.append(
                1 if unit_vertex_weights
                else max(min_vertex_weight, digraph.vertex_weight(v)))
        n = len(orig_ids)
        adj: List[Dict[int, int]] = [{} for _ in range(n)]
        for src, dst, w in digraph.edges():
            if src == dst:
                continue  # self-loops never cross shards; the collapse drops them
            si, di = index[src], index[dst]
            if di in adj[si]:
                # the reverse edge was already merged when we saw dst → src
                continue
            total = w + digraph.successors(dst).get(src, 0)
            adj[si][di] = total
            adj[di][si] = total
        xadj: List[int] = [0] * (n + 1)
        adjncy: List[int] = []
        adjwgt: List[int] = []
        for i in range(n):
            adjncy.extend(adj[i])
            adjwgt.extend(adj[i].values())
            xadj[i + 1] = len(adjncy)
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt, orig_ids=orig_ids)

    @classmethod
    def from_graph_batch(
        cls,
        first_seen,
        edge_weights,
        vertex_weights,
        vertex_id,
        min_vertex_weight: int = 1,
    ) -> "CSRGraph":
        """Collapse one ``graph_batch`` aggregate straight to CSR.

        Equivalent to ``build_graph_columnar`` → :meth:`from_digraph`
        without materialising the ``WeightedDiGraph``: ``first_seen``
        fixes the vertex order (the digraph's ``add_vertex`` order),
        ``edge_weights``'s packed-pair first-occurrence order fixes
        each successor order (the ``add_edge`` order), and the collapse
        then merges reverse pairs / drops self-loops exactly as
        :meth:`from_digraph` does — bit-identical CSR arrays, at a
        fraction of the inserts (and hashing *dense* log indices
        instead of raw vertex ids).  ``vertex_id`` maps dense indices
        to the raw ids recorded in ``orig_ids``.
        """
        n = len(first_seen)
        index: Dict[int, int] = {}
        orig_ids: List[int] = []
        vwgt: List[int] = []
        for r, (dense, _kind, _ts) in enumerate(first_seen):
            index[dense] = r
            orig_ids.append(vertex_id(dense))
            vwgt.append(max(min_vertex_weight, vertex_weights.get(dense, 0)))
        succ: List[Dict[int, int]] = [{} for _ in range(n)]
        shift, mask = kernels.PACK_SHIFT, kernels.PACK_MASK
        for packed, w in edge_weights.items():
            succ[index[packed >> shift]][index[packed & mask]] = w
        adj: List[Dict[int, int]] = [{} for _ in range(n)]
        for si in range(n):
            for di, w in succ[si].items():
                if si == di:
                    continue  # self-loops never cross shards
                if di in adj[si]:
                    continue  # reverse pair already merged
                total = w + succ[di].get(si, 0)
                adj[si][di] = total
                adj[di][si] = total
        xadj: List[int] = [0] * (n + 1)
        adjncy: List[int] = []
        adjwgt: List[int] = []
        for i in range(n):
            adjncy.extend(adj[i])
            adjwgt.extend(adj[i].values())
            xadj[i + 1] = len(adjncy)
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt, orig_ids=orig_ids)

    @classmethod
    def from_columnar(
        cls,
        log: "ColumnarLog",
        start: int = 0,
        stop: Optional[int] = None,
        vertex_weights: str = "unit",
    ) -> "CSRGraph":
        """Build the undirected interaction graph of log rows [start, stop).

        Reads the dense src/dst index columns directly — no
        ``Interaction`` boxing, no ``WeightedDiGraph`` and no
        ``collapse_to_undirected`` pass.  Semantics match that pipeline:
        edge weight u–v is the number of interactions between u and v in
        either direction, self-interactions contribute no edge, and
        ``vertex_weights`` is ``"unit"`` (all 1 — the paper's METIS
        setup) or ``"activity"`` (interaction appearances, floored at 1;
        a self-interaction counts its endpoint once).

        Vertices are the ones appearing in the range, numbered in
        first-appearance order; ``orig_ids`` maps back to raw vertex
        ids.  For ``start == 0`` the numbering coincides with the log's
        dense interning order.
        """
        _validate_vertex_weights(vertex_weights)  # fail before the scan
        if stop is None:
            stop = len(log)
        # batch kernel: the bucketing runs at distinct-row level in the
        # active backend; local numbering and adjacency order are
        # bit-identical to the old per-row fold (the kernel contract)
        xadj, adjncy, adjwgt, vwgt, dense_ids = kernels.active().csr_from_window(
            log.src_indices(), log.dst_indices(), start, stop, vertex_weights)
        orig_ids = [log.vertex_id(dense) for dense in dense_ids]
        return cls(
            xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt,
            orig_ids=orig_ids,
        )

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Sequence[Tuple[int, int, int]],
        vwgt: Optional[Sequence[int]] = None,
    ) -> "CSRGraph":
        """Build from an undirected edge list [(u, v, w), ...].

        Parallel edges are merged by weight; self-loops are rejected.
        Used by the tests and by the coarsener.
        """
        merged: Dict[Tuple[int, int], int] = {}
        for u, v, w in edges:
            if u == v:
                raise ValueError(f"self-loop not allowed: {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge endpoint out of range: ({u}, {v})")
            key = (u, v) if u < v else (v, u)
            merged[key] = merged.get(key, 0) + w

        adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for (u, v), w in merged.items():
            adj[u].append((v, w))
            adj[v].append((u, w))

        xadj = [0] * (n + 1)
        adjncy: List[int] = []
        adjwgt: List[int] = []
        for v in range(n):
            for nbr, w in adj[v]:
                adjncy.append(nbr)
                adjwgt.append(w)
            xadj[v + 1] = len(adjncy)
        weights = list(vwgt) if vwgt is not None else [1] * n
        if len(weights) != n:
            raise ValueError(f"vwgt length {len(weights)} != n {n}")
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=weights)

    # ------------------------------------------------------------------

    def cut_of(self, part: Sequence[int]) -> int:
        """Total weight of edges whose endpoints are in different parts."""
        return kernels.active().cut_value(self, part)

    def part_weights(self, part: Sequence[int], k: int) -> List[int]:
        """Vertex-weight sum per part."""
        return kernels.active().part_weights(self, part, k)


class ColumnarCSRBuilder:
    """Incrementally accumulates a ColumnarLog's *cumulative* graph.

    The periodic full-graph METIS method partitions the cumulative
    interaction graph every period.  Rebuilding that graph from scratch
    costs O(total rows) per period; this builder keeps per-vertex
    adjacency accumulators keyed by the log's dense indices and folds in
    only the rows appended since the last :meth:`advance`, so a period
    costs O(new rows) plus an O(V + E) :meth:`snapshot` to emit the
    immutable CSR arrays the partitioner wants.

    Vertex v of every snapshot is dense index v of the log, so snapshots
    of a growing log are *prefix-stable*: an earlier snapshot's vertices
    keep their indices in every later snapshot.  Warm-started
    repartitioning (``part_graph(warm_start=...)``) and the coarsening
    ladder cache both rely on exactly this property.
    """

    __slots__ = ("log", "_upto", "_acc")

    def __init__(self, log: "ColumnarLog") -> None:
        self.log = log
        self._upto = 0                       # rows [0, _upto) consumed
        # backend accumulator captured at construction: flat packed-pair
        # folding instead of per-row dict updates (pure backend keeps
        # the reference dict-of-dicts; all emit identical snapshots)
        self._acc = kernels.active().CSRAccumulator()

    @property
    def rows_consumed(self) -> int:
        return self._upto

    @property
    def num_vertices(self) -> int:
        return self._acc.num_vertices

    def advance(self, upto: Optional[int] = None) -> int:
        """Fold in log rows [rows_consumed, upto); returns rows added."""
        if upto is None:
            upto = len(self.log)
        if upto < self._upto:
            raise ValueError(
                f"cannot rewind: already consumed {self._upto} rows, asked {upto}"
            )
        if upto > len(self.log):
            # reject before touching the accumulators: failing mid-loop
            # would leave rows half-folded and a retry would double-count
            raise ValueError(
                f"upto {upto} beyond log length {len(self.log)}"
            )
        self._acc.advance(
            self.log.src_indices(), self.log.dst_indices(), self._upto, upto)
        added = upto - self._upto
        self._upto = upto
        return added

    def snapshot(self, vertex_weights: str = "unit") -> CSRGraph:
        """Emit the cumulative graph of all consumed rows as a CSRGraph."""
        _validate_vertex_weights(vertex_weights)
        xadj, adjncy, adjwgt, vwgt, n = self._acc.snapshot(vertex_weights)
        # one bulk copy instead of n per-index method calls: dense
        # indices 0..n-1 are exactly the first n interned ids
        orig_ids = list(self.log.vertex_ids()[:n])
        return CSRGraph(
            xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt,
            orig_ids=orig_ids,
        )


def _validate_vertex_weights(vertex_weights: str) -> None:
    if vertex_weights not in ("unit", "activity"):
        raise PartitionError(
            f"vertex_weights must be 'unit' or 'activity', got {vertex_weights!r}"
        )
