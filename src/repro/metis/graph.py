"""Compact CSR work-graph for the multilevel partitioner.

The partitioner operates on vertices renumbered to ``0..n-1`` with
adjacency in CSR (compressed sparse row) layout — the same representation
METIS uses — because the coarsening and refinement inner loops touch
every edge many times and dict-of-dict graphs are too slow for that.

``CSRGraph`` is immutable after construction.  ``from_undirected``
bridges from the domain-level :class:`~repro.graph.undirected.UndirectedView`
and keeps the original-vertex-id mapping.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.graph.undirected import UndirectedView


@dataclasses.dataclass
class CSRGraph:
    """Undirected weighted graph in CSR form.

    Attributes:
        xadj: index into adjncy/adjwgt; neighbors of v are
            ``adjncy[xadj[v]:xadj[v+1]]`` (length n+1).
        adjncy: concatenated neighbor lists (each undirected edge appears
            twice, once per endpoint).
        adjwgt: edge weights, parallel to adjncy.
        vwgt: vertex weights (length n).
        orig_ids: optional original vertex id per CSR index.
    """

    xadj: List[int]
    adjncy: List[int]
    adjwgt: List[int]
    vwgt: List[int]
    orig_ids: Optional[List[int]] = None

    @property
    def num_vertices(self) -> int:
        return len(self.vwgt)

    @property
    def num_edges(self) -> int:
        return len(self.adjncy) // 2

    @property
    def total_vertex_weight(self) -> int:
        return sum(self.vwgt)

    @property
    def total_edge_weight(self) -> int:
        """Sum of undirected edge weights (each edge counted once)."""
        return sum(self.adjwgt) // 2

    def neighbors(self, v: int) -> Iterator[Tuple[int, int]]:
        """Yield (neighbor, edge weight) pairs of v."""
        for i in range(self.xadj[v], self.xadj[v + 1]):
            yield self.adjncy[i], self.adjwgt[i]

    def degree(self, v: int) -> int:
        return self.xadj[v + 1] - self.xadj[v]

    def weighted_degree(self, v: int) -> int:
        return sum(self.adjwgt[self.xadj[v] : self.xadj[v + 1]])

    # ------------------------------------------------------------------

    @classmethod
    def from_undirected(cls, und: UndirectedView) -> "CSRGraph":
        """Build a CSR graph from an :class:`UndirectedView`.

        Vertices are renumbered in iteration order; the original ids are
        retained in ``orig_ids`` so partition vectors can be mapped back.
        """
        index: Dict[int, int] = {}
        orig_ids: List[int] = []
        for v in und.vertices():
            index[v] = len(orig_ids)
            orig_ids.append(v)
        n = len(orig_ids)
        xadj: List[int] = [0] * (n + 1)
        adjncy: List[int] = []
        adjwgt: List[int] = []
        vwgt: List[int] = [0] * n
        for v, idx in index.items():
            vwgt[idx] = und.vertex_weight(v)
        for idx, v in enumerate(orig_ids):
            for nbr, w in und.adjacency(v).items():
                adjncy.append(index[nbr])
                adjwgt.append(w)
            xadj[idx + 1] = len(adjncy)
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt, orig_ids=orig_ids)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Sequence[Tuple[int, int, int]],
        vwgt: Optional[Sequence[int]] = None,
    ) -> "CSRGraph":
        """Build from an undirected edge list [(u, v, w), ...].

        Parallel edges are merged by weight; self-loops are rejected.
        Used by the tests and by the coarsener.
        """
        merged: Dict[Tuple[int, int], int] = {}
        for u, v, w in edges:
            if u == v:
                raise ValueError(f"self-loop not allowed: {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge endpoint out of range: ({u}, {v})")
            key = (u, v) if u < v else (v, u)
            merged[key] = merged.get(key, 0) + w

        adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for (u, v), w in merged.items():
            adj[u].append((v, w))
            adj[v].append((u, w))

        xadj = [0] * (n + 1)
        adjncy: List[int] = []
        adjwgt: List[int] = []
        for v in range(n):
            for nbr, w in adj[v]:
                adjncy.append(nbr)
                adjwgt.append(w)
            xadj[v + 1] = len(adjncy)
        weights = list(vwgt) if vwgt is not None else [1] * n
        if len(weights) != n:
            raise ValueError(f"vwgt length {len(weights)} != n {n}")
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=weights)

    # ------------------------------------------------------------------

    def cut_of(self, part: Sequence[int]) -> int:
        """Total weight of edges whose endpoints are in different parts."""
        cut = 0
        for v in range(self.num_vertices):
            pv = part[v]
            for i in range(self.xadj[v], self.xadj[v + 1]):
                if part[self.adjncy[i]] != pv:
                    cut += self.adjwgt[i]
        return cut // 2

    def part_weights(self, part: Sequence[int], k: int) -> List[int]:
        """Vertex-weight sum per part."""
        weights = [0] * k
        for v in range(self.num_vertices):
            weights[part[v]] += self.vwgt[v]
        return weights
