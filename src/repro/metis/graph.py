"""Compact CSR work-graph for the multilevel partitioner.

The partitioner operates on vertices renumbered to ``0..n-1`` with
adjacency in CSR (compressed sparse row) layout — the same representation
METIS uses — because the coarsening and refinement inner loops touch
every edge many times and dict-of-dict graphs are too slow for that.

``CSRGraph`` is immutable after construction.  ``from_undirected``
bridges from the domain-level :class:`~repro.graph.undirected.UndirectedView`
and keeps the original-vertex-id mapping.

Two ColumnarLog bridges skip the ``WeightedDiGraph`` →
``collapse_to_undirected`` → CSR rebuild entirely, reading the log's
dense vertex indices straight into CSR arrays:

* :meth:`CSRGraph.from_columnar` builds the undirected interaction
  graph of any row range ``[start, stop)`` in one pass — the R-METIS /
  TR-METIS reduced-window input;
* :class:`ColumnarCSRBuilder` maintains the *cumulative* graph
  incrementally: each :meth:`~ColumnarCSRBuilder.advance` call folds in
  only the rows appended since the previous call, so periodic
  full-graph repartitioning pays O(new rows) per period instead of
  O(all rows) — the warm-started METIS hot path.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PartitionError
from repro.graph.undirected import UndirectedView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.graph.columnar import ColumnarLog


@dataclasses.dataclass
class CSRGraph:
    """Undirected weighted graph in CSR form.

    Attributes:
        xadj: index into adjncy/adjwgt; neighbors of v are
            ``adjncy[xadj[v]:xadj[v+1]]`` (length n+1).
        adjncy: concatenated neighbor lists (each undirected edge appears
            twice, once per endpoint).
        adjwgt: edge weights, parallel to adjncy.
        vwgt: vertex weights (length n).
        orig_ids: optional original vertex id per CSR index.
    """

    xadj: List[int]
    adjncy: List[int]
    adjwgt: List[int]
    vwgt: List[int]
    orig_ids: Optional[List[int]] = None

    @property
    def num_vertices(self) -> int:
        return len(self.vwgt)

    @property
    def num_edges(self) -> int:
        return len(self.adjncy) // 2

    @property
    def total_vertex_weight(self) -> int:
        return sum(self.vwgt)

    @property
    def total_edge_weight(self) -> int:
        """Sum of undirected edge weights (each edge counted once)."""
        return sum(self.adjwgt) // 2

    def neighbors(self, v: int) -> Iterator[Tuple[int, int]]:
        """Yield (neighbor, edge weight) pairs of v."""
        for i in range(self.xadj[v], self.xadj[v + 1]):
            yield self.adjncy[i], self.adjwgt[i]

    def degree(self, v: int) -> int:
        return self.xadj[v + 1] - self.xadj[v]

    def weighted_degree(self, v: int) -> int:
        return sum(self.adjwgt[self.xadj[v] : self.xadj[v + 1]])

    # ------------------------------------------------------------------

    @classmethod
    def from_undirected(cls, und: UndirectedView) -> "CSRGraph":
        """Build a CSR graph from an :class:`UndirectedView`.

        Vertices are renumbered in iteration order; the original ids are
        retained in ``orig_ids`` so partition vectors can be mapped back.
        """
        index: Dict[int, int] = {}
        orig_ids: List[int] = []
        for v in und.vertices():
            index[v] = len(orig_ids)
            orig_ids.append(v)
        n = len(orig_ids)
        xadj: List[int] = [0] * (n + 1)
        adjncy: List[int] = []
        adjwgt: List[int] = []
        vwgt: List[int] = [0] * n
        for v, idx in index.items():
            vwgt[idx] = und.vertex_weight(v)
        for idx, v in enumerate(orig_ids):
            for nbr, w in und.adjacency(v).items():
                adjncy.append(index[nbr])
                adjwgt.append(w)
            xadj[idx + 1] = len(adjncy)
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt, orig_ids=orig_ids)

    @classmethod
    def from_columnar(
        cls,
        log: "ColumnarLog",
        start: int = 0,
        stop: Optional[int] = None,
        vertex_weights: str = "unit",
    ) -> "CSRGraph":
        """Build the undirected interaction graph of log rows [start, stop).

        Reads the dense src/dst index columns directly — no
        ``Interaction`` boxing, no ``WeightedDiGraph`` and no
        ``collapse_to_undirected`` pass.  Semantics match that pipeline:
        edge weight u–v is the number of interactions between u and v in
        either direction, self-interactions contribute no edge, and
        ``vertex_weights`` is ``"unit"`` (all 1 — the paper's METIS
        setup) or ``"activity"`` (interaction appearances, floored at 1;
        a self-interaction counts its endpoint once).

        Vertices are the ones appearing in the range, numbered in
        first-appearance order; ``orig_ids`` maps back to raw vertex
        ids.  For ``start == 0`` the numbering coincides with the log's
        dense interning order.
        """
        _validate_vertex_weights(vertex_weights)  # fail before the scan
        if stop is None:
            stop = len(log)
        src_col = log.src_indices()
        dst_col = log.dst_indices()
        local: Dict[int, int] = {}       # dense log index -> local CSR index
        adj: List[Dict[int, int]] = []   # local adjacency accumulators
        activity: List[int] = []
        # NOTE: the per-row fold below is the compacting twin of
        # ColumnarCSRBuilder.advance (dense indices, no remap) — keep
        # the conventions in lockstep; tests pin their equivalence.
        for i in range(start, stop):
            s = src_col[i]
            d = dst_col[i]
            ls = local.get(s)
            if ls is None:
                ls = local[s] = len(adj)
                adj.append({})
                activity.append(0)
            activity[ls] += 1
            if d == s:
                continue
            ld = local.get(d)
            if ld is None:
                ld = local[d] = len(adj)
                adj.append({})
                activity.append(0)
            activity[ld] += 1
            adj_s = adj[ls]
            adj_s[ld] = adj_s.get(ld, 0) + 1
            adj_d = adj[ld]
            adj_d[ls] = adj_d.get(ls, 0) + 1

        orig_ids = [log.vertex_id(dense) for dense in local]
        return _emit_csr(adj, activity, vertex_weights, orig_ids)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Sequence[Tuple[int, int, int]],
        vwgt: Optional[Sequence[int]] = None,
    ) -> "CSRGraph":
        """Build from an undirected edge list [(u, v, w), ...].

        Parallel edges are merged by weight; self-loops are rejected.
        Used by the tests and by the coarsener.
        """
        merged: Dict[Tuple[int, int], int] = {}
        for u, v, w in edges:
            if u == v:
                raise ValueError(f"self-loop not allowed: {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge endpoint out of range: ({u}, {v})")
            key = (u, v) if u < v else (v, u)
            merged[key] = merged.get(key, 0) + w

        adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for (u, v), w in merged.items():
            adj[u].append((v, w))
            adj[v].append((u, w))

        xadj = [0] * (n + 1)
        adjncy: List[int] = []
        adjwgt: List[int] = []
        for v in range(n):
            for nbr, w in adj[v]:
                adjncy.append(nbr)
                adjwgt.append(w)
            xadj[v + 1] = len(adjncy)
        weights = list(vwgt) if vwgt is not None else [1] * n
        if len(weights) != n:
            raise ValueError(f"vwgt length {len(weights)} != n {n}")
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=weights)

    # ------------------------------------------------------------------

    def cut_of(self, part: Sequence[int]) -> int:
        """Total weight of edges whose endpoints are in different parts."""
        cut = 0
        for v in range(self.num_vertices):
            pv = part[v]
            for i in range(self.xadj[v], self.xadj[v + 1]):
                if part[self.adjncy[i]] != pv:
                    cut += self.adjwgt[i]
        return cut // 2

    def part_weights(self, part: Sequence[int], k: int) -> List[int]:
        """Vertex-weight sum per part."""
        weights = [0] * k
        for v in range(self.num_vertices):
            weights[part[v]] += self.vwgt[v]
        return weights


class ColumnarCSRBuilder:
    """Incrementally accumulates a ColumnarLog's *cumulative* graph.

    The periodic full-graph METIS method partitions the cumulative
    interaction graph every period.  Rebuilding that graph from scratch
    costs O(total rows) per period; this builder keeps per-vertex
    adjacency accumulators keyed by the log's dense indices and folds in
    only the rows appended since the last :meth:`advance`, so a period
    costs O(new rows) plus an O(V + E) :meth:`snapshot` to emit the
    immutable CSR arrays the partitioner wants.

    Vertex v of every snapshot is dense index v of the log, so snapshots
    of a growing log are *prefix-stable*: an earlier snapshot's vertices
    keep their indices in every later snapshot.  Warm-started
    repartitioning (``part_graph(warm_start=...)``) and the coarsening
    ladder cache both rely on exactly this property.
    """

    __slots__ = ("log", "_upto", "_adj", "_activity")

    def __init__(self, log: "ColumnarLog") -> None:
        self.log = log
        self._upto = 0                       # rows [0, _upto) consumed
        self._adj: List[Dict[int, int]] = []
        self._activity: List[int] = []

    @property
    def rows_consumed(self) -> int:
        return self._upto

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    def advance(self, upto: Optional[int] = None) -> int:
        """Fold in log rows [rows_consumed, upto); returns rows added."""
        if upto is None:
            upto = len(self.log)
        if upto < self._upto:
            raise ValueError(
                f"cannot rewind: already consumed {self._upto} rows, asked {upto}"
            )
        if upto > len(self.log):
            # reject before touching the accumulators: failing mid-loop
            # would leave rows half-folded and a retry would double-count
            raise ValueError(
                f"upto {upto} beyond log length {len(self.log)}"
            )
        src_col = self.log.src_indices()
        dst_col = self.log.dst_indices()
        adj = self._adj
        activity = self._activity
        # NOTE: per-row fold mirrors CSRGraph.from_columnar (which
        # additionally compacts indices); both loops stay open-coded
        # because a shared per-row helper costs a Python call on the
        # hot path — change conventions in both or the warm cumulative
        # graph diverges from the R-METIS window graph.
        for i in range(self._upto, upto):
            s = src_col[i]
            d = dst_col[i]
            hi = s if s > d else d
            while len(adj) <= hi:
                adj.append({})
                activity.append(0)
            activity[s] += 1
            if d == s:
                continue
            activity[d] += 1
            adj_s = adj[s]
            adj_s[d] = adj_s.get(d, 0) + 1
            adj_d = adj[d]
            adj_d[s] = adj_d.get(s, 0) + 1
        added = upto - self._upto
        self._upto = upto
        return added

    def snapshot(self, vertex_weights: str = "unit") -> CSRGraph:
        """Emit the cumulative graph of all consumed rows as a CSRGraph."""
        orig_ids = [self.log.vertex_id(v) for v in range(len(self._adj))]
        return _emit_csr(self._adj, self._activity, vertex_weights, orig_ids)


def _validate_vertex_weights(vertex_weights: str) -> None:
    if vertex_weights not in ("unit", "activity"):
        raise PartitionError(
            f"vertex_weights must be 'unit' or 'activity', got {vertex_weights!r}"
        )


def _emit_csr(
    adj: List[Dict[int, int]],
    activity: List[int],
    vertex_weights: str,
    orig_ids: List[int],
) -> CSRGraph:
    """Freeze per-vertex adjacency accumulators into CSR arrays.

    Shared tail of :meth:`CSRGraph.from_columnar` and
    :meth:`ColumnarCSRBuilder.snapshot` — the weight conventions (unit
    vs activity-floored-at-1) live here exactly once.
    """
    _validate_vertex_weights(vertex_weights)
    n = len(adj)
    xadj = [0] * (n + 1)
    adjncy: List[int] = []
    adjwgt: List[int] = []
    for v in range(n):
        for nbr, w in adj[v].items():
            adjncy.append(nbr)
            adjwgt.append(w)
        xadj[v + 1] = len(adjncy)
    if vertex_weights == "unit":
        vwgt = [1] * n
    else:
        vwgt = [max(1, a) for a in activity]
    return CSRGraph(
        xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt, orig_ids=orig_ids
    )
