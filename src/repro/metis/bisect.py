"""One full multilevel bisection: coarsen → initial partition → refine.

This is the V-cycle of the multilevel method.  The initial partition is
computed on the coarsest graph (greedy graph growing by default, with
spectral bisection as an optional alternative), then projected back up
the ladder with an FM refinement pass at every level.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.metis.coarsen import coarsen, project_partition
from repro.metis.graph import CSRGraph
from repro.metis.initial import greedy_graph_growing, spectral_bisection
from repro.metis.refine import fm_refine


def multilevel_bisect(
    graph: CSRGraph,
    targets: Tuple[float, float],
    rng: random.Random,
    ubfactor: float = 1.05,
    coarsen_to: int = 64,
    initial: str = "greedy",
    ntrials: int = 8,
) -> List[int]:
    """Bisect ``graph`` into parts with the given weight targets.

    ``initial`` selects the coarsest-level algorithm: ``"greedy"``
    (default) or ``"spectral"`` (falls back to greedy if the
    eigensolver fails).  Returns the 0/1 part vector.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    if n == 1:
        return [0]

    levels = coarsen(graph, rng, coarsen_to=coarsen_to)
    coarsest = levels[-1].graph

    if initial == "spectral":
        try:
            part = spectral_bisection(coarsest, targets[0])
        except RuntimeError:
            part = greedy_graph_growing(coarsest, targets[0], rng, ntrials=ntrials)
    elif initial == "greedy":
        part = greedy_graph_growing(coarsest, targets[0], rng, ntrials=ntrials)
    else:
        raise ValueError(f"unknown initial partitioner: {initial!r}")

    fm_refine(coarsest, part, targets, ubfactor=ubfactor, rng=rng)

    # walk the ladder back up, refining at every level
    for level_idx in range(len(levels) - 1, 0, -1):
        level = levels[level_idx]
        finer = levels[level_idx - 1].graph
        part = project_partition(level, part)
        fm_refine(finer, part, targets, ubfactor=ubfactor, rng=rng)
    return part
