"""Matchings for the coarsening phase.

A matching pairs adjacent vertices so each vertex belongs to at most one
pair; contracting the pairs roughly halves the graph.  We implement the
two classic strategies from the METIS paper:

* **heavy-edge matching (HEM)** — visit vertices in random order and
  match each unmatched vertex with its unmatched neighbor of maximum
  edge weight.  Contracting heavy edges removes them from future cuts,
  which is why HEM gives better final partitions;
* **random matching (RM)** — match with a random unmatched neighbor;
  kept as a baseline and for the partitioner-quality ablation.

The returned ``match`` array maps each vertex to its partner (or to
itself if unmatched).
"""

from __future__ import annotations

import random
from typing import List

from repro import kernels
from repro.metis.graph import CSRGraph


def heavy_edge_matching(graph: CSRGraph, rng: random.Random) -> List[int]:
    """Heavy-edge matching; ``match[v]`` is v's partner (or v).

    The rng draws only the visit order; the inner max-weight-neighbor
    scan is the ``hem_matching`` kernel (sequential by nature — every
    backend runs the same reference loop).
    """
    order = list(range(graph.num_vertices))
    rng.shuffle(order)
    return kernels.active().hem_matching(graph, order)


def random_matching(graph: CSRGraph, rng: random.Random) -> List[int]:
    """Random matching; baseline for the coarsening ablation."""
    n = graph.num_vertices
    match = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    xadj, adjncy = graph.xadj, graph.adjncy
    for v in order:
        if match[v] != -1:
            continue
        candidates = [
            adjncy[i]
            for i in range(xadj[v], xadj[v + 1])
            if match[adjncy[i]] == -1 and adjncy[i] != v
        ]
        if not candidates:
            match[v] = v
        else:
            partner = rng.choice(candidates)
            match[v] = partner
            match[partner] = v
    return match


def matching_size(match: List[int]) -> int:
    """Number of matched *pairs*."""
    return sum(1 for v, m in enumerate(match) if m != v and v < m)


def validate_matching(graph: CSRGraph, match: List[int]) -> bool:
    """Check the matching invariants (used by property tests).

    Every vertex maps to itself or to a mutual partner, and matched
    pairs must be adjacent in the graph.
    """
    n = graph.num_vertices
    if len(match) != n:
        return False
    for v in range(n):
        m = match[v]
        if m == v:
            continue
        if not (0 <= m < n) or match[m] != v:
            return False
        if v not in dict(graph.neighbors(m)):
            return False
    return True
