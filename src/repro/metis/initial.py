"""Initial bisection of the coarsest graph.

Two algorithms:

* **greedy graph growing (GGG)** — grow region 0 from a random seed
  vertex, always absorbing the frontier vertex with the best gain
  (cut-weight decrease), until region 0 reaches its target weight.
  Several trials from different seeds keep the best cut (this is
  METIS's GGGP);
* **spectral bisection** — sort vertices by the Fiedler vector of the
  weighted graph Laplacian (scipy) and take the prefix that fills the
  target weight.  Exposed for the ABL-METIS ablation and used as a
  fallback quality reference.

Both return a 0/1 part vector.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional, Tuple

from repro.metis.graph import CSRGraph


def greedy_graph_growing(
    graph: CSRGraph,
    target0: float,
    rng: random.Random,
    ntrials: int = 8,
) -> List[int]:
    """Best-of-``ntrials`` greedy-growing bisection.

    ``target0`` is the desired total vertex weight of part 0; part 1
    receives the rest.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    best_part: Optional[List[int]] = None
    best_cut = float("inf")
    for _ in range(max(1, ntrials)):
        part = _grow_once(graph, target0, rng)
        cut = graph.cut_of(part)
        if cut < best_cut:
            best_cut = cut
            best_part = part
    assert best_part is not None
    return best_part


def _grow_once(graph: CSRGraph, target0: float, rng: random.Random) -> List[int]:
    """One greedy growth from a random seed; returns the part vector."""
    n = graph.num_vertices
    part = [1] * n
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt

    seed = rng.randrange(n)
    part[seed] = 0
    weight0 = vwgt[seed]

    # gain[v] = cut decrease if v moves into region 0
    #         = (edges to region 0) - (edges to region 1)
    gain = [0] * n
    in_heap = [False] * n
    heap: List[Tuple[int, int, int]] = []  # (-gain, tiebreak, v)
    counter = 0

    def push_frontier(v: int) -> None:
        nonlocal counter
        g = 0
        for i in range(xadj[v], xadj[v + 1]):
            g += adjwgt[i] if part[adjncy[i]] == 0 else -adjwgt[i]
        gain[v] = g
        counter += 1
        heapq.heappush(heap, (-g, counter, v))
        in_heap[v] = True

    for i in range(xadj[seed], xadj[seed + 1]):
        if part[adjncy[i]] == 1:
            push_frontier(adjncy[i])

    while weight0 < target0:
        v = -1
        while heap:
            neg_g, _, cand = heapq.heappop(heap)
            if part[cand] == 1 and -neg_g == gain[cand]:
                v = cand
                break
        if v == -1:
            # frontier exhausted (disconnected graph): seed a new region
            remaining = [u for u in range(n) if part[u] == 1]
            if not remaining:
                break
            v = rng.choice(remaining)
        part[v] = 0
        weight0 += vwgt[v]
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            if part[u] == 1:
                # u's gain changes by 2*w (one more edge into region 0,
                # one fewer into region 1); re-push with fresh gain
                push_frontier(u)
    return part


def spectral_bisection(graph: CSRGraph, target0: float) -> List[int]:
    """Fiedler-vector bisection (requires scipy; coarse graphs only).

    Raises ``RuntimeError`` if the eigensolver fails to converge —
    callers fall back to greedy growing.
    """
    import numpy as np
    from scipy.sparse import csr_matrix
    from scipy.sparse.linalg import eigsh

    n = graph.num_vertices
    if n < 3:
        return [0] * n

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    degree = [0.0] * n
    for v in range(n):
        for i in range(graph.xadj[v], graph.xadj[v + 1]):
            u = graph.adjncy[i]
            w = float(graph.adjwgt[i])
            rows.append(v)
            cols.append(u)
            vals.append(-w)
            degree[v] += w
    for v in range(n):
        rows.append(v)
        cols.append(v)
        vals.append(degree[v] + 1e-9)
    laplacian = csr_matrix((vals, (rows, cols)), shape=(n, n))

    try:
        _, vecs = eigsh(laplacian, k=2, which="SM", maxiter=5000, tol=1e-6)
    except Exception as exc:  # scipy raises several convergence types
        raise RuntimeError(f"spectral bisection failed: {exc}") from exc
    fiedler = vecs[:, 1]

    order = sorted(range(n), key=lambda v: (fiedler[v], v))
    part = [1] * n
    weight0 = 0
    for v in order:
        if weight0 >= target0:
            break
        part[v] = 0
        weight0 += graph.vwgt[v]
    return part
