"""A from-scratch multilevel graph partitioner (METIS substitute).

The paper partitions with METIS (Karypis & Kumar, SIAM J. Sci. Comput.
1998).  Offline we reimplement the same multilevel scheme in pure
Python:

1. **Coarsening** (:mod:`~repro.metis.matching`,
   :mod:`~repro.metis.coarsen`): repeatedly contract a heavy-edge
   matching until the graph is small;
2. **Initial partitioning** (:mod:`~repro.metis.initial`): greedy graph
   growing (and an optional scipy spectral bisection) on the coarsest
   graph;
3. **Uncoarsening + refinement** (:mod:`~repro.metis.refine`):
   project the partition back level by level, running
   Fiduccia–Mattheyses boundary refinement at each level;
4. **k-way** (:mod:`~repro.metis.kway`): recursive bisection with
   proportional target weights, followed by a direct k-way greedy
   refinement pass.

Entry point: :func:`~repro.metis.api.part_graph`.

For repeated runs on a growing graph (periodic repartitioning),
``part_graph(warm_start=...)`` projects the previous assignment and
refines instead of re-coarsening; :class:`~repro.metis.graph.ColumnarCSRBuilder`
feeds it CSR graphs built incrementally from a
:class:`~repro.graph.columnar.ColumnarLog`'s dense indices, and
:class:`~repro.metis.coarsen.LadderCache` carries the coarsening
hierarchy across cold restarts.
"""

from repro.metis.api import PartGraphResult, part_graph
from repro.metis.coarsen import LadderCache
from repro.metis.graph import ColumnarCSRBuilder, CSRGraph

__all__ = [
    "part_graph",
    "PartGraphResult",
    "CSRGraph",
    "ColumnarCSRBuilder",
    "LadderCache",
]
