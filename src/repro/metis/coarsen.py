"""Coarsening: contract matchings into a ladder of smaller graphs.

Contracting a matching merges each matched pair into one coarse vertex
whose weight is the sum of the pair's weights; parallel edges between
coarse vertices merge by weight and intra-pair edges vanish (they can
never be cut again, which is the point of matching heavy edges).

The ladder stops when the coarsest graph is small enough for the initial
partitioner or when coarsening stagnates (a matching that contracts
almost nothing, e.g. on a star graph).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.metis.graph import CSRGraph
from repro.metis.matching import heavy_edge_matching, matching_size


@dataclasses.dataclass
class CoarseLevel:
    """One rung of the coarsening ladder."""

    graph: CSRGraph
    #: fine-vertex → coarse-vertex map (length = parent graph size);
    #: None for the finest (original) level.
    fine_to_coarse: Optional[List[int]] = None


def contract(graph: CSRGraph, match: List[int]) -> Tuple[CSRGraph, List[int]]:
    """Contract a matching; returns (coarse graph, fine→coarse map)."""
    n = graph.num_vertices
    fine_to_coarse = [-1] * n
    coarse_n = 0
    for v in range(n):
        if fine_to_coarse[v] != -1:
            continue
        partner = match[v]
        fine_to_coarse[v] = coarse_n
        if partner != v:
            fine_to_coarse[partner] = coarse_n
        coarse_n += 1

    vwgt = [0] * coarse_n
    for v in range(n):
        vwgt[fine_to_coarse[v]] += graph.vwgt[v]

    # merge adjacency; self-edges (intra-pair) are dropped
    edge_accum: List[Dict[int, int]] = [dict() for _ in range(coarse_n)]
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    for v in range(n):
        cv = fine_to_coarse[v]
        acc = edge_accum[cv]
        for i in range(xadj[v], xadj[v + 1]):
            cu = fine_to_coarse[adjncy[i]]
            if cu == cv:
                continue
            acc[cu] = acc.get(cu, 0) + adjwgt[i]

    c_xadj = [0] * (coarse_n + 1)
    c_adjncy: List[int] = []
    c_adjwgt: List[int] = []
    for cv in range(coarse_n):
        for cu, w in edge_accum[cv].items():
            c_adjncy.append(cu)
            c_adjwgt.append(w)
        c_xadj[cv + 1] = len(c_adjncy)

    coarse = CSRGraph(xadj=c_xadj, adjncy=c_adjncy, adjwgt=c_adjwgt, vwgt=vwgt)
    return coarse, fine_to_coarse


def coarsen(
    graph: CSRGraph,
    rng: random.Random,
    coarsen_to: int = 64,
    max_levels: int = 40,
    min_reduction: float = 0.05,
    matcher: Callable[[CSRGraph, random.Random], List[int]] = heavy_edge_matching,
) -> List[CoarseLevel]:
    """Build the coarsening ladder, finest level first.

    Stops when the graph has at most ``coarsen_to`` vertices, after
    ``max_levels`` rungs, or when a matching shrinks the graph by less
    than ``min_reduction``.
    """
    levels: List[CoarseLevel] = [CoarseLevel(graph=graph)]
    current = graph
    for _ in range(max_levels):
        if current.num_vertices <= coarsen_to:
            break
        match = matcher(current, rng)
        if matching_size(match) < min_reduction * current.num_vertices / 2:
            break  # stagnation (e.g. a star): stop rather than crawl
        coarse, fine_to_coarse = contract(current, match)
        levels.append(CoarseLevel(graph=coarse, fine_to_coarse=fine_to_coarse))
        current = coarse
    return levels


def project_partition(level: CoarseLevel, coarse_part: List[int]) -> List[int]:
    """Project a coarse partition one rung down to the finer graph.

    ``level`` must be the rung holding the fine→coarse map; the result
    assigns each fine vertex its coarse vertex's part.
    """
    assert level.fine_to_coarse is not None, "finest level has no projection"
    return [coarse_part[c] for c in level.fine_to_coarse]
