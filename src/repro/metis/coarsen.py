"""Coarsening: contract matchings into a ladder of smaller graphs.

Contracting a matching merges each matched pair into one coarse vertex
whose weight is the sum of the pair's weights; parallel edges between
coarse vertices merge by weight and intra-pair edges vanish (they can
never be cut again, which is the point of matching heavy edges).

The ladder stops when the coarsest graph is small enough for the initial
partitioner or when coarsening stagnates (a matching that contracts
almost nothing, e.g. on a star graph).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.metis.graph import CSRGraph
from repro.metis.matching import heavy_edge_matching, matching_size


@dataclasses.dataclass
class CoarseLevel:
    """One rung of the coarsening ladder."""

    graph: CSRGraph
    #: fine-vertex → coarse-vertex map (length = parent graph size);
    #: None for the finest (original) level.
    fine_to_coarse: Optional[List[int]] = None


def contract(graph: CSRGraph, match: List[int]) -> Tuple[CSRGraph, List[int]]:
    """Contract a matching; returns (coarse graph, fine→coarse map)."""
    n = graph.num_vertices
    fine_to_coarse = [-1] * n
    coarse_n = 0
    for v in range(n):
        if fine_to_coarse[v] != -1:
            continue
        partner = match[v]
        fine_to_coarse[v] = coarse_n
        if partner != v:
            fine_to_coarse[partner] = coarse_n
        coarse_n += 1

    vwgt = [0] * coarse_n
    for v in range(n):
        vwgt[fine_to_coarse[v]] += graph.vwgt[v]

    # merge adjacency; self-edges (intra-pair) are dropped
    edge_accum: List[Dict[int, int]] = [dict() for _ in range(coarse_n)]
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    for v in range(n):
        cv = fine_to_coarse[v]
        acc = edge_accum[cv]
        for i in range(xadj[v], xadj[v + 1]):
            cu = fine_to_coarse[adjncy[i]]
            if cu == cv:
                continue
            acc[cu] = acc.get(cu, 0) + adjwgt[i]

    c_xadj = [0] * (coarse_n + 1)
    c_adjncy: List[int] = []
    c_adjwgt: List[int] = []
    for cv in range(coarse_n):
        for cu, w in edge_accum[cv].items():
            c_adjncy.append(cu)
            c_adjwgt.append(w)
        c_xadj[cv + 1] = len(c_adjncy)

    coarse = CSRGraph(xadj=c_xadj, adjncy=c_adjncy, adjwgt=c_adjwgt, vwgt=vwgt)
    return coarse, fine_to_coarse


def coarsen(
    graph: CSRGraph,
    rng: random.Random,
    coarsen_to: int = 64,
    max_levels: int = 40,
    min_reduction: float = 0.05,
    matcher: Callable[[CSRGraph, random.Random], List[int]] = heavy_edge_matching,
) -> List[CoarseLevel]:
    """Build the coarsening ladder, finest level first.

    Stops when the graph has at most ``coarsen_to`` vertices, after
    ``max_levels`` rungs, or when a matching shrinks the graph by less
    than ``min_reduction``.
    """
    levels, _matchings = _coarsen_capture(
        graph, rng, coarsen_to, max_levels, min_reduction, matcher
    )
    return levels


def project_partition(level: CoarseLevel, coarse_part: List[int]) -> List[int]:
    """Project a coarse partition one rung down to the finer graph.

    ``level`` must be the rung holding the fine→coarse map; the result
    assigns each fine vertex its coarse vertex's part.
    """
    assert level.fine_to_coarse is not None, "finest level has no projection"
    return [coarse_part[c] for c in level.fine_to_coarse]


# ----------------------------------------------------------------------
# warm-started coarsening: reuse the previous run's matching decisions


@dataclasses.dataclass
class LadderCache:
    """Coarsening state carried between successive partitioner runs.

    Successive periodic repartitionings coarsen *grown versions of the
    same graph*: vertices only get appended (prefix-stable indices, as
    :class:`~repro.metis.graph.ColumnarCSRBuilder` guarantees) and edges
    only gain weight.  The expensive part of coarsening is deciding the
    matchings; this cache keeps the matching used at every rung so the
    next run can replay the unchanged prefix of the hierarchy and only
    match the vertices that are new since.

    The cache is only valid across graphs that grow in place — reusing
    it for an unrelated graph degrades quality (never correctness: every
    extended matching is still a valid matching of the current graph).

    Only the matchings are kept — the coarse graphs themselves are
    rebuilt against the current edge weights on every run, so caching
    them would hold the whole hierarchy's CSR arrays in memory for
    nothing.
    """

    matchings: List[List[int]] = dataclasses.field(default_factory=list)
    num_vertices: int = 0  # fine-graph size the ladder was built from

    def clear(self) -> None:
        self.matchings = []
        self.num_vertices = 0

    def _store(self, matchings: List[List[int]], num_vertices: int) -> None:
        self.matchings = matchings
        self.num_vertices = num_vertices


def _coarsen_capture(
    graph: CSRGraph,
    rng: random.Random,
    coarsen_to: int,
    max_levels: int,
    min_reduction: float,
    matcher: Callable[[CSRGraph, random.Random], List[int]] = heavy_edge_matching,
) -> Tuple[List[CoarseLevel], List[List[int]]]:
    """The one coarsening loop: ladder plus the matching used per rung.

    :func:`coarsen` and both branches of :func:`coarsen_warm` delegate
    here so the termination rules (``coarsen_to``, ``max_levels``,
    ``min_reduction`` stagnation) live in exactly one place.
    """
    levels: List[CoarseLevel] = [CoarseLevel(graph=graph)]
    matchings: List[List[int]] = []
    current = graph
    for _ in range(max_levels):
        if current.num_vertices <= coarsen_to:
            break
        match = matcher(current, rng)
        if matching_size(match) < min_reduction * current.num_vertices / 2:
            break  # stagnation (e.g. a star): stop rather than crawl
        coarse, fine_to_coarse = contract(current, match)
        levels.append(CoarseLevel(graph=coarse, fine_to_coarse=fine_to_coarse))
        matchings.append(match)
        current = coarse
    return levels, matchings


def _extend_matching(graph: CSRGraph, old_match: List[int]) -> List[int]:
    """Extend a cached matching of the first ``len(old_match)`` vertices.

    Old pairs are kept verbatim; vertices beyond the cached prefix are
    heavy-edge matched *among themselves* only.  Matching a new vertex
    into the old prefix would renumber old coarse vertices and destroy
    the prefix stability the cache exists to preserve; leaving new↔old
    edges uncontracted at this rung merely defers them to refinement.
    """
    n_old = len(old_match)
    n = graph.num_vertices
    match = list(old_match) + [-1] * (n - n_old)
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    for v in range(n_old, n):
        if match[v] != -1:
            continue
        best = -1
        best_w = -1
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            if u >= n_old and u != v and match[u] == -1 and adjwgt[i] > best_w:
                best = u
                best_w = adjwgt[i]
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v
    return match


def coarsen_warm(
    graph: CSRGraph,
    rng: random.Random,
    cache: LadderCache,
    coarsen_to: int = 64,
    max_levels: int = 40,
    min_reduction: float = 0.05,
) -> List[CoarseLevel]:
    """Coarsen ``graph``, reusing (and updating) a :class:`LadderCache`.

    When the cache holds a ladder for a no-larger prefix of this graph,
    each cached rung's matching is extended with the new vertices and
    re-contracted against the *current* edge weights; fresh heavy-edge
    rungs are appended below the cached ladder if the coarsest graph is
    still too large.  If extension leaves the coarsest graph badly
    oversized (matchings decay as unmatched-prefix vertices accumulate),
    the ladder is rebuilt cold.  Either way the cache is updated in
    place for the next run.
    """
    n = graph.num_vertices
    if cache.matchings and cache.num_vertices <= n:
        levels: List[CoarseLevel] = [CoarseLevel(graph=graph)]
        matchings: List[List[int]] = []
        current = graph
        for old_match in cache.matchings:
            match = _extend_matching(current, old_match)
            coarse, fine_to_coarse = contract(current, match)
            levels.append(CoarseLevel(graph=coarse, fine_to_coarse=fine_to_coarse))
            matchings.append(match)
            current = coarse
        # fresh heavy-edge rungs below the replayed ladder, same
        # termination rules as a cold run
        tail_levels, tail_matchings = _coarsen_capture(
            current, rng, coarsen_to, max_levels - len(matchings), min_reduction
        )
        levels.extend(tail_levels[1:])
        matchings.extend(tail_matchings)
        current = tail_levels[-1].graph
        if current.num_vertices <= 4 * coarsen_to:
            cache._store(matchings, n)
            return levels
        # extension decayed (coarsest graph far above target): fall through
    levels, matchings = _coarsen_capture(
        graph, rng, coarsen_to, max_levels, min_reduction
    )
    cache._store(matchings, n)
    return levels
