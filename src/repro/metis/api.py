"""Top-level METIS-like entry point.

:func:`part_graph` mirrors the shape of ``metis.part_graph`` from the
real library: give it a graph and k, get back a vertex → part map plus
cut and balance statistics.  It accepts either the domain-level
:class:`~repro.graph.undirected.UndirectedView` /
:class:`~repro.graph.digraph.WeightedDiGraph` or a raw
:class:`~repro.metis.graph.CSRGraph`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import PartitionError
from repro.graph.digraph import WeightedDiGraph
from repro.graph.undirected import UndirectedView, collapse_to_undirected
from repro.metis.graph import CSRGraph
from repro.metis.kway import direct_kway_partition, kway_partition

GraphLike = Union[WeightedDiGraph, UndirectedView, CSRGraph]


@dataclasses.dataclass(frozen=True)
class PartGraphResult:
    """Outcome of :func:`part_graph`.

    Attributes:
        assignment: original vertex id → part (0..k-1).
        k: number of parts requested.
        edge_cut: total weight of cut edges (undirected, counted once).
        part_weights: vertex-weight sum per part.
    """

    assignment: Dict[int, int]
    k: int
    edge_cut: int
    part_weights: List[int]

    @property
    def balance(self) -> float:
        """max part weight × k / total weight (paper Eq. 2, weighted)."""
        total = sum(self.part_weights)
        if total == 0:
            return 1.0
        return max(self.part_weights) * self.k / total


def part_graph(
    graph: GraphLike,
    k: int,
    seed: int = 0,
    ubfactor: float = 1.05,
    targets: Sequence[float] = (),
    initial: str = "greedy",
    ntrials: int = 8,
    coarsen_to: Optional[int] = None,
    vertex_weights: str = "unit",
    scheme: str = "recursive",
) -> PartGraphResult:
    """Partition ``graph`` into ``k`` balanced parts minimising edge cut.

    Args:
        graph: directed blockchain graph, undirected view, or CSR graph.
        k: number of parts (>= 1).
        seed: RNG seed; identical inputs and seed give identical output.
        ubfactor: allowed imbalance (1.05 = parts may be 5% overweight).
        targets: optional per-part weight targets (defaults to equal).
        initial: coarsest-level bisection ("greedy" or "spectral").
        ntrials: greedy-growing restarts at the coarsest level.
        coarsen_to: stop coarsening at this size (default ``max(64, 8*k)``).
        vertex_weights: when converting a directed blockchain graph,
            "unit" (paper setup: balance vertex counts) or "activity"
            (balance accumulated activity).  Ignored for CSR input.
        scheme: "recursive" (pmetis-style recursive bisection, default)
            or "direct" (kmetis-style one-ladder direct k-way — faster
            for larger k at comparable quality).
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if vertex_weights not in ("unit", "activity"):
        raise PartitionError(f"vertex_weights must be 'unit' or 'activity'")
    if scheme not in ("recursive", "direct"):
        raise PartitionError(f"scheme must be 'recursive' or 'direct'")

    unit = vertex_weights == "unit"
    if isinstance(graph, WeightedDiGraph):
        csr = CSRGraph.from_undirected(
            collapse_to_undirected(graph, unit_vertex_weights=unit)
        )
    elif isinstance(graph, UndirectedView):
        csr = CSRGraph.from_undirected(graph)
    elif isinstance(graph, CSRGraph):
        csr = graph
    else:
        raise PartitionError(f"unsupported graph type: {type(graph)!r}")

    n = csr.num_vertices
    if n == 0:
        return PartGraphResult(assignment={}, k=k, edge_cut=0, part_weights=[0] * k)

    rng = random.Random(seed)
    if scheme == "direct":
        part = direct_kway_partition(
            csr, k, rng, targets=targets, ubfactor=ubfactor,
            initial=initial, ntrials=ntrials,
        )
    else:
        part = kway_partition(
            csr,
            k,
            rng,
            targets=targets,
            ubfactor=ubfactor,
            coarsen_to=coarsen_to if coarsen_to is not None else max(64, 8 * k),
            initial=initial,
            ntrials=ntrials,
        )

    ids = csr.orig_ids if csr.orig_ids is not None else list(range(n))
    assignment = {ids[v]: part[v] for v in range(n)}
    return PartGraphResult(
        assignment=assignment,
        k=k,
        edge_cut=csr.cut_of(part),
        part_weights=csr.part_weights(part, k),
    )
