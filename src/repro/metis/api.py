"""Top-level METIS-like entry point.

:func:`part_graph` mirrors the shape of ``metis.part_graph`` from the
real library: give it a graph and k, get back a vertex → part map plus
cut and balance statistics.  It accepts either the domain-level
:class:`~repro.graph.undirected.UndirectedView` /
:class:`~repro.graph.digraph.WeightedDiGraph` or a raw
:class:`~repro.metis.graph.CSRGraph`.

Warm-started repartitioning
---------------------------

Periodic repartitioning (the paper's Methods 3–5) calls the partitioner
over and over on grown versions of the same graph.  ``warm_start=``
feeds the previous run's assignment back in: it is projected onto the
current graph, vertices new since the previous run are placed by
weighted neighbor majority, and boundary-focused refinement runs from
that projection — skipping coarsening and initial partitioning
entirely.  When the graph grew too much for the projection to be
trustworthy (``warm_growth_threshold``), the call falls back to a cold
multilevel run, optionally reusing a
:class:`~repro.metis.coarsen.LadderCache` so even cold restarts avoid
re-matching the unchanged prefix of the hierarchy.

Caveat (documented by the paper for full METIS): a *cold* run freely
relabels shards between periods — minimising moved vertices is not a
METIS objective — so successive cold assignments are only comparable
up to a part permutation.  A *warm* run, by contrast, inherits the
previous labels, which is precisely what makes its move counts small;
comparisons between warm and cold move counts therefore measure the
relabeling pitfall as much as the partition quality.

``warm_start=None`` (the default) is bit-identical to the pre-warm-start
behaviour of this function.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import PartitionError
from repro.graph.digraph import WeightedDiGraph
from repro.graph.undirected import UndirectedView, collapse_to_undirected
from repro.metis.coarsen import LadderCache
from repro.metis.graph import CSRGraph
from repro.metis.kway import (
    direct_kway_partition,
    kway_partition,
    warm_kway_partition,
)

GraphLike = Union[WeightedDiGraph, UndirectedView, CSRGraph]


@dataclasses.dataclass(frozen=True)
class PartGraphResult:
    """Outcome of :func:`part_graph`.

    Attributes:
        assignment: original vertex id → part (0..k-1).
        k: number of parts requested.
        edge_cut: total weight of cut edges (undirected, counted once).
        part_weights: vertex-weight sum per part — always length ``k``,
            with zeros for empty parts.
        warm: True when this result came from the warm-started
            (projection + boundary refinement) path.
    """

    assignment: Dict[int, int]
    k: int
    edge_cut: int
    part_weights: List[int]
    warm: bool = False

    def __post_init__(self) -> None:
        if len(self.part_weights) != self.k:
            raise PartitionError(
                f"part_weights must have length k={self.k}, "
                f"got {len(self.part_weights)}"
            )

    @property
    def balance(self) -> float:
        """max part weight × k / total weight (paper Eq. 2, weighted).

        With an empty part this correctly *rises* (an empty part means
        some other part carries more than total/k), never understates:
        the maximum over all parts includes the overweight ones.
        """
        total = sum(self.part_weights)
        if total == 0:
            return 1.0
        return max(self.part_weights) * self.k / total


def part_graph(
    graph: GraphLike,
    k: int,
    seed: int = 0,
    ubfactor: float = 1.05,
    targets: Sequence[float] = (),
    initial: str = "greedy",
    ntrials: int = 8,
    coarsen_to: Optional[int] = None,
    vertex_weights: str = "unit",
    scheme: str = "recursive",
    warm_start: Optional[Mapping[int, int]] = None,
    warm_cache: Optional[LadderCache] = None,
    warm_growth_threshold: float = 0.5,
) -> PartGraphResult:
    """Partition ``graph`` into ``k`` balanced parts minimising edge cut.

    Args:
        graph: directed blockchain graph, undirected view, or CSR graph.
        k: number of parts (>= 1).
        seed: RNG seed; identical inputs and seed give identical output.
        ubfactor: allowed imbalance (1.05 = parts may be 5% overweight).
        targets: optional per-part weight targets (defaults to equal).
        initial: coarsest-level bisection ("greedy" or "spectral").
        ntrials: greedy-growing restarts at the coarsest level.
        coarsen_to: stop coarsening at this size (default ``max(64, 8*k)``).
        vertex_weights: when converting a directed blockchain graph,
            "unit" (paper setup: balance vertex counts) or "activity"
            (balance accumulated activity).  Ignored for CSR input.
        scheme: "recursive" (pmetis-style recursive bisection, default)
            or "direct" (kmetis-style one-ladder direct k-way — faster
            for larger k at comparable quality).
        warm_start: previous assignment (original vertex id → part) to
            warm-start from; ``None`` (default) runs cold and is
            bit-identical to the pre-warm-start behaviour.  Entries with
            parts outside ``0..k-1`` are treated as unassigned.
        warm_cache: coarsening-ladder cache shared across successive
            runs on prefix-stable grown versions of the same graph;
            consulted (and updated) only when a cold multilevel run
            happens — either ``warm_start=None`` with a cache, or a
            warm call that fell back cold.  Cold runs with a cache use
            the direct (one-ladder) scheme, since a recursive bisection
            has no single ladder to cache.
        warm_growth_threshold: warm-start only when the fraction of
            vertices *not* covered by ``warm_start`` is at most this;
            beyond it the projection is mostly guesswork and a cold
            multilevel run gives better cuts.
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if vertex_weights not in ("unit", "activity"):
        raise PartitionError(
            f"vertex_weights must be 'unit' or 'activity', got {vertex_weights!r}"
        )
    if scheme not in ("recursive", "direct"):
        raise PartitionError(
            f"scheme must be 'recursive' or 'direct', got {scheme!r}"
        )

    unit = vertex_weights == "unit"
    if isinstance(graph, WeightedDiGraph):
        csr = CSRGraph.from_undirected(
            collapse_to_undirected(graph, unit_vertex_weights=unit)
        )
    elif isinstance(graph, UndirectedView):
        csr = CSRGraph.from_undirected(graph)
    elif isinstance(graph, CSRGraph):
        csr = graph
    else:
        raise PartitionError(f"unsupported graph type: {type(graph)!r}")

    n = csr.num_vertices
    if n == 0:
        return PartGraphResult(assignment={}, k=k, edge_cut=0, part_weights=[0] * k)

    ids = csr.orig_ids if csr.orig_ids is not None else list(range(n))
    rng = random.Random(seed)

    part: Optional[List[int]] = None
    warm = False
    if warm_start is not None:
        part0 = [-1] * n
        covered = 0
        get = warm_start.get
        for v in range(n):
            p = get(ids[v])
            if p is not None and 0 <= p < k:
                part0[v] = p
                covered += 1
        if covered and (n - covered) <= warm_growth_threshold * n:
            part = warm_kway_partition(
                csr, k, part0, targets=targets, ubfactor=ubfactor
            )
            warm = True

    if part is None:
        if warm_cache is not None:
            # cold restart inside a warm-mode pipeline: one-ladder direct
            # k-way so the coarsening hierarchy can be cached and the next
            # cold restart reuses its unchanged prefix
            part = direct_kway_partition(
                csr, k, rng, targets=targets, ubfactor=ubfactor,
                initial=initial, ntrials=ntrials, ladder_cache=warm_cache,
            )
        elif scheme == "direct":
            part = direct_kway_partition(
                csr, k, rng, targets=targets, ubfactor=ubfactor,
                initial=initial, ntrials=ntrials,
            )
        else:
            part = kway_partition(
                csr,
                k,
                rng,
                targets=targets,
                ubfactor=ubfactor,
                coarsen_to=coarsen_to if coarsen_to is not None else max(64, 8 * k),
                initial=initial,
                ntrials=ntrials,
            )

    assignment = {ids[v]: part[v] for v in range(n)}
    return PartGraphResult(
        assignment=assignment,
        k=k,
        edge_cut=csr.cut_of(part),
        part_weights=csr.part_weights(part, k),
        warm=warm,
    )
