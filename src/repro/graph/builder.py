"""Incremental construction of the blockchain graph from interactions.

An *interaction* is a single caller → callee event: a currency transfer
from an account, a contract activation, an internal call or an internal
transfer (paper §II-B).  A transaction produces one or more interactions
(one per message call in its trace).

The builder consumes a time-ordered stream of interactions and maintains:

* the cumulative :class:`~repro.graph.digraph.WeightedDiGraph` (what the
  full-graph METIS method partitions);
* a log of interactions for time-window queries (what R-METIS / TR-METIS
  partition) via :class:`~repro.graph.snapshot.WindowIndex`.

Weight conventions (paper §II-B/§II-C):

* each interaction increments the weight of edge (src, dst) by one;
* each interaction increments the activity weight of *both* endpoints by
  one — vertex weights "capture the frequency that accounts, contracts,
  and their interactions appear in the blockchain".
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.digraph import VertexKind, WeightedDiGraph


@dataclasses.dataclass(frozen=True)
class Interaction:
    """A single caller → callee event derived from a transaction trace.

    Attributes:
        timestamp: seconds since the chain's genesis (float for window
            arithmetic; the workload generator produces monotonically
            non-decreasing timestamps).
        src: caller vertex id (account or contract address).
        dst: callee vertex id.
        src_kind: what the caller is.
        dst_kind: what the callee is.
        tx_id: identifier of the enclosing transaction; interactions from
            the same transaction share a tx_id, which the metric code
            uses to count *transactions* (not calls) that span shards.
    """

    timestamp: float
    src: int
    dst: int
    src_kind: VertexKind = VertexKind.ACCOUNT
    dst_kind: VertexKind = VertexKind.ACCOUNT
    tx_id: int = -1


class GraphBuilder:
    """Builds the cumulative blockchain graph from an interaction stream.

    The builder also retains the raw interaction log (timestamps, edges
    and tx ids) so callers can cheaply derive *reduced* graphs over time
    windows, as the R-METIS method requires.  The log is append-only and
    time-ordered; feeding an out-of-order interaction raises ValueError.
    """

    def __init__(self) -> None:
        self.graph = WeightedDiGraph()
        self._log: List[Interaction] = []
        self._last_ts: float = float("-inf")

    # ------------------------------------------------------------------

    def add(self, interaction: Interaction) -> None:
        """Apply one interaction to the cumulative graph and the log."""
        if interaction.timestamp < self._last_ts:
            raise ValueError(
                f"out-of-order interaction: {interaction.timestamp} < {self._last_ts}"
            )
        self._last_ts = interaction.timestamp
        g = self.graph
        g.add_vertex(interaction.src, interaction.src_kind, 0, interaction.timestamp)
        g.add_vertex(interaction.dst, interaction.dst_kind, 0, interaction.timestamp)
        g.add_vertex_weight(interaction.src, 1)
        if interaction.dst != interaction.src:
            g.add_vertex_weight(interaction.dst, 1)
        g.add_edge(interaction.src, interaction.dst, 1)
        self._log.append(interaction)

    def add_many(self, interactions: Iterable[Interaction]) -> int:
        """Apply a stream of interactions; returns how many were added."""
        n = 0
        for it in interactions:
            self.add(it)
            n += 1
        return n

    # ------------------------------------------------------------------

    @property
    def log(self) -> Sequence[Interaction]:
        """The append-only, time-ordered interaction log."""
        return self._log

    @property
    def num_interactions(self) -> int:
        return len(self._log)

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the most recent interaction (-inf if empty)."""
        return self._last_ts

    def interactions_between(self, start: float, end: float) -> Iterator[Interaction]:
        """Interactions with start <= timestamp < end (binary-searched)."""
        lo = _bisect_ts(self._log, start)
        for i in range(lo, len(self._log)):
            it = self._log[i]
            if it.timestamp >= end:
                break
            yield it

    def window_graph(self, start: float, end: float) -> WeightedDiGraph:
        """The *reduced* graph of interactions in [start, end).

        This is what R-METIS partitions: "all accounts, contracts, and
        their interactions within a fixed window of time".
        """
        return build_graph(self.interactions_between(start, end))

    def graph_as_of(self, end: float) -> WeightedDiGraph:
        """The cumulative graph rebuilt from interactions before ``end``.

        Used by the Fig. 1 analysis to sample graph size over time
        without mutating the live graph.
        """
        return build_graph(self.interactions_between(float("-inf"), end))


def build_graph(interactions: Iterable[Interaction]) -> WeightedDiGraph:
    """Build a standalone graph from an interaction iterable."""
    g = WeightedDiGraph()
    for it in interactions:  # reprolint: disable=RL010 -- boxed reference path; build_graph_columnar is the batch sibling
        g.add_vertex(it.src, it.src_kind, 0, it.timestamp)
        g.add_vertex(it.dst, it.dst_kind, 0, it.timestamp)
        g.add_vertex_weight(it.src, 1)
        if it.dst != it.src:
            g.add_vertex_weight(it.dst, 1)
        g.add_edge(it.src, it.dst, 1)
    return g


_KINDS: Tuple[VertexKind, ...] = tuple(VertexKind)


def build_graph_columnar(log, start: int = 0,
                         stop: Optional[int] = None) -> WeightedDiGraph:
    """Build a standalone graph of rows ``[start, stop)`` of a columnar log.

    Batch sibling of :func:`build_graph` over a
    :class:`~repro.graph.columnar.ColumnarLog`: the per-row
    aggregation runs in the active kernel backend and the graph is
    grown in bulk, with vertex and adjacency insertion orders identical
    to the per-row fold (no Interaction boxing).
    """
    from repro import kernels

    g = WeightedDiGraph()
    if stop is None:
        stop = len(log)
    if stop <= start:
        return g
    first_seen, upgrades, edge_weights, vertex_weights = (
        kernels.active().graph_batch(
            log.timestamps(), log.src_indices(), log.dst_indices(),
            log.src_kind_codes(), log.dst_kind_codes(), start, stop))
    vertex_id = log.vertex_id
    for dense, kind_code, ts in first_seen:
        g.add_vertex(vertex_id(dense), _KINDS[kind_code], 0, ts)
    for dense in upgrades:
        g.add_vertex(vertex_id(dense), VertexKind.CONTRACT)
    for packed, weight in edge_weights.items():
        g.add_edge(vertex_id(packed >> kernels.PACK_SHIFT),
                   vertex_id(packed & kernels.PACK_MASK), weight)
    for dense, delta in vertex_weights.items():
        g.add_vertex_weight(vertex_id(dense), delta)
    return g


def group_by_transaction(
    interactions: Iterable[Interaction],
) -> Iterator[Tuple[int, List[Interaction]]]:
    """Group a time-ordered interaction stream by tx_id.

    Interactions of one transaction are contiguous in the stream (they
    share a timestamp and are emitted together by the trace code), so
    grouping is a single pass.
    """
    current_id: Optional[int] = None
    bucket: List[Interaction] = []
    for it in interactions:  # reprolint: disable=RL010 -- input is a boxed Interaction iterable, no columnar form exists here
        if current_id is None:
            current_id = it.tx_id
        if it.tx_id != current_id:
            yield current_id, bucket
            current_id = it.tx_id
            bucket = []
        bucket.append(it)
    if bucket:
        assert current_id is not None
        yield current_id, bucket


def _bisect_ts(log: Sequence[Interaction], ts: float) -> int:
    """Index of the first interaction with timestamp >= ts."""
    lo, hi = 0, len(log)
    while lo < hi:
        mid = (lo + hi) // 2
        if log[mid].timestamp < ts:
            lo = mid + 1
        else:
            hi = mid
    return lo
