"""Descriptive statistics of a blockchain graph / trace.

Used to validate that the synthetic workload has the trace properties
the paper's analysis depends on (heavy-tailed degrees, activity
concentration, contract hub structure) and exposed via the
``repro-trace stats`` CLI so the same checks run on any imported trace.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.graph.builder import Interaction, group_by_transaction
from repro.graph.digraph import VertexKind, WeightedDiGraph


@dataclasses.dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree (or weight) distribution."""

    count: int
    minimum: int
    median: float
    mean: float
    p99: float
    maximum: int
    gini: float          # inequality of the distribution (0 = equal)
    top1pct_share: float  # mass held by the top 1% of vertices

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "DegreeStats":
        if not values:
            raise ValueError("empty distribution")
        ordered = sorted(values)
        n = len(ordered)
        total = sum(ordered)

        def pct(q: float) -> float:
            return float(ordered[min(n - 1, int(q * (n - 1)))])

        # Gini via the sorted-rank formula
        if total > 0:
            weighted = sum((i + 1) * v for i, v in enumerate(ordered))
            gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n
        else:
            gini = 0.0
        top = ordered[-max(1, n // 100):]
        return cls(
            count=n,
            minimum=ordered[0],
            median=pct(0.5),
            mean=total / n,
            p99=pct(0.99),
            maximum=ordered[-1],
            gini=gini,
            top1pct_share=(sum(top) / total) if total else 0.0,
        )


@dataclasses.dataclass(frozen=True)
class TraceStats:
    """Whole-trace descriptive report."""

    interactions: int
    transactions: int
    vertices: int
    accounts: int
    contracts: int
    distinct_edges: int
    degree: DegreeStats
    activity: DegreeStats
    calls_per_tx: DegreeStats
    self_loop_ratio: float
    span_days: float


def degree_distribution(graph: WeightedDiGraph) -> List[int]:
    return [graph.degree(v) for v in graph.vertices()]


def activity_distribution(graph: WeightedDiGraph) -> List[int]:
    return [max(1, graph.vertex_weight(v)) for v in graph.vertices()]


def powerlaw_tail_exponent(values: Sequence[int], xmin: int = 2) -> float:
    """Hill / MLE estimate of a power-law tail exponent.

    alpha = 1 + n / sum(ln(x / xmin)) over x >= xmin.  Returns NaN when
    fewer than 10 samples reach the tail.
    """
    tail = [v for v in values if v >= xmin]
    if len(tail) < 10:
        return float("nan")
    log_sum = sum(math.log(v / (xmin - 0.5)) for v in tail)
    return 1.0 + len(tail) / log_sum


def compute_trace_stats(
    graph: WeightedDiGraph, log: Sequence[Interaction]
) -> TraceStats:
    """Full descriptive report of a graph + its interaction log."""
    tx_sizes = [len(bucket) for _, bucket in group_by_transaction(log)]
    self_loops = sum(1 for it in log if it.src == it.dst)
    span = (log[-1].timestamp - log[0].timestamp) / 86400.0 if log else 0.0
    return TraceStats(
        interactions=len(log),
        transactions=len(tx_sizes),
        vertices=graph.num_vertices,
        accounts=graph.count_kind(VertexKind.ACCOUNT),
        contracts=graph.count_kind(VertexKind.CONTRACT),
        distinct_edges=graph.num_edges,
        degree=DegreeStats.from_values(degree_distribution(graph)),
        activity=DegreeStats.from_values(activity_distribution(graph)),
        calls_per_tx=DegreeStats.from_values(tx_sizes),
        self_loop_ratio=self_loops / len(log) if log else 0.0,
        span_days=span,
    )


def render_trace_stats(stats: TraceStats) -> str:
    """Human-readable stats report."""
    lines = [
        "trace statistics",
        f"  interactions     {stats.interactions}",
        f"  transactions     {stats.transactions}",
        f"  vertices         {stats.vertices} "
        f"({stats.accounts} accounts, {stats.contracts} contracts)",
        f"  distinct edges   {stats.distinct_edges}",
        f"  span             {stats.span_days:.1f} days",
        f"  self-loop ratio  {stats.self_loop_ratio:.4f}",
        "",
        f"  {'distribution':14s} {'median':>8s} {'mean':>8s} {'p99':>8s} "
        f"{'max':>8s} {'gini':>6s} {'top1%':>6s}",
    ]
    for name, d in (
        ("degree", stats.degree),
        ("activity", stats.activity),
        ("calls/tx", stats.calls_per_tx),
    ):
        lines.append(
            f"  {name:14s} {d.median:8.1f} {d.mean:8.2f} {d.p99:8.1f} "
            f"{d.maximum:8d} {d.gini:6.3f} {d.top1pct_share:6.3f}"
        )
    return "\n".join(lines)
