"""Descriptive statistics of a blockchain graph / trace.

Used to validate that the synthetic workload has the trace properties
the paper's analysis depends on (heavy-tailed degrees, activity
concentration, contract hub structure) and exposed via the
``repro-trace stats`` CLI so the same checks run on any imported trace.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro import kernels
from repro.graph.builder import Interaction, group_by_transaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import VertexKind, WeightedDiGraph


@dataclasses.dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree (or weight) distribution."""

    count: int
    minimum: int
    median: float
    mean: float
    p99: float
    maximum: int
    gini: float          # inequality of the distribution (0 = equal)
    top1pct_share: float  # mass held by the top 1% of vertices

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "DegreeStats":
        if not values:
            raise ValueError("empty distribution")
        ordered = sorted(values)
        n = len(ordered)
        total = sum(ordered)

        def pct(q: float) -> float:
            return float(ordered[min(n - 1, int(q * (n - 1)))])

        # Gini via the sorted-rank formula
        if total > 0:
            weighted = sum((i + 1) * v for i, v in enumerate(ordered))
            gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n
        else:
            gini = 0.0
        top = ordered[-max(1, n // 100):]
        return cls(
            count=n,
            minimum=ordered[0],
            median=pct(0.5),
            mean=total / n,
            p99=pct(0.99),
            maximum=ordered[-1],
            gini=gini,
            top1pct_share=(sum(top) / total) if total else 0.0,
        )


@dataclasses.dataclass(frozen=True)
class TraceStats:
    """Whole-trace descriptive report."""

    interactions: int
    transactions: int
    vertices: int
    accounts: int
    contracts: int
    distinct_edges: int
    degree: DegreeStats
    activity: DegreeStats
    calls_per_tx: DegreeStats
    self_loop_ratio: float
    span_days: float


def degree_distribution(graph: WeightedDiGraph) -> List[int]:
    return [graph.degree(v) for v in graph.vertices()]


def activity_distribution(graph: WeightedDiGraph) -> List[int]:
    return [max(1, graph.vertex_weight(v)) for v in graph.vertices()]


def powerlaw_tail_exponent(values: Sequence[int], xmin: int = 2) -> float:
    """Hill / MLE estimate of a power-law tail exponent.

    alpha = 1 + n / sum(ln(x / xmin)) over x >= xmin.  Returns NaN when
    fewer than 10 samples reach the tail.
    """
    tail = [v for v in values if v >= xmin]
    if len(tail) < 10:
        return float("nan")
    log_sum = sum(math.log(v / (xmin - 0.5)) for v in tail)
    return 1.0 + len(tail) / log_sum


def compute_trace_stats(
    graph: WeightedDiGraph, log: Sequence[Interaction]
) -> TraceStats:
    """Full descriptive report of a graph + its interaction log."""
    tx_sizes = [len(bucket) for _, bucket in group_by_transaction(log)]
    self_loops = sum(1 for it in log if it.src == it.dst)  # reprolint: disable=RL010 -- one-shot descriptive stats over a boxed log
    span = (log[-1].timestamp - log[0].timestamp) / 86400.0 if log else 0.0
    return TraceStats(
        interactions=len(log),
        transactions=len(tx_sizes),
        vertices=graph.num_vertices,
        accounts=graph.count_kind(VertexKind.ACCOUNT),
        contracts=graph.count_kind(VertexKind.CONTRACT),
        distinct_edges=graph.num_edges,
        degree=DegreeStats.from_values(degree_distribution(graph)),
        activity=DegreeStats.from_values(activity_distribution(graph)),
        calls_per_tx=DegreeStats.from_values(tx_sizes),
        self_loop_ratio=self_loops / len(log) if log else 0.0,
        span_days=span,
    )


@dataclasses.dataclass(frozen=True)
class WindowStats:
    """One metric window's worth of trace activity."""

    index: int
    start_ts: float
    interactions: int
    distinct_vertices: int   # distinct vertices seen up to window end
    new_vertices: int        # first appearances inside this window


def compute_window_stats(
    log: ColumnarLog, window_seconds: float
) -> List[WindowStats]:
    """Per-window interaction counts and distinct-vertex growth.

    Window boundaries resolve with two bisects on the (possibly
    mmap-backed) timestamp column; vertex growth is the ``max_index``
    batch kernel per window over the dense src/dst index columns —
    interning is in first-appearance order, so the number of distinct
    vertices after row ``r`` is ``max(index seen) + 1``.  O(N) total,
    no boxing.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    n = len(log)
    if n == 0:
        return []
    kr = kernels.active()
    src = log.src_indices()
    dst = log.dst_indices()
    out: List[WindowStats] = []
    start = log.first_timestamp
    end_ts = log.last_timestamp
    if not (math.isfinite(start) and math.isfinite(end_ts)):
        raise ValueError(
            f"log timestamps must be finite to window over "
            f"(span [{start}, {end_ts}])"
        )
    lo = 0
    seen_max = -1
    index = 0
    while start <= end_ts:
        hi = log.index_at(start + window_seconds)
        prev_distinct = seen_max + 1
        win_max = kr.max_index(src, dst, lo, hi)
        if win_max > seen_max:
            seen_max = win_max
        distinct = seen_max + 1
        out.append(WindowStats(
            index=index,
            start_ts=start,
            interactions=hi - lo,
            distinct_vertices=distinct,
            new_vertices=distinct - prev_distinct,
        ))
        lo = hi
        next_start = start + window_seconds
        if next_start <= start:
            # below float resolution at this timestamp magnitude: the
            # loop would stall and spin forever
            raise ValueError(
                f"window_seconds={window_seconds} is too small to "
                f"advance from timestamp {start}"
            )
        start = next_start
        index += 1
    return out


def render_window_stats(
    windows: Sequence[WindowStats], window_seconds: float
) -> str:
    """Per-window activity table (compact; empty-window runs elided)."""
    lines = [
        f"per-window activity (window = {window_seconds / 3600.0:g}h)",
        f"  {'window':>6s} {'start day':>10s} {'interactions':>12s} "
        f"{'vertices':>9s} {'new':>7s}",
    ]
    elided = 0
    for w in windows:
        if w.interactions == 0:
            elided += 1
            continue
        if elided:
            lines.append(f"  {'...':>6s} {elided} empty window(s) elided")
            elided = 0
        lines.append(
            f"  {w.index:6d} {w.start_ts / 86400.0:10.2f} "
            f"{w.interactions:12d} {w.distinct_vertices:9d} "
            f"{w.new_vertices:7d}"
        )
    if elided:
        lines.append(f"  {'...':>6s} {elided} empty window(s) elided")
    return "\n".join(lines)


def render_trace_stats(stats: TraceStats) -> str:
    """Human-readable stats report."""
    lines = [
        "trace statistics",
        f"  interactions     {stats.interactions}",
        f"  transactions     {stats.transactions}",
        f"  vertices         {stats.vertices} "
        f"({stats.accounts} accounts, {stats.contracts} contracts)",
        f"  distinct edges   {stats.distinct_edges}",
        f"  span             {stats.span_days:.1f} days",
        f"  self-loop ratio  {stats.self_loop_ratio:.4f}",
        "",
        f"  {'distribution':14s} {'median':>8s} {'mean':>8s} {'p99':>8s} "
        f"{'max':>8s} {'gini':>6s} {'top1%':>6s}",
    ]
    for name, d in (
        ("degree", stats.degree),
        ("activity", stats.activity),
        ("calls/tx", stats.calls_per_tx),
    ):
        lines.append(
            f"  {name:14s} {d.median:8.1f} {d.mean:8.2f} {d.p99:8.1f} "
            f"{d.maximum:8d} {d.gini:6.3f} {d.top1pct_share:6.3f}"
        )
    return "\n".join(lines)
