"""A weighted directed graph tailored to the blockchain-graph model.

The container is deliberately simpler than :mod:`networkx`: we only need

* integer vertex ids (addresses),
* a *kind* per vertex (externally-owned account vs contract),
* an integer activity weight per vertex,
* integer multiplicity weights per directed edge,
* fast incremental updates (the replay engine adds millions of
  interactions one at a time), and
* cheap iteration for the metric and partitioning code.

Weights are multiplicities: adding an edge that already exists increments
its weight, matching the paper's Fig. 2 where "the weight in each edge
denotes the number of times the interaction happened".
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import EdgeNotFoundError, VertexNotFoundError


class VertexKind(enum.Enum):
    """What a vertex represents in the blockchain graph."""

    ACCOUNT = "account"
    CONTRACT = "contract"


class WeightedDiGraph:
    """A directed graph with integer vertex and edge weights.

    Vertices are arbitrary hashable ids (in practice integers — Ethereum
    addresses).  The graph stores, per vertex: its kind, its activity
    weight (incremented by :meth:`add_vertex_weight`) and its first-seen
    timestamp; per directed edge: a multiplicity weight.
    """

    __slots__ = ("_succ", "_pred", "_kind", "_vweight", "_first_seen", "_edge_weight_total")

    def __init__(self) -> None:
        # vertex -> {successor -> edge weight}
        self._succ: Dict[int, Dict[int, int]] = {}
        # vertex -> {predecessor -> edge weight}
        self._pred: Dict[int, Dict[int, int]] = {}
        self._kind: Dict[int, VertexKind] = {}
        self._vweight: Dict[int, int] = {}
        self._first_seen: Dict[int, float] = {}
        self._edge_weight_total: int = 0

    # ------------------------------------------------------------------
    # construction

    def add_vertex(
        self,
        vertex: int,
        kind: VertexKind = VertexKind.ACCOUNT,
        weight: int = 0,
        first_seen: float = 0.0,
    ) -> bool:
        """Add ``vertex`` if absent.  Returns True if it was new.

        For an existing vertex the kind is upgraded to CONTRACT if either
        the stored or the supplied kind is CONTRACT (an address observed
        first as a transfer target may later be recognised as a
        contract), the weight is *not* touched, and first_seen keeps its
        original value.
        """
        if vertex in self._succ:
            if kind is VertexKind.CONTRACT:
                self._kind[vertex] = VertexKind.CONTRACT
            return False
        self._succ[vertex] = {}
        self._pred[vertex] = {}
        self._kind[vertex] = kind
        self._vweight[vertex] = weight
        self._first_seen[vertex] = first_seen
        return True

    def add_vertex_weight(self, vertex: int, delta: int = 1) -> None:
        """Increment the activity weight of an existing vertex."""
        if vertex not in self._vweight:
            raise VertexNotFoundError(vertex)
        self._vweight[vertex] += delta

    def add_edge(self, src: int, dst: int, weight: int = 1) -> None:
        """Add ``weight`` interactions on the directed edge src → dst.

        Both endpoints must already exist (the builder is responsible for
        creating them with the right kind and timestamp).
        """
        if src not in self._succ:
            raise VertexNotFoundError(src)
        if dst not in self._succ:
            raise VertexNotFoundError(dst)
        succ = self._succ[src]
        if dst in succ:
            succ[dst] += weight
            self._pred[dst][src] += weight
        else:
            succ[dst] = weight
            self._pred[dst][src] = weight
        self._edge_weight_total += weight

    def remove_vertex(self, vertex: int) -> None:
        """Remove a vertex and all incident edges."""
        if vertex not in self._succ:
            raise VertexNotFoundError(vertex)
        for dst, w in self._succ[vertex].items():
            if dst != vertex:
                del self._pred[dst][vertex]
            self._edge_weight_total -= w
        for src, w in self._pred[vertex].items():
            if src != vertex:
                del self._succ[src][vertex]
                self._edge_weight_total -= w
        del self._succ[vertex]
        del self._pred[vertex]
        del self._kind[vertex]
        del self._vweight[vertex]
        del self._first_seen[vertex]

    # ------------------------------------------------------------------
    # queries

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges."""
        return sum(len(s) for s in self._succ.values())

    @property
    def total_edge_weight(self) -> int:
        """Sum of edge multiplicities (= number of interactions)."""
        return self._edge_weight_total

    @property
    def total_vertex_weight(self) -> int:
        return sum(self._vweight.values())

    def vertices(self) -> Iterator[int]:
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (src, dst, weight) for every distinct directed edge."""
        for src, succ in self._succ.items():
            for dst, weight in succ.items():
                yield src, dst, weight

    def successors(self, vertex: int) -> Dict[int, int]:
        """Mapping of successor → edge weight.  Do not mutate."""
        try:
            return self._succ[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def predecessors(self, vertex: int) -> Dict[int, int]:
        """Mapping of predecessor → edge weight.  Do not mutate."""
        try:
            return self._pred[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def neighbors(self, vertex: int) -> Iterator[int]:
        """All vertices adjacent to ``vertex`` in either direction."""
        succ = self.successors(vertex)
        pred = self.predecessors(vertex)
        yield from succ
        for p in pred:
            if p not in succ:
                yield p

    def neighbor_weights(self, vertex: int) -> Dict[int, int]:
        """Undirected view of adjacency: neighbor → combined weight."""
        combined: Dict[int, int] = dict(self.successors(vertex))
        for pred, w in self.predecessors(vertex).items():
            combined[pred] = combined.get(pred, 0) + w
        return combined

    def edge_weight(self, src: int, dst: int) -> int:
        try:
            return self._succ[src][dst]
        except KeyError:
            raise EdgeNotFoundError(src, dst) from None

    def has_edge(self, src: int, dst: int) -> bool:
        return src in self._succ and dst in self._succ[src]

    def vertex_weight(self, vertex: int) -> int:
        try:
            return self._vweight[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertex_kind(self, vertex: int) -> VertexKind:
        try:
            return self._kind[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def first_seen(self, vertex: int) -> float:
        try:
            return self._first_seen[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def out_degree(self, vertex: int) -> int:
        return len(self.successors(vertex))

    def in_degree(self, vertex: int) -> int:
        return len(self.predecessors(vertex))

    def degree(self, vertex: int) -> int:
        """Number of distinct neighbors in either direction."""
        return len(self.neighbor_weights(vertex))

    # ------------------------------------------------------------------
    # derived graphs

    def subgraph(self, vertices: Iterable[int]) -> "WeightedDiGraph":
        """Induced subgraph on the given vertex set (weights preserved)."""
        keep = set(vertices)
        sub = WeightedDiGraph()
        for v in keep:
            if v not in self._succ:
                raise VertexNotFoundError(v)
            sub.add_vertex(v, self._kind[v], self._vweight[v], self._first_seen[v])
        for v in keep:
            for dst, w in self._succ[v].items():
                if dst in keep:
                    sub.add_edge(v, dst, w)
        return sub

    def ego_subgraph(self, center: int, radius: int = 1) -> "WeightedDiGraph":
        """Induced subgraph on vertices within ``radius`` hops of ``center``
        (hops counted over the undirected view)."""
        if center not in self._succ:
            raise VertexNotFoundError(center)
        frontier = {center}
        seen = {center}
        for _ in range(radius):
            nxt = set()
            for v in frontier:
                for n in self.neighbors(v):
                    if n not in seen:
                        seen.add(n)
                        nxt.add(n)
            frontier = nxt
        return self.subgraph(seen)

    def copy(self) -> "WeightedDiGraph":
        g = WeightedDiGraph()
        for v in self._succ:
            g.add_vertex(v, self._kind[v], self._vweight[v], self._first_seen[v])
        for src, dst, w in self.edges():
            g.add_edge(src, dst, w)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"WeightedDiGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"W(E)={self.total_edge_weight})"
        )

    # ------------------------------------------------------------------
    # counting helpers used by Fig. 1 / analysis

    def count_kind(self, kind: VertexKind) -> int:
        return sum(1 for k in self._kind.values() if k is kind)

    def top_vertices_by_weight(self, n: int) -> Tuple[Tuple[int, int], ...]:
        """The n heaviest vertices as (vertex, weight), descending."""
        return tuple(
            sorted(self._vweight.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        )

    def top_vertices_by_degree(self, n: int) -> Tuple[Tuple[int, int], ...]:
        """The n highest-degree vertices as (vertex, degree), descending."""
        degs = ((v, self.degree(v)) for v in self._succ)
        return tuple(sorted(degs, key=lambda kv: (-kv[1], kv[0]))[:n])
