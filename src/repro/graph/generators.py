"""Synthetic test graphs for exercising the partitioners.

These are *not* the Ethereum workload (see :mod:`repro.ethereum.workload`
for that); they are standard graph families with known structure, used by
the unit tests and the ABL-METIS partitioner-quality benchmark:

* rings and paths (cut lower bounds are known exactly),
* 2-D grids (planar, small separators),
* cliques and disjoint-clique unions (obvious optimal partitions),
* random graphs (Erdős–Rényi),
* power-law / preferential-attachment graphs (blockchain-graph-like
  degree skew).

All generators return directed graphs with unit weights (callers can add
weight via repeated edges); helpers at the bottom wrap them for the
undirected partitioner input.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.graph.digraph import VertexKind, WeightedDiGraph
from repro.graph.undirected import UndirectedView, collapse_to_undirected


def _fresh(n: int) -> WeightedDiGraph:
    g = WeightedDiGraph()
    for v in range(n):
        g.add_vertex(v, VertexKind.ACCOUNT, 1, 0.0)
    return g


def ring_graph(n: int) -> WeightedDiGraph:
    """A directed cycle 0 → 1 → ... → n-1 → 0.

    Any bisection into contiguous arcs cuts exactly 2 edges, the optimum.
    """
    if n < 3:
        raise ValueError(f"ring needs >= 3 vertices, got {n}")
    g = _fresh(n)
    for v in range(n):
        g.add_edge(v, (v + 1) % n, 1)
    return g


def path_graph(n: int) -> WeightedDiGraph:
    """A directed path 0 → 1 → ... → n-1 (optimal bisection cuts 1)."""
    if n < 2:
        raise ValueError(f"path needs >= 2 vertices, got {n}")
    g = _fresh(n)
    for v in range(n - 1):
        g.add_edge(v, v + 1, 1)
    return g


def grid_graph(rows: int, cols: int) -> WeightedDiGraph:
    """A rows × cols grid; vertex (r, c) has id r*cols + c.

    A vertical split of an even grid cuts exactly ``rows`` edges.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    g = _fresh(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1, 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols, 1)
    return g


def clique_graph(n: int) -> WeightedDiGraph:
    """A complete directed graph on n vertices (edges in one direction)."""
    if n < 2:
        raise ValueError(f"clique needs >= 2 vertices, got {n}")
    g = _fresh(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, 1)
    return g


def disjoint_cliques(k: int, size: int, bridge_weight: int = 0) -> WeightedDiGraph:
    """k cliques of ``size`` vertices, optionally weakly bridged in a ring.

    With ``bridge_weight`` = 0 the graph is disconnected and the optimal
    k-way partition has zero cut; with a small bridge weight the optimum
    cuts exactly k bridges (k ≥ 2).
    """
    if k < 1 or size < 2:
        raise ValueError("need k >= 1 cliques of size >= 2")
    g = _fresh(k * size)
    for c in range(k):
        base = c * size
        for u in range(size):
            for v in range(u + 1, size):
                g.add_edge(base + u, base + v, 1)
    if bridge_weight > 0 and k >= 2:
        for c in range(k):
            src = c * size
            dst = ((c + 1) % k) * size
            g.add_edge(src, dst, bridge_weight)
    return g


def random_graph(n: int, p: float, rng: random.Random) -> WeightedDiGraph:
    """Erdős–Rényi G(n, p) with directed edges u → v for u < v."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    g = _fresh(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v, 1)
    return g


def powerlaw_graph(
    n: int, m: int, rng: random.Random, seed_clique: int = 3
) -> WeightedDiGraph:
    """Barabási–Albert-style preferential attachment graph.

    Each new vertex attaches to ``m`` existing vertices chosen with
    probability proportional to degree, producing the heavy-tailed
    degree distribution characteristic of the Ethereum graph.
    """
    if n < seed_clique:
        raise ValueError(f"need n >= {seed_clique}")
    if m < 1:
        raise ValueError("m must be >= 1")
    g = _fresh(n)
    # repeated-endpoints list implements preferential attachment
    endpoints: List[int] = []
    for u in range(seed_clique):
        for v in range(u + 1, seed_clique):
            g.add_edge(u, v, 1)
            endpoints.extend((u, v))
    for v in range(seed_clique, n):
        targets = set()
        attempts = 0
        want = min(m, v)
        while len(targets) < want and attempts < 50 * want:
            targets.add(rng.choice(endpoints))
            attempts += 1
        while len(targets) < want:
            targets.add(rng.randrange(v))
        for t in targets:
            g.add_edge(v, t, 1)
            endpoints.extend((v, t))
    return g


def weighted_communities(
    communities: int,
    size: int,
    intra_weight: int,
    inter_weight: int,
    rng: random.Random,
    inter_edges_per_pair: int = 1,
) -> WeightedDiGraph:
    """Planted-partition graph: dense heavy communities, light bridges.

    The planted optimum assigns each community to its own shard; any
    partitioner worth its salt should recover it for
    ``intra_weight >> inter_weight``.
    """
    if communities < 2 or size < 2:
        raise ValueError("need >= 2 communities of size >= 2")
    n = communities * size
    g = _fresh(n)
    for c in range(communities):
        base = c * size
        for u in range(size):
            for v in range(u + 1, size):
                g.add_edge(base + u, base + v, intra_weight)
    for a in range(communities):
        for b in range(a + 1, communities):
            for _ in range(inter_edges_per_pair):
                u = a * size + rng.randrange(size)
                v = b * size + rng.randrange(size)
                g.add_edge(u, v, inter_weight)
    return g


def planted_assignment(communities: int, size: int) -> dict:
    """The planted optimal vertex → community map for the graph above."""
    return {c * size + i: c for c in range(communities) for i in range(size)}


def as_undirected(g: WeightedDiGraph) -> UndirectedView:
    """Convenience collapse for partitioner tests."""
    return collapse_to_undirected(g)
