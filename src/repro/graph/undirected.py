"""Collapse the directed blockchain graph to a weighted undirected graph.

Graph partitioners (our METIS-style multilevel partitioner, spectral
bisection, KL) operate on undirected graphs: an edge cut is symmetric —
a multi-shard transaction is multi-shard no matter which endpoint calls
which.  The collapse rule follows the paper implicitly: the undirected
edge weight between u and v is the sum of the directed weights u→v and
v→u; self-loops are dropped (a self-call can never cross shards).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import VertexNotFoundError
from repro.graph.digraph import WeightedDiGraph


class UndirectedView:
    """A weighted undirected graph stored as symmetric adjacency dicts.

    Built once from a :class:`WeightedDiGraph` and then immutable in
    spirit (partitioners only read it).  Vertex weights are copied from
    the directed graph's activity weights, with a floor of 1 so that
    balance constraints remain meaningful for never-active vertices.
    """

    __slots__ = ("_adj", "_vweight", "_total_edge_weight")

    def __init__(self) -> None:
        self._adj: Dict[int, Dict[int, int]] = {}
        self._vweight: Dict[int, int] = {}
        self._total_edge_weight: int = 0  # sum over undirected edges (once)

    # construction ------------------------------------------------------

    def _add_vertex(self, v: int, weight: int) -> None:
        if v not in self._adj:
            self._adj[v] = {}
            self._vweight[v] = weight

    def _add_edge(self, u: int, v: int, weight: int) -> None:
        if u == v:
            return
        adj_u = self._adj[u]
        if v in adj_u:
            adj_u[v] += weight
            self._adj[v][u] += weight
        else:
            adj_u[v] = weight
            self._adj[v][u] = weight
        self._total_edge_weight += weight

    # queries -----------------------------------------------------------

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(a) for a in self._adj.values()) // 2

    @property
    def total_edge_weight(self) -> int:
        return self._total_edge_weight

    @property
    def total_vertex_weight(self) -> int:
        return sum(self._vweight.values())

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Each undirected edge once, as (u, v, w) with u < v."""
        for u, adj in self._adj.items():
            for v, w in adj.items():
                if u < v:
                    yield u, v, w

    def adjacency(self, v: int) -> Dict[int, int]:
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def vertex_weight(self, v: int) -> int:
        try:
            return self._vweight[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: int) -> int:
        return len(self.adjacency(v))

    def weighted_degree(self, v: int) -> int:
        return sum(self.adjacency(v).values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"UndirectedView(|V|={self.num_vertices}, |E|={self.num_edges})"


def collapse_to_undirected(
    digraph: WeightedDiGraph,
    min_vertex_weight: int = 1,
    unit_vertex_weights: bool = False,
) -> UndirectedView:
    """Collapse a directed blockchain graph to its undirected view.

    ``min_vertex_weight`` floors vertex weights (default 1) so that
    vertices that never initiated or received activity still count for
    balance purposes, matching METIS's convention that unweighted
    vertices have weight 1.

    ``unit_vertex_weights`` sets every vertex weight to 1 — this is the
    paper's METIS setup ("assigning weights to the **edges** of the
    graph"; vertices stay unweighted), and is precisely what makes the
    post-attack dynamic-balance anomaly possible: METIS balances vertex
    *counts* while all the live vertices cluster into one shard.
    """
    und = UndirectedView()
    for v in digraph.vertices():
        if unit_vertex_weights:
            und._add_vertex(v, 1)
        else:
            und._add_vertex(v, max(min_vertex_weight, digraph.vertex_weight(v)))
    for src, dst, w in digraph.edges():
        if dst in und._adj[src]:
            # the reverse edge was already merged when we saw dst → src
            continue
        reverse = digraph.successors(dst).get(src, 0)
        und._add_edge(src, dst, w + reverse)
    return und
