"""Time-window indexing over the interaction log.

The experiments sample metrics over *4-hour windows* (paper Fig. 3) and
repartition over *two-week periods* (METIS / R-METIS).  This module
provides the window arithmetic and a :class:`WindowIndex` that slices a
:class:`~repro.graph.builder.GraphBuilder` log into aligned windows.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Sequence, Tuple

from repro.graph.builder import GraphBuilder, Interaction, build_graph
from repro.graph.digraph import WeightedDiGraph

#: Seconds per canonical units used throughout the experiments.
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY

#: The paper samples metrics every four hours...
METRIC_WINDOW = 4 * HOUR
#: ...and repartitions every two weeks.
REPARTITION_PERIOD = 2 * WEEK


@dataclasses.dataclass(frozen=True)
class Window:
    """A half-open time interval [start, end)."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def midpoint(self) -> float:
        return (self.start + self.end) / 2.0

    def contains(self, ts: float) -> bool:
        return self.start <= ts < self.end


def iter_windows(start: float, end: float, width: float) -> Iterator[Window]:
    """Aligned windows of ``width`` seconds covering [start, end).

    The final window is truncated at ``end`` so that coverage is exact.
    """
    if width <= 0:
        raise ValueError(f"window width must be positive, got {width}")
    t = start
    while t < end:
        yield Window(t, min(t + width, end))
        t += width


class WindowIndex:
    """Slices a builder's interaction log into aligned time windows."""

    def __init__(self, builder: GraphBuilder):
        self._builder = builder

    @property
    def span(self) -> Window:
        """The [first, last+epsilon) interval covered by the log."""
        log = self._builder.log
        if not log:
            return Window(0.0, 0.0)
        # one second past the end: a naive +epsilon is absorbed by float
        # rounding at multi-year timestamps, excluding the last record
        return Window(log[0].timestamp, log[-1].timestamp + 1.0)

    def windows(self, width: float) -> List[Window]:
        span = self.span
        return list(iter_windows(span.start, span.end, width))

    def interactions_in(self, window: Window) -> Iterator[Interaction]:
        return self._builder.interactions_between(window.start, window.end)

    def graph_in(self, window: Window) -> WeightedDiGraph:
        """The reduced graph of one window (R-METIS input)."""
        return build_graph(self.interactions_in(window))

    def cumulative_graph_until(self, ts: float) -> WeightedDiGraph:
        """The full cumulative graph of everything before ``ts``."""
        return self._builder.graph_as_of(ts)

    def per_window_counts(self, width: float) -> List[Tuple[Window, int]]:
        """(window, interaction count) pairs — used for activity plots."""
        out: List[Tuple[Window, int]] = []
        for w in self.windows(width):
            out.append((w, sum(1 for _ in self.interactions_in(w))))
        return out
