"""Trace dataset readers and writers: text v1, binary rctrace v2,
and compressed binary rctrace v3.

The paper publishes its extracted Ethereum trace "in easily
understandable format".  We mirror that with three on-disk formats over
the same logical record stream:

**Text v1** — one record per line, human-readable, the interchange
format for small traces and external tooling:

``timestamp tx_id src src_kind dst dst_kind``

* ``timestamp`` — float seconds since genesis, written with full
  ``repr`` precision so a round-trip is bit-identical;
* ``tx_id`` — integer id of the enclosing transaction;
* ``src`` / ``dst`` — integer vertex ids;
* ``src_kind`` / ``dst_kind`` — ``A`` (account) or ``C`` (contract).

Lines starting with ``#`` are comments.  Files ending in ``.gz`` are
transparently gzip-compressed.

**Binary rctrace v2** — the columnar replay format: the parallel
arrays of a :class:`~repro.graph.columnar.ColumnarLog` laid out as
fixed-width little-endian sections, so :func:`load_columnar` can
``mmap`` the file and hand zero-copy ``memoryview`` casts straight to
:meth:`ColumnarLog.from_buffers` — no parsing, no boxing, O(1) load.
The flat fixed-layout encoding follows the SSZ playbook (fixed-size
parts serialize in place; all offsets derivable from the header).
Layout::

    offset  size          field
    0       8             magic  b"RCTRACE2"
    8       4             format version (uint32, = 2)
    12      4             header size in bytes (uint32, = 64)
    16      8             row count N (uint64)
    24      8             vertex count V (uint64)
    32      8             payload length in bytes (uint64)
    40      4             crc32 of the payload (uint32)
    44      20            reserved (zero)
    64      V * 8         vertex-id table   (int64: dense index -> raw id)
    --      N * 8         timestamps        (float64)
    --      N * 8         src               (int64 dense vertex indices)
    --      N * 8         dst               (int64 dense vertex indices)
    --      N * 8         tx ids            (int64)
    --      N * 1         src kinds         (int8: 0=account, 1=contract)
    --      N * 1         dst kinds         (int8)

All multi-byte fields are little-endian.  The payload length and the
per-section lengths derived from (N, V) must agree with the file size,
and the crc32 guards corruption — every violation raises
:class:`~repro.errors.TraceFormatError` naming the offending section
or offset, never a raw ``struct``/``IndexError``.  ``.gz`` paths are
supported for v2 too (decompressed to memory; mmap needs a real file).

**Binary rctrace v3** — the *compressed* columnar format for
Ethereum-scale (>100M-row) traces: the same logical sections as v2,
but each section is individually encoded and optionally zlib-framed,
following the consensus-spec playbook of checksummed, per-section
snappy/SSZ framing.  The 64-byte header is identical to v2 except for
the magic/version bump (``b"RCTRACE3"`` / 3); it is followed by a
section table of 12-byte entries (one per section, file order)::

    offset  size   field
    0       1      encoding tag (see below)
    1       1      flags (bit 0: section payload is zlib-framed)
    2       2      reserved (zero)
    4       8      stored byte length of the section (uint64)

and then the section payloads back to back.  The header crc32 covers
the section table plus every stored section byte.  Encoding tags:

    ===  ==================  ============================================
    tag  name                meaning
    ===  ==================  ============================================
    0    raw                 fixed-width little-endian items (as v2)
    1    uvarint             one LEB128 varint per value (values >= 0)
    2    delta-zigzag        first value, then zigzag-LEB128 deltas
                             (int64 arithmetic, mod-2^64 wrap)
    3    float-bits-delta    float64 bit patterns as uint64, first
                             value then mod-2^64 deltas, LEB128
    ===  ==================  ============================================

The default writer encodes ``timestamps`` as float-bits deltas (the
column is sorted, so deltas are tiny), the vertex-id table and ``tx``
as delta-zigzag (both are near-monotone), ``src``/``dst`` as plain
varints of dense indices, and the kind columns raw; each section is
then zlib-framed iff that makes it smaller.  A v3 trace of the
synthetic workload is <= 0.6x its v2 byte size (gated by
``benchmarks/bench_trace_compress.py``).  Decoding materialises the
columns as native ``array`` objects (one streaming pass per section)
handed to :meth:`ColumnarLog.from_buffers`; uncompressed raw sections
(the kind columns) stay zero-copy views over the mmap.

:class:`ChunkedTraceWriter` writes either binary version in bounded
memory (per-chunk encodes with carried delta state, per-section spill
files) for multi-million-row exports — see
:func:`repro.ethereum.export.export_workload_trace`.

:func:`load_trace_log` sniffs the format, :func:`convert_trace`
translates between all three.  Use text for interchange and
eyeballing; binary v2 for mmap-speed local replays; binary v3 when
trace bytes dominate (storage, artifact upload, >100M rows).
"""

from __future__ import annotations

import gzip
import io
import math
import mmap
import os
import struct
import sys
import zlib
from array import array
from typing import IO, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.errors import TraceFormatError
from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import VertexKind

_KIND_TO_CODE = {VertexKind.ACCOUNT: "A", VertexKind.CONTRACT: "C"}
_CODE_TO_KIND = {"A": VertexKind.ACCOUNT, "C": VertexKind.CONTRACT}

#: vertex kind -> byte code (enum definition order, matching ColumnarLog)
_KIND_BYTE = {k: i for i, k in enumerate(tuple(VertexKind))}

PathOrFile = Union[str, os.PathLike, IO[str]]


def _open_text(path_or_file: PathOrFile, mode: str) -> IO[str]:
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file  # type: ignore[return-value]
    path = os.fspath(path_or_file)  # type: ignore[arg-type]
    if "r" in mode:
        # sniff compression by content, not extension — a gzipped
        # trace without a .gz suffix must still read transparently
        with open(path, "rb") as probe:
            gzipped = probe.read(2) == b"\x1f\x8b"
    else:
        gzipped = path.endswith(".gz")
    if gzipped:
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def format_interaction(interaction: Interaction) -> str:
    """One trace line (without newline) for an interaction.

    Timestamps are written with ``repr`` (shortest string that parses
    back to the same double), so an exported-then-reimported trace is
    bit-identical to the in-memory log — a fixed-precision format like
    ``%.3f`` would silently lose sub-millisecond structure.
    """
    return (
        f"{interaction.timestamp!r} {interaction.tx_id} "
        f"{interaction.src} {_KIND_TO_CODE[interaction.src_kind]} "
        f"{interaction.dst} {_KIND_TO_CODE[interaction.dst_kind]}"
    )


def parse_interaction(line: str, lineno: int = 0) -> Interaction:
    """Parse one trace line into an :class:`Interaction`."""
    parts = line.split()
    if len(parts) != 6:
        raise TraceFormatError(
            f"line {lineno}: expected 6 fields, got {len(parts)}: {line!r}"
        )
    ts_s, tx_s, src_s, src_k, dst_s, dst_k = parts
    try:
        ts = float(ts_s)
        tx_id = int(tx_s)
        src = int(src_s)
        dst = int(dst_s)
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: bad numeric field: {line!r}") from exc
    if not math.isfinite(ts):
        # nan/inf parse as floats but poison the log's time-ordering
        # guard downstream with a confusing error; reject at the source
        raise TraceFormatError(
            f"line {lineno}: non-finite timestamp {ts_s!r}: {line!r}"
        )
    try:
        src_kind = _CODE_TO_KIND[src_k]
        dst_kind = _CODE_TO_KIND[dst_k]
    except KeyError as exc:
        raise TraceFormatError(
            f"line {lineno}: vertex kind must be A or C: {line!r}"
        ) from exc
    return Interaction(
        timestamp=ts, src=src, dst=dst, src_kind=src_kind, dst_kind=dst_kind, tx_id=tx_id
    )


def write_trace(interactions: Iterable[Interaction], path_or_file: PathOrFile) -> int:
    """Write interactions to a trace file; returns the record count."""
    f = _open_text(path_or_file, "w")
    should_close = f is not path_or_file
    n = 0
    try:
        f.write("# repro ethereum-style interaction trace v1\n")
        f.write("# timestamp tx_id src src_kind dst dst_kind\n")
        for it in interactions:
            f.write(format_interaction(it))
            f.write("\n")
            n += 1
    finally:
        if should_close:
            f.close()
    return n


def read_trace(path_or_file: PathOrFile) -> Iterator[Interaction]:
    """Stream interactions from a trace file (lazily).

    Gzip compression is sniffed from the content, so misnamed ``.gz``
    files read fine; bytes that are not utf-8 text at all surface as
    :class:`TraceFormatError`, never a raw ``UnicodeDecodeError``.
    """
    f = _open_text(path_or_file, "r")
    should_close = f is not path_or_file
    try:
        lines = enumerate(f, start=1)
        while True:
            try:
                lineno, raw = next(lines)
            except StopIteration:
                return
            except UnicodeDecodeError as exc:
                raise TraceFormatError(
                    f"not a text trace: invalid utf-8 near byte "
                    f"{exc.start} ({exc.reason})"
                ) from exc
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield parse_interaction(line, lineno)
    finally:
        if should_close:
            f.close()


# ----------------------------------------------------------------------
# binary rctrace v2 (see the module docstring for the layout)

TRACE_MAGIC = b"RCTRACE2"
TRACE_VERSION = 2

TRACE_MAGIC_V3 = b"RCTRACE3"
TRACE_VERSION_V3 = 3

#: binary versions this module reads and writes
TRACE_VERSIONS = (TRACE_VERSION, TRACE_VERSION_V3)

_MAGIC_BY_VERSION = {TRACE_VERSION: TRACE_MAGIC, TRACE_VERSION_V3: TRACE_MAGIC_V3}
_VERSION_BY_MAGIC = {m: v for v, m in _MAGIC_BY_VERSION.items()}

#: magic, version, header size, n_rows, n_vertices, payload bytes,
#: crc32, reserved — 64 bytes total, little-endian.
_HEADER = struct.Struct("<8sIIQQQI20s")
_HEADER_SIZE = _HEADER.size
assert _HEADER_SIZE == 64

#: (attribute typecode, item size) per payload section, in file order;
#: the vertex-id table precedes the row columns.
_ROW_SECTIONS: Tuple[Tuple[str, str, int], ...] = (
    ("timestamps", "d", 8),
    ("src", "q", 8),
    ("dst", "q", 8),
    ("tx", "q", 8),
    ("src_kind", "b", 1),
    ("dst_kind", "b", 1),
)

_NATIVE_LE = sys.byteorder == "little"

#: valid vertex-kind byte codes (file values; matches ColumnarLog's
#: enum-definition-order codes: 0=account, 1=contract)
_VALID_KIND_BYTES = frozenset(range(len(tuple(VertexKind))))


def _column_le_bytes(column: Sequence, typecode: str) -> bytes:
    """A column's items as packed little-endian bytes."""
    if isinstance(column, memoryview):
        # memoryview-backed columns only exist on little-endian hosts
        # (load_columnar falls back to swapped array copies elsewhere)
        return column.tobytes()
    arr = column if isinstance(column, array) else array(typecode, column)
    if not _NATIVE_LE:
        arr = array(typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _le_column(data: memoryview, typecode: str):
    """A payload slice as a native sequence of ``typecode`` items."""
    if _NATIVE_LE:
        return data.cast(typecode)
    arr = array(typecode)
    arr.frombytes(data.tobytes())
    arr.byteswap()
    return arr


def _payload_length(n_rows: int, n_vertices: int) -> int:
    return n_vertices * 8 + sum(n_rows * size for _, _, size in _ROW_SECTIONS)


# ----------------------------------------------------------------------
# rctrace v3: per-section encodings (see the module docstring)

ENC_RAW = 0            #: fixed-width little-endian items (the v2 layout)
ENC_UVARINT = 1        #: unsigned LEB128 per value
ENC_DELTA = 2          #: first value, then zigzag-LEB128 int64 deltas
ENC_FLOAT_DELTA = 3    #: float64 bit patterns, mod-2^64 delta LEB128

_ENC_NAMES = {
    ENC_RAW: "raw",
    ENC_UVARINT: "uvarint",
    ENC_DELTA: "delta-zigzag",
    ENC_FLOAT_DELTA: "float-bits-delta",
}

_FLAG_ZLIB = 0x01      #: section payload is zlib-framed
_KNOWN_FLAGS = _FLAG_ZLIB

#: encoding tag (u8), flags (u8), reserved (u16 zero), stored bytes (u64)
_SECTION_ENTRY = struct.Struct("<BBHQ")
assert _SECTION_ENTRY.size == 12

#: v3 sections in file order: (name, array typecode, item size,
#: allowed encoding tags, default encoding tag).  The vertex-id table
#: comes first, then the row columns in the v2 order.
_V3_SECTIONS: Tuple[Tuple[str, str, int, Tuple[int, ...], int], ...] = (
    ("vertex_ids", "q", 8, (ENC_RAW, ENC_UVARINT, ENC_DELTA), ENC_DELTA),
    ("timestamps", "d", 8, (ENC_RAW, ENC_FLOAT_DELTA), ENC_FLOAT_DELTA),
    ("src", "q", 8, (ENC_RAW, ENC_UVARINT, ENC_DELTA), ENC_UVARINT),
    ("dst", "q", 8, (ENC_RAW, ENC_UVARINT, ENC_DELTA), ENC_UVARINT),
    ("tx", "q", 8, (ENC_RAW, ENC_UVARINT, ENC_DELTA), ENC_DELTA),
    ("src_kind", "b", 1, (ENC_RAW,), ENC_RAW),
    ("dst_kind", "b", 1, (ENC_RAW,), ENC_RAW),
)
_V3_TABLE_SIZE = _SECTION_ENTRY.size * len(_V3_SECTIONS)

_MASK64 = (1 << 64) - 1
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


def _float_bits(values: Sequence[float]) -> array:
    """float64 column -> uint64 bit patterns (host-consistent)."""
    bits = array("Q")
    bits.frombytes(_column_le_bytes(values, "d"))
    if not _NATIVE_LE:
        bits.byteswap()
    return bits


def _bits_to_floats(bits: Sequence[int]) -> array:
    """uint64 bit patterns -> float64 column (inverse of _float_bits).

    Reinterprets through *host* order on both sides, so each integer
    value maps to the float with that IEEE-754 bit pattern on any
    endianness — no byteswap, unlike :func:`_float_bits`, whose input
    bytes are explicitly little-endian.
    """
    as_q = bits if isinstance(bits, array) else array("Q", bits)
    out = array("d")
    out.frombytes(as_q.tobytes())
    return out


class _SectionEncoder:
    """Stateful v3 section encoder; chunk-resumable for spill writers.

    ``feed`` may be called repeatedly with consecutive slices of the
    column; delta encodings carry their chain state across calls, so
    the concatenated output is byte-identical to one whole-column feed.
    """

    def __init__(self, name: str, typecode: str, tag: int):
        self.name = name
        self.typecode = typecode
        self.tag = tag
        self._prev: Optional[int] = None   # last value (uint64 domain)

    def feed(self, values: Sequence) -> bytes:
        tag = self.tag
        if tag == ENC_RAW:
            return _column_le_bytes(values, self.typecode)
        out = bytearray()
        emit = out.append
        if tag == ENC_UVARINT:
            for v in values:
                if not 0 <= v <= _MASK64:
                    raise ValueError(
                        f"{self.name} section: value {v} is outside the "
                        "uvarint range [0, 2^64)"
                    )
                while v >= 0x80:
                    emit((v & 0x7F) | 0x80)
                    v >>= 7
                emit(v)
            return bytes(out)
        prev = self._prev
        if tag == ENC_DELTA:
            for v in values:
                if not _INT64_MIN <= v <= _INT64_MAX:
                    raise ValueError(
                        f"{self.name} section: value {v} is outside the "
                        "int64 range"
                    )
                u = v & _MASK64
                if prev is None:
                    z = u
                else:
                    sd = (u - prev) & _MASK64
                    if sd >= 1 << 63:
                        sd -= 1 << 64
                    z = sd << 1 if sd >= 0 else (-sd << 1) - 1
                prev = u
                while z >= 0x80:
                    emit((z & 0x7F) | 0x80)
                    z >>= 7
                emit(z)
        elif tag == ENC_FLOAT_DELTA:
            for u in _float_bits(values):
                d = u if prev is None else (u - prev) & _MASK64
                prev = u
                while d >= 0x80:
                    emit((d & 0x7F) | 0x80)
                    d >>= 7
                emit(d)
        else:  # pragma: no cover - writer tags come from _V3_SECTIONS
            raise ValueError(f"unknown encoding tag {tag}")
        self._prev = prev
        return bytes(out)


def _decode_uvarints(
    data: bytes, count: int, name: str, section: str
) -> list:
    """Decode exactly ``count`` LEB128 varints covering all of ``data``.

    Every structural violation — stream ends early, a varint runs past
    64 bits, trailing bytes after the last value — raises
    :class:`TraceFormatError` naming the section, so a corrupt stream
    can neither crash nor over-read (the slice bounds it) nor hang
    (each iteration consumes at least one byte).
    """
    out = []
    append = out.append
    pos = 0
    try:
        for _ in range(count):
            b = data[pos]
            pos += 1
            if b < 0x80:
                append(b)
                continue
            result = b & 0x7F
            shift = 7
            while True:
                b = data[pos]
                pos += 1
                if b < 0x80:
                    result |= b << shift
                    break
                result |= (b & 0x7F) << shift
                shift += 7
                if shift > 63:
                    raise TraceFormatError(
                        f"{name}: varint longer than 10 bytes at byte "
                        f"{pos} of the {section} section"
                    )
            if result > _MASK64:
                raise TraceFormatError(
                    f"{name}: varint overflows 64 bits at byte {pos} "
                    f"of the {section} section"
                )
            append(result)
    except IndexError:
        raise TraceFormatError(
            f"{name}: {section} section truncated — varint stream ended "
            f"after {len(out)} of {count} values"
        ) from None
    if pos != len(data):
        raise TraceFormatError(
            f"{name}: {section} section has {len(data) - pos} trailing "
            f"byte(s) after {count} values"
        )
    return out


def _decode_v3_section(
    name: str,
    section: str,
    typecode: str,
    itemsize: int,
    tag: int,
    data,
    count: int,
):
    """One decoded v3 section as a native column sequence."""
    if tag == ENC_RAW:
        if len(data) != count * itemsize:
            raise TraceFormatError(
                f"{name}: {section} section holds {len(data)} bytes, "
                f"expected {count * itemsize} ({count} raw items)"
            )
        if isinstance(data, memoryview):
            return _le_column(data, typecode)
        view = memoryview(bytes(data))
        return _le_column(view, typecode)
    raw = _decode_uvarints(bytes(data), count, name, section)
    if tag == ENC_UVARINT:
        try:
            return array(typecode, raw)
        except OverflowError:
            raise TraceFormatError(
                f"{name}: {section} section holds a varint outside the "
                f"int64 range"
            ) from None
    if tag == ENC_DELTA:
        vals = []
        append = vals.append
        prev = None
        for z in raw:
            if prev is None:
                u = z
            else:
                sd = (z >> 1) ^ -(z & 1)
                u = (prev + sd) & _MASK64
            prev = u
            append(u - (1 << 64) if u >= (1 << 63) else u)
        return array(typecode, vals)
    if tag == ENC_FLOAT_DELTA:
        bits = []
        append = bits.append
        prev = None
        for d in raw:
            u = d if prev is None else (prev + d) & _MASK64
            prev = u
            append(u)
        return _bits_to_floats(bits)
    raise TraceFormatError(  # pragma: no cover - tags validated upstream
        f"{name}: unknown encoding tag {tag} in the {section} section"
    )


def _log_columns(log: ColumnarLog) -> Tuple[Sequence, ...]:
    """The seven logical sections of a log, in file order."""
    return (
        log.vertex_ids(),
        log.timestamps(),
        log.src_indices(),
        log.dst_indices(),
        log.tx_ids(),
        log.src_kind_codes(),
        log.dst_kind_codes(),
    )


def _frame_section(encoded: bytes, compress: bool) -> Tuple[int, bytes]:
    """(flags, stored bytes) for an encoded section: zlib-framed iff
    that is strictly smaller (level 6, the streaming writer's level)."""
    if compress:
        framed = zlib.compress(encoded, 6)
        if len(framed) < len(encoded):
            return _FLAG_ZLIB, framed
    return 0, encoded


def _v3_blocks(
    log: ColumnarLog, compress: bool
) -> Tuple[bytes, list]:
    """(section table bytes, stored section payloads) for a v3 write."""
    stored = []
    table = bytearray()
    for column, (name, typecode, _size, _allowed, tag) in zip(
        _log_columns(log), _V3_SECTIONS
    ):
        encoded = _SectionEncoder(name, typecode, tag).feed(column)
        flags, body = _frame_section(encoded, compress)
        table += _SECTION_ENTRY.pack(tag, flags, 0, len(body))
        stored.append(body)
    return bytes(table), stored


def write_columnar(
    log: Union[ColumnarLog, Iterable[Interaction]],
    path_or_file: Union[str, os.PathLike, IO[bytes]],
    version: int = TRACE_VERSION,
    compress: bool = True,
) -> int:
    """Write a log as a binary rctrace file; returns the row count.

    ``log`` may be a :class:`ColumnarLog` (any backing) or a plain
    interaction iterable (boxed logs are columnarised first).  ``.gz``
    paths are gzip-compressed.  ``version`` selects the layout:

    * 2 (default) — fixed-width sections; the file round-trips through
      :func:`load_columnar` bit-identically by construction (the
      sections *are* the log's arrays) and mmaps zero-copy;
    * 3 — per-section delta/varint encodings with optional zlib
      framing (``compress=True`` frames each section iff that shrinks
      it); same logical content, <= 0.6x the v2 bytes on the synthetic
      workload, decoded in one streaming pass per section on load.

    For multi-million-row exports that should never materialise the
    whole log in memory, use :class:`ChunkedTraceWriter` (its output is
    byte-identical to this function's for the same log).
    """
    if version not in _MAGIC_BY_VERSION:
        raise ValueError(
            f"unsupported rctrace version {version!r} "
            f"(supported: {sorted(_MAGIC_BY_VERSION)})"
        )
    if not isinstance(log, ColumnarLog):
        log = ColumnarLog(log)

    if version == TRACE_VERSION:
        sections = [
            _column_le_bytes(col, typecode)
            for col, (_, typecode, _s, _a, _t) in zip(
                _log_columns(log), _V3_SECTIONS
            )
        ]
    else:
        table, stored = _v3_blocks(log, compress)
        sections = [table] + stored

    crc = 0
    payload_bytes = 0
    for s in sections:
        crc = zlib.crc32(s, crc)
        payload_bytes += len(s)
    header = _HEADER.pack(
        _MAGIC_BY_VERSION[version], version, _HEADER_SIZE,
        len(log), log.num_vertices, payload_bytes, crc, b"\0" * 20,
    )

    if hasattr(path_or_file, "write"):
        f: IO[bytes] = path_or_file  # type: ignore[assignment]
        should_close = False
    else:
        path = os.fspath(path_or_file)
        f = gzip.open(path, "wb") if path.endswith(".gz") else open(path, "wb")
        should_close = True
    try:
        f.write(header)
        for s in sections:
            f.write(s)
    finally:
        if should_close:
            f.close()
    return len(log)


def _parse_header(
    buf: memoryview, name: str
) -> Tuple[int, int, int, int, int, int]:
    """Validated (version, header_size, n_rows, n_vertices, payload, crc)."""
    if len(buf) < _HEADER_SIZE:
        raise TraceFormatError(
            f"{name}: not an rctrace file — {len(buf)} bytes is shorter "
            f"than the {_HEADER_SIZE}-byte header"
        )
    magic, version, header_size, n_rows, n_vertices, payload_bytes, crc, rsv = (
        _HEADER.unpack_from(buf, 0)
    )
    if magic not in _VERSION_BY_MAGIC:
        raise TraceFormatError(
            f"{name}: bad magic at offset 0: {bytes(magic)!r} "
            f"(expected {TRACE_MAGIC!r} or {TRACE_MAGIC_V3!r})"
        )
    if version != _VERSION_BY_MAGIC[magic]:
        raise TraceFormatError(
            f"{name}: unsupported rctrace version {version} at offset 8 "
            f"(magic {bytes(magic)!r} implies version "
            f"{_VERSION_BY_MAGIC[magic]}; this reader understands "
            f"{sorted(_MAGIC_BY_VERSION)})"
        )
    if header_size < _HEADER_SIZE:
        raise TraceFormatError(
            f"{name}: header size {header_size} at offset 12 is smaller "
            f"than the fixed header ({_HEADER_SIZE})"
        )
    if rsv != b"\0" * 20:
        raise TraceFormatError(
            f"{name}: reserved header bytes at offset 44 are not zero "
            "(corrupt header)"
        )
    if version == TRACE_VERSION:
        expected = _payload_length(n_rows, n_vertices)
        if payload_bytes != expected:
            raise TraceFormatError(
                f"{name}: header payload length {payload_bytes} does not "
                f"match the {expected} bytes implied by {n_rows} rows and "
                f"{n_vertices} vertices"
            )
    elif payload_bytes < _V3_TABLE_SIZE:
        raise TraceFormatError(
            f"{name}: header payload length {payload_bytes} is smaller "
            f"than the {_V3_TABLE_SIZE}-byte v3 section table"
        )
    if len(buf) - header_size != payload_bytes:
        raise TraceFormatError(
            f"{name}: truncated payload — expected {payload_bytes} bytes "
            f"after the {header_size}-byte header, found {len(buf) - header_size}"
        )
    return version, header_size, n_rows, n_vertices, payload_bytes, crc


def _decode_v3_payload(
    name: str, payload: memoryview, n_rows: int, n_vertices: int
) -> dict:
    """All seven v3 sections decoded into native column sequences."""
    entries = []
    total = 0
    for i, (secname, _tc, _sz, allowed, _dflt) in enumerate(_V3_SECTIONS):
        tag, flags, reserved, stored = _SECTION_ENTRY.unpack_from(
            payload, i * _SECTION_ENTRY.size
        )
        if tag not in allowed:
            raise TraceFormatError(
                f"{name}: encoding tag {tag} "
                f"({_ENC_NAMES.get(tag, 'unknown')}) is not valid for the "
                f"{secname} section (valid: "
                f"{[_ENC_NAMES[t] for t in allowed]})"
            )
        if flags & ~_KNOWN_FLAGS or reserved:
            raise TraceFormatError(
                f"{name}: unknown flag/reserved bits in the {secname} "
                f"section-table entry (flags=0x{flags:02x})"
            )
        entries.append((secname, tag, flags, stored))
        total += stored
    if _V3_TABLE_SIZE + total != len(payload):
        raise TraceFormatError(
            f"{name}: section table lengths sum to {total} bytes but the "
            f"payload holds {len(payload) - _V3_TABLE_SIZE} section bytes"
        )

    columns = {}
    offset = _V3_TABLE_SIZE
    for (secname, tag, flags, stored), (_n, typecode, itemsize, _a, _d) in zip(
        entries, _V3_SECTIONS
    ):
        data: Union[bytes, memoryview] = payload[offset:offset + stored]
        offset += stored
        if flags & _FLAG_ZLIB:
            count_here = n_vertices if secname == "vertex_ids" else n_rows
            # decoded size is bounded a priori (fixed width for raw,
            # <= 10 bytes per varint), so cap the inflater: a crafted
            # deflate bomb must not allocate unbounded memory before
            # the length checks run
            bound = count_here * (itemsize if tag == ENC_RAW else 10)
            inflater = zlib.decompressobj()
            try:
                data = inflater.decompress(bytes(data), bound + 1)
            except zlib.error as exc:
                raise TraceFormatError(
                    f"{name}: corrupt zlib framing in the {secname} "
                    f"section: {exc}"
                ) from exc
            if len(data) > bound:
                raise TraceFormatError(
                    f"{name}: zlib-framed {secname} section inflates "
                    f"past the {bound} bytes its {count_here} values "
                    "could occupy (corrupt or hostile stream)"
                )
            if not inflater.eof:
                raise TraceFormatError(
                    f"{name}: corrupt zlib framing in the {secname} "
                    "section: truncated stream"
                )
            if inflater.unused_data:
                raise TraceFormatError(
                    f"{name}: {len(inflater.unused_data)} trailing "
                    f"byte(s) after the zlib stream in the {secname} "
                    "section"
                )
        count = n_vertices if secname == "vertex_ids" else n_rows
        columns[secname] = _decode_v3_section(
            name, secname, typecode, itemsize, tag, data, count
        )
    return columns


def load_columnar(
    path: Union[str, os.PathLike],
    verify: bool = True,
) -> ColumnarLog:
    """Load a binary rctrace file (v2 or v3) as a :class:`ColumnarLog`.

    The file is ``mmap``-ed; for v2 the columns are zero-copy
    ``memoryview`` casts over the mapping — no rows are parsed or
    boxed, so load time is O(verification), not O(N · parse).  For v3
    the delta/varint sections are decoded in one streaming pass each
    into native ``array`` columns (uncompressed raw sections stay
    zero-copy views).  With ``verify=True`` (default) the payload crc32
    is checked and the timestamp/kind/index columns are validated
    (time-ordered and finite, kind codes in range, dense indices within
    the vertex table); ``verify=False`` skips those passes for
    maximum-speed loads of already-trusted files.

    ``.gz`` files are decompressed into memory (still unparsed) since
    a compressed stream cannot be mapped.

    Raises :class:`~repro.errors.TraceFormatError` for every malformed
    input — bad magic, version mismatch, truncated sections, corrupt
    varint streams, checksum failure — naming the file and offending
    section.
    """
    path = os.fspath(path)
    name = os.path.basename(path)
    backing: object
    with open(path, "rb") as probe:
        gzipped = probe.read(2) == b"\x1f\x8b"   # content, not extension
    if gzipped:
        try:
            with gzip.open(path, "rb") as f:
                raw = f.read()
        except (OSError, EOFError) as exc:
            raise TraceFormatError(f"{name}: corrupt gzip stream: {exc}") from exc
        buf = memoryview(raw)
        backing = raw
    else:
        f = open(path, "rb")
        try:
            try:
                mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                # empty or unmappable file: fall back to a plain read
                f.seek(0)
                raw = f.read()
                buf = memoryview(raw)
                backing = raw
            else:
                buf = memoryview(mapped)
                backing = (mapped, buf)
        finally:
            f.close()

    version, header_size, n_rows, n_vertices, payload_bytes, crc = (
        _parse_header(buf, name)
    )
    payload = buf[header_size:]
    if verify and zlib.crc32(payload) != crc:
        raise TraceFormatError(
            f"{name}: payload checksum mismatch — stored 0x{crc:08x}, "
            f"computed 0x{zlib.crc32(payload):08x} (corrupt trace)"
        )

    if version == TRACE_VERSION:
        offset = 0
        vertex_ids = _le_column(payload[offset:offset + n_vertices * 8], "q")
        offset += n_vertices * 8
        columns = {}
        for attr, typecode, size in _ROW_SECTIONS:
            end = offset + n_rows * size
            columns[attr] = _le_column(payload[offset:end], typecode)
            offset = end
    else:
        columns = _decode_v3_payload(name, payload, n_rows, n_vertices)
        vertex_ids = columns.pop("vertex_ids")

    if verify:
        _verify_columns(name, columns, n_vertices)

    return ColumnarLog.from_buffers(
        timestamps=columns["timestamps"],
        src=columns["src"],
        dst=columns["dst"],
        tx=columns["tx"],
        src_kind=columns["src_kind"],
        dst_kind=columns["dst_kind"],
        vertex_ids=vertex_ids,
        backing=backing,
    )


def _verify_columns(name: str, columns: dict, n_vertices: int) -> None:
    """Semantic validation of loaded columns (the builder invariants)."""
    ts = columns["timestamps"]
    prev = float("-inf")
    for i in range(len(ts)):
        cur = ts[i]
        if not prev <= cur:       # also catches nan (fails every <=)
            if not math.isfinite(cur):
                raise TraceFormatError(
                    f"{name}: non-finite timestamp {cur!r} at row {i}"
                )
            raise TraceFormatError(
                f"{name}: out-of-order timestamp at row {i}: "
                f"{cur!r} < {prev!r}"
            )
        prev = cur
    # ordering makes first/last the column extremes, so ±inf (which
    # satisfies every <=) reduces to an O(1) endpoint check
    if len(ts) and not (math.isfinite(ts[0]) and math.isfinite(ts[-1])):
        row = 0 if not math.isfinite(ts[0]) else len(ts) - 1
        raise TraceFormatError(
            f"{name}: non-finite timestamp {ts[row]!r} at row {row}"
        )
    for attr in ("src_kind", "dst_kind"):
        codes = set(bytes(memoryview(columns[attr]).cast("B")))
        bad = codes - set(_VALID_KIND_BYTES)
        if bad:
            raise TraceFormatError(
                f"{name}: invalid vertex-kind code(s) {sorted(bad)} in the "
                f"{attr} section (valid: {sorted(_VALID_KIND_BYTES)})"
            )
    for attr in ("src", "dst"):
        col = columns[attr]
        if len(col) and not 0 <= min(col) <= max(col) < n_vertices:
            raise TraceFormatError(
                f"{name}: {attr} section holds a dense vertex index outside "
                f"the {n_vertices}-entry vertex table"
            )


# ----------------------------------------------------------------------
# bounded-memory chunked writer (multi-million-row exports)

_SPILL_BLOCK = 1 << 20   # streaming block size for spill/compress/copy


class ChunkedTraceWriter:
    """Stream interactions into a binary rctrace file in bounded memory.

    Append interactions one at a time (time-ordered, like
    :meth:`ColumnarLog.append`); every ``chunk_rows`` rows the column
    buffers are encoded — v3 delta chains carry their state across
    chunks — and appended to per-section spill files, so memory stays
    O(chunk + distinct vertices) instead of O(rows).  :meth:`close`
    assembles header + (v3) section table + sections, streaming each
    spill through the optional zlib frame and the crc32, and returns
    the row count.  The output is byte-identical to
    ``write_columnar(log, path, version=...)`` for the same log.

    ``.gz`` output paths are rejected — the whole point of the binary
    formats is a mappable file, and v3 already compresses per section.

    Usable as a context manager: on a clean exit the file is finalised,
    on an exception the partial spill state is discarded and no output
    file is left behind.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        version: int = TRACE_VERSION_V3,
        chunk_rows: int = 1 << 18,
        compress: bool = True,
    ):
        if version not in _MAGIC_BY_VERSION:
            raise ValueError(
                f"unsupported rctrace version {version!r} "
                f"(supported: {sorted(_MAGIC_BY_VERSION)})"
            )
        self._path = os.fspath(path)
        if self._path.endswith(".gz"):
            raise ValueError(
                "ChunkedTraceWriter writes mappable files only — "
                "drop the .gz suffix (v3 sections are already "
                "zlib-framed where that helps)"
            )
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self.version = version
        self._chunk_rows = chunk_rows
        self._compress = compress and version == TRACE_VERSION_V3
        self._rows = 0
        self._last_ts = float("-inf")
        self._vertex_index: dict = {}
        self._closed = False

        # per-chunk column buffers (vertex_ids holds only *new* ids)
        self._buffers = {
            "vertex_ids": [],
            "timestamps": array("d"),
            "src": array("q"),
            "dst": array("q"),
            "tx": array("q"),
            "src_kind": array("b"),
            "dst_kind": array("b"),
        }
        if version == TRACE_VERSION_V3:
            self._encoders = {
                name: _SectionEncoder(name, typecode, tag)
                for name, typecode, _sz, _allowed, tag in _V3_SECTIONS
            }
        else:
            self._encoders = None

        import tempfile

        self._tmpdir = tempfile.TemporaryDirectory(
            prefix=".rctrace-spill-",
            dir=os.path.dirname(self._path) or ".",
        )
        self._spills = {}
        for name, _tc, _sz, _a, _t in _V3_SECTIONS:
            spill_path = os.path.join(self._tmpdir.name, name + ".sec")
            self._spills[name] = open(spill_path, "wb")

    # ------------------------------------------------------------------

    @property
    def rows(self) -> int:
        """Rows accepted so far."""
        return self._rows

    @property
    def num_vertices(self) -> int:
        """Distinct vertices interned so far."""
        return len(self._vertex_index)

    def _intern(self, vertex: int) -> int:
        index = self._vertex_index
        idx = index.get(vertex)
        if idx is None:
            idx = len(index)
            index[vertex] = idx
            self._buffers["vertex_ids"].append(vertex)
        return idx

    def append(self, it: Interaction) -> None:
        """Append one interaction; rejects out-of-order timestamps."""
        if self._closed:
            raise ValueError("ChunkedTraceWriter is closed")
        if it.timestamp < self._last_ts:
            raise ValueError(
                f"out-of-order interaction at row {self._rows}: "
                f"timestamp {it.timestamp} < log tail {self._last_ts} "
                "(the log is append-only in time order)"
            )
        self._last_ts = it.timestamp
        b = self._buffers
        b["timestamps"].append(it.timestamp)
        b["src"].append(self._intern(it.src))
        b["dst"].append(self._intern(it.dst))
        b["tx"].append(it.tx_id)
        b["src_kind"].append(_KIND_BYTE[it.src_kind])
        b["dst_kind"].append(_KIND_BYTE[it.dst_kind])
        self._rows += 1
        if len(b["timestamps"]) >= self._chunk_rows:
            self._flush_chunk()

    def extend(self, interactions: Iterable[Interaction]) -> int:
        """Append a stream of interactions; returns how many were added."""
        n = 0
        for it in interactions:
            self.append(it)
            n += 1
        return n

    def _flush_chunk(self) -> None:
        for (name, typecode, _sz, _a, _tag) in _V3_SECTIONS:
            column = self._buffers[name]
            if not column:
                continue
            if self._encoders is not None:
                encoded = self._encoders[name].feed(column)
            else:
                encoded = _column_le_bytes(column, typecode)
            if encoded:
                self._spills[name].write(encoded)
        self._buffers["vertex_ids"] = []
        for name in ("timestamps", "src", "dst", "tx", "src_kind", "dst_kind"):
            del self._buffers[name][:]

    # ------------------------------------------------------------------

    def _finalise_section(self, name: str) -> Tuple[int, int, str]:
        """(flags, stored bytes, chosen spill path) for one section.

        When compression is on, the raw spill is streamed through a
        zlib compressor into a sibling file and the smaller of the two
        wins — mirroring :func:`_frame_section` byte for byte.
        """
        raw_path = os.path.join(self._tmpdir.name, name + ".sec")
        raw_size = os.path.getsize(raw_path)
        if not self._compress:
            return 0, raw_size, raw_path
        z_path = raw_path + ".z"
        comp = zlib.compressobj(6)
        z_size = 0
        with open(raw_path, "rb") as src, open(z_path, "wb") as dst:
            while True:
                block = src.read(_SPILL_BLOCK)
                if not block:
                    break
                out = comp.compress(block)
                if out:
                    dst.write(out)
                    z_size += len(out)
            out = comp.flush()
            dst.write(out)
            z_size += len(out)
        if z_size < raw_size:
            return _FLAG_ZLIB, z_size, z_path
        return 0, raw_size, raw_path

    def _header(self, payload_bytes: int, crc: int) -> bytes:
        return _HEADER.pack(
            _MAGIC_BY_VERSION[self.version], self.version, _HEADER_SIZE,
            self._rows, len(self._vertex_index), payload_bytes, crc,
            b"\0" * 20,
        )

    def close(self) -> int:
        """Finalise the file; returns the row count.

        Sections are streamed into a sibling temp file in one pass
        (crc computed inline, header patched in place afterwards) and
        the result is ``os.replace``-d onto the destination, so a
        failure mid-assembly — full disk, interruption — never leaves
        a truncated trace at the output path.
        """
        if self._closed:
            return self._rows
        try:
            self._flush_chunk()
            for handle in self._spills.values():
                handle.close()

            chosen = []
            table = bytearray()
            for (name, _tc, _sz, _a, tag) in _V3_SECTIONS:
                flags, stored, path = self._finalise_section(name)
                chosen.append(path)
                if self.version == TRACE_VERSION_V3:
                    table += _SECTION_ENTRY.pack(tag, flags, 0, stored)

            table_bytes = bytes(table)
            payload_bytes = len(table_bytes) + sum(
                os.path.getsize(p) for p in chosen
            )
            assembled = os.path.join(self._tmpdir.name, "assembled.rct")
            crc = zlib.crc32(table_bytes)
            with open(assembled, "wb") as out:
                out.write(self._header(payload_bytes, 0))
                out.write(table_bytes)
                for path in chosen:
                    with open(path, "rb") as f:
                        while True:
                            block = f.read(_SPILL_BLOCK)
                            if not block:
                                break
                            crc = zlib.crc32(block, crc)
                            out.write(block)
                out.seek(0)
                out.write(self._header(payload_bytes, crc))
            os.replace(assembled, self._path)
        except BaseException:
            self.abort()
            raise
        self._cleanup()
        return self._rows

    def abort(self) -> None:
        """Discard spill state without writing the output file."""
        if self._closed:
            return
        for handle in self._spills.values():
            handle.close()
        self._cleanup()

    def _cleanup(self) -> None:
        self._closed = True
        self._tmpdir.cleanup()

    def __enter__(self) -> "ChunkedTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


# ----------------------------------------------------------------------
# format sniffing and conversion

#: file extensions that default to the binary format on writes
BINARY_SUFFIXES = (".rct", ".rct.gz")


def default_trace_format(path: Union[str, os.PathLike]) -> str:
    """The output format a path's extension implies (write-side rule):
    ``.rct``/``.rct.gz`` → ``"binary"``, anything else → ``"text"``."""
    return "binary" if os.fspath(path).endswith(BINARY_SUFFIXES) else "text"


def _sniff_head(path: Union[str, os.PathLike]) -> bytes:
    """The first 8 content bytes of a trace file (through gzip)."""
    path = os.fspath(path)
    with open(path, "rb") as f:
        head = f.read(len(TRACE_MAGIC))
    if head[:2] == b"\x1f\x8b":
        try:
            with gzip.open(path, "rb") as f:
                head = f.read(len(TRACE_MAGIC))
        except (OSError, EOFError) as exc:
            raise TraceFormatError(
                f"{os.path.basename(path)}: corrupt gzip stream: {exc}"
            ) from exc
    return head


def trace_format(path: Union[str, os.PathLike]) -> str:
    """Sniff a trace file's format: ``"binary"`` or ``"text"``.

    Looks at the leading bytes (through gzip, if compressed), so it
    works regardless of file extension.  Both binary versions (rctrace
    v2 and v3) report ``"binary"``; use :func:`trace_version` when the
    version matters.
    """
    return "binary" if _sniff_head(path) in _VERSION_BY_MAGIC else "text"


def trace_version(path: Union[str, os.PathLike]) -> int:
    """Sniff a trace file's format version: 1 (text), 2 or 3 (binary)."""
    head = _sniff_head(path)
    return _VERSION_BY_MAGIC.get(head, 1)


#: leading bytes that mark a file as definitely not text v1: control
#: characters no utf-8 trace ever starts with (NUL..BS, SO..US, DEL)
_BINARY_JUNK = frozenset(range(0x09)) | frozenset(range(0x0E, 0x20)) | {0x7F}


def load_trace_log(
    path: Union[str, os.PathLike],
    verify: bool = True,
    fmt: Optional[str] = None,
) -> ColumnarLog:
    """Load any trace file (text v1, binary v2/v3) as a :class:`ColumnarLog`.

    The format is sniffed from the file's magic (pass ``fmt`` to skip
    the sniff when the caller already knows it).  Binary files load via
    :func:`load_columnar` (zero-copy mmap for v2, streaming section
    decode for v3); text files stream through :func:`read_trace` into a
    fresh columnar log (parse-and-box — this is precisely the cost the
    binary formats exist to skip).  Either way, a malformed trace —
    including an out-of-order text one — raises
    :class:`~repro.errors.TraceFormatError`; a file in no known format
    at all is rejected up front with the sniffed magic bytes in the
    error, not a line-1 parse failure.
    """
    if fmt is None:
        head = _sniff_head(path)
        if head in _VERSION_BY_MAGIC:
            fmt = "binary"
        elif head[: len(b"RCTRACE")] == b"RCTRACE" or any(
            b in _BINARY_JUNK for b in head
        ):
            # binary-looking but not a magic this reader knows: say
            # exactly what was sniffed instead of failing to utf-8
            # decode line 1
            raise TraceFormatError(
                f"{os.path.basename(os.fspath(path))}: unknown trace "
                f"format — sniffed magic bytes {head!r} match neither "
                f"rctrace v2 ({TRACE_MAGIC!r}) nor v3 ({TRACE_MAGIC_V3!r}) "
                f"nor text v1"
            )
        else:
            fmt = "text"
    if fmt == "binary":
        return load_columnar(path, verify=verify)
    try:
        return ColumnarLog(read_trace(path))
    except ValueError as exc:
        # ColumnarLog.append's ordering guard speaks row positions;
        # re-raise in the trace-error vocabulary the CLIs catch
        raise TraceFormatError(
            f"{os.path.basename(os.fspath(path))}: {exc}"
        ) from exc


def convert_trace(
    src: Union[str, os.PathLike],
    dst: Union[str, os.PathLike],
    fmt: Optional[str] = None,
    version: Optional[int] = None,
) -> int:
    """Convert a trace between text v1 and binary v2/v3; returns row count.

    ``fmt`` forces the output format: ``"text"``, ``"binary"`` (v2
    unless ``version`` says otherwise), or the version shorthands
    ``"v2"``/``"v3"``.  When omitted it is inferred from ``dst``'s
    extension (``.rct``/``.rct.gz`` → binary v2, anything else →
    text).  The input format/version is always sniffed, so this is the
    v1/v2↔v3 upgrade-downgrade path.  Conversion is lossless in every
    direction: text v1 carries full-``repr`` timestamps, binary v2 is
    the in-memory layout itself, and v3 encodes the identical columns.
    """
    if fmt is None:
        fmt = default_trace_format(dst)
    if fmt == "v2":
        fmt, version = "binary", TRACE_VERSION
    elif fmt == "v3":
        fmt, version = "binary", TRACE_VERSION_V3
    if fmt not in ("text", "binary"):
        raise ValueError(
            f"unknown trace format {fmt!r} "
            "(use 'text', 'binary', 'v2' or 'v3')"
        )
    log = load_trace_log(src)
    if fmt == "binary":
        return write_columnar(log, dst, version=version or TRACE_VERSION)
    return write_trace(log, dst)
