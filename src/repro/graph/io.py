"""Trace dataset readers and writers: text v1 and binary rctrace v2.

The paper publishes its extracted Ethereum trace "in easily
understandable format".  We mirror that with two on-disk formats over
the same logical record stream:

**Text v1** — one record per line, human-readable, the interchange
format for small traces and external tooling:

``timestamp tx_id src src_kind dst dst_kind``

* ``timestamp`` — float seconds since genesis, written with full
  ``repr`` precision so a round-trip is bit-identical;
* ``tx_id`` — integer id of the enclosing transaction;
* ``src`` / ``dst`` — integer vertex ids;
* ``src_kind`` / ``dst_kind`` — ``A`` (account) or ``C`` (contract).

Lines starting with ``#`` are comments.  Files ending in ``.gz`` are
transparently gzip-compressed.

**Binary rctrace v2** — the columnar replay format: the parallel
arrays of a :class:`~repro.graph.columnar.ColumnarLog` laid out as
fixed-width little-endian sections, so :func:`load_columnar` can
``mmap`` the file and hand zero-copy ``memoryview`` casts straight to
:meth:`ColumnarLog.from_buffers` — no parsing, no boxing, O(1) load.
The flat fixed-layout encoding follows the SSZ playbook (fixed-size
parts serialize in place; all offsets derivable from the header).
Layout::

    offset  size          field
    0       8             magic  b"RCTRACE2"
    8       4             format version (uint32, = 2)
    12      4             header size in bytes (uint32, = 64)
    16      8             row count N (uint64)
    24      8             vertex count V (uint64)
    32      8             payload length in bytes (uint64)
    40      4             crc32 of the payload (uint32)
    44      20            reserved (zero)
    64      V * 8         vertex-id table   (int64: dense index -> raw id)
    --      N * 8         timestamps        (float64)
    --      N * 8         src               (int64 dense vertex indices)
    --      N * 8         dst               (int64 dense vertex indices)
    --      N * 8         tx ids            (int64)
    --      N * 1         src kinds         (int8: 0=account, 1=contract)
    --      N * 1         dst kinds         (int8)

All multi-byte fields are little-endian.  The payload length and the
per-section lengths derived from (N, V) must agree with the file size,
and the crc32 guards corruption — every violation raises
:class:`~repro.errors.TraceFormatError` naming the offending section
or offset, never a raw ``struct``/``IndexError``.  ``.gz`` paths are
supported for v2 too (decompressed to memory; mmap needs a real file).

:func:`load_trace_log` sniffs the format, :func:`convert_trace`
translates between them.  Use text for interchange and eyeballing;
binary for anything replay-sized (see README "Trace datasets").
"""

from __future__ import annotations

import gzip
import io
import math
import mmap
import os
import struct
import sys
import zlib
from array import array
from typing import IO, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.errors import TraceFormatError
from repro.graph.builder import Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.digraph import VertexKind

_KIND_TO_CODE = {VertexKind.ACCOUNT: "A", VertexKind.CONTRACT: "C"}
_CODE_TO_KIND = {"A": VertexKind.ACCOUNT, "C": VertexKind.CONTRACT}

PathOrFile = Union[str, os.PathLike, IO[str]]


def _open_text(path_or_file: PathOrFile, mode: str) -> IO[str]:
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file  # type: ignore[return-value]
    path = os.fspath(path_or_file)  # type: ignore[arg-type]
    if "r" in mode:
        # sniff compression by content, not extension — a gzipped
        # trace without a .gz suffix must still read transparently
        with open(path, "rb") as probe:
            gzipped = probe.read(2) == b"\x1f\x8b"
    else:
        gzipped = path.endswith(".gz")
    if gzipped:
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def format_interaction(interaction: Interaction) -> str:
    """One trace line (without newline) for an interaction.

    Timestamps are written with ``repr`` (shortest string that parses
    back to the same double), so an exported-then-reimported trace is
    bit-identical to the in-memory log — a fixed-precision format like
    ``%.3f`` would silently lose sub-millisecond structure.
    """
    return (
        f"{interaction.timestamp!r} {interaction.tx_id} "
        f"{interaction.src} {_KIND_TO_CODE[interaction.src_kind]} "
        f"{interaction.dst} {_KIND_TO_CODE[interaction.dst_kind]}"
    )


def parse_interaction(line: str, lineno: int = 0) -> Interaction:
    """Parse one trace line into an :class:`Interaction`."""
    parts = line.split()
    if len(parts) != 6:
        raise TraceFormatError(
            f"line {lineno}: expected 6 fields, got {len(parts)}: {line!r}"
        )
    ts_s, tx_s, src_s, src_k, dst_s, dst_k = parts
    try:
        ts = float(ts_s)
        tx_id = int(tx_s)
        src = int(src_s)
        dst = int(dst_s)
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: bad numeric field: {line!r}") from exc
    if not math.isfinite(ts):
        # nan/inf parse as floats but poison the log's time-ordering
        # guard downstream with a confusing error; reject at the source
        raise TraceFormatError(
            f"line {lineno}: non-finite timestamp {ts_s!r}: {line!r}"
        )
    try:
        src_kind = _CODE_TO_KIND[src_k]
        dst_kind = _CODE_TO_KIND[dst_k]
    except KeyError as exc:
        raise TraceFormatError(
            f"line {lineno}: vertex kind must be A or C: {line!r}"
        ) from exc
    return Interaction(
        timestamp=ts, src=src, dst=dst, src_kind=src_kind, dst_kind=dst_kind, tx_id=tx_id
    )


def write_trace(interactions: Iterable[Interaction], path_or_file: PathOrFile) -> int:
    """Write interactions to a trace file; returns the record count."""
    f = _open_text(path_or_file, "w")
    should_close = f is not path_or_file
    n = 0
    try:
        f.write("# repro ethereum-style interaction trace v1\n")
        f.write("# timestamp tx_id src src_kind dst dst_kind\n")
        for it in interactions:
            f.write(format_interaction(it))
            f.write("\n")
            n += 1
    finally:
        if should_close:
            f.close()
    return n


def read_trace(path_or_file: PathOrFile) -> Iterator[Interaction]:
    """Stream interactions from a trace file (lazily).

    Gzip compression is sniffed from the content, so misnamed ``.gz``
    files read fine; bytes that are not utf-8 text at all surface as
    :class:`TraceFormatError`, never a raw ``UnicodeDecodeError``.
    """
    f = _open_text(path_or_file, "r")
    should_close = f is not path_or_file
    try:
        lines = enumerate(f, start=1)
        while True:
            try:
                lineno, raw = next(lines)
            except StopIteration:
                return
            except UnicodeDecodeError as exc:
                raise TraceFormatError(
                    f"not a text trace: invalid utf-8 near byte "
                    f"{exc.start} ({exc.reason})"
                ) from exc
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield parse_interaction(line, lineno)
    finally:
        if should_close:
            f.close()


# ----------------------------------------------------------------------
# binary rctrace v2 (see the module docstring for the layout)

TRACE_MAGIC = b"RCTRACE2"
TRACE_VERSION = 2

#: magic, version, header size, n_rows, n_vertices, payload bytes,
#: crc32, reserved — 64 bytes total, little-endian.
_HEADER = struct.Struct("<8sIIQQQI20s")
_HEADER_SIZE = _HEADER.size
assert _HEADER_SIZE == 64

#: (attribute typecode, item size) per payload section, in file order;
#: the vertex-id table precedes the row columns.
_ROW_SECTIONS: Tuple[Tuple[str, str, int], ...] = (
    ("timestamps", "d", 8),
    ("src", "q", 8),
    ("dst", "q", 8),
    ("tx", "q", 8),
    ("src_kind", "b", 1),
    ("dst_kind", "b", 1),
)

_NATIVE_LE = sys.byteorder == "little"

#: valid vertex-kind byte codes (file values; matches ColumnarLog's
#: enum-definition-order codes: 0=account, 1=contract)
_VALID_KIND_BYTES = frozenset(range(len(tuple(VertexKind))))


def _column_le_bytes(column: Sequence, typecode: str) -> bytes:
    """A column's items as packed little-endian bytes."""
    if isinstance(column, memoryview):
        # memoryview-backed columns only exist on little-endian hosts
        # (load_columnar falls back to swapped array copies elsewhere)
        return column.tobytes()
    arr = column if isinstance(column, array) else array(typecode, column)
    if not _NATIVE_LE:
        arr = array(typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _le_column(data: memoryview, typecode: str):
    """A payload slice as a native sequence of ``typecode`` items."""
    if _NATIVE_LE:
        return data.cast(typecode)
    arr = array(typecode)
    arr.frombytes(data.tobytes())
    arr.byteswap()
    return arr


def _payload_length(n_rows: int, n_vertices: int) -> int:
    return n_vertices * 8 + sum(n_rows * size for _, _, size in _ROW_SECTIONS)


def write_columnar(
    log: Union[ColumnarLog, Iterable[Interaction]],
    path_or_file: Union[str, os.PathLike, IO[bytes]],
) -> int:
    """Write a log as a binary rctrace-v2 file; returns the row count.

    ``log`` may be a :class:`ColumnarLog` (any backing) or a plain
    interaction iterable (boxed logs are columnarised first).  ``.gz``
    paths are gzip-compressed.  The written file round-trips through
    :func:`load_columnar` bit-identically by construction: the sections
    *are* the log's arrays.
    """
    if not isinstance(log, ColumnarLog):
        log = ColumnarLog(log)
    sections = [
        _column_le_bytes(log.vertex_ids(), "q"),
        _column_le_bytes(log.timestamps(), "d"),
        _column_le_bytes(log.src_indices(), "q"),
        _column_le_bytes(log.dst_indices(), "q"),
        _column_le_bytes(log.tx_ids(), "q"),
        _column_le_bytes(log.src_kind_codes(), "b"),
        _column_le_bytes(log.dst_kind_codes(), "b"),
    ]
    crc = 0
    payload_bytes = 0
    for s in sections:
        crc = zlib.crc32(s, crc)
        payload_bytes += len(s)
    header = _HEADER.pack(
        TRACE_MAGIC, TRACE_VERSION, _HEADER_SIZE,
        len(log), log.num_vertices, payload_bytes, crc, b"\0" * 20,
    )

    if hasattr(path_or_file, "write"):
        f: IO[bytes] = path_or_file  # type: ignore[assignment]
        should_close = False
    else:
        path = os.fspath(path_or_file)
        f = gzip.open(path, "wb") if path.endswith(".gz") else open(path, "wb")
        should_close = True
    try:
        f.write(header)
        for s in sections:
            f.write(s)
    finally:
        if should_close:
            f.close()
    return len(log)


def _parse_header(buf: memoryview, name: str) -> Tuple[int, int, int, int, int]:
    """Validated (header_size, n_rows, n_vertices, payload_bytes, crc)."""
    if len(buf) < _HEADER_SIZE:
        raise TraceFormatError(
            f"{name}: not an rctrace file — {len(buf)} bytes is shorter "
            f"than the {_HEADER_SIZE}-byte header"
        )
    magic, version, header_size, n_rows, n_vertices, payload_bytes, crc, _ = (
        _HEADER.unpack_from(buf, 0)
    )
    if magic != TRACE_MAGIC:
        raise TraceFormatError(
            f"{name}: bad magic at offset 0: {bytes(magic)!r} "
            f"(expected {TRACE_MAGIC!r})"
        )
    if version != TRACE_VERSION:
        raise TraceFormatError(
            f"{name}: unsupported rctrace version {version} at offset 8 "
            f"(this reader understands version {TRACE_VERSION})"
        )
    if header_size < _HEADER_SIZE:
        raise TraceFormatError(
            f"{name}: header size {header_size} at offset 12 is smaller "
            f"than the fixed header ({_HEADER_SIZE})"
        )
    expected = _payload_length(n_rows, n_vertices)
    if payload_bytes != expected:
        raise TraceFormatError(
            f"{name}: header payload length {payload_bytes} does not match "
            f"the {expected} bytes implied by {n_rows} rows and "
            f"{n_vertices} vertices"
        )
    if len(buf) - header_size != payload_bytes:
        raise TraceFormatError(
            f"{name}: truncated payload — expected {payload_bytes} bytes "
            f"after the {header_size}-byte header, found {len(buf) - header_size}"
        )
    return header_size, n_rows, n_vertices, payload_bytes, crc


def load_columnar(
    path: Union[str, os.PathLike],
    verify: bool = True,
) -> ColumnarLog:
    """Load a binary rctrace-v2 file as a zero-copy :class:`ColumnarLog`.

    The file is ``mmap``-ed and the columns are ``memoryview`` casts
    over the mapping — no rows are parsed or boxed, so load time is
    O(verification), not O(N · parse).  With ``verify=True`` (default)
    the payload crc32 is checked and the timestamp/kind/index columns
    are validated (time-ordered and finite, kind codes in range, dense
    indices within the vertex table); ``verify=False`` skips those
    passes for maximum-speed loads of already-trusted files.

    ``.gz`` files are decompressed into memory (still unparsed) since
    a compressed stream cannot be mapped.

    Raises :class:`~repro.errors.TraceFormatError` for every malformed
    input — bad magic, version mismatch, truncated sections, checksum
    failure — naming the file and offending section.
    """
    path = os.fspath(path)
    name = os.path.basename(path)
    backing: object
    with open(path, "rb") as probe:
        gzipped = probe.read(2) == b"\x1f\x8b"   # content, not extension
    if gzipped:
        try:
            with gzip.open(path, "rb") as f:
                raw = f.read()
        except (OSError, EOFError) as exc:
            raise TraceFormatError(f"{name}: corrupt gzip stream: {exc}") from exc
        buf = memoryview(raw)
        backing = raw
    else:
        f = open(path, "rb")
        try:
            try:
                mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                # empty or unmappable file: fall back to a plain read
                f.seek(0)
                raw = f.read()
                buf = memoryview(raw)
                backing = raw
            else:
                buf = memoryview(mapped)
                backing = (mapped, buf)
        finally:
            f.close()

    header_size, n_rows, n_vertices, payload_bytes, crc = _parse_header(buf, name)
    payload = buf[header_size:]
    if verify and zlib.crc32(payload) != crc:
        raise TraceFormatError(
            f"{name}: payload checksum mismatch — stored 0x{crc:08x}, "
            f"computed 0x{zlib.crc32(payload):08x} (corrupt trace)"
        )

    offset = 0
    vertex_ids = _le_column(payload[offset:offset + n_vertices * 8], "q")
    offset += n_vertices * 8
    columns = {}
    for attr, typecode, size in _ROW_SECTIONS:
        end = offset + n_rows * size
        columns[attr] = _le_column(payload[offset:end], typecode)
        offset = end

    if verify:
        _verify_columns(name, columns, n_vertices)

    return ColumnarLog.from_buffers(
        timestamps=columns["timestamps"],
        src=columns["src"],
        dst=columns["dst"],
        tx=columns["tx"],
        src_kind=columns["src_kind"],
        dst_kind=columns["dst_kind"],
        vertex_ids=vertex_ids,
        backing=backing,
    )


def _verify_columns(name: str, columns: dict, n_vertices: int) -> None:
    """Semantic validation of loaded columns (the builder invariants)."""
    ts = columns["timestamps"]
    prev = float("-inf")
    for i in range(len(ts)):
        cur = ts[i]
        if not prev <= cur:       # also catches nan (fails every <=)
            if not math.isfinite(cur):
                raise TraceFormatError(
                    f"{name}: non-finite timestamp {cur!r} at row {i}"
                )
            raise TraceFormatError(
                f"{name}: out-of-order timestamp at row {i}: "
                f"{cur!r} < {prev!r}"
            )
        prev = cur
    # ordering makes first/last the column extremes, so ±inf (which
    # satisfies every <=) reduces to an O(1) endpoint check
    if len(ts) and not (math.isfinite(ts[0]) and math.isfinite(ts[-1])):
        row = 0 if not math.isfinite(ts[0]) else len(ts) - 1
        raise TraceFormatError(
            f"{name}: non-finite timestamp {ts[row]!r} at row {row}"
        )
    for attr in ("src_kind", "dst_kind"):
        codes = set(bytes(memoryview(columns[attr]).cast("B")))
        bad = codes - set(_VALID_KIND_BYTES)
        if bad:
            raise TraceFormatError(
                f"{name}: invalid vertex-kind code(s) {sorted(bad)} in the "
                f"{attr} section (valid: {sorted(_VALID_KIND_BYTES)})"
            )
    for attr in ("src", "dst"):
        col = columns[attr]
        if len(col) and not 0 <= min(col) <= max(col) < n_vertices:
            raise TraceFormatError(
                f"{name}: {attr} section holds a dense vertex index outside "
                f"the {n_vertices}-entry vertex table"
            )


# ----------------------------------------------------------------------
# format sniffing and conversion

#: file extensions that default to the binary format on writes
BINARY_SUFFIXES = (".rct", ".rct.gz")


def default_trace_format(path: Union[str, os.PathLike]) -> str:
    """The output format a path's extension implies (write-side rule):
    ``.rct``/``.rct.gz`` → ``"binary"``, anything else → ``"text"``."""
    return "binary" if os.fspath(path).endswith(BINARY_SUFFIXES) else "text"


def trace_format(path: Union[str, os.PathLike]) -> str:
    """Sniff a trace file's format: ``"binary"`` or ``"text"``.

    Looks at the leading bytes (through gzip, if compressed), so it
    works regardless of file extension.
    """
    path = os.fspath(path)
    with open(path, "rb") as f:
        head = f.read(len(TRACE_MAGIC))
    if head[:2] == b"\x1f\x8b":
        try:
            with gzip.open(path, "rb") as f:
                head = f.read(len(TRACE_MAGIC))
        except (OSError, EOFError) as exc:
            raise TraceFormatError(
                f"{os.path.basename(path)}: corrupt gzip stream: {exc}"
            ) from exc
    return "binary" if head == TRACE_MAGIC else "text"


def load_trace_log(
    path: Union[str, os.PathLike],
    verify: bool = True,
    fmt: Optional[str] = None,
) -> ColumnarLog:
    """Load any trace file (text v1 or binary v2) as a :class:`ColumnarLog`.

    The format is sniffed from the file's magic (pass ``fmt`` to skip
    the sniff when the caller already knows it).  Binary files load
    zero-copy via :func:`load_columnar`; text files stream through
    :func:`read_trace` into a fresh columnar log (parse-and-box — this
    is precisely the cost the binary format exists to skip).  Either
    way, a malformed trace — including an out-of-order text one —
    raises :class:`~repro.errors.TraceFormatError`.
    """
    if fmt is None:
        fmt = trace_format(path)
    if fmt == "binary":
        return load_columnar(path, verify=verify)
    try:
        return ColumnarLog(read_trace(path))
    except ValueError as exc:
        # ColumnarLog.append's ordering guard speaks row positions;
        # re-raise in the trace-error vocabulary the CLIs catch
        raise TraceFormatError(
            f"{os.path.basename(os.fspath(path))}: {exc}"
        ) from exc


def convert_trace(
    src: Union[str, os.PathLike],
    dst: Union[str, os.PathLike],
    fmt: Optional[str] = None,
) -> int:
    """Convert a trace between text v1 and binary v2; returns row count.

    ``fmt`` forces the output format (``"text"``/``"binary"``); when
    omitted it is inferred from ``dst``'s extension (``.rct``/
    ``.rct.gz`` → binary, anything else → text).  The input format is
    always sniffed.  Conversion is lossless in both directions: text v1
    carries full-precision timestamps and binary v2 is the in-memory
    layout itself.
    """
    if fmt is None:
        fmt = default_trace_format(dst)
    if fmt not in ("text", "binary"):
        raise ValueError(f"unknown trace format {fmt!r} (use 'text' or 'binary')")
    log = load_trace_log(src)
    if fmt == "binary":
        return write_columnar(log, dst)
    return write_trace(log, dst)
