"""Trace dataset readers and writers.

The paper publishes its extracted Ethereum trace "in easily
understandable format".  We mirror that with a plain-text, one-record-
per-line format so real traces can be dropped into the pipeline in place
of the synthetic workload:

``timestamp tx_id src src_kind dst dst_kind``

* ``timestamp`` — float seconds since genesis;
* ``tx_id`` — integer id of the enclosing transaction;
* ``src`` / ``dst`` — integer vertex ids;
* ``src_kind`` / ``dst_kind`` — ``A`` (account) or ``C`` (contract).

Lines starting with ``#`` are comments.  Files ending in ``.gz`` are
transparently gzip-compressed.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import IO, Iterable, Iterator, Union

from repro.errors import TraceFormatError
from repro.graph.builder import Interaction
from repro.graph.digraph import VertexKind

_KIND_TO_CODE = {VertexKind.ACCOUNT: "A", VertexKind.CONTRACT: "C"}
_CODE_TO_KIND = {"A": VertexKind.ACCOUNT, "C": VertexKind.CONTRACT}

PathOrFile = Union[str, os.PathLike, IO[str]]


def _open_text(path_or_file: PathOrFile, mode: str) -> IO[str]:
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file  # type: ignore[return-value]
    path = os.fspath(path_or_file)  # type: ignore[arg-type]
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def format_interaction(interaction: Interaction) -> str:
    """One trace line (without newline) for an interaction."""
    return (
        f"{interaction.timestamp:.3f} {interaction.tx_id} "
        f"{interaction.src} {_KIND_TO_CODE[interaction.src_kind]} "
        f"{interaction.dst} {_KIND_TO_CODE[interaction.dst_kind]}"
    )


def parse_interaction(line: str, lineno: int = 0) -> Interaction:
    """Parse one trace line into an :class:`Interaction`."""
    parts = line.split()
    if len(parts) != 6:
        raise TraceFormatError(
            f"line {lineno}: expected 6 fields, got {len(parts)}: {line!r}"
        )
    ts_s, tx_s, src_s, src_k, dst_s, dst_k = parts
    try:
        ts = float(ts_s)
        tx_id = int(tx_s)
        src = int(src_s)
        dst = int(dst_s)
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: bad numeric field: {line!r}") from exc
    try:
        src_kind = _CODE_TO_KIND[src_k]
        dst_kind = _CODE_TO_KIND[dst_k]
    except KeyError as exc:
        raise TraceFormatError(
            f"line {lineno}: vertex kind must be A or C: {line!r}"
        ) from exc
    return Interaction(
        timestamp=ts, src=src, dst=dst, src_kind=src_kind, dst_kind=dst_kind, tx_id=tx_id
    )


def write_trace(interactions: Iterable[Interaction], path_or_file: PathOrFile) -> int:
    """Write interactions to a trace file; returns the record count."""
    f = _open_text(path_or_file, "w")
    should_close = f is not path_or_file
    n = 0
    try:
        f.write("# repro ethereum-style interaction trace v1\n")
        f.write("# timestamp tx_id src src_kind dst dst_kind\n")
        for it in interactions:
            f.write(format_interaction(it))
            f.write("\n")
            n += 1
    finally:
        if should_close:
            f.close()
    return n


def read_trace(path_or_file: PathOrFile) -> Iterator[Interaction]:
    """Stream interactions from a trace file (lazily)."""
    f = _open_text(path_or_file, "r")
    should_close = f is not path_or_file
    try:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield parse_interaction(line, lineno)
    finally:
        if should_close:
            f.close()
