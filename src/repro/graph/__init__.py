"""Graph substrate: the weighted directed "blockchain graph" of the paper.

The paper (§II-B) models Ethereum as a directed graph whose vertices are
accounts and smart contracts and whose edges are interactions produced by
transactions.  Vertex weights capture how often a vertex participates in
transactions; edge weights capture how often an interaction (caller →
callee) occurred.

Public surface:

* :class:`~repro.graph.digraph.WeightedDiGraph` — the graph container;
* :class:`~repro.graph.builder.GraphBuilder` — incremental construction
  from interaction streams;
* :class:`~repro.graph.columnar.ColumnarLog` — parallel-array log with
  interned vertex ids and O(log N) window slicing (the multi-method
  replay substrate);
* :class:`~repro.graph.snapshot.WindowIndex` — time-window views
  (full/cumulative and reduced/window graphs used by METIS vs R-METIS);
* :mod:`~repro.graph.undirected` — collapse to the weighted undirected
  graph fed to partitioners;
* :mod:`~repro.graph.io` — trace readers/writers in the paper's published
  dataset spirit;
* :mod:`~repro.graph.generators` — synthetic test graphs.
"""

from repro.graph.digraph import VertexKind, WeightedDiGraph
from repro.graph.builder import GraphBuilder, Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.snapshot import WindowIndex
from repro.graph.undirected import UndirectedView, collapse_to_undirected

__all__ = [
    "VertexKind",
    "WeightedDiGraph",
    "GraphBuilder",
    "Interaction",
    "ColumnarLog",
    "WindowIndex",
    "UndirectedView",
    "collapse_to_undirected",
]
