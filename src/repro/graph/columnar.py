"""Columnar interaction log: the shared storage of multi-method replays.

A replay that compares k partitioning methods consumes the *same*
time-ordered interaction log k times.  Keeping that log as a list of
:class:`~repro.graph.builder.Interaction` objects is convenient but
heavy: every field access is an attribute lookup and every window query
is a linear scan.  :class:`ColumnarLog` stores the log as parallel
arrays —

* ``timestamp`` as a C double array,
* ``src`` / ``dst`` as *interned* dense vertex indices (C int64),
* ``tx_id`` as C int64,
* vertex kinds as one byte per endpoint,

— so the log of N interactions with V distinct vertices costs
O(N * ~34 bytes + V ids) instead of N boxed objects, and any time
window resolves to an index range with two bisects (O(log N)) instead
of a scan.

Interning gives every raw vertex id (an Ethereum address) a dense
index in first-appearance order; dense indices are what array-based
consumers (partitioners, accelerator kernels) want, and
:meth:`vertex_id` / :meth:`vertex_index` translate both ways.

The log is append-only and must stay time-ordered, mirroring
:class:`~repro.graph.builder.GraphBuilder`'s contract.

Two construction paths share the same read surface:

* the **builder path** (``__init__`` / ``append`` / ``extend``) owns
  mutable ``array`` columns and interns vertices as they appear;
* the **buffer path** (:meth:`ColumnarLog.from_buffers`) wraps
  already-materialised column buffers — typically ``memoryview`` casts
  over an ``mmap``-ed rctrace-v2 file (:func:`repro.graph.io.
  load_columnar`) — *without copying*.  Buffer-backed logs are
  read-only (``append`` raises), and the raw-id → dense-index dict is
  built lazily on the first reverse lookup, so a replay that only ever
  streams windows never pays for it.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union, overload

from repro.graph.builder import Interaction
from repro.graph.digraph import VertexKind

#: Stable byte codes for vertex kinds (order = enum definition order).
_KIND_LIST: Tuple[VertexKind, ...] = tuple(VertexKind)
_KIND_CODE: Dict[VertexKind, int] = {k: i for i, k in enumerate(_KIND_LIST)}


class ColumnarLog:
    """Parallel-array interaction log with interned vertex ids."""

    __slots__ = (
        "_ts", "_src", "_dst", "_tx",
        "_src_kind", "_dst_kind",
        "_vertex_ids", "_vertex_index",
        "_backing", "_writable",
    )

    def __init__(self, interactions: Iterable[Interaction] = ()) -> None:
        self._ts = array("d")
        self._src = array("q")
        self._dst = array("q")
        self._tx = array("q")
        self._src_kind = array("b")
        self._dst_kind = array("b")
        self._vertex_ids: List[int] = []       # dense index -> raw id
        self._vertex_index: Optional[Dict[int, int]] = {}  # raw id -> dense index
        self._backing = None                   # keeps an mmap/buffer alive
        self._writable = True
        self.extend(interactions)

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def from_interactions(cls, interactions: Iterable[Interaction]) -> "ColumnarLog":
        """Build a columnar log from an Interaction sequence."""
        return cls(interactions)

    @classmethod
    def from_buffers(
        cls,
        *,
        timestamps: Sequence[float],
        src: Sequence[int],
        dst: Sequence[int],
        tx: Sequence[int],
        src_kind: Sequence[int],
        dst_kind: Sequence[int],
        vertex_ids: Sequence[int],
        backing: object = None,
    ) -> "ColumnarLog":
        """Wrap pre-materialised column buffers without copying.

        Every column is any random-access sequence of the right element
        type — in the hot path, ``memoryview`` casts over an ``mmap``-ed
        trace file (see :func:`repro.graph.io.load_columnar`), so
        construction is O(1) regardless of log size.  ``src``/``dst``
        hold *dense* vertex indices into ``vertex_ids`` and the kind
        columns hold the byte codes of :class:`VertexKind` in enum
        definition order, exactly as the builder path stores them.

        The resulting log is read-only (:meth:`append` raises
        ``TypeError``; re-box with ``ColumnarLog(log)`` to get an
        appendable copy) and builds its raw-id → dense-index dict
        lazily on the first :meth:`vertex_index` lookup.  ``backing``
        is retained only to keep the underlying mmap/file object alive
        for the lifetime of the log.

        Callers own the invariants the builder path enforces
        incrementally (time-ordered timestamps, in-range indices);
        :func:`~repro.graph.io.load_columnar` verifies them on load.
        """
        n = len(timestamps)
        for name, col in (("src", src), ("dst", dst), ("tx", tx),
                          ("src_kind", src_kind), ("dst_kind", dst_kind)):
            if len(col) != n:
                raise ValueError(
                    f"column length mismatch: {name} has {len(col)} rows, "
                    f"timestamps has {n}"
                )
        log = cls.__new__(cls)
        log._ts = timestamps
        log._src = src
        log._dst = dst
        log._tx = tx
        log._src_kind = src_kind
        log._dst_kind = dst_kind
        log._vertex_ids = vertex_ids
        log._vertex_index = None   # built lazily on first reverse lookup
        log._backing = backing
        log._writable = False
        return log

    @property
    def is_writable(self) -> bool:
        """Whether this log owns appendable columns (builder path).

        Buffer-backed logs are read-only even when handed ``array``
        columns — the caller's buffers are borrowed, never owned.
        """
        return self._writable

    def _index(self) -> Dict[int, int]:
        """The raw-id → dense-index dict, materialised on demand."""
        if self._vertex_index is None:
            self._vertex_index = {
                v: i for i, v in enumerate(self._vertex_ids)
            }
        return self._vertex_index

    def intern(self, vertex: int) -> int:
        """Dense index of a raw vertex id, allocating one if new."""
        index = self._index()
        idx = index.get(vertex)
        if idx is None:
            if not self.is_writable:
                raise TypeError(
                    f"cannot intern new vertex {vertex!r}: buffer-backed "
                    "ColumnarLog is read-only (copy with ColumnarLog(log) "
                    "to get an appendable log)"
                )
            idx = len(self._vertex_ids)
            index[vertex] = idx
            self._vertex_ids.append(vertex)
        return idx

    def append(self, it: Interaction) -> None:
        """Append one interaction; rejects out-of-order timestamps.

        The log is append-only and time-ordered (the contract every
        window bisect and every incremental consumer relies on); an
        interaction older than the current tail is rejected with the
        offending row position so the caller can locate the bad record.
        Buffer-backed logs (:meth:`from_buffers`) are read-only.
        """
        if not self.is_writable:
            raise TypeError(
                "buffer-backed ColumnarLog is read-only (copy with "
                "ColumnarLog(log) to get an appendable log)"
            )
        ts = self._ts
        if ts and it.timestamp < ts[-1]:
            raise ValueError(
                f"out-of-order interaction at row {len(ts)}: "
                f"timestamp {it.timestamp} < log tail {ts[-1]} "
                "(the log is append-only in time order)"
            )
        ts.append(it.timestamp)
        self._src.append(self.intern(it.src))
        self._dst.append(self.intern(it.dst))
        self._tx.append(it.tx_id)
        self._src_kind.append(_KIND_CODE[it.src_kind])
        self._dst_kind.append(_KIND_CODE[it.dst_kind])

    def extend(self, interactions: Iterable[Interaction]) -> int:
        """Append a stream of interactions; returns how many were added."""
        n = 0
        for it in interactions:
            self.append(it)
            n += 1
        return n

    # ------------------------------------------------------------------
    # interning queries

    @property
    def num_vertices(self) -> int:
        """Distinct vertices seen so far."""
        return len(self._vertex_ids)

    def vertex_id(self, index: int) -> int:
        """Raw vertex id of a dense index."""
        return self._vertex_ids[index]

    def vertex_index(self, vertex: int) -> int:
        """Dense index of a raw vertex id (KeyError if never seen)."""
        return self._index()[vertex]

    def vertex_ids(self) -> Sequence[int]:
        """All raw vertex ids in first-appearance (dense-index) order."""
        return tuple(self._vertex_ids)

    # ------------------------------------------------------------------
    # row access

    def __len__(self) -> int:
        return len(self._ts)

    def interaction(self, i: int) -> Interaction:
        """Materialise row ``i`` as an Interaction."""
        return Interaction(
            timestamp=self._ts[i],
            src=self._vertex_ids[self._src[i]],
            dst=self._vertex_ids[self._dst[i]],
            src_kind=_KIND_LIST[self._src_kind[i]],
            dst_kind=_KIND_LIST[self._dst_kind[i]],
            tx_id=self._tx[i],
        )

    @overload
    def __getitem__(self, i: int) -> Interaction: ...
    @overload
    def __getitem__(self, i: slice) -> List[Interaction]: ...

    def __getitem__(
        self, i: Union[int, slice]
    ) -> Union[Interaction, List[Interaction]]:
        if isinstance(i, slice):
            return [self.interaction(j) for j in range(*i.indices(len(self._ts)))]
        if i < 0:
            i += len(self._ts)
        if not 0 <= i < len(self._ts):
            raise IndexError(i)
        return self.interaction(i)

    def __iter__(self) -> Iterator[Interaction]:
        for i in range(len(self._ts)):
            yield self.interaction(i)

    def to_interactions(self) -> List[Interaction]:
        """The whole log as a list of Interaction objects."""
        return [self.interaction(i) for i in range(len(self._ts))]

    # ------------------------------------------------------------------
    # time queries

    @property
    def first_timestamp(self) -> float:
        """Timestamp of the first interaction (-inf if empty)."""
        return self._ts[0] if self._ts else float("-inf")

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the most recent interaction (-inf if empty)."""
        return self._ts[-1] if self._ts else float("-inf")

    def timestamps(self) -> Sequence[float]:
        """The timestamp column (read-only view semantics: do not mutate)."""
        return self._ts

    def src_indices(self) -> Sequence[int]:
        """The src column as *dense* vertex indices (read-only view).

        Dense-index consumers (the CSR builders in
        :mod:`repro.metis.graph`, accelerator kernels) iterate these
        columns directly instead of materialising ``Interaction`` rows.
        """
        return self._src

    def dst_indices(self) -> Sequence[int]:
        """The dst column as *dense* vertex indices (read-only view)."""
        return self._dst

    def tx_ids(self) -> Sequence[int]:
        """The transaction-id column (read-only view)."""
        return self._tx

    def src_kind_codes(self) -> Sequence[int]:
        """The src vertex-kind column as byte codes (read-only view)."""
        return self._src_kind

    def dst_kind_codes(self) -> Sequence[int]:
        """The dst vertex-kind column as byte codes (read-only view)."""
        return self._dst_kind

    def identical(self, other: "ColumnarLog") -> bool:
        """Column-wise bit-identity with another log (any backing).

        True iff every row and the vertex-id table match exactly — the
        round-trip guarantee of the binary trace format.  O(N); meant
        for tests and ``repro-trace`` verification, not hot paths.
        """
        if len(self) != len(other) or self.num_vertices != other.num_vertices:
            return False
        mine = (self._ts, self._src, self._dst, self._tx,
                self._src_kind, self._dst_kind, self._vertex_ids)
        theirs = (other._ts, other._src, other._dst, other._tx,
                  other._src_kind, other._dst_kind, other._vertex_ids)
        return all(list(a) == list(b) for a, b in zip(mine, theirs))

    def index_at(self, ts: float) -> int:
        """Index of the first interaction with timestamp >= ts (bisect)."""
        return bisect_left(self._ts, ts)

    def window_bounds(self, start: float, end: float) -> Tuple[int, int]:
        """Index range [lo, hi) of interactions with start <= ts < end."""
        return self.index_at(start), self.index_at(end)

    def window(self, start: float, end: float) -> List[Interaction]:
        """Materialised interactions with start <= ts < end."""
        lo, hi = self.window_bounds(start, end)
        return [self.interaction(i) for i in range(lo, hi)]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ColumnarLog(|log|={len(self._ts)}, |V|={self.num_vertices}, "
            f"span=[{self.first_timestamp}, {self.last_timestamp}])"
        )
