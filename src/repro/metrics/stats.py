"""Distribution summaries for the Fig. 4 box-and-whisker/violin panels.

The paper plots, per method and per 2017 sub-period: minimum and maximum
(whiskers), first and third quartiles (box), the median (band) and a
density silhouette (violin).  :func:`summarize` computes exactly those,
with the density as a fixed-bin histogram so ASCII rendering and
regression tests are deterministic.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class DistributionSummary:
    """Five-number summary plus a normalised density histogram."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    density_bins: Tuple[float, ...] = ()
    density_lo: float = 0.0
    density_hi: float = 0.0

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_row(self) -> Tuple[float, float, float, float, float]:
        """(min, q1, median, q3, max) — the box-and-whisker tuple."""
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (same convention as numpy default)."""
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    pos = q * (n - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def summarize(values: Sequence[float], density_bins: int = 16) -> DistributionSummary:
    """Five-number summary + density histogram of a metric sample."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(values)
    lo, hi = ordered[0], ordered[-1]

    bins: List[float] = [0.0] * density_bins
    if hi > lo and density_bins > 0:
        width = (hi - lo) / density_bins
        for v in ordered:
            idx = min(int((v - lo) / width), density_bins - 1)
            bins[idx] += 1.0
        peak = max(bins)
        bins = [b / peak for b in bins]
    elif density_bins > 0:
        bins[0] = 1.0

    return DistributionSummary(
        count=len(ordered),
        minimum=lo,
        q1=_quantile(ordered, 0.25),
        median=_quantile(ordered, 0.5),
        q3=_quantile(ordered, 0.75),
        maximum=hi,
        mean=sum(ordered) / len(ordered),
        density_bins=tuple(bins),
        density_lo=lo,
        density_hi=hi,
    )
