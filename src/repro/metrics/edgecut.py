"""Edge-cut metrics (paper Eq. 1).

The paper defines edge-cut as the fraction of edges connecting vertices
in different partitions.  On the unweighted (static) graph this counts
*distinct* edges; on the weighted graph (dynamic) every interaction
counts, so a frequently-used cross-shard edge hurts proportionally —
"the dynamic edge cut ... give[s] us a more accurate view of the
system's executed cross-shard transactions".

Vertices missing from the assignment are treated as unassigned and any
edge touching them counts as cut — a conservative convention that makes
bugs in placement visible rather than silently favourable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.graph.builder import Interaction, group_by_transaction
from repro.graph.digraph import WeightedDiGraph

Assignment = Mapping[int, int]


def static_edge_cut(graph: WeightedDiGraph, assignment: Assignment) -> float:
    """Fraction of distinct edges that cross shards (Eq. 1, unweighted).

    Self-loops never cross.  Returns 0.0 on an edgeless graph.
    """
    total = 0
    cut = 0
    for src, dst, _w in graph.edges():
        if src == dst:
            continue
        total += 1
        if assignment.get(src) is None or assignment.get(src) != assignment.get(dst):
            cut += 1
    return cut / total if total else 0.0


def dynamic_edge_cut(graph: WeightedDiGraph, assignment: Assignment) -> float:
    """Weight fraction of edges that cross shards (Eq. 1, weighted)."""
    total = 0
    cut = 0
    for src, dst, w in graph.edges():
        if src == dst:
            continue
        total += w
        if assignment.get(src) is None or assignment.get(src) != assignment.get(dst):
            cut += w
    return cut / total if total else 0.0


def window_edge_cut(
    interactions: Iterable[Interaction], assignment: Assignment
) -> float:
    """Fraction of *interactions* in a stream that cross shards.

    Equivalent to :func:`dynamic_edge_cut` on the window graph, but
    computed directly from the stream without materialising it.
    """
    total = 0
    cut = 0
    for it in interactions:
        if it.src == it.dst:
            continue
        total += 1
        if assignment.get(it.src) is None or assignment.get(it.src) != assignment.get(it.dst):
            cut += 1
    return cut / total if total else 0.0


def cross_shard_transaction_ratio(
    interactions: Iterable[Interaction], assignment: Assignment
) -> float:
    """Fraction of transactions whose interactions span > 1 shard.

    This is the quantity the paper's headline claims are about ("when
    k = 8 ... multi-shard transactions account for 88% of the total"):
    a transaction is multi-shard if the set of shards touched by all its
    endpoints has more than one element.
    """
    total = 0
    multi = 0
    for _tx_id, bucket in group_by_transaction(interactions):
        total += 1
        shards = set()
        unassigned = False
        for it in bucket:
            s1 = assignment.get(it.src)
            s2 = assignment.get(it.dst)
            if s1 is None or s2 is None:
                unassigned = True
                break
            shards.add(s1)
            shards.add(s2)
        if unassigned or len(shards) > 1:
            multi += 1
    return multi / total if total else 0.0
