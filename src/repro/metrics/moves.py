"""Move metrics: vertices relocated by a repartitioning.

The paper counts "the number of vertices that change shard after the
graph is repartitioned" and stresses its cost: "if we were to move one
vertex from one shard to another, we ought to move the entire state of
the vertex.  If the vertex is a contract, that would result in moving
the entire contract storage."  :func:`moved_state_bytes` quantifies that
second sentence when a world state is available.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.ethereum.state import WorldState

Assignment = Mapping[int, int]


def count_moves(before: Assignment, after: Assignment) -> int:
    """Vertices present in both assignments whose shard changed.

    Vertices that appear only in ``after`` (new accounts placed since
    the last partitioning) are *not* moves — they were never anywhere
    else.  Vertices that disappear (never happens in our pipelines) are
    ignored likewise.
    """
    moves = 0
    for v, shard in before.items():
        new = after.get(v)
        if new is not None and new != shard:
            moves += 1
    return moves


def moved_state_bytes(
    before: Assignment, after: Assignment, state: WorldState
) -> int:
    """Total serialized account state (bytes) that a repartitioning
    would relocate across shards — contracts carry their full storage."""
    total = 0
    for v, shard in before.items():
        new = after.get(v)
        if new is None or new == shard:
            continue
        acct = state.get_optional(v)
        if acct is not None:
            total += acct.state_bytes()
    return total
